// ALS recommender — the paper's motivating application (reference [10]).
//
//   $ als_recommender [--users=4000] [--items=2000] [--rank=16]
//                     [--iterations=10] [--lambda=0.05]
//
// Trains an alternating-least-squares recommender on a synthetic ratings
// dataset with planted low-rank structure. Every half-iteration assembles
// one f×f normal-equation system per user (or item) and factors + solves
// the whole side as a single interleaved batch Cholesky call — exactly the
// "very large number of very small matrices" workload the paper targets.
#include <cstdio>

#include "als/als.hpp"
#include "core/batch_cholesky.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  RatingsOptions ropt;
  ropt.num_users = static_cast<int>(cli.get_int("users", 4000));
  ropt.num_items = static_cast<int>(cli.get_int("items", 2000));
  ropt.planted_rank = static_cast<int>(cli.get_int("planted-rank", 8));
  ropt.ratings_per_user = cli.get_double("ratings-per-user", 40);
  ropt.noise = cli.get_double("noise", 0.1);

  std::printf("generating ratings: %d users x %d items (planted rank %d, "
              "noise %.2f)...\n",
              ropt.num_users, ropt.num_items, ropt.planted_rank, ropt.noise);
  const RatingsDataset data = generate_ratings(ropt);
  std::printf("  %zu training ratings, %zu held-out\n", data.train.size(),
              data.test.size());

  AlsOptions aopt;
  aopt.rank = static_cast<int>(cli.get_int("rank", 16));
  aopt.lambda = cli.get_double("lambda", 0.05);
  aopt.iterations = static_cast<int>(cli.get_int("iterations", 10));
  aopt.tuning = recommended_params(aopt.rank);

  std::printf("ALS: rank %d, lambda %.3f, batch kernels: %s\n", aopt.rank,
              aopt.lambda, aopt.tuning.to_string().c_str());
  std::printf("each iteration factors %d + %d systems of size %dx%d\n\n",
              ropt.num_users, ropt.num_items, aopt.rank, aopt.rank);

  AlsRecommender als(data, aopt);
  const auto history = als.run();

  TextTable table({"iter", "train RMSE", "test RMSE", "factor+solve ms"});
  for (const auto& it : history) {
    table.add_row({std::to_string(it.iteration),
                   TextTable::num(it.train_rmse, 4),
                   TextTable::num(it.test_rmse, 4),
                   TextTable::num(it.factor_seconds * 1e3, 2)});
  }
  std::printf("%s", table.render().c_str());

  const bool converged =
      history.back().train_rmse < 2.0 * ropt.noise &&
      history.back().train_rmse < history.front().train_rmse;
  std::printf("\nfinal test RMSE %.4f (noise floor %.2f) — %s\n",
              history.back().test_rmse, ropt.noise,
              converged ? "converged" : "NOT CONVERGED");
  return converged ? 0 : 1;
}
