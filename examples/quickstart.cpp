// Quickstart: factor a batch of small SPD systems and solve them.
//
//   $ quickstart [--n=16] [--batch=10000]
//
// Walks through the full public API: choose tuning parameters, derive the
// interleaved layout, fill it (here with generated SPD matrices; real
// applications either write through layout.index(b,i,j) or convert a
// canonical batch with convert_layout), factor in place, and solve one
// right-hand side per matrix.
#include <cstdio>

#include "core/batch_cholesky.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 16));
  const std::int64_t batch = cli.get_int("batch", 10000);

  std::printf("ibchol quickstart: %lld SPD systems of size %dx%d\n",
              static_cast<long long>(batch), n, n);

  // 1. Pick tuning parameters (the paper's recommendations per size) and
  //    derive the matching interleaved layout.
  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  std::printf("tuning: %s\nlayout: %s\n", params.to_string().c_str(),
              layout.to_string().c_str());

  // 2. Allocate 128-byte-aligned storage and fill it with SPD matrices.
  AlignedBuffer<float> a(layout.size_elems());
  generate_spd_batch<float>(layout, a.span());
  const std::vector<float> originals(a.begin(), a.end());

  // 3. Factor the whole batch in place: each lower triangle becomes L.
  const BatchCholesky chol(layout, params);
  Timer timer;
  const FactorResult result = chol.factorize<float>(a.span());
  const double factor_s = timer.seconds();
  if (!result.ok()) {
    std::printf("!! %lld matrices were not positive definite (first: %lld)\n",
                static_cast<long long>(result.failed_count),
                static_cast<long long>(result.first_failed));
    return 1;
  }
  const double gflops =
      batch * (static_cast<double>(n) * n * n / 3.0) / factor_s / 1e9;
  std::printf("factorized in %.3f ms  (%.2f GFLOP/s)\n", factor_s * 1e3,
              gflops);

  // 4. Solve A x = 1 for every matrix.
  const BatchVectorLayout vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> x(vlayout.size_elems());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int i = 0; i < n; ++i) x[vlayout.index(b, i)] = 1.0f;
  }
  timer.reset();
  chol.solve<float>(std::span<const float>(a.span()), vlayout, x.span());
  std::printf("solved %lld systems in %.3f ms\n",
              static_cast<long long>(batch), timer.seconds() * 1e3);

  // 5. Verify a few solutions against the original matrices.
  std::vector<float> dense(n * n), xs(n);
  const std::vector<float> ones(n, 1.0f);
  double worst = 0.0;
  for (const std::int64_t b : {std::int64_t{0}, batch / 2, batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(originals), b, dense);
    for (int i = 0; i < n; ++i) xs[i] = x[vlayout.index(b, i)];
    worst = std::max(worst, residual_error<float>(n, dense, xs, ones));
  }
  std::printf("max relative residual of spot-checked solves: %.2e\n", worst);
  std::printf(worst < 1e-4 ? "OK\n" : "RESIDUAL TOO LARGE\n");
  return worst < 1e-4 ? 0 : 1;
}
