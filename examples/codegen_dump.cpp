// Emit the generated CUDA kernel source for a tuning point — the artifact
// the paper's pyexpander pipeline produces (Figures 9-12).
//
//   $ codegen_dump [--n=8] [--nb=2] [--looking=top] [--unroll=full]
//                  [--chunk=64] [--math=ieee] [--out=kernel.cu]
//
// Without --out the source is printed to stdout. On a CUDA machine the
// output compiles with nvcc as-is (add --use_fast_math for math=fast).
#include <cstdio>
#include <fstream>

#include "kernels/cuda_codegen.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  CodegenConfig cfg;
  cfg.n = static_cast<int>(cli.get_int("n", 8));
  cfg.nb = static_cast<int>(cli.get_int("nb", 2));
  cfg.looking = looking_from_string(cli.get("looking", "top"));
  cfg.unroll = unroll_from_string(cli.get("unroll", "full"));
  cfg.chunk = static_cast<int>(cli.get_int("chunk", 64));
  cfg.math = math_from_string(cli.get("math", "ieee"));

  try {
    const std::string source = generate_cuda_kernel(cfg);
    if (cli.has("out")) {
      const std::string path = cli.get("out", "");
      std::ofstream out(path);
      if (!out) throw Error("cannot write " + path);
      out << source;
      std::printf("wrote %s (%zu bytes, kernel %s)\n", path.c_str(),
                  source.size(), kernel_name(cfg).c_str());
    } else {
      std::printf("%s", source.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
