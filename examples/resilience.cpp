// Resilience walkthrough: recovering a faulted batch, then surviving an
// interrupted autotuning sweep.
//
//   $ resilience [--n=16] [--batch=4096] [--fault-rate=0.02] [--seed=1234]
//                [--journal=sweep.jsonl] [--resume] [--halt-after=K]
//                [--fail-points=F] [--csv=out.csv]
//
// Part 1 corrupts a batch with the deterministic fault injector (non-SPD
// pivots, NaN, Inf) and factors it with factorize_recover: non-finite
// inputs are screened out, non-SPD members are repaired with escalating
// diagonal shifts, healthy matrices are untouched.
//
// Part 2 runs a journaled sweep with injected evaluator faults. With
// --halt-after=K the process exits hard after K completed points — a stand-
// in for a crash or Ctrl-C; rerunning with --resume continues from the
// journal and re-evaluates nothing. --csv writes the final dataset so an
// interrupted+resumed run can be diffed against an uninterrupted one.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "autotune/journal.hpp"
#include "autotune/sweep.hpp"
#include "core/batch_cholesky.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fault_inject.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 16));
  const std::int64_t batch = cli.get_int("batch", 4096);

  // ---- Part 1: recovery-retry factorization of a corrupted batch --------
  std::printf("== batch recovery: %lld matrices of size %dx%d ==\n",
              static_cast<long long>(batch), n, n);

  const TuningParams params = recommended_params(n);
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());

  FaultPlanOptions fopt;
  fopt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1234));
  fopt.fault_rate = cli.get_double("fault-rate", 0.02);
  const std::vector<MatrixFault> plan = plan_faults(batch, n, fopt);
  inject_faults<float>(layout, data.span(), plan);
  std::printf("injected %zu faults (negative pivots, NaN, Inf)\n",
              plan.size());

  const BatchCholesky chol(layout, params);
  std::vector<std::int32_t> info(static_cast<std::size_t>(batch));
  const RecoveryReport report = chol.factorize_recover<float>(
      data.span(), RecoveryOptions{}, info);

  std::printf(
      "screened non-finite: %lld, non-SPD failures: %lld, recovered: %lld, "
      "unrecoverable: %lld\n",
      static_cast<long long>(report.nonfinite),
      static_cast<long long>(report.failed),
      static_cast<long long>(report.recovered),
      static_cast<long long>(report.unrecoverable));
  int shown = 0;
  for (const MatrixRecovery& m : report.matrices) {
    if (shown++ == 8) {
      std::printf("  ... %zu more\n", report.matrices.size() - 8);
      break;
    }
    if (m.first_info == kInfoNonFinite) {
      std::printf("  matrix %6lld: NaN/Inf input, handed back untouched\n",
                  static_cast<long long>(m.index));
    } else if (m.recovered) {
      std::printf(
          "  matrix %6lld: pivot %d failed, recovered with shift %.3g "
          "after %d attempt(s)\n",
          static_cast<long long>(m.index), m.first_info, m.shift,
          m.attempts);
    } else {
      std::printf("  matrix %6lld: unrecoverable after %d attempt(s)\n",
                  static_cast<long long>(m.index), m.attempts);
    }
  }

  // ---- Part 2: crash-safe sweep with flaky evaluations ------------------
  std::printf("\n== resumable sweep with injected evaluator faults ==\n");

  SweepOptions opt;
  opt.sizes = {8, 16};
  opt.batch = batch;
  opt.space.tile_sizes = {1, 4, 8};
  opt.space.chunk_sizes = {32, 64};
  opt.max_retries = 2;

  ModelEvaluator model(KernelModel(GpuSpec::p100()), 0.05);
  FlakyEvaluator flaky(model);
  const long fail_points = cli.get_int("fail-points", 3);
  {
    const auto space = enumerate_space(opt.sizes[0], opt.space);
    for (long i = 0; i < fail_points &&
                     static_cast<std::size_t>(i) < space.size();
         ++i) {
      flaky.fail_point(opt.sizes[0], space[static_cast<std::size_t>(i)],
                       /*times=*/2);
    }
  }

  const std::string journal = cli.get("journal", "");
  if (!journal.empty()) {
    opt.journal_path = journal;
    if (cli.get_bool("resume", false)) {
      opt.resume_from = journal;
      std::printf("resuming from %s (%zu journaled points)\n",
                  journal.c_str(), read_journal(journal).size());
    }
  }

  const long halt_after = cli.get_int("halt-after", 0);
  std::size_t completed = 0;
  opt.progress = [&](std::size_t done, std::size_t total) {
    ++completed;
    if (done == total || done % 25 == 0) {
      std::printf("  ... %zu/%zu points\n", done, total);
    }
    // Simulated crash: a hard exit, exactly like a kill -9 or a panic —
    // nothing past the journal's flushed lines survives.
    if (halt_after > 0 &&
        completed == static_cast<std::size_t>(halt_after)) {
      std::printf("halting hard after %zu evaluated points (journal has "
                  "the completed work)\n",
                  completed);
      std::fflush(stdout);
      std::_Exit(17);
    }
  };

  const SweepDataset dataset = run_sweep(flaky, opt);
  std::size_t failed = 0, retried = 0;
  for (const auto& r : dataset.records()) {
    failed += r.failed ? 1 : 0;
    retried += r.attempts > 1 ? 1 : 0;
  }
  std::printf(
      "sweep complete: %zu records, %zu retried, %zu failed; evaluator "
      "faults fired: %lld\n",
      dataset.size(), retried, failed,
      static_cast<long long>(flaky.faults_fired()));

  for (const auto& [size, rec] : dataset.best_by_n()) {
    std::printf("  winner n=%-3d %s  (%.1f model GF/s)\n", size,
                rec.params.key().c_str(), rec.gflops);
  }

  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) {
    std::ofstream out(csv, std::ios::trunc);
    out << to_csv(dataset.to_csv());
    std::printf("dataset written to %s\n", csv.c_str());
  }
  return 0;
}
