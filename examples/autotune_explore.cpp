// Autotuner walkthrough: sweep the tuning space, inspect the winners, and
// verify the winning kernel numerically on the CPU substrate.
//
//   $ autotune_explore [--sizes=8,16,24,32,48] [--batch=16384]
//                      [--evaluator=model|cpu] [--exec=interp,spec,vectorized]
//                      [--csv=sweep.csv] [--journal=sweep.jsonl] [--resume]
//                      [--trace=sweep_trace.json]
//
// The model evaluator sweeps the full space through the P100 SIMT model
// (fast); --evaluator=cpu measures every variant on the CPU substrate
// instead (slow but real — use small sizes/batches). --exec adds the
// executor axis to the space (comma-separated; default is the historical
// specialized-only grid); vectorized entries sweep the host's auto-detected
// SIMD tier. Long measured sweeps should set --journal so completed points
// survive an interruption; rerunning with --resume picks up where the
// journal left off. --trace records one span per sweep point (plus one per
// evaluation attempt) and exports a Chrome trace_event JSON — or JSONL when
// the path ends in ".jsonl" — mirroring the journal one to one; it needs a
// build with IBCHOL_OBS=ON (see docs/OBSERVABILITY.md).
#include <cstdio>
#include <sstream>

#include "autotune/dispatch.hpp"
#include "autotune/evaluator.hpp"
#include "autotune/sweep.hpp"
#include "core/batch_cholesky.hpp"
#include "cpu/reference.hpp"
#include "layout/convert.hpp"
#include "obs/trace.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  SweepOptions opt;
  {
    std::stringstream ss(cli.get("sizes", "8,16,24,32,48"));
    std::string tok;
    while (std::getline(ss, tok, ',')) opt.sizes.push_back(std::stoi(tok));
  }
  opt.batch = cli.get_int("batch", 16384);
  if (cli.has("exec")) {
    std::stringstream ss(cli.get("exec", ""));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      opt.space.execs.push_back(cpu_exec_from_string(tok));
    }
  }
  const std::string backend = cli.get("evaluator", "model");

  std::unique_ptr<Evaluator> evaluator;
  if (backend == "cpu") {
    evaluator = std::make_unique<CpuMeasuredEvaluator>();
  } else {
    evaluator =
        std::make_unique<ModelEvaluator>(KernelModel(GpuSpec::p100()));
  }
  std::printf("exhaustive sweep via %s, batch %lld\n",
              evaluator->name().c_str(), static_cast<long long>(opt.batch));

  if (cli.has("journal")) {
    opt.journal_path = cli.get("journal", "");
    opt.max_retries = 1;  // one free retry for flaky measured evaluations
    if (cli.get_bool("resume", false)) {
      opt.resume_from = opt.journal_path;
      std::printf("resuming from journal %s\n", opt.journal_path.c_str());
    }
  }

  std::size_t last_percent = 0;
  opt.progress = [&](std::size_t done, std::size_t total) {
    const std::size_t percent = done * 100 / total;
    if (percent / 10 != last_percent / 10) {
      std::printf("  ... %zu%% (%zu/%zu kernels)\n", percent, done, total);
      last_percent = percent;
    }
  };
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) {
    if (!obs::kEnabled) {
      std::printf("--trace requires a build with IBCHOL_OBS=ON; ignoring\n");
    } else {
      obs::start_tracing();
    }
  }
  const SweepDataset dataset = run_sweep(*evaluator, opt);
  std::printf("swept %zu kernels\n\n", dataset.size());
  if (!trace_path.empty() && obs::kEnabled) {
    obs::stop_tracing();
    if (obs::export_trace(trace_path)) {
      std::printf("sweep trace written to %s\n", trace_path.c_str());
    } else {
      std::printf("failed to write sweep trace to %s\n", trace_path.c_str());
      return 1;
    }
  }

  // Winners table.
  TextTable table({"n", "GF/s", "nb", "looking", "layout", "unroll"});
  for (const auto& [n, rec] : dataset.best_by_n()) {
    table.add_row(
        {std::to_string(n), TextTable::num(rec.gflops, 1),
         std::to_string(rec.params.nb), to_string(rec.params.looking),
         rec.params.chunked ? "chunk" + std::to_string(rec.params.chunk_size)
                            : "simple",
         to_string(rec.params.unroll)});
  }
  std::printf("autotuner winners:\n%s\n", table.render().c_str());

  // Verify the winner of the largest size numerically.
  const int n = opt.sizes.back();
  const TuningParams params = select_winners(dataset).at(n);
  const std::int64_t verify_batch = 2048;
  const BatchLayout layout =
      BatchCholesky::make_layout(n, verify_batch, params);
  const BatchCholesky chol(layout, params);
  AlignedBuffer<float> data(layout.size_elems());
  generate_spd_batch<float>(layout, data.span());
  const std::vector<float> orig(data.begin(), data.end());
  if (!chol.factorize<float>(data.span()).ok()) {
    std::printf("winner kernel failed to factor!\n");
    return 1;
  }
  std::vector<float> a(n * n), l(n * n);
  double worst = 0.0;
  for (const std::int64_t b : {std::int64_t{0}, verify_batch - 1}) {
    extract_matrix<float>(layout, std::span<const float>(orig), b, a);
    extract_matrix<float>(layout, std::span<const float>(data.span()), b, l);
    worst = std::max(worst, reconstruction_error<float>(n, a, l));
  }
  std::printf("winner for n=%d verified on CPU substrate: ||A - LL^T|| / "
              "||A|| = %.2e\n", n, worst);

  if (cli.has("csv")) {
    write_csv_file(cli.get("csv", ""), dataset.to_csv());
    std::printf("dataset written to %s\n", cli.get("csv", "").c_str());
  }
  if (cli.has("table")) {
    // The deployable artifact: a size -> kernel dispatch table.
    const TunedDispatch dispatch = TunedDispatch::from_dataset(dataset);
    write_csv_file(cli.get("table", ""), dispatch.to_csv());
    std::printf("dispatch table (%zu entries) written to %s\n",
                dispatch.size(), cli.get("table", "").c_str());
  }
  return worst < 1e-4 ? 0 : 1;
}
