// Batched Kalman filter update — tracking thousands of objects at once.
//
//   $ kalman_tracker [--tracks=8192] [--steps=50]
//
// Each track maintains a 4-state (position/velocity in 2D) Kalman filter.
// The measurement update inverts the 2x2..4x4 innovation covariance
// S = H·P·Hᵀ + R — an SPD solve per track per step. All tracks' solves are
// batched through the interleaved batch Cholesky with a multi-RHS solve
// (one column per state dimension), which is exactly the "large set of
// small linear solves" pattern the paper's introduction motivates.
//
// Here H = I (full-state observation), so S = P + R stays 4x4 and the gain
// is K = P·S^{-1}, computed by solving S·Kᵀ = Pᵀ with the batched solver.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "layout/rect_layout.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace ibchol;

namespace {

constexpr int kState = 4;  // [x, y, vx, vy]

struct Track {
  float x[kState] = {};        // state estimate
  float p[kState * kState] = {};  // covariance (column-major)
  float truth[kState] = {};    // simulated ground truth
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t tracks = cli.get_int("tracks", 8192);
  const int steps = static_cast<int>(cli.get_int("steps", 50));
  const float dt = 0.1f;
  const float qpos = 1e-3f, qvel = 1e-2f;  // process noise
  const float rpos = 0.25f, rvel = 0.5f;   // measurement noise variances

  std::printf("batched Kalman tracking: %lld tracks x %d steps, state dim "
              "%d\n", static_cast<long long>(tracks), steps, kState);

  // Initialize tracks with random constant-velocity ground truth.
  Xoshiro256 rng(77);
  std::vector<Track> fleet(tracks);
  for (auto& t : fleet) {
    for (int i = 0; i < kState; ++i) {
      t.truth[i] = static_cast<float>(rng.normal() * (i < 2 ? 100.0 : 5.0));
      t.x[i] = 0.0f;  // uninformed start
      t.p[i + i * kState] = 1e3f;
    }
  }

  // Batch layouts: S is kState x kState, the gain RHS is kState x kState.
  const TuningParams params = recommended_params(kState);
  const BatchLayout slayout =
      BatchCholesky::make_layout(kState, tracks, params);
  const BatchRectLayout klayout =
      BatchRectLayout::matching(slayout, kState, kState);
  const BatchCholesky chol(slayout, params);
  AlignedBuffer<float> sbatch(slayout.size_elems());
  AlignedBuffer<float> kbatch(klayout.size_elems());

  double solver_seconds = 0.0;
  double err_initial = 0.0, err_final = 0.0;

  for (int step = 0; step < steps; ++step) {
    // --- per-track predict + measurement simulation (host side) ---------
#pragma omp parallel for schedule(static)
    for (std::int64_t tr = 0; tr < tracks; ++tr) {
      Track& t = fleet[tr];
      // Ground truth moves with constant velocity.
      t.truth[0] += dt * t.truth[2];
      t.truth[1] += dt * t.truth[3];
      // Predict: x <- F x, P <- F P Fᵀ + Q with F = [I, dt·I; 0, I].
      t.x[0] += dt * t.x[2];
      t.x[1] += dt * t.x[3];
      for (int c = 0; c < 2; ++c) {
        // P <- F P Fᵀ expanded for the block structure.
        const int pos = c, vel = c + 2;
        const float ppp = t.p[pos + pos * kState];
        const float ppv = t.p[pos + vel * kState];
        const float pvv = t.p[vel + vel * kState];
        t.p[pos + pos * kState] = ppp + 2 * dt * ppv + dt * dt * pvv + qpos;
        t.p[pos + vel * kState] = ppv + dt * pvv;
        t.p[vel + pos * kState] = t.p[pos + vel * kState];
        t.p[vel + vel * kState] = pvv + qvel;
      }
    }

    // --- batched gain computation ----------------------------------------
    // S = P + R (H = I); solve S·Kᵀ = P for Kᵀ (S symmetric).
#pragma omp parallel for schedule(static)
    for (std::int64_t tr = 0; tr < tracks; ++tr) {
      const Track& t = fleet[tr];
      for (int j = 0; j < kState; ++j) {
        for (int i = 0; i < kState; ++i) {
          float s = t.p[i + j * kState];
          if (i == j) s += (i < 2 ? rpos : rvel);
          sbatch[slayout.index(tr, i, j)] = s;
          kbatch[klayout.index(tr, i, j)] = t.p[i + j * kState];
        }
      }
    }
    Timer timer;
    const FactorResult fres = chol.factorize<float>(sbatch.span());
    if (!fres.ok()) {
      std::printf("!! %lld innovation covariances were not SPD\n",
                  static_cast<long long>(fres.failed_count));
      return 1;
    }
    chol.solve_multi<float>(std::span<const float>(sbatch.span()), klayout,
                            kbatch.span());
    solver_seconds += timer.seconds();

    // --- per-track state/covariance update --------------------------------
    double err = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : err)
    for (std::int64_t tr = 0; tr < tracks; ++tr) {
      Track& t = fleet[tr];
      // Simulated noisy full-state measurement.
      Xoshiro256 mrng(0xabcd1234u ^ (tr * 2654435761u) ^ (step * 97u));
      float z[kState];
      for (int i = 0; i < kState; ++i) {
        z[i] = t.truth[i] + static_cast<float>(
                                mrng.normal() *
                                std::sqrt(static_cast<double>(i < 2 ? rpos
                                                                    : rvel)));
      }
      // K = (solve result)ᵀ: kbatch holds Kᵀ (S·Kᵀ = P).
      float k[kState * kState];
      for (int j = 0; j < kState; ++j) {
        for (int i = 0; i < kState; ++i) {
          k[i + j * kState] = kbatch[klayout.index(tr, j, i)];
        }
      }
      // x <- x + K(z - x); P <- (I - K)P.
      float innov[kState];
      for (int i = 0; i < kState; ++i) innov[i] = z[i] - t.x[i];
      for (int i = 0; i < kState; ++i) {
        float acc = t.x[i];
        for (int j = 0; j < kState; ++j) acc += k[i + j * kState] * innov[j];
        t.x[i] = acc;
      }
      float pnew[kState * kState];
      for (int j = 0; j < kState; ++j) {
        for (int i = 0; i < kState; ++i) {
          float acc = t.p[i + j * kState];
          for (int m = 0; m < kState; ++m) {
            acc -= k[i + m * kState] * t.p[m + j * kState];
          }
          pnew[i + j * kState] = acc;
        }
      }
      // Re-symmetrize against drift.
      for (int j = 0; j < kState; ++j) {
        for (int i = 0; i < kState; ++i) {
          t.p[i + j * kState] = 0.5f * (pnew[i + j * kState] +
                                        pnew[j + i * kState]);
        }
      }
      const double dx = t.x[0] - t.truth[0];
      const double dy = t.x[1] - t.truth[1];
      err += dx * dx + dy * dy;
    }
    err = std::sqrt(err / static_cast<double>(tracks));
    if (step == 0) err_initial = err;
    if (step == steps - 1) err_final = err;
    if (step == 0 || step == steps - 1 || (step + 1) % 10 == 0) {
      std::printf("  step %3d: position RMSE %8.3f\n", step + 1, err);
    }
  }

  std::printf("\nbatched factor+solve time: %.1f ms total (%.1f us per "
              "step for %lld 4x4 systems)\n", solver_seconds * 1e3,
              solver_seconds * 1e6 / steps, static_cast<long long>(tracks));
  // Success: the filter settles well below the raw measurement noise
  // (sqrt(rpos) = 0.5) and well below its starting error.
  const bool converged = err_final < 0.6 * err_initial &&
                         err_final < std::sqrt(static_cast<double>(rpos));
  std::printf("%s: RMSE %0.3f -> %0.3f\n", converged ? "OK" : "NOT CONVERGED",
              err_initial, err_final);
  return converged ? 0 : 1;
}
