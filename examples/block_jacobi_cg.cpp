// Block-Jacobi preconditioned conjugate gradients — a finite-element-style
// consumer of batch Cholesky (the paper's intro names FEM as a motivating
// application).
//
//   $ block_jacobi_cg [--grid=128] [--block=16] [--tol=1e-6]
//
// Solves the 2D five-point Laplacian on a grid with CG. The block-Jacobi
// preconditioner factors every diagonal block of the matrix ONCE as a
// single interleaved batch Cholesky call, then applies the batched
// triangular solve in every CG iteration. The batch is exactly the paper's
// workload: thousands of tiny SPD factorizations/solves.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ibchol;

namespace {

// y = A x for the 2D Laplacian (Dirichlet) on a g×g grid, row-major index
// i = r*g + c; A has 4 on the diagonal and -1 for each grid neighbor.
void laplacian_matvec(int g, const std::vector<double>& x,
                      std::vector<double>& y) {
  const std::int64_t n = static_cast<std::int64_t>(g) * g;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const int r = static_cast<int>(i / g);
    const int c = static_cast<int>(i % g);
    double acc = 4.0 * x[i];
    if (r > 0) acc -= x[i - g];
    if (r + 1 < g) acc -= x[i + g];
    if (c > 0) acc -= x[i - 1];
    if (c + 1 < g) acc -= x[i + 1];
    y[i] = acc;
  }
}

// Entry (i, j) of the Laplacian, for assembling the diagonal blocks.
double laplacian_entry(int g, std::int64_t i, std::int64_t j) {
  if (i == j) return 4.0;
  const int ri = static_cast<int>(i / g), ci = static_cast<int>(i % g);
  const int rj = static_cast<int>(j / g), cj = static_cast<int>(j % g);
  const int dr = std::abs(ri - rj), dc = std::abs(ci - cj);
  return (dr + dc == 1) ? -1.0 : 0.0;
}

struct CgStats {
  int iterations = 0;
  double residual = 0.0;
  double seconds = 0.0;
};

// CG with an optional preconditioner callback z = M^{-1} r.
template <typename Precond>
CgStats conjugate_gradients(int g, const std::vector<double>& b, double tol,
                            int max_iter, Precond&& precond) {
  const std::int64_t n = static_cast<std::int64_t>(g) * g;
  std::vector<double> x(n, 0.0), r = b, z(n), p(n), ap(n);
  Timer timer;
  precond(r, z);
  p = z;
  double rz = 0.0, bnorm = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    rz += r[i] * z[i];
    bnorm += b[i] * b[i];
  }
  bnorm = std::sqrt(bnorm);
  CgStats stats;
  for (int it = 0; it < max_iter; ++it) {
    laplacian_matvec(g, p, ap);
    double pap = 0.0;
    for (std::int64_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    const double alpha = rz / pap;
    double rnorm = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rnorm += r[i] * r[i];
    }
    rnorm = std::sqrt(rnorm);
    stats.iterations = it + 1;
    stats.residual = rnorm / bnorm;
    if (stats.residual < tol) break;
    precond(r, z);
    double rz_new = 0.0;
    for (std::int64_t i = 0; i < n; ++i) rz_new += r[i] * z[i];
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::int64_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int g = static_cast<int>(cli.get_int("grid", 128));
  const int bs = static_cast<int>(cli.get_int("block", 16));
  const double tol = cli.get_double("tol", 1e-6);
  const std::int64_t n = static_cast<std::int64_t>(g) * g;
  const std::int64_t blocks = (n + bs - 1) / bs;

  std::printf("2D Laplacian %dx%d (%lld unknowns), block-Jacobi blocks of "
              "%d\n", g, g, static_cast<long long>(n), bs);

  // Right-hand side: a smooth source term.
  std::vector<double> b(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const double xr = static_cast<double>(i / g) / g;
    const double yc = static_cast<double>(i % g) / g;
    b[i] = std::sin(3.1415926 * xr) * std::sin(3.1415926 * yc);
  }

  // --- Build the preconditioner: factor every diagonal block as a batch.
  const TuningParams params = recommended_params(bs);
  const BatchLayout layout = BatchCholesky::make_layout(bs, blocks, params);
  AlignedBuffer<double> factors(layout.size_elems());
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t base = blk * bs;
    for (int j = 0; j < bs; ++j) {
      for (int i = 0; i < bs; ++i) {
        const std::int64_t gi = std::min(base + i, n - 1);
        const std::int64_t gj = std::min(base + j, n - 1);
        // Out-of-range rows (last partial block) fall back to identity.
        double v = (base + i < n && base + j < n)
                       ? laplacian_entry(g, gi, gj)
                       : (i == j ? 1.0 : 0.0);
        factors[layout.index(blk, i, j)] = v;
      }
    }
  }
  const BatchCholesky chol(layout, params);
  Timer setup;
  const FactorResult fres = chol.factorize<double>(factors.span());
  std::printf("factored %lld diagonal blocks in %.3f ms (%s)\n",
              static_cast<long long>(blocks), setup.seconds() * 1e3,
              fres.ok() ? "all SPD" : "FAILURES");
  if (!fres.ok()) return 1;

  const BatchVectorLayout vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<double> rhs(vlayout.size_elems());
  const auto block_jacobi = [&](const std::vector<double>& r,
                                std::vector<double>& z) {
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
      for (int i = 0; i < bs; ++i) {
        const std::int64_t gi = blk * bs + i;
        rhs[vlayout.index(blk, i)] = gi < n ? r[gi] : 0.0;
      }
    }
    chol.solve<double>(std::span<const double>(factors.span()), vlayout,
                       rhs.span());
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
      for (int i = 0; i < bs; ++i) {
        const std::int64_t gi = blk * bs + i;
        if (gi < n) z[gi] = rhs[vlayout.index(blk, i)];
      }
    }
  };
  const auto identity = [](const std::vector<double>& r,
                           std::vector<double>& z) { z = r; };

  // --- Solve with and without the preconditioner.
  const int max_iter = 4 * g;
  const CgStats plain = conjugate_gradients(g, b, tol, max_iter, identity);
  const CgStats precond =
      conjugate_gradients(g, b, tol, max_iter, block_jacobi);

  std::printf("\n            iterations   rel.residual   seconds\n");
  std::printf("plain CG        %6d       %.2e   %7.3f\n", plain.iterations,
              plain.residual, plain.seconds);
  std::printf("block-Jacobi    %6d       %.2e   %7.3f\n", precond.iterations,
              precond.residual, precond.seconds);

  const bool ok = precond.residual < tol &&
                  precond.iterations < plain.iterations;
  std::printf("\n%s: block-Jacobi (batched Cholesky) cut CG iterations "
              "%d -> %d\n", ok ? "OK" : "UNEXPECTED", plain.iterations,
              precond.iterations);
  return ok ? 0 : 1;
}
