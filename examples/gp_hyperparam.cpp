// Batched Gaussian-process hyperparameter selection.
//
//   $ gp_hyperparam [--sensors=2048] [--points=20] [--lengthscales=8]
//
// Each of `sensors` independent sensors has `points` noisy observations of
// an unknown smooth signal. For every sensor and every candidate RBF
// lengthscale we evaluate the GP log marginal likelihood
//     log p(y) = -1/2 yᵀ K^{-1} y - 1/2 log det K - m/2 log 2π,
// which needs a Cholesky factorization, a solve, and a log-determinant of
// the m×m kernel matrix K = k(X,X) + σ²I. All sensors × lengthscales
// matrices are factored as ONE interleaved batch (sensors·lengthscales
// small SPD systems — the paper's workload, e.g. 2048×8 = 16,384 matrices
// of size 20), then each sensor picks its maximum-likelihood lengthscale.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/batch_cholesky.hpp"
#include "cpu/batch_solve.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t sensors = cli.get_int("sensors", 2048);
  const int m = static_cast<int>(cli.get_int("points", 20));
  const int num_ls = static_cast<int>(cli.get_int("lengthscales", 8));
  const double noise = 0.1;

  // Candidate lengthscales, log-spaced in [0.05, 2].
  std::vector<double> ls(num_ls);
  for (int k = 0; k < num_ls; ++k) {
    ls[k] = 0.05 * std::pow(2.0 / 0.05, static_cast<double>(k) /
                                            std::max(num_ls - 1, 1));
  }

  const std::int64_t batch = sensors * num_ls;
  std::printf("GP model selection: %lld sensors x %d lengthscales = %lld "
              "kernel matrices of size %dx%d\n",
              static_cast<long long>(sensors), num_ls,
              static_cast<long long>(batch), m, m);

  // Per-sensor data: x ~ U[0,1], y = sin(2*pi*f x + phase) + noise, with a
  // sensor-specific frequency so different sensors prefer different
  // lengthscales.
  Xoshiro256 rng(2026);
  std::vector<double> xs(sensors * m), ys(sensors * m), freq(sensors);
  for (std::int64_t s = 0; s < sensors; ++s) {
    freq[s] = 0.5 + rng.uniform() * 3.5;
    const double phase = rng.uniform() * 2.0 * std::numbers::pi;
    for (int i = 0; i < m; ++i) {
      const double x = rng.uniform();
      xs[s * m + i] = x;
      ys[s * m + i] = std::sin(2.0 * std::numbers::pi * freq[s] * x + phase) +
                      noise * rng.normal();
    }
  }

  // Assemble all kernel matrices into one interleaved batch.
  const TuningParams params = recommended_params(m);
  const BatchLayout layout = BatchCholesky::make_layout(m, batch, params);
  const BatchVectorLayout vlayout = BatchVectorLayout::matching(layout);
  AlignedBuffer<float> kmat(layout.size_elems());
  AlignedBuffer<float> alpha(vlayout.size_elems());
  Timer assembly;
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int64_t s = b / num_ls;
    const double l2 = ls[b % num_ls] * ls[b % num_ls];
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        const double d = xs[s * m + i] - xs[s * m + j];
        double k = std::exp(-0.5 * d * d / l2);
        if (i == j) k += noise * noise;
        kmat[layout.index(b, i, j)] = static_cast<float>(k);
      }
      alpha[vlayout.index(b, j)] = static_cast<float>(ys[s * m + j]);
    }
  }
  const double assembly_s = assembly.seconds();

  // Factor all matrices, solve K alpha = y, read the log-determinants.
  Timer solver;
  const BatchCholesky chol(layout, params);
  const FactorResult res = chol.factorize<float>(kmat.span());
  if (!res.ok()) {
    std::printf("!! %lld kernel matrices failed (first %lld) — increase "
                "noise jitter\n", static_cast<long long>(res.failed_count),
                static_cast<long long>(res.first_failed));
    return 1;
  }
  chol.solve<float>(std::span<const float>(kmat.span()), vlayout,
                    alpha.span());
  std::vector<double> logdet(batch);
  batch_logdet<float>(layout, std::span<const float>(kmat.span()), logdet);
  const double solver_s = solver.seconds();

  // Log marginal likelihood and per-sensor argmax.
  std::vector<int> best(sensors);
  double mean_best_lml = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : mean_best_lml)
  for (std::int64_t s = 0; s < sensors; ++s) {
    double best_lml = -1e300;
    int best_k = 0;
    for (int k = 0; k < num_ls; ++k) {
      const std::int64_t b = s * num_ls + k;
      double quad = 0.0;
      for (int i = 0; i < m; ++i) {
        quad += static_cast<double>(ys[s * m + i]) *
                alpha[vlayout.index(b, i)];
      }
      const double lml = -0.5 * quad - 0.5 * logdet[b] -
                         0.5 * m * std::log(2.0 * std::numbers::pi);
      if (lml > best_lml) {
        best_lml = lml;
        best_k = k;
      }
    }
    best[s] = best_k;
    mean_best_lml += best_lml;
  }
  mean_best_lml /= static_cast<double>(sensors);

  // Report: the selected lengthscale should shrink as frequency grows.
  TextTable table({"frequency band", "sensors", "mean selected lengthscale"});
  double lo_mean = 0.0, hi_mean = 0.0;
  for (int band = 0; band < 2; ++band) {
    double acc = 0.0;
    int count = 0;
    for (std::int64_t s = 0; s < sensors; ++s) {
      const bool high = freq[s] > 2.0;
      if (high != (band == 1)) continue;
      acc += ls[best[s]];
      ++count;
    }
    const double meanls = count ? acc / count : 0.0;
    (band == 0 ? lo_mean : hi_mean) = meanls;
    table.add_row({band == 0 ? "low (f <= 2)" : "high (f > 2)",
                   std::to_string(count), TextTable::num(meanls, 3)});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\nassembly %.1f ms; batched factor+solve+logdet %.1f ms "
              "(%.2f us per matrix)\n", assembly_s * 1e3, solver_s * 1e3,
              solver_s * 1e6 / static_cast<double>(batch));
  std::printf("mean best log marginal likelihood: %.2f\n", mean_best_lml);

  const bool sane = lo_mean > hi_mean && mean_best_lml > -0.5 * m * 10;
  std::printf("%s: high-frequency sensors selected shorter lengthscales "
              "(%.3f vs %.3f)\n", sane ? "OK" : "UNEXPECTED", hi_mean,
              lo_mean);
  return sane ? 0 : 1;
}
