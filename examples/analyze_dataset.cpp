// Offline analysis of a stored autotuning dataset (paper §IV as a tool).
//
//   $ analyze_dataset sweep.csv [--trees=500]
//   $ autotune_explore --csv=sweep.csv   # produces the input
//
// Reads a sweep CSV (as written by autotune_explore or the table1 bench),
// fits the random-forest regressor, and prints the Table I predictive-power
// rows plus the Fig 21 accuracy numbers — the paper's postmortem analysis
// over an archived measurement database.
#include <cstdio>

#include "autotune/analyze.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ibchol;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: analyze_dataset <sweep.csv> [--trees=500]\n"
                 "create an input with: autotune_explore --csv=sweep.csv\n");
    return 2;
  }
  const std::string path = cli.positional().front();

  try {
    const SweepDataset dataset =
        SweepDataset::from_csv(read_csv_file(path));
    std::printf("dataset: %zu measurements over %zu sizes\n", dataset.size(),
                dataset.sizes().size());

    ForestOptions opt;
    opt.num_trees = static_cast<int>(cli.get_int("trees", 500));
    const AnalysisResult res = analyze_dataset(dataset, opt);

    std::printf("\npredictive power of tuning parameters (Table I):\n");
    TextTable table({"Parameter", "IncMSE", "Type", "Explanation"});
    for (const auto& row : res.table) {
      table.add_row({row.parameter, TextTable::num(row.inc_mse, 1), row.type,
                     row.explanation});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nrandom-forest accuracy (Fig 21):\n");
    std::printf("  trees %d, average depth %.1f\n", res.num_trees,
                res.average_depth);
    std::printf("  OOB MSE %.2f, correlation %.4f, R^2 %.4f\n", res.oob_mse,
                res.correlation, res.r_squared);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
