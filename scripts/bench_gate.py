#!/usr/bin/env python3
"""Perf regression gate for the cross-PR bench summary (BENCH_cpu.json).

Usage: bench_gate.py RECORDED.json FRESH.json [--max-drop=0.15]

Compares the fresh micro_cpu summary against the recorded one and fails
(exit 1) when vec_gflops drops by more than --max-drop at any matrix size
present in both files. Sizes only in one file are reported but never fail
the gate (the sweep grid may grow). The comparison is only meaningful when
both summaries measured the same layout; a mismatch fails loudly rather
than gating apples against oranges.

Summaries may additionally carry a reduced-precision storage lane
(micro_cpu --prec=bf16|fp16): rows gain ``storage_prec`` and
``<prec>_gflops`` fields. When the recorded baseline has such rows they are
gated with the same threshold; a fresh summary missing them (recorded with
--prec=fp32, or with a different lane) is an environmental skip (exit 3),
never a pass — the caller should re-record with the matching --prec.
Legacy baselines without precision rows compare permissively so the first
re-record upgrades them in place. The fp32 vec_gflops gate is unchanged
either way.

Summaries may also carry a large-n tiled lane (``large_summary`` rows from
fig_large_tiled, merged in by scripts/check.sh --bench): per-n
``tiled_gflops`` of the task-parallel DAG path past the n = 64 ceiling.
When the recorded baseline has the lane it is gated with the same
threshold; a fresh summary without it is an environmental skip (exit 3) —
the caller should re-record with fig_large_tiled included. Legacy
baselines without the lane compare permissively.

Summaries may also carry an instant-tuning lane (``instant_summary`` rows
from fig_instant_tune, merged in by scripts/check.sh --bench): per-n
``probe_gflops``, the measured rate of the configuration the model-guided
probe selected. Gating it pins the *selection quality* of the calibrated
model + stratified top-K planner (DESIGN §14) — a model change that starts
picking bad configurations fails here even if every kernel is as fast as
ever. Same threshold, same skip semantics: a baseline with the lane and a
fresh summary without it is an environmental skip (exit 3); legacy
baselines compare permissively.

Exit codes:
  0 — no regression past the threshold
  1 — regression or layout mismatch (a real gate failure)
  3 — environment mismatch: the recorded baseline was measured on a host
      with a different core count (``hardware_concurrency``) or SIMD tier
      (``simd_isa``), or carries precision rows the fresh summary lacks.
      Absolute GF/s numbers from different hardware (or different storage
      lanes) are not comparable, so the gate declines to judge instead of
      reporting a false regression (or a false pass). The caller should
      re-record the baseline on the current host. Baselines from before
      these fields were recorded compare permissively (no skip) so the
      first re-record upgrades them in place.
"""

import json
import sys

MAX_DROP = 0.15

# Exit status for "environment differs from the baseline's; refusing to
# judge" — distinct from a perf failure (1) so callers can re-record
# instead of failing the build.
EXIT_ENV_SKIP = 3

# (json key, human name) pairs that pin a summary to its host environment.
ENV_KEYS = (("hardware_concurrency", "core count"), ("simd_isa", "SIMD tier"))


def env_mismatch(recorded, fresh):
    """First environment field present in both docs but disagreeing, as a
    printable description — or None when the environments are comparable."""
    for key, name in ENV_KEYS:
        old = recorded.get(key)
        new = fresh.get(key)
        if old is not None and new is not None and old != new:
            return f"{name} ({key}: recorded {old!r}, fresh {new!r})"
    return None


def rows_by_n(doc):
    return {row["n"]: row for row in doc.get("summary", [])}


def large_rows(doc):
    """Rows of the large-n tiled lane (fig_large_tiled's per-n summary),
    keyed by n — empty for summaries recorded before the lane existed."""
    return {row["n"]: row for row in doc.get("large_summary", [])}


def instant_rows(doc):
    """Rows of the instant-tuning lane (fig_instant_tune's per-n summary),
    keyed by n — empty for summaries recorded before the lane existed."""
    return {row["n"]: row for row in doc.get("instant_summary", [])}


def prec_lane(doc):
    """The reduced-precision storage lane a summary carries ("bf16" or
    "fp16"), or None when no row has one. A row belongs to a lane when it
    names its precision and carries the matching throughput field."""
    for row in doc.get("summary", []):
        prec = row.get("storage_prec")
        if prec and prec != "fp32" and f"{prec}_gflops" in row:
            return prec
    return None


def stage_breakdown(old_row, new_row):
    """Lines attributing a failure to pipeline stages (pack / factor /
    write-back CPU seconds recorded by the observability layer). Summaries
    from IBCHOL_OBS=OFF builds or from before the layer existed carry no
    stages; say so instead of printing an empty table."""
    old_stages = old_row.get("stages") or {}
    new_stages = new_row.get("stages") or {}
    if not old_stages and not new_stages:
        return ["    (no per-stage data: summaries recorded without "
                "IBCHOL_OBS=ON)"]
    lines = []
    for stage in sorted(set(old_stages) | set(new_stages)):
        old_s = old_stages.get(stage)
        new_s = new_stages.get(stage)
        old_txt = f"{old_s * 1e3:9.3f} ms" if old_s is not None else "   (none)"
        new_txt = f"{new_s * 1e3:9.3f} ms" if new_s is not None else "   (none)"
        if old_s and new_s:
            ratio = f" ({new_s / old_s:5.2f}x)"
        else:
            ratio = ""
        lines.append(f"    stage {stage:>10}: {old_txt} -> {new_txt}{ratio}")
    return lines


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_drop = MAX_DROP
    for a in argv[1:]:
        if a.startswith("--max-drop="):
            max_drop = float(a.split("=", 1)[1])
    if len(args) != 2:
        sys.exit(__doc__)
    with open(args[0]) as f:
        recorded = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)

    mismatch = env_mismatch(recorded, fresh)
    if mismatch is not None:
        print(f"bench gate: environment mismatch: {mismatch}")
        print(
            "bench gate: baseline numbers are from different hardware; "
            "skipping the comparison — re-record BENCH_cpu.json on this "
            "host"
        )
        return EXIT_ENV_SKIP

    old_layout = recorded.get("layout", "chunked")
    new_layout = fresh.get("layout", "chunked")
    if old_layout != new_layout:
        print(
            f"bench gate: layout mismatch (recorded {old_layout!r}, "
            f"fresh {new_layout!r}); refusing to compare"
        )
        return 1

    old_rows = rows_by_n(recorded)
    new_rows = rows_by_n(fresh)
    failures = []
    for n in sorted(old_rows):
        if n not in new_rows:
            print(f"bench gate: n={n} missing from fresh summary (skipped)")
            continue
        old_gf = old_rows[n].get("vec_gflops", 0.0)
        new_gf = new_rows[n].get("vec_gflops", 0.0)
        if old_gf <= 0.0:
            continue
        ratio = new_gf / old_gf
        marker = "FAIL" if ratio < 1.0 - max_drop else "ok"
        print(
            f"bench gate: n={n:3d} vec {old_gf:8.2f} -> {new_gf:8.2f} GF/s "
            f"({ratio:5.2f}x) {marker}"
        )
        if ratio < 1.0 - max_drop:
            failures.append(n)
            for line in stage_breakdown(old_rows[n], new_rows[n]):
                print(line)
    for n in sorted(set(new_rows) - set(old_rows)):
        print(f"bench gate: n={n} new in fresh summary")

    # Reduced-precision lane: gated only when the baseline recorded one.
    prec_failures = []
    prec_skip = None
    old_prec = prec_lane(recorded)
    new_prec = prec_lane(fresh)
    if old_prec is None:
        if new_prec is not None:
            print(f"bench gate: {new_prec} precision lane new in fresh "
                  "summary (no baseline to gate against)")
    elif new_prec is None:
        prec_skip = (f"baseline carries {old_prec} precision rows but the "
                     "fresh summary has none")
    elif new_prec != old_prec:
        prec_skip = (f"precision lane mismatch (recorded {old_prec!r}, "
                     f"fresh {new_prec!r})")
    else:
        key = f"{old_prec}_gflops"
        for n in sorted(old_rows):
            if n not in new_rows:
                continue
            old_gf = old_rows[n].get(key)
            new_gf = new_rows[n].get(key)
            if old_gf is None or old_gf <= 0.0:
                continue
            if new_gf is None or new_gf <= 0.0:
                prec_skip = (f"n={n} {old_prec} row missing from fresh "
                             "summary")
                break
            ratio = new_gf / old_gf
            marker = "FAIL" if ratio < 1.0 - max_drop else "ok"
            print(
                f"bench gate: n={n:3d} {old_prec} {old_gf:8.2f} -> "
                f"{new_gf:8.2f} GF/s ({ratio:5.2f}x) {marker}"
            )
            if ratio < 1.0 - max_drop:
                prec_failures.append(n)

    # Large-n tiled lane: gated only when the baseline recorded one.
    tiled_failures = []
    tiled_skip = None
    old_large = large_rows(recorded)
    new_large = large_rows(fresh)
    if not old_large:
        if new_large:
            print("bench gate: large-n tiled lane new in fresh summary "
                  "(no baseline to gate against)")
    elif not new_large:
        tiled_skip = ("baseline carries large-n tiled rows but the fresh "
                      "summary has none")
    else:
        for n in sorted(old_large):
            if n not in new_large:
                print(f"bench gate: tiled n={n} missing from fresh summary "
                      "(skipped)")
                continue
            old_gf = old_large[n].get("tiled_gflops", 0.0)
            new_gf = new_large[n].get("tiled_gflops", 0.0)
            if old_gf <= 0.0:
                continue
            ratio = new_gf / old_gf
            marker = "FAIL" if ratio < 1.0 - max_drop else "ok"
            print(
                f"bench gate: n={n:4d} tiled {old_gf:8.2f} -> {new_gf:8.2f} "
                f"GF/s ({ratio:5.2f}x) {marker}"
            )
            if ratio < 1.0 - max_drop:
                tiled_failures.append(n)
                for line in stage_breakdown(old_large[n], new_large[n]):
                    print(line)
        for n in sorted(set(new_large) - set(old_large)):
            print(f"bench gate: tiled n={n} new in fresh summary")

    # Instant-tuning lane: gated only when the baseline recorded one.
    instant_failures = []
    instant_skip = None
    old_instant = instant_rows(recorded)
    new_instant = instant_rows(fresh)
    if not old_instant:
        if new_instant:
            print("bench gate: instant-tuning lane new in fresh summary "
                  "(no baseline to gate against)")
    elif not new_instant:
        instant_skip = ("baseline carries instant-tuning rows but the "
                        "fresh summary has none")
    else:
        for n in sorted(old_instant):
            if n not in new_instant:
                print(f"bench gate: instant n={n} missing from fresh "
                      "summary (skipped)")
                continue
            old_gf = old_instant[n].get("probe_gflops", 0.0)
            new_gf = new_instant[n].get("probe_gflops", 0.0)
            if old_gf <= 0.0:
                continue
            ratio = new_gf / old_gf
            marker = "FAIL" if ratio < 1.0 - max_drop else "ok"
            print(
                f"bench gate: n={n:3d} probe {old_gf:8.2f} -> {new_gf:8.2f} "
                f"GF/s ({ratio:5.2f}x) {marker}"
            )
            if ratio < 1.0 - max_drop:
                instant_failures.append(n)
        for n in sorted(set(new_instant) - set(old_instant)):
            print(f"bench gate: instant n={n} new in fresh summary")

    if failures:
        print(
            f"bench gate: vec_gflops dropped more than {max_drop:.0%} at "
            f"n in {failures}"
        )
        return 1
    if tiled_failures:
        print(
            f"bench gate: tiled_gflops dropped more than {max_drop:.0%} at "
            f"n in {tiled_failures}"
        )
        return 1
    if prec_failures:
        print(
            f"bench gate: {old_prec}_gflops dropped more than "
            f"{max_drop:.0%} at n in {prec_failures}"
        )
        return 1
    if instant_failures:
        print(
            f"bench gate: probe_gflops dropped more than {max_drop:.0%} at "
            f"n in {instant_failures}"
        )
        return 1
    if prec_skip is not None:
        print(f"bench gate: {prec_skip}")
        print(
            "bench gate: precision rows are not comparable; skipping the "
            "precision lane — re-record BENCH_cpu.json with the matching "
            "--prec"
        )
        return EXIT_ENV_SKIP
    if tiled_skip is not None:
        print(f"bench gate: {tiled_skip}")
        print(
            "bench gate: large-n rows are not comparable; skipping the "
            "tiled lane — re-record BENCH_cpu.json with fig_large_tiled "
            "included"
        )
        return EXIT_ENV_SKIP
    if instant_skip is not None:
        print(f"bench gate: {instant_skip}")
        print(
            "bench gate: instant-tuning rows are not comparable; skipping "
            "the instant lane — re-record BENCH_cpu.json with "
            "fig_instant_tune included"
        )
        return EXIT_ENV_SKIP
    print("bench gate: no regression past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
