#!/usr/bin/env python3
"""Tests of bench_gate.py itself, focused on the failure path.

Usage: bench_gate_test.py [path/to/bench_gate.py]

The gate guards every PR, so its own behaviour is pinned here: a synthetic
>15% vec_gflops drop must exit 1 (and print the per-stage breakdown when
the summaries carry stages), an equal-or-better summary must exit 0, and a
layout mismatch must refuse to compare. Run as a ctest (registered in
tests/CMakeLists.txt) or standalone.
"""

import json
import os
import subprocess
import sys
import tempfile

GATE = (
    sys.argv[1]
    if len(sys.argv) > 1
    else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_gate.py")
)


def summary(layout, rows, **env):
    doc = {
        "bench": "micro_cpu",
        "batch": 4096,
        "layout": layout,
        "summary": rows,
    }
    doc.update(env)
    return doc


def row(n, vec, stages=None, prec=None, prec_gf=None):
    r = {"n": n, "vec_gflops": vec}
    if stages is not None:
        r["stages"] = stages
    if prec is not None:
        r["storage_prec"] = prec
        r[f"{prec}_gflops"] = prec_gf
    return r


def large_row(n, tiled, stages=None):
    r = {"n": n, "tiled_gflops": tiled}
    if stages is not None:
        r["stages"] = stages
    return r


def instant_row(n, probe):
    return {"n": n, "batch": 4096, "space_points": 108, "probe_points": 8,
            "probe_gflops": probe, "warm_identical": True}


def run_gate(recorded, fresh):
    with tempfile.TemporaryDirectory() as tmp:
        rec_path = os.path.join(tmp, "recorded.json")
        fresh_path = os.path.join(tmp, "fresh.json")
        with open(rec_path, "w") as f:
            json.dump(recorded, f)
        with open(fresh_path, "w") as f:
            json.dump(fresh, f)
        proc = subprocess.run(
            [sys.executable, GATE, rec_path, fresh_path],
            capture_output=True,
            text=True,
        )
    return proc.returncode, proc.stdout + proc.stderr


def check(name, cond, output):
    if cond:
        print(f"  ok: {name}")
        return 0
    print(f"  FAIL: {name}\n--- gate output ---\n{output}\n---")
    return 1


def main():
    failures = 0

    # Passing path: identical summaries, and a small (<15%) dip.
    rows = [row(8, 100.0), row(16, 200.0)]
    code, out = run_gate(summary("chunked", rows), summary("chunked", rows))
    failures += check("identical summaries pass", code == 0, out)
    code, out = run_gate(
        summary("chunked", [row(8, 100.0)]),
        summary("chunked", [row(8, 90.0)]),
    )
    failures += check("10% dip stays under the default gate", code == 0, out)

    # Failure path: a synthetic >15% drop at one size must exit 1 and name
    # the size.
    code, out = run_gate(
        summary("chunked", [row(8, 100.0), row(16, 200.0)]),
        summary("chunked", [row(8, 100.0), row(16, 150.0)]),
    )
    failures += check("25% drop fails the gate", code == 1, out)
    failures += check("failing size reported", "n in [16]" in out, out)

    # Failure with stages: the per-stage breakdown must be printed, with the
    # regressed stage's ratio visible.
    code, out = run_gate(
        summary(
            "chunked",
            [row(16, 200.0,
                 {"pack": 0.010, "factor": 0.080, "writeback": 0.010})],
        ),
        summary(
            "chunked",
            [row(16, 150.0,
                 {"pack": 0.010, "factor": 0.110, "writeback": 0.010})],
        ),
    )
    failures += check("drop with stages fails", code == 1, out)
    failures += check("stage breakdown printed", "stage" in out
                      and "factor" in out, out)
    failures += check("stage ratio printed", "1.37x" in out or "1.38x" in out,
                      out)

    # Failure without stages (pre-obs or IBCHOL_OBS=OFF summaries): the
    # breakdown degrades to a note, never a crash or an empty table.
    code, out = run_gate(
        summary("chunked", [row(16, 200.0)]),
        summary("chunked", [row(16, 150.0)]),
    )
    failures += check("stage-less drop still fails cleanly", code == 1, out)
    failures += check("absence of stages is explained",
                      "no per-stage data" in out, out)

    # Layout mismatch refuses to compare.
    code, out = run_gate(
        summary("chunked", [row(8, 100.0)]),
        summary("interleaved", [row(8, 100.0)]),
    )
    failures += check("layout mismatch refuses", code == 1
                      and "layout mismatch" in out, out)

    # Environment mismatch: a baseline recorded on a host with a different
    # core count is not comparable — exit 3 (environmental skip), never 1,
    # even when the numbers look like a huge regression.
    code, out = run_gate(
        summary("chunked", [row(8, 100.0)], hardware_concurrency=8),
        summary("chunked", [row(8, 40.0)], hardware_concurrency=1),
    )
    failures += check("core-count mismatch skips with exit 3", code == 3, out)
    failures += check("core-count mismatch names the field",
                      "hardware_concurrency" in out, out)
    failures += check("skip advises re-recording", "re-record" in out, out)

    # Same for a SIMD-tier mismatch (baseline from an AVX-512 host gated on
    # an AVX2 host, say).
    code, out = run_gate(
        summary("chunked", [row(8, 100.0)], simd_isa="avx512"),
        summary("chunked", [row(8, 60.0)], simd_isa="avx2"),
    )
    failures += check("SIMD-tier mismatch skips with exit 3", code == 3, out)
    failures += check("SIMD-tier mismatch names the field",
                      "simd_isa" in out, out)

    # Matching environments still gate normally...
    code, out = run_gate(
        summary("chunked", [row(8, 100.0)],
                hardware_concurrency=4, simd_isa="avx2"),
        summary("chunked", [row(8, 50.0)],
                hardware_concurrency=4, simd_isa="avx2"),
    )
    failures += check("matching environment still gates", code == 1, out)

    # ...and a pre-upgrade baseline with no environment fields compares
    # permissively (no skip) so the first re-record upgrades it in place.
    code, out = run_gate(
        summary("chunked", [row(8, 100.0)]),
        summary("chunked", [row(8, 100.0)], hardware_concurrency=4),
    )
    failures += check("legacy baseline without env fields still passes",
                      code == 0, out)

    # Precision lane: both summaries carrying bf16 rows gate them with the
    # same threshold as vec_gflops.
    code, out = run_gate(
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=300.0)]),
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=310.0)]),
    )
    failures += check("healthy bf16 lane passes", code == 0, out)
    code, out = run_gate(
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=300.0)]),
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=200.0)]),
    )
    failures += check("bf16 drop fails the gate", code == 1, out)
    failures += check("bf16 failure names the lane", "bf16_gflops" in out, out)

    # A baseline with precision rows gated against a fresh summary without
    # them (recorded with --prec=fp32, say) is an environmental skip — the
    # lanes are not comparable, but nothing regressed either.
    code, out = run_gate(
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=300.0)]),
        summary("chunked", [row(16, 200.0)]),
    )
    failures += check("missing precision rows skip with exit 3", code == 3,
                      out)
    failures += check("precision skip advises re-recording",
                      "re-record" in out and "--prec" in out, out)

    # Different lanes (bf16 baseline vs fp16 fresh) are equally
    # incomparable.
    code, out = run_gate(
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=300.0)]),
        summary("chunked", [row(16, 200.0, prec="fp16", prec_gf=300.0)]),
    )
    failures += check("precision lane mismatch skips with exit 3", code == 3,
                      out)

    # A real vec regression still fails (exit 1) even when the precision
    # lane would have skipped — a skip never masks a regression.
    code, out = run_gate(
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=300.0)]),
        summary("chunked", [row(16, 120.0)]),
    )
    failures += check("vec regression outranks precision skip", code == 1,
                      out)

    # Legacy baselines without precision rows compare permissively; the
    # fresh lane is reported as new, not gated.
    code, out = run_gate(
        summary("chunked", [row(16, 200.0)]),
        summary("chunked", [row(16, 200.0, prec="bf16", prec_gf=300.0)]),
    )
    failures += check("legacy baseline without precision rows passes",
                      code == 0, out)

    # Large-n tiled lane: both summaries carrying large_summary rows gate
    # tiled_gflops with the same threshold as vec_gflops.
    base = summary("chunked", [row(16, 200.0)])
    base["large_summary"] = [large_row(512, 40.0), large_row(1024, 60.0)]
    good = summary("chunked", [row(16, 200.0)])
    good["large_summary"] = [large_row(512, 42.0), large_row(1024, 61.0)]
    code, out = run_gate(base, good)
    failures += check("healthy tiled lane passes", code == 0, out)

    bad = summary("chunked", [row(16, 200.0)])
    bad["large_summary"] = [
        large_row(512, 25.0, {"gemm": 0.020, "pack": 0.005}),
        large_row(1024, 61.0),
    ]
    base_staged = summary("chunked", [row(16, 200.0)])
    base_staged["large_summary"] = [
        large_row(512, 40.0, {"gemm": 0.010, "pack": 0.005}),
        large_row(1024, 60.0),
    ]
    code, out = run_gate(base_staged, bad)
    failures += check("tiled drop fails the gate", code == 1, out)
    failures += check("tiled failure names the lane", "tiled_gflops" in out,
                      out)
    failures += check("tiled failure prints stages", "gemm" in out, out)

    # A baseline with the tiled lane gated against a fresh summary without
    # it is an environmental skip, never a pass.
    code, out = run_gate(base, summary("chunked", [row(16, 200.0)]))
    failures += check("missing tiled lane skips with exit 3", code == 3, out)
    failures += check("tiled skip advises re-recording",
                      "re-record" in out and "fig_large_tiled" in out, out)

    # Legacy baselines without the lane compare permissively; the fresh
    # lane is reported as new, not gated.
    code, out = run_gate(summary("chunked", [row(16, 200.0)]), good)
    failures += check("legacy baseline without tiled lane passes",
                      code == 0, out)

    # A real vec regression still fails even when the tiled lane would
    # have skipped.
    code, out = run_gate(base, summary("chunked", [row(16, 120.0)]))
    failures += check("vec regression outranks tiled skip", code == 1, out)

    # Instant-tuning lane: both summaries carrying instant_summary rows
    # gate probe_gflops (the model-guided selection's measured quality)
    # with the same threshold as vec_gflops.
    ibase = summary("chunked", [row(16, 200.0)])
    ibase["instant_summary"] = [instant_row(8, 30.0), instant_row(32, 80.0)]
    igood = summary("chunked", [row(16, 200.0)])
    igood["instant_summary"] = [instant_row(8, 31.0), instant_row(32, 82.0)]
    code, out = run_gate(ibase, igood)
    failures += check("healthy instant lane passes", code == 0, out)

    ibad = summary("chunked", [row(16, 200.0)])
    ibad["instant_summary"] = [instant_row(8, 30.0), instant_row(32, 50.0)]
    code, out = run_gate(ibase, ibad)
    failures += check("instant probe drop fails the gate", code == 1, out)
    failures += check("instant failure names the lane",
                      "probe_gflops" in out, out)

    # A baseline with the instant lane gated against a fresh summary
    # without it is an environmental skip, never a pass.
    code, out = run_gate(ibase, summary("chunked", [row(16, 200.0)]))
    failures += check("missing instant lane skips with exit 3", code == 3,
                      out)
    failures += check("instant skip advises re-recording",
                      "re-record" in out and "fig_instant_tune" in out, out)

    # Legacy baselines without the lane compare permissively; the fresh
    # lane is reported as new, not gated.
    code, out = run_gate(summary("chunked", [row(16, 200.0)]), igood)
    failures += check("legacy baseline without instant lane passes",
                      code == 0, out)

    # A real vec regression still fails even when the instant lane would
    # have skipped.
    code, out = run_gate(ibase, summary("chunked", [row(16, 120.0)]))
    failures += check("vec regression outranks instant skip", code == 1, out)

    if failures:
        print(f"bench_gate_test: {failures} check(s) failed")
        return 1
    print("bench_gate_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
