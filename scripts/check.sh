#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# benchmark binary. This is the command sequence EXPERIMENTS.md expects.
#
#   scripts/check.sh [--sanitize] [cmake args...]
#
# --sanitize adds a second build under AddressSanitizer + UBSan with
# warnings-as-errors (IBCHOL_WERROR=ON) and runs the test suite against it.
# Benchmarks only run from the plain build; they are meaningless under
# instrumentation.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
CMAKE_ARGS=()
for arg in "$@"; do
  case "${arg}" in
    --sanitize) SANITIZE=1 ;;
    *) CMAKE_ARGS+=("${arg}") ;;
  esac
done

cmake -B build -G Ninja ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${SANITIZE}" == 1 ]]; then
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake -B build-sanitize -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DIBCHOL_WERROR=ON \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" \
    ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
  cmake --build build-sanitize
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)"
fi

for b in build/bench/*; do
  echo "===== ${b}"
  "${b}"
done
