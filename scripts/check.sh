#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# benchmark binary. This is the command sequence EXPERIMENTS.md expects.
#
#   scripts/check.sh [--sanitize] [--tsan] [--faults] [--bench] [--obs] \
#                    [--chaos] [--prec] [--tiled] [--tune] [cmake args...]
#
# --sanitize adds a second build under AddressSanitizer + UBSan with
# warnings-as-errors (IBCHOL_WERROR=ON) and runs the test suite against it
# twice: once with runtime SIMD dispatch free to pick the host's best tier,
# and once with IBCHOL_SIMD_ISA=scalar forcing the vectorized executor onto
# its portable scalar tier (the intrinsic tiers' memory behavior is
# identical by construction, but only the scalar tier gives the sanitizers
# full visibility into every lane's arithmetic). Benchmarks only run from
# the plain build; they are meaningless under instrumentation.
#
# --tsan adds a ThreadSanitizer build and runs the concurrency-bearing
# suites against it: the service layer (queue, deque, arena, BatchService),
# the chunk pipeline, and the observability layer (whose counters,
# histograms, and trace ring are recorded from worker threads). The suites
# run with OMP_NUM_THREADS=1 because libgomp is not TSAN-instrumented —
# TSAN cannot see its barriers and would report false races inside every
# OpenMP team; the service's own pthread-based pool is exactly what this
# mode is meant to prove out, and it is unaffected by the OpenMP clamp.
#
# --chaos runs the service overload/fault suite (deadlines, admission
# shedding, scratch-exhaustion aborts, poison quarantine, the watchdog,
# and the seeded chaos soak) under both ASan+UBSan and TSAN, pinning the
# soak to each of three fixed seeds (IBCHOL_CHAOS_SEED=1,2,3) so every
# seed's decision sequence is exercised in isolation and a failure names
# its seed. A final smoke drives the env-spec path: IBCHOL_CHAOS with
# stall/delay rates (result-preserving faults) against the plain build's
# bit-identity suite. Implies building the --sanitize and --tsan trees.
#
# --faults runs the resilience suite (fault injection, recovery, journaled
# sweeps) against the sanitizer build, then a kill-and-resume smoke test:
# a sweep halted hard at 50% and resumed from its journal must produce a
# dataset byte-identical to an uninterrupted run.
#
# --tiled verifies the large-N task-parallel path (DESIGN §13) under
# ASan+UBSan: the tile layout/DAG/reference suites and the service
# bit-identity grid, first with runtime SIMD dispatch free and then with
# IBCHOL_SIMD_ISA=scalar (the tile microkernels are plain autovectorized
# loops, so the forced-scalar pass pins the facade's routing and the
# pipeline interplay rather than intrinsic tiers). The TiledService suites
# also run under --tsan's ThreadSanitizer pass, where the work-stealing
# release chains are the thing being proved.
#
# --bench regenerates the canonical cross-PR perf summary BENCH_cpu.json
# (interpreter vs specialized vs vectorized executor, plus the large-n
# tiled lane merged in from fig_large_tiled and the instant-tuning lane
# from fig_instant_tune) from the plain build.
# Before overwriting, the fresh numbers are gated against the recorded
# ones: a drop of more than 15% in vec_gflops at any n fails the check, so
# a PR cannot silently regress the executor's throughput. When the gate
# reports an environment mismatch (exit 3: the baseline was recorded on a
# host with a different core count or SIMD tier), the comparison is
# skipped instead of failed; a multi-core host re-records the baseline in
# place, while a single-core host keeps the existing one (absolute numbers
# from a 1-CPU container would poison the baseline for every real host).
#
# --tune verifies the instant-tuning stack (DESIGN §14) under ASan+UBSan:
# the model-vs-exhaustive property suite and the cache-robustness suite,
# first with runtime SIMD dispatch free and then with IBCHOL_SIMD_ISA=scalar
# (the forced tier changes the host fingerprint, so the cache keying and
# exec-override paths are exercised on a second tier). A cache-corruption
# matrix then drives each failure mode (truncation, checksum flip, version
# bump, mixed good/bad files, a wholly garbage cache behind the tuner) as
# its own sanitizer-instrumented invocation, asserting cold-start behavior
# and exit 0 for every mode. The TuneCacheConcurrency suite also runs under
# --tsan's ThreadSanitizer pass.
#
# --prec verifies the reduced-precision storage lanes (bf16/fp16 words,
# fp32 accumulate — DESIGN §12) under ASan+UBSan: the conversion property
# suite, the mixed pipeline/refinement/recovery/service suites, first with
# runtime dispatch free and then with IBCHOL_CONVERT_ISA=scalar +
# IBCHOL_SIMD_ISA=scalar forcing both the conversion primitives and the
# compute body onto their portable scalar tiers (the only tiers the
# sanitizers can see into lane by lane; the SIMD tiers are bit-identical
# to them by construction, which the Convert tier tests assert). A final
# pass against the plain build re-runs the fp32 differential/bit-identity
# suites, pinning that the fp32 lane is untouched by the mixed machinery.
#
# --obs verifies the observability layer in both compile modes: a build
# with IBCHOL_OBS=OFF runs the full suite (proving every instrumentation
# site compiles to nothing), then the plain ON build runs the obs/replay
# suites and smoke-validates both trace exporters (micro_cpu --trace and
# autotune_explore --trace) with python's JSON parser.
set -euo pipefail
cd "$(dirname "$0")/.."

# Every temp file/dir any mode creates registers here; one trap cleans up
# on ANY exit, success or failure — a failed bench gate must not leave a
# stale BENCH_cpu.json.tmp behind.
CLEANUP_PATHS=()
cleanup() {
  ((${#CLEANUP_PATHS[@]})) && rm -rf "${CLEANUP_PATHS[@]}"
  return 0
}
trap cleanup EXIT

SANITIZE=0
TSAN=0
FAULTS=0
BENCH=0
OBS=0
CHAOS=0
PREC=0
TILED=0
TUNE=0
CMAKE_ARGS=()
for arg in "$@"; do
  case "${arg}" in
    --sanitize) SANITIZE=1 ;;
    --tsan) TSAN=1 ;;
    --faults) FAULTS=1 ;;
    --bench) BENCH=1 ;;
    --obs) OBS=1 ;;
    --chaos) CHAOS=1 ;;
    --prec) PREC=1 ;;
    --tiled) TILED=1 ;;
    --tune) TUNE=1 ;;
    *) CMAKE_ARGS+=("${arg}") ;;
  esac
done

cmake -B build -G Ninja ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

configure_sanitize_build() {
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  # -Wno-maybe-uninitialized: under sanitizer instrumentation GCC 12 flags
  # the _mm512_undefined_* pattern inside its own avx512fintrin.h header;
  # -Werror stays on for everything else (same exception as the TSAN tree).
  cmake -B build-sanitize -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DIBCHOL_WERROR=ON \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS} -Wno-maybe-uninitialized" \
    -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" \
    ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
  cmake --build build-sanitize
}

if [[ "${SANITIZE}" == 1 ]]; then
  configure_sanitize_build
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)"
  # Second pass with the vectorized executor forced onto the scalar tier,
  # so ASan/UBSan instrument the lane arithmetic itself rather than opaque
  # intrinsics. The SIMD executor suite is the target; the dispatch tests
  # double-check the override actually took effect.
  # The chunk pipeline rides along: forcing the scalar tier pushes its
  # pack/compute/unpack staging (including the streaming-store write-back
  # the NtStore test forces) through fully instrumented lane arithmetic.
  IBCHOL_SIMD_ISA=scalar ctest --test-dir build-sanitize \
    --output-on-failure -j "$(nproc)" \
    -R 'VecExec|SimdDispatch|ChunkPipeline|PackUnpack'
fi

if [[ "${TSAN}" == 1 ]]; then
  TSAN_FLAGS="-fsanitize=thread"
  # -Wno-maybe-uninitialized: under sanitizer instrumentation GCC 12 flags
  # the _mm512_undefined_* pattern inside its own avx512fintrin.h header;
  # -Werror stays on for everything else.
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DIBCHOL_WERROR=ON \
    -DCMAKE_CXX_FLAGS="${TSAN_FLAGS} -Wno-maybe-uninitialized" \
    -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}" \
    ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
  cmake --build build-tsan
  # The concurrency-bearing suites: service layer (lock-free queue, deque,
  # arena, the BatchService end-to-end tests including the concurrent
  # submission stress), chunk pipeline, observability. OMP_NUM_THREADS=1
  # keeps uninstrumented libgomp out of the picture (see header comment);
  # the service's own worker pool still runs fully multi-threaded. The
  # ObsReplay suite is excluded: it pins an OpenMP team of 2 by design
  # (replay determinism needs a fixed schedule), and TSAN cannot see
  # libgomp's barriers.
  OMP_NUM_THREADS=1 ctest --test-dir build-tsan --output-on-failure \
    -j "$(nproc)" \
    -R 'MpmcQueue|WorkDeque|UnitTaskPacking|ScratchArena|BatchService|ServiceDeadline|ServicePriority|ServiceAdmission|ServiceChaos|ServiceScreen|ServiceWatchdog|ServiceMixed|TiledService|TiledFacade|ChunkPipeline|Trace|Counters|HistogramTest|TuneCacheConcurrency'
  echo "tsan check: service/pipeline/obs suites clean under ThreadSanitizer"
fi

if [[ "${CHAOS}" == 1 ]]; then
  # Overload/fault semantics under both sanitizers. The suite regex covers
  # the chaos tests plus the primitives they lean on (arena failure paths,
  # queue wrap-around, the service teardown races).
  CHAOS_SUITES='ServiceDeadline|ServicePriority|ServiceAdmission|ServiceChaos|ServiceScreen|ServiceWatchdog|ServiceMixed|ScratchArena|MpmcQueue|BatchService'
  configure_sanitize_build
  if [[ "${TSAN}" != 1 ]]; then
    # Reuse the --tsan tree when that mode already built it.
    TSAN_FLAGS="-fsanitize=thread"
    cmake -B build-tsan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DIBCHOL_WERROR=ON \
      -DCMAKE_CXX_FLAGS="${TSAN_FLAGS} -Wno-maybe-uninitialized" \
      -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}" \
      ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
    cmake --build build-tsan
  fi
  # Three fixed seeds, each a full pass: the seed pins the per-site chaos
  # decision sequences, so seed-by-seed runs are reproducible and a
  # failure log names the seed to rerun.
  for seed in 1 2 3; do
    IBCHOL_CHAOS_SEED="${seed}" ctest --test-dir build-sanitize \
      --output-on-failure -j "$(nproc)" -R "${CHAOS_SUITES}"
    IBCHOL_CHAOS_SEED="${seed}" OMP_NUM_THREADS=1 ctest \
      --test-dir build-tsan --output-on-failure -j "$(nproc)" \
      -R "${CHAOS_SUITES}"
  done
  # Env-spec smoke: chaos installed through IBCHOL_CHAOS (the latch path,
  # not install_svc_chaos). Stall/delay faults only — they perturb timing,
  # never results, so the bit-identity suite must still pass verbatim.
  IBCHOL_CHAOS='seed=2,stall_rate=0.02,stall_ms=1,writeback_delay_rate=0.02,writeback_delay_ms=0.5' \
    ctest --test-dir build --output-on-failure -j "$(nproc)" \
    -R 'BatchService.BitIdentical'
  echo "chaos check: overload/fault suites clean under ASan+UBSan and TSAN (seeds 1 2 3), env-spec smoke bit-identical"
fi

if [[ "${PREC}" == 1 ]]; then
  PREC_SUITES='Convert|MixedPrec|ServiceMixed|Refine'
  configure_sanitize_build
  # Pass 1: runtime dispatch free — the host's best conversion and compute
  # tiers run under ASan+UBSan.
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)" \
    -R "${PREC_SUITES}"
  # Pass 2: both the conversion primitives and the compute body forced
  # onto their scalar tiers, giving the sanitizers per-lane visibility
  # into the narrow/widen arithmetic and the mixed pack/write-back
  # staging. The SIMD tiers are bit-identical by construction (asserted
  # by the Convert tier tests), so scalar coverage is full coverage.
  IBCHOL_CONVERT_ISA=scalar IBCHOL_SIMD_ISA=scalar ctest \
    --test-dir build-sanitize --output-on-failure -j "$(nproc)" \
    -R "${PREC_SUITES}"
  # fp32 untouched: the differential grid and the bit-identity suites on
  # the plain build must still hold — the mixed machinery shares the
  # chunk pipeline with the fp32 lane, and this pins that sharing never
  # perturbs an fp32 result.
  ctest --test-dir build --output-on-failure -j "$(nproc)" \
    -R 'DifferentialExec|BitIdentical'
  echo "prec check: conversion + mixed-precision suites clean under ASan+UBSan (auto and forced-scalar tiers), fp32 bit-identity intact"
fi

if [[ "${TILED}" == 1 ]]; then
  TILED_SUITES='TileLayout|DagSpec|TiledReference|TiledService|TiledFacade'
  configure_sanitize_build
  # Pass 1: runtime dispatch free — the host's best tiers under ASan+UBSan
  # (the DAG release chains and arena staging are what the sanitizers
  # watch; the tile microkernels are plain loops either way).
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)" \
    -R "${TILED_SUITES}"
  # Pass 2: forced-scalar. The tiled executor itself has no intrinsic
  # tiers, but the facade's small-n/large-n routing boundary does — this
  # pins that the boundary behaves identically when the vectorized
  # executor is clamped to its portable tier.
  IBCHOL_SIMD_ISA=scalar ctest --test-dir build-sanitize \
    --output-on-failure -j "$(nproc)" -R "${TILED_SUITES}"
  echo "tiled check: layout/DAG/reference/service/facade suites clean under ASan+UBSan (auto and forced-scalar)"
fi

if [[ "${TUNE}" == 1 ]]; then
  TUNE_SUITES='TuneProperty|TuneCache|TuneCacheConcurrency|Analyze'
  configure_sanitize_build
  # Pass 1: runtime dispatch free — the model-vs-exhaustive property suite,
  # the cache-robustness suite, and the feature-schema suite under
  # ASan+UBSan (the cache parser over adversarial bytes is exactly where
  # the sanitizers earn their keep).
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)" \
    -R "${TUNE_SUITES}"
  # Pass 2: forced-scalar. The SIMD tier is part of the host fingerprint
  # and of every cached entry's key, so clamping the tier exercises cache
  # keying, exec overrides, and the probe paths on a second tier.
  IBCHOL_SIMD_ISA=scalar ctest --test-dir build-sanitize \
    --output-on-failure -j "$(nproc)" -R 'TuneProperty|TuneCache'
  # Cache-corruption matrix: each failure mode as its own
  # sanitizer-instrumented invocation, so a regression log names the mode
  # (truncation, checksum flip, version bump, mixed files, torn tail,
  # garbage cache behind the tuner) instead of one opaque suite failure.
  for mode in \
      TuneCache.EveryTruncationParsesAsNothing \
      TuneCache.CorruptPayloadOrChecksumFailsClosed \
      TuneCache.VersionBumpSkipsLine \
      TuneCache.LoadSkipsBadLinesAndKeepsEveryGoodOne \
      TuneCache.AppendAfterTornLineStartsFresh \
      TuneCache.InstantTunerColdStartsFromCorruptFile; do
    build-sanitize/tests/tune_cache_test --gtest_brief=1 \
      --gtest_filter="${mode}"
  done
  echo "tune check: property/cache/schema suites clean under ASan+UBSan (auto and forced-scalar tiers), corruption matrix cold-starts every mode"
fi

if [[ "${FAULTS}" == 1 ]]; then
  configure_sanitize_build
  # The fault-injection / recovery / journaling suite under instrumentation.
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)" \
    -R '^(Recover|FaultGrid|FaultPlan|SolveGuard|ResilientSweepTest|Journal|Grid/)'

  # Kill-and-resume smoke: the resilience example journals a sweep, gets
  # killed hard (std::_Exit) halfway through, resumes from the journal, and
  # the resulting dataset must be byte-identical to an uninterrupted run.
  FAULTS_TMP="$(mktemp -d)"
  CLEANUP_PATHS+=("${FAULTS_TMP}")
  RES=build-sanitize/examples/resilience
  "${RES}" --batch=512 --csv="${FAULTS_TMP}/uninterrupted.csv" > /dev/null
  set +e
  "${RES}" --batch=512 --journal="${FAULTS_TMP}/sweep.jsonl" \
    --halt-after=54 > /dev/null
  halt_status=$?
  set -e
  if [[ "${halt_status}" != 17 ]]; then
    echo "expected the halted sweep to exit with code 17, got ${halt_status}"
    exit 1
  fi
  "${RES}" --batch=512 --journal="${FAULTS_TMP}/sweep.jsonl" --resume \
    --csv="${FAULTS_TMP}/resumed.csv" > /dev/null
  cmp "${FAULTS_TMP}/uninterrupted.csv" "${FAULTS_TMP}/resumed.csv"
  echo "kill-and-resume smoke: resumed dataset byte-identical to uninterrupted"
fi

if [[ "${OBS}" == 1 ]]; then
  # OFF build: every span/counter site must compile away cleanly; the full
  # suite runs against the stripped binaries (obs-session tests self-skip).
  cmake -B build-obs-off -G Ninja -DIBCHOL_OBS=OFF \
    ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
  cmake --build build-obs-off
  ctest --test-dir build-obs-off --output-on-failure -j "$(nproc)"
  # The OFF summary run doubles as the zero-overhead assertion: micro_cpu
  # exits nonzero if an inactive span site costs measurable time.
  OBS_TMP="$(mktemp -d)"
  CLEANUP_PATHS+=("${OBS_TMP}")
  build-obs-off/bench/micro_cpu --json="${OBS_TMP}/off_summary.json" \
    > /dev/null
  python3 -m json.tool "${OBS_TMP}/off_summary.json" > /dev/null

  # ON build (the default): focused re-run of the obs + replay suites, then
  # both exporters' artifacts must parse as the JSON they claim to be.
  ctest --test-dir build --output-on-failure -j "$(nproc)" \
    -R 'Trace|Counters|HwCounters|ObsReplay'
  build/bench/micro_cpu --trace="${OBS_TMP}/pipeline_trace.json"
  python3 -m json.tool "${OBS_TMP}/pipeline_trace.json" > /dev/null
  build/examples/autotune_explore --sizes=8 --batch=1024 \
    --trace="${OBS_TMP}/sweep_trace.jsonl" > /dev/null
  python3 -c "
import json, sys
for line in open(sys.argv[1]):
    json.loads(line)
" "${OBS_TMP}/sweep_trace.jsonl"
  echo "obs check: OFF build clean, ON traces parse"
fi

if [[ "${BENCH}" == 1 ]]; then
  BENCH_TMP="$(mktemp --suffix=.json)"
  CLEANUP_PATHS+=("${BENCH_TMP}")
  build/bench/micro_cpu --json="${BENCH_TMP}"
  # The large-n tiled lane rides along in the same document: merged in as
  # "large_summary" so one baseline file carries every gated lane.
  LARGE_TMP="$(mktemp --suffix=.json)"
  CLEANUP_PATHS+=("${LARGE_TMP}")
  build/bench/fig_large_tiled --json="${LARGE_TMP}"
  # The instant-tuning lane too: selection quality of the model-guided
  # probe (probe_gflops) is gated the same way the executors are.
  INSTANT_TMP="$(mktemp --suffix=.json)"
  CLEANUP_PATHS+=("${INSTANT_TMP}")
  build/bench/fig_instant_tune --json="${INSTANT_TMP}"
  python3 - "${BENCH_TMP}" "${LARGE_TMP}" "${INSTANT_TMP}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
with open(sys.argv[2]) as f:
    large = json.load(f)
with open(sys.argv[3]) as f:
    instant = json.load(f)
doc["large_summary"] = large.get("large_summary", [])
doc["instant_summary"] = instant.get("instant_summary", [])
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
  gate_status=0
  if [[ -f BENCH_cpu.json ]]; then
    set +e
    python3 scripts/bench_gate.py BENCH_cpu.json "${BENCH_TMP}"
    gate_status=$?
    set -e
  fi
  if [[ "${gate_status}" == 3 ]]; then
    # Environment mismatch: the baseline is from different hardware, so
    # the comparison was skipped, not failed. Re-record only from a
    # multi-core host — a 1-CPU container's numbers would become a
    # baseline no real host can be judged against.
    if [[ "$(nproc)" -gt 1 ]]; then
      echo "bench gate: re-recording BENCH_cpu.json for this host"
      mv "${BENCH_TMP}" BENCH_cpu.json
    else
      echo "bench gate: single-core host; keeping the recorded baseline"
    fi
  elif [[ "${gate_status}" != 0 ]]; then
    exit "${gate_status}"
  else
    mv "${BENCH_TMP}" BENCH_cpu.json
  fi
fi

for b in build/bench/*; do
  echo "===== ${b}"
  "${b}"
done

# Mode summary: every optional gate is named whether it ran or not, so a
# forgotten --chaos (or --tsan, ...) is visible in the default output
# instead of silently absent.
echo "===== check.sh mode summary"
summary_mode() {
  if [[ "$2" == 1 ]]; then
    echo "  $1: ran"
  else
    echo "  $1: SKIPPED (enable with --$1)"
  fi
}
summary_mode sanitize "${SANITIZE}"
summary_mode tsan "${TSAN}"
summary_mode chaos "${CHAOS}"
summary_mode prec "${PREC}"
summary_mode tiled "${TILED}"
summary_mode tune "${TUNE}"
summary_mode faults "${FAULTS}"
summary_mode bench "${BENCH}"
summary_mode obs "${OBS}"
