#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# benchmark binary. This is the command sequence EXPERIMENTS.md expects.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja "$@"
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"
for b in build/bench/*; do
  echo "===== ${b}"
  "${b}"
done
