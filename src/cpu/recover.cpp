#include "cpu/recover.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "cpu/simd/convert.hpp"
#include "layout/convert.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {

namespace {

// The factored triangle of matrix b, visited column-major: (i, j) pairs with
// i >= j for the lower factorization, i <= j for the upper one.
template <typename Fn>
void for_each_triangle(int n, Triangle triangle, Fn&& fn) {
  for (int j = 0; j < n; ++j) {
    const int i0 = triangle == Triangle::kLower ? j : 0;
    const int i1 = triangle == Triangle::kLower ? n : j + 1;
    for (int i = i0; i < i1; ++i) fn(i, j);
  }
}

// Per-matrix finiteness flags for the factored triangle of every matrix.
// Scanned element-major for the interleaved layouts so the inner loop walks
// the contiguous batch dimension — a per-matrix scan there touches a
// different cache line per element and costs more than the factorization.
template <typename T>
std::vector<std::uint8_t> screen_triangle(const BatchLayout& layout,
                                          const T* data, Triangle triangle) {
  const int n = layout.n();
  const std::int64_t batch = layout.batch();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<std::uint8_t> bad(static_cast<std::size_t>(batch), 0);
  std::vector<std::int32_t> elems;  // e = j*n + i over the factored triangle
  for_each_triangle(n, triangle,
                    [&](int i, int j) { elems.push_back(j * n + i); });

  if (layout.kind() == LayoutKind::kCanonical) {
#pragma omp parallel for schedule(static)
    for (std::int64_t b = 0; b < batch; ++b) {
      const T* m = data + static_cast<std::size_t>(b) * nn * nn;
      for (const std::int32_t e : elems) {
        if (!std::isfinite(static_cast<double>(m[e]))) {
          bad[b] = 1;
          break;
        }
      }
    }
    return bad;
  }

  // Both interleaved layouts are chunks of `chunk` matrices with batch
  // stride 1 inside the chunk (the plain interleaved layout is one chunk of
  // padded_batch matrices).
  const std::int64_t chunk = layout.kind() == LayoutKind::kInterleaved
                                 ? layout.padded_batch()
                                 : layout.chunk();
  const std::int64_t nchunks = (batch + chunk - 1) / chunk;
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < nchunks; ++c) {
    const T* base = data + static_cast<std::size_t>(c) * nn * nn *
                               static_cast<std::size_t>(chunk);
    const std::int64_t lanes = std::min(chunk, batch - c * chunk);
    std::uint8_t* flags = bad.data() + c * chunk;
    for (const std::int32_t e : elems) {
      const T* col = base + static_cast<std::size_t>(e) *
                                static_cast<std::size_t>(chunk);
      for (std::int64_t l = 0; l < lanes; ++l) {
        if (!std::isfinite(static_cast<double>(col[l]))) flags[l] = 1;
      }
    }
  }
  return bad;
}

// The default factorization backend (RecoverFactorFn signature):
// dispatches exactly like BatchCholesky::factorize — the caller's prebuilt
// tile program when one applies, the plain driver otherwise.
template <typename T>
FactorResult run_factor(void* /*ctx*/, const BatchLayout& layout,
                        std::span<T> data, const CpuFactorOptions& options,
                        const TileProgram* program,
                        std::span<std::int32_t> info) {
  if (program != nullptr && layout.kind() != LayoutKind::kCanonical &&
      options.unroll == Unroll::kPartial) {
    return factor_batch_cpu_with_program<T>(layout, data, *program, options,
                                            info);
  }
  return factor_batch_cpu<T>(layout, data, options, info);
}

// Rebuilds the original matrix b (plus `shift` on the diagonal) into a
// dense column-major buffer, from the untouched mirror triangle and the
// pre-saved diagonal.
template <typename T>
void rebuild_shifted(const BatchLayout& layout, const T* data, std::int64_t b,
                     Triangle triangle, const T* diag, double shift,
                     std::span<T> out) {
  const int n = layout.n();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      T v;
      if (i == j) {
        v = static_cast<T>(static_cast<double>(diag[j]) + shift);
      } else if (triangle == Triangle::kLower) {
        // The strictly upper triangle (row < col) was never written.
        v = data[layout.index(b, std::min(i, j), std::max(i, j))];
      } else {
        v = data[layout.index(b, std::max(i, j), std::min(i, j))];
      }
      out[static_cast<std::size_t>(j) * n + i] = v;
    }
  }
}

}  // namespace

template <typename T>
std::int64_t screen_nonfinite(const BatchLayout& layout,
                              std::span<const T> data, Triangle triangle,
                              std::span<std::int32_t> info) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  const std::vector<std::uint8_t> bad =
      screen_triangle(layout, data.data(), triangle);
  std::int64_t count = 0;
  for (std::int64_t b = 0; b < layout.batch(); ++b) {
    if (bad[static_cast<std::size_t>(b)]) {
      info[b] = kInfoNonFinite;
      ++count;
    }
  }
  return count;
}

template <typename T>
RecoveryReport factor_batch_recover(const BatchLayout& layout,
                                    std::span<T> data,
                                    const CpuFactorOptions& options,
                                    const RecoveryOptions& recovery,
                                    std::span<std::int32_t> info,
                                    const TileProgram* program) {
  return factor_batch_recover_via<T>(&run_factor<T>, nullptr, layout, data,
                                     options, recovery, info, program);
}

template <typename T>
RecoveryReport factor_batch_recover_via(RecoverFactorFn<T> factor_fn,
                                        void* ctx, const BatchLayout& layout,
                                        std::span<T> data,
                                        const CpuFactorOptions& options,
                                        const RecoveryOptions& recovery,
                                        std::span<std::int32_t> info,
                                        const TileProgram* program) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  IBCHOL_CHECK(recovery.shift0 > 0.0 && recovery.growth >= 1.0,
               "recovery shifts must be positive and non-decreasing");
  IBCHOL_CHECK(recovery.max_attempts >= 0, "max_attempts must be >= 0");

  const int n = layout.n();
  const std::int64_t batch = layout.batch();
  const std::size_t tri_elems =
      static_cast<std::size_t>(n) * (n + 1) / 2;
  RecoveryReport report;

  std::vector<std::int32_t> owned_info;
  std::span<std::int32_t> st = info;
  if (st.empty()) {
    owned_info.assign(static_cast<std::size_t>(batch), 0);
    st = owned_info;
  }

  // 1. Screen: stash the factored-triangle contents of non-finite inputs so
  // they can be handed back exactly as supplied.
  std::vector<std::int64_t> nonfinite;
  {
    IBCHOL_TRACE_SPAN("screen", "recover", batch);
    const std::vector<std::uint8_t> bad =
        screen_triangle(layout, data.data(), options.triangle);
    for (std::int64_t b = 0; b < batch; ++b) {
      if (bad[static_cast<std::size_t>(b)]) nonfinite.push_back(b);
    }
  }
  std::vector<T> stash(nonfinite.size() * tri_elems);
  for (std::size_t k = 0; k < nonfinite.size(); ++k) {
    T* out = stash.data() + k * tri_elems;
    std::size_t e = 0;
    for_each_triangle(n, options.triangle, [&](int i, int j) {
      out[e++] = data[layout.index(nonfinite[k], i, j)];
    });
  }

  // 2. Save every diagonal — the only factored-triangle elements whose
  // originals cannot be rebuilt from the mirror triangle. Element-major for
  // the interleaved layouts, like the screen above.
  std::vector<T> diag(static_cast<std::size_t>(batch) * n);
  if (layout.kind() == LayoutKind::kCanonical) {
#pragma omp parallel for schedule(static)
    for (std::int64_t b = 0; b < batch; ++b) {
      for (int i = 0; i < n; ++i) {
        diag[static_cast<std::size_t>(b) * n + i] =
            data[layout.index(b, i, i)];
      }
    }
  } else {
    const std::int64_t chunk = layout.kind() == LayoutKind::kInterleaved
                                   ? layout.padded_batch()
                                   : layout.chunk();
    const std::int64_t nchunks = (batch + chunk - 1) / chunk;
    const auto nn = static_cast<std::size_t>(n);
#pragma omp parallel for schedule(static)
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const T* base = data.data() + static_cast<std::size_t>(c) * nn * nn *
                                        static_cast<std::size_t>(chunk);
      const std::int64_t lanes = std::min(chunk, batch - c * chunk);
      for (int i = 0; i < n; ++i) {
        const T* col = base + (static_cast<std::size_t>(i) * nn + i) *
                                  static_cast<std::size_t>(chunk);
        for (std::int64_t l = 0; l < lanes; ++l) {
          diag[static_cast<std::size_t>(c * chunk + l) * nn + i] = col[l];
        }
      }
    }
  }

  // 3. First factorization pass over the whole batch.
  {
    IBCHOL_TRACE_SPAN("first_pass", "recover", batch);
    (void)factor_fn(ctx, layout, data, options, program, st);
  }

  // 4. Hand non-finite inputs back untouched under the distinct code.
  for (std::size_t k = 0; k < nonfinite.size(); ++k) {
    const T* in = stash.data() + k * tri_elems;
    std::size_t e = 0;
    for_each_triangle(n, options.triangle, [&](int i, int j) {
      data[layout.index(nonfinite[k], i, j)] = in[e++];
    });
    st[nonfinite[k]] = kInfoNonFinite;
  }
  report.nonfinite = static_cast<std::int64_t>(nonfinite.size());

  // 5. Escalating shifted retries on the compact sub-batch of failures.
  std::vector<std::int64_t> pending;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (st[b] > 0) pending.push_back(b);
  }
  report.failed = static_cast<std::int64_t>(pending.size());

  std::vector<MatrixRecovery> entries;
  entries.reserve(nonfinite.size() + pending.size());
  for (const std::int64_t b : nonfinite) {
    entries.push_back({b, kInfoNonFinite, 0, 0.0, false});
  }
  for (const std::int64_t b : pending) {
    entries.push_back({b, st[b], 0, 0.0, false});
  }
  std::sort(entries.begin(), entries.end(),
            [](const MatrixRecovery& a, const MatrixRecovery& b) {
              return a.index < b.index;
            });
  auto entry_for = [&](std::int64_t b) -> MatrixRecovery& {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), b,
        [](const MatrixRecovery& e, std::int64_t v) { return e.index < v; });
    return *it;
  };

  std::vector<T> dense(static_cast<std::size_t>(n) * n);
  for (int attempt = 1;
       attempt <= recovery.max_attempts && !pending.empty(); ++attempt) {
    // One span per escalation level; the payload is the attempt number,
    // the retried-matrix tally goes to the counter registry.
    IBCHOL_TRACE_SPAN("retry", "recover", attempt);
    IBCHOL_COUNT("recover.retry_matrices", pending.size());
    const double base =
        recovery.shift0 * std::pow(recovery.growth, attempt - 1);
    const std::int64_t m = static_cast<std::int64_t>(pending.size());
    const BatchLayout rlayout = layout.kind() == LayoutKind::kCanonical
                                    ? BatchLayout::canonical(n, m)
                                    : BatchLayout::interleaved(n, m);
    // AlignedBuffer, not std::vector: the retry batch goes back through the
    // configured executor, and the vectorized one requires 64-byte aligned
    // lane-block bases.
    AlignedBuffer<T> rdata(rlayout.size_elems());
    std::vector<double> shifts(pending.size());
    for (std::int64_t k = 0; k < m; ++k) {
      const std::int64_t b = pending[static_cast<std::size_t>(k)];
      double scale = 1.0;
      if (recovery.relative) {
        double acc = 0.0;
        for (int i = 0; i < n; ++i) {
          acc += std::abs(
              static_cast<double>(diag[static_cast<std::size_t>(b) * n + i]));
        }
        scale = acc / n;
        if (!(scale > 0.0)) scale = 1.0;
      }
      shifts[static_cast<std::size_t>(k)] = base * scale;
      rebuild_shifted(layout, data.data(), b, options.triangle,
                      diag.data() + static_cast<std::size_t>(b) * n,
                      shifts[static_cast<std::size_t>(k)], std::span<T>(dense));
      insert_matrix<T>(rlayout, rdata.span(), k, dense);
    }
    fill_padding_identity<T>(rlayout, rdata.span());

    std::vector<std::int32_t> rinfo(pending.size());
    (void)factor_fn(ctx, rlayout, rdata.span(), options, program, rinfo);

    std::vector<std::int64_t> still;
    for (std::int64_t k = 0; k < m; ++k) {
      const std::int64_t b = pending[static_cast<std::size_t>(k)];
      MatrixRecovery& entry = entry_for(b);
      entry.attempts = attempt;
      if (rinfo[static_cast<std::size_t>(k)] != 0) {
        still.push_back(b);
        continue;
      }
      // Scatter the recovered factor back; the mirror triangle stays as the
      // caller supplied it, exactly like a first-try success.
      for_each_triangle(n, options.triangle, [&](int i, int j) {
        data[layout.index(b, i, j)] = rdata[rlayout.index(k, i, j)];
      });
      st[b] = 0;
      entry.shift = shifts[static_cast<std::size_t>(k)];
      entry.recovered = true;
      ++report.recovered;
    }
    pending = std::move(still);
  }

  report.unrecoverable =
      report.nonfinite + static_cast<std::int64_t>(pending.size());
  report.matrices = std::move(entries);
  return report;
}

std::int64_t screen_nonfinite_mixed(const BatchLayout& layout,
                                    std::span<const std::uint16_t> data,
                                    StoragePrec storage, Triangle triangle,
                                    std::span<std::int32_t> info) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "reduced-precision storage runs interleaved layouts");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  const int n = layout.n();
  const std::int64_t batch = layout.batch();
  std::vector<std::int32_t> elems;
  for_each_triangle(n, triangle,
                    [&](int i, int j) { elems.push_back(j * n + i); });
  // Same element-major walk as screen_triangle, but the finiteness test is
  // a bit mask on the 16-bit word (exponent all-ones) — no widening pass.
  const std::int64_t chunk = layout.kind() == LayoutKind::kInterleaved
                                 ? layout.padded_batch()
                                 : layout.chunk();
  const std::int64_t nchunks = (batch + chunk - 1) / chunk;
  std::vector<std::uint8_t> bad(static_cast<std::size_t>(batch), 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < nchunks; ++c) {
    const std::uint16_t* base =
        data.data() + static_cast<std::size_t>(c) *
                          static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(chunk);
    const std::int64_t lanes = std::min(chunk, batch - c * chunk);
    std::uint8_t* flags = bad.data() + c * chunk;
    for (const std::int32_t e : elems) {
      const std::uint16_t* col = base + static_cast<std::size_t>(e) *
                                            static_cast<std::size_t>(chunk);
      for (std::int64_t l = 0; l < lanes; ++l) {
        if (is_nonfinite_prec(col[l], storage)) flags[l] = 1;
      }
    }
  }
  std::int64_t count = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (bad[static_cast<std::size_t>(b)]) {
      info[b] = kInfoNonFinite;
      ++count;
    }
  }
  return count;
}

RecoveryReport factor_batch_recover_mixed_via(
    RecoverFactorFn<float> factor_fn, void* ctx, const BatchLayout& layout,
    std::span<std::uint16_t> data, StoragePrec storage,
    const CpuFactorOptions& options, const RecoveryOptions& recovery,
    std::span<std::int32_t> info, const TileProgram* program) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "reduced-precision storage runs interleaved layouts");
  IBCHOL_CHECK(storage != StoragePrec::kFp32,
               "mixed recovery is for reduced storage precisions");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  const SimdIsa cisa = resolve_convert_isa();
  AlignedBuffer<float> wide(layout.size_elems());
  const auto count = static_cast<std::int64_t>(layout.size_elems());
  // Widening preserves NaN/Inf exactly, so the fp32 screen sees the same
  // non-finite set a bit-level u16 screen would.
  widen_row(cisa, storage, data.data(), wide.data(), count);
  RecoveryReport report = factor_batch_recover_via<float>(
      factor_fn, ctx, layout, wide.span(), options, recovery, info, program);
  narrow_row(cisa, storage, wide.data(), data.data(), count,
             /*nt_stores=*/false);
  return report;
}

RecoveryReport factor_batch_recover_mixed(const BatchLayout& layout,
                                          std::span<std::uint16_t> data,
                                          StoragePrec storage,
                                          const CpuFactorOptions& options,
                                          const RecoveryOptions& recovery,
                                          std::span<std::int32_t> info,
                                          const TileProgram* program) {
  return factor_batch_recover_mixed_via(&run_factor<float>, nullptr, layout,
                                        data, storage, options, recovery,
                                        info, program);
}

template std::int64_t screen_nonfinite<float>(const BatchLayout&,
                                              std::span<const float>, Triangle,
                                              std::span<std::int32_t>);
template std::int64_t screen_nonfinite<double>(const BatchLayout&,
                                               std::span<const double>,
                                               Triangle,
                                               std::span<std::int32_t>);
template RecoveryReport factor_batch_recover<float>(
    const BatchLayout&, std::span<float>, const CpuFactorOptions&,
    const RecoveryOptions&, std::span<std::int32_t>, const TileProgram*);
template RecoveryReport factor_batch_recover<double>(
    const BatchLayout&, std::span<double>, const CpuFactorOptions&,
    const RecoveryOptions&, std::span<std::int32_t>, const TileProgram*);
template RecoveryReport factor_batch_recover_via<float>(
    RecoverFactorFn<float>, void*, const BatchLayout&, std::span<float>,
    const CpuFactorOptions&, const RecoveryOptions&, std::span<std::int32_t>,
    const TileProgram*);
template RecoveryReport factor_batch_recover_via<double>(
    RecoverFactorFn<double>, void*, const BatchLayout&, std::span<double>,
    const CpuFactorOptions&, const RecoveryOptions&, std::span<std::int32_t>,
    const TileProgram*);

}  // namespace ibchol
