// Shared OpenMP thread-count resolution for the CPU substrate drivers.
//
// Every batched driver accepts `num_threads = 0` to mean "the OpenMP
// default"; this helper is the single place that rule lives (it used to be
// duplicated per translation unit).
#pragma once

#include <omp.h>

namespace ibchol {

/// Resolves a requested thread count: positive values are taken verbatim,
/// zero (and negatives) fall back to omp_get_max_threads().
inline int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

}  // namespace ibchol
