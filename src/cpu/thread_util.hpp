// Shared OpenMP thread-count resolution for the CPU substrate drivers.
//
// Every batched driver accepts `num_threads = 0` to mean "the OpenMP
// default"; this helper is the single place that rule lives (it used to be
// duplicated per translation unit).
#pragma once

#include <omp.h>

namespace ibchol {

/// The process's default worker count, resolved from the OpenMP runtime
/// exactly once (first call) and cached. The runtime answer cannot change
/// after startup in this codebase (nothing calls omp_set_num_threads), and
/// resolving it per factorization call made every driver invocation pay a
/// libgomp query on its hot path; the persistent service additionally
/// freezes its pool size from this value for its whole lifetime.
inline int cached_default_threads() {
  static const int count = omp_get_max_threads();
  return count;
}

/// Resolves a requested thread count: positive values are taken verbatim,
/// zero (and negatives) fall back to the cached OpenMP default.
inline int resolve_threads(int requested) {
  return requested > 0 ? requested : cached_default_threads();
}

}  // namespace ibchol
