// Public interface of the vectorized (explicit-SIMD) tile executor.
//
// The third executor next to the interpreter and the specialized executor:
// every tile op runs as intrinsic lane-block bodies written against the
// vec traits (vec.hpp / vec_avx2.hpp / vec_avx512.hpp). Each ISA tier is
// compiled in its own translation unit with per-file -m flags — never by
// flipping -march for the whole build — and exposed through one table of
// function pointers; the driver picks the table with cpuid-based runtime
// dispatch (cpu/simd/isa.hpp), so a single binary carries all tiers and
// runs correctly on hosts without AVX-512 (or without AVX at all).
//
// Numerics: on the IEEE math policy every tier computes bit-identical
// factors — identical to each other and to the interpreter oracle — since
// sqrt/div/fma are correctly rounded everywhere and the op order matches
// the interpreter exactly. The fast-math policy maps to each tier's native
// approximation (hardware rsqrt/rcp + one Newton step on AVX tiers, the
// interpreter's bit-trick sequences on the scalar tier) and is only
// guaranteed to agree within a few ulp.
#pragma once

#include <cstdint>

#include "cpu/tile_exec.hpp"
#include "kernels/options.hpp"
#include "kernels/tile_program.hpp"

namespace ibchol {

/// Largest n with a fully unrolled fused vectorized kernel (the whole
/// factorization as one compile-time-n function, active column held in
/// vector registers).
inline constexpr int kMaxVecFusedDim = 16;

/// Largest n the runtime-n vectorized whole-matrix body supports (the
/// paper sweeps n <= 64); larger n falls back to the interpreter's
/// scratch-triangle path.
inline constexpr int kMaxVecWholeDim = 64;

/// One ISA tier's executor entry points. All bodies share the lane-block
/// contract of execute_program_lane_block: element (i,j) of lane l lives at
/// base[(j*n + i)*estride + l], `info` has kLaneBlock pre-zeroed entries or
/// is null. `base` must be 64-byte aligned and estride*sizeof(T) a multiple
/// of 64 (guaranteed by AlignedBuffer + the layouts; asserted by the
/// driver).
template <typename T>
struct VecKernels {
  /// The tier these bodies were compiled for (the avx2/avx512 tables decay
  /// to the scalar tier when the compiler could not build their TU's ISA).
  SimdIsa tier;
  /// Vector width in elements of T.
  int width;

  /// Op-by-op execution of a bound tile program. `nt_stores` uses
  /// non-temporal stores for the program's store ops (streaming the factor
  /// past the cache; off by default — only profitable when the batch far
  /// exceeds LLC and tiles are never reloaded).
  void (*run_program)(const TileProgram& program, MathMode math, T* base,
                      std::int64_t estride, std::int32_t* info,
                      Triangle triangle, bool nt_stores);

  /// Runtime-n whole-matrix factorization, left-looking and in place (one
  /// aligned load/store per element plus the panel re-reads; no scratch).
  /// Returns false when n > kMaxVecWholeDim (caller falls back).
  bool (*whole_matrix)(int n, MathMode math, T* base, std::int64_t estride,
                       std::int32_t* info, Triangle triangle);

  /// Fully unrolled fused kernel with compile-time n; the active column
  /// pair of lane groups lives in vector registers. Returns false when
  /// n > kMaxVecFusedDim (caller falls back to whole_matrix).
  bool (*fused)(int n, MathMode math, T* base, std::int64_t estride,
                std::int32_t* info, Triangle triangle);

  /// Cache-blocked variant of whole_matrix: the trailing update is applied
  /// panel by panel (kVecPanelWidth columns at a time) with a register-tiled
  /// gemm sweep, so each k-column of the lane block is streamed through the
  /// caches once per panel instead of once per column. Bit-identical to
  /// whole_matrix on the IEEE policy (per element the fnmadd sequence stays
  /// k = 0..j-1 in order; only the phase boundaries move). Wins once the
  /// lane-block working set outgrows L1 (n >= ~24 in single precision);
  /// below that the unblocked body is faster. Returns false when
  /// n > kMaxVecWholeDim.
  bool (*blocked)(int n, MathMode math, T* base, std::int64_t estride,
                  std::int32_t* info, Triangle triangle);
};

/// Panel width / row-strip height of the blocked whole-matrix body (PB x IB
/// register accumulator tile of vector groups; 4x4 saturates the 32
/// architectural vectors of AVX-512 and measured fastest at n >= 32).
inline constexpr int kVecPanelWidth = 4;
inline constexpr int kVecPanelRows = 4;

/// Per-tier tables (defined in vec_exec_scalar/avx2/avx512.cpp).
template <typename T>
[[nodiscard]] const VecKernels<T>& vec_kernels_scalar();
template <typename T>
[[nodiscard]] const VecKernels<T>& vec_kernels_avx2();
template <typename T>
[[nodiscard]] const VecKernels<T>& vec_kernels_avx512();

/// Table for a tier; kAuto (or an unsupported request) resolves through
/// resolve_simd_isa() first, so callers may pass options.isa directly.
template <typename T>
[[nodiscard]] const VecKernels<T>& vec_kernels(SimdIsa tier);

}  // namespace ibchol
