// Internal per-tier entry points of the storage conversion kernels. Each
// tier lives in its own translation unit with per-file -m flags (mirroring
// vec_exec_*): when the compiler cannot target a tier its TU compiles with
// default flags and forwards to the tier below, so the symbols always
// exist and runtime dispatch stays a plain call.
#pragma once

#include <cstdint>

#include "kernels/options.hpp"

namespace ibchol::detail {

void widen_row_scalar(StoragePrec prec, const std::uint16_t* src, float* dst,
                      std::int64_t count);
void narrow_row_scalar(StoragePrec prec, const float* src, std::uint16_t* dst,
                       std::int64_t count);

void widen_row_avx2(StoragePrec prec, const std::uint16_t* src, float* dst,
                    std::int64_t count);
void narrow_row_avx2(StoragePrec prec, const float* src, std::uint16_t* dst,
                     std::int64_t count, bool nt_stores);

void widen_row_avx512(StoragePrec prec, const std::uint16_t* src, float* dst,
                      std::int64_t count);
void narrow_row_avx512(StoragePrec prec, const float* src, std::uint16_t* dst,
                       std::int64_t count, bool nt_stores);

/// Cached cpuid probe: true when the host executes F16C (vcvtph2ps /
/// vcvtps2ph). The vector tiers gate their fp16 bodies on this at runtime
/// — compile-time -mf16c alone must never fault a lesser host.
[[nodiscard]] bool cpu_has_f16c();

}  // namespace ibchol::detail
