// Tier selection for the vectorized executor: maps a (possibly kAuto or
// over-ambitious) tier request onto the per-TU kernel tables.
#include "cpu/simd/vec_exec.hpp"

#include "cpu/simd/isa.hpp"

namespace ibchol {

template <typename T>
const VecKernels<T>& vec_kernels(SimdIsa tier) {
  switch (resolve_simd_isa(tier)) {
    case SimdIsa::kAvx512: return vec_kernels_avx512<T>();
    case SimdIsa::kAvx2: return vec_kernels_avx2<T>();
    default: return vec_kernels_scalar<T>();
  }
}

template const VecKernels<float>& vec_kernels<float>(SimdIsa);
template const VecKernels<double>& vec_kernels<double>(SimdIsa);

}  // namespace ibchol
