// AVX2+FMA vector traits (see vec.hpp for the trait contract). Only
// meaningful inside the translation unit compiled with -mavx2 -mfma; the
// include is guarded so other TUs can include vec_exec_impl.hpp freely.
#pragma once

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstdint>

namespace ibchol::simd {

struct VecAvx2F {
  using Elem = float;
  static constexpr int kWidth = 8;
  using V = __m256;

  static V load(const float* p) { return _mm256_load_ps(p); }
  static void store(float* p, V x) { _mm256_store_ps(p, x); }
  static void store_nt(float* p, V x) { _mm256_stream_ps(p, x); }
  static V set1(float x) { return _mm256_set1_ps(x); }
  static V mul(V a, V b) { return _mm256_mul_ps(a, b); }
  static V fnmadd(V a, V b, V c) { return _mm256_fnmadd_ps(a, b, c); }
  static V sqrt(V x) { return _mm256_sqrt_ps(x); }
  static V div(V a, V b) { return _mm256_div_ps(a, b); }

  static std::uint32_t gt_zero_mask(V x) {
    // Ordered non-signaling compare: NaN lanes report "not > 0", exactly
    // the scalar !(x > 0) pivot test.
    const V gt = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
    return static_cast<std::uint32_t>(_mm256_movemask_ps(gt));
  }

  // Fast math: hardware approximations + one Newton step (the CPU analog
  // of MUFU.RSQ / MUFU.RCP with the compiler-inserted fixup).
  static V fast_rsqrt(V x) {
    const V y = _mm256_rsqrt_ps(x);
    const V half = _mm256_set1_ps(0.5f), three = _mm256_set1_ps(3.0f);
    return _mm256_mul_ps(
        _mm256_mul_ps(half, y),
        _mm256_fnmadd_ps(_mm256_mul_ps(x, y), y, three));
  }
  static V fast_sqrt(V x) {
    // sqrt(x) = x * rsqrt(x), with non-positive lanes (x <= 0, incl. NaN)
    // routed through the exact sqrt so 0 -> 0 and negatives -> NaN, as the
    // scalar FastMath policy guarantees.
    const V exact = _mm256_sqrt_ps(x);
    const V approx = _mm256_mul_ps(x, fast_rsqrt(x));
    const V pos = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
    return _mm256_blendv_ps(exact, approx, pos);
  }
  static V fast_recip(V x) {
    const V y = _mm256_rcp_ps(x);
    // One Newton step: y' = y * (2 - x*y).
    return _mm256_mul_ps(
        y, _mm256_fnmadd_ps(x, y, _mm256_set1_ps(2.0f)));
  }
};

struct VecAvx2D {
  using Elem = double;
  static constexpr int kWidth = 4;
  using V = __m256d;

  static V load(const double* p) { return _mm256_load_pd(p); }
  static void store(double* p, V x) { _mm256_store_pd(p, x); }
  static void store_nt(double* p, V x) { _mm256_stream_pd(p, x); }
  static V set1(double x) { return _mm256_set1_pd(x); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V fnmadd(V a, V b, V c) { return _mm256_fnmadd_pd(a, b, c); }
  static V sqrt(V x) { return _mm256_sqrt_pd(x); }
  static V div(V a, V b) { return _mm256_div_pd(a, b); }

  static std::uint32_t gt_zero_mask(V x) {
    const V gt = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GT_OQ);
    return static_cast<std::uint32_t>(_mm256_movemask_pd(gt));
  }

  // Fast math is a single-precision feature (as in CUDA); double stays IEEE.
  static V fast_sqrt(V x) { return sqrt(x); }
  static V fast_recip(V x) { return div(set1(1.0), x); }
};

}  // namespace ibchol::simd

#endif  // __AVX2__ && __FMA__
