// Runtime ISA detection for the vectorized executor.
//
// The vectorized tile kernels are compiled three times — once per ISA tier
// (scalar fallback, AVX2+FMA, AVX-512F), each in its own translation unit
// with per-file -m flags — and the tier actually executed is chosen at
// runtime from cpuid. This keeps one binary correct on any x86-64 host (and
// trivially on non-x86, where only the scalar tier exists) without
// compiling the whole build for the build machine's ISA.
#pragma once

#include "kernels/options.hpp"

namespace ibchol {

/// Widest ISA tier the executing CPU supports (never kAuto). Detected once
/// via cpuid (__builtin_cpu_supports) and cached; AVX2 additionally
/// requires FMA, matching the flags the AVX2 tier is compiled with.
[[nodiscard]] SimdIsa detect_simd_isa();

/// Resolves a requested tier against the host: kAuto becomes the detected
/// tier, explicit requests are clamped down to the detected tier (never
/// up, never faulted). The IBCHOL_SIMD_ISA environment variable
/// ("scalar"/"avx2"/"avx512"/"auto"), when set, overrides `requested` —
/// the hook the dispatch tests and sanitizer runs use to force a tier.
[[nodiscard]] SimdIsa resolve_simd_isa(SimdIsa requested);

}  // namespace ibchol
