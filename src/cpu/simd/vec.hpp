// Generic (ISA-agnostic) vector trait for the vectorized executor.
//
// Every tile-kernel body in vec_exec_impl.hpp is a template over a trait
// class V describing one vector of V::kWidth lanes: how to load/store it
// aligned (and with a non-temporal hint), the FMA forms the kernels use,
// and the square root / reciprocal of the two math policies. Three trait
// families exist: this portable one (plain arrays + std::fma, compiled
// unconditionally — the scalar tier), and the AVX2 / AVX-512 intrinsic
// traits in vec_avx2.hpp / vec_avx512.hpp, each compiled in its own
// translation unit with per-file ISA flags.
//
// Math-policy contract (see DESIGN.md §7): the IEEE operations
// (sqrt/div/fma) are correctly rounded on every tier, so IEEE-math factors
// are bit-identical across tiers and to the interpreter oracle (which the
// compiler contracts onto FMA the same way). Fast-math operations are
// approximate by contract; each tier uses its best native approximation.
#pragma once

#include <cmath>
#include <cstdint>

#include "cpu/math_policy.hpp"

namespace ibchol::simd {

/// Portable vector of W lanes backed by a plain array. The fixed-trip lane
/// loops vectorize under any compiler ("omp simd" semantics without the
/// pragma dependency); with no ISA flags at all this degrades to scalar
/// code that still computes the exact same correctly-rounded IEEE results.
template <typename T, int W>
struct VecGeneric {
  using Elem = T;
  static constexpr int kWidth = W;

  struct V {
    T v[W];
  };

  static V load(const T* p) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = p[l];
    return r;
  }
  static void store(T* p, V x) {
    for (int l = 0; l < W; ++l) p[l] = x.v[l];
  }
  static void store_nt(T* p, V x) { store(p, x); }

  static V set1(T x) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = x;
    return r;
  }

  static V mul(V a, V b) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }

  /// c - a*b as a single rounding — matches the vfnmadd the optimizer
  /// contracts the interpreter's update loops into.
  static V fnmadd(V a, V b, V c) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = std::fma(-a.v[l], b.v[l], c.v[l]);
    return r;
  }

  static V sqrt(V x) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = std::sqrt(x.v[l]);
    return r;
  }

  static V div(V a, V b) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }

  /// Lane mask (bit l set when x[l] > 0) for the pivot check.
  static std::uint32_t gt_zero_mask(V x) {
    std::uint32_t m = 0;
    for (int l = 0; l < W; ++l) {
      if (x.v[l] > T{0}) m |= 1u << l;
    }
    return m;
  }

  /// Fast-math square root / reciprocal: the scalar tier reuses the policy's
  /// bit-trick Newton sequences verbatim.
  static V fast_sqrt(V x) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = FastMath::sqrt(x.v[l]);
    return r;
  }
  static V fast_recip(V x) {
    V r;
    for (int l = 0; l < W; ++l) r.v[l] = FastMath::recip(x.v[l]);
    return r;
  }
};

}  // namespace ibchol::simd
