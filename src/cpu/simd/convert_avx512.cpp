// AVX-512F tier of the storage conversion kernels (16 elements per step).
//
// bf16 runs the same integer RN-even emulation as the scalar and AVX2
// tiers (bit-identical; the native vcvtne2ps2bf16 flushes denormals so we
// emulate instead). fp16 uses the AVX-512F zmm forms of vcvtph2ps /
// vcvtps2ph — part of AVX-512F itself, no separate F16C gate needed.
//
// Compiled with -mavx512f -mfma when the compiler supports them; otherwise
// this TU decays to the AVX2 tier (which itself decays to scalar).
#include "cpu/simd/convert.hpp"
#include "cpu/simd/convert_impl.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace ibchol::detail {

#if defined(__AVX512F__)

namespace {

inline __m256i narrow16_bf16(const float* src) {
  const __m512i x = _mm512_castps_si512(_mm512_loadu_ps(src));
  const __m512i abs = _mm512_and_si512(x, _mm512_set1_epi32(0x7FFFFFFF));
  const __mmask16 nan =
      _mm512_cmpgt_epi32_mask(abs, _mm512_set1_epi32(0x7F800000));
  const __m512i lsb =
      _mm512_and_si512(_mm512_srli_epi32(x, 16), _mm512_set1_epi32(1));
  __m512i r = _mm512_srli_epi32(
      _mm512_add_epi32(_mm512_add_epi32(x, _mm512_set1_epi32(0x7FFF)), lsb),
      16);
  const __m512i qnan =
      _mm512_or_si512(_mm512_srli_epi32(x, 16), _mm512_set1_epi32(0x40));
  r = _mm512_mask_mov_epi32(r, nan, qnan);
  return _mm512_cvtepi32_epi16(r);  // each lane <= 0xFFFF: plain truncate
}

inline void store16_u16(std::uint16_t* dst, __m256i v, bool nt) {
  if (nt && (reinterpret_cast<std::uintptr_t>(dst) & 31u) == 0) {
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst), v);
  } else {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
}

}  // namespace

void widen_row_avx512(StoragePrec prec, const std::uint16_t* src, float* dst,
                      std::int64_t count) {
  std::int64_t i = 0;
  if (prec == StoragePrec::kFp16) {
    for (; i + 16 <= count; i += 16) {
      const __m256i h =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
    }
    for (; i < count; ++i) dst[i] = f32_from_fp16(src[i]);
    return;
  }
  for (; i + 16 <= count; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m512i w = _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16);
    _mm512_storeu_ps(dst + i, _mm512_castsi512_ps(w));
  }
  for (; i < count; ++i) dst[i] = f32_from_bf16(src[i]);
}

void narrow_row_avx512(StoragePrec prec, const float* src, std::uint16_t* dst,
                       std::int64_t count, bool nt_stores) {
  std::int64_t i = 0;
  if (prec == StoragePrec::kFp16) {
    for (; i + 16 <= count; i += 16) {
      const __m256i h = _mm512_cvtps_ph(
          _mm512_loadu_ps(src + i),
          _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
      store16_u16(dst + i, h, nt_stores);
    }
    for (; i < count; ++i) dst[i] = fp16_from_f32(src[i]);
    return;
  }
  for (; i + 16 <= count; i += 16) {
    store16_u16(dst + i, narrow16_bf16(src + i), nt_stores);
  }
  for (; i < count; ++i) dst[i] = bf16_from_f32(src[i]);
}

#else  // !__AVX512F__ — decay to the AVX2 tier.

void widen_row_avx512(StoragePrec prec, const std::uint16_t* src, float* dst,
                      std::int64_t count) {
  widen_row_avx2(prec, src, dst, count);
}

void narrow_row_avx512(StoragePrec prec, const float* src, std::uint16_t* dst,
                       std::int64_t count, bool nt_stores) {
  narrow_row_avx2(prec, src, dst, count, nt_stores);
}

#endif

}  // namespace ibchol::detail
