// Scalar tier + runtime dispatch of the storage conversion kernels. The
// scalar bodies are straight loops over the exact header primitives — they
// are the semantics the SIMD tiers must match (bit-identical for bf16 on
// every tier; bit-identical for fp16 on all finite values and Inf).
#include "cpu/simd/convert.hpp"

#include <cstdlib>
#include <string>

#include "cpu/simd/convert_impl.hpp"
#include "cpu/simd/isa.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ibchol {

namespace detail {

void widen_row_scalar(StoragePrec prec, const std::uint16_t* src, float* dst,
                      std::int64_t count) {
  if (prec == StoragePrec::kFp16) {
    for (std::int64_t i = 0; i < count; ++i) dst[i] = f32_from_fp16(src[i]);
  } else {
    for (std::int64_t i = 0; i < count; ++i) dst[i] = f32_from_bf16(src[i]);
  }
}

void narrow_row_scalar(StoragePrec prec, const float* src, std::uint16_t* dst,
                       std::int64_t count) {
  if (prec == StoragePrec::kFp16) {
    for (std::int64_t i = 0; i < count; ++i) dst[i] = fp16_from_f32(src[i]);
  } else {
    for (std::int64_t i = 0; i < count; ++i) dst[i] = bf16_from_f32(src[i]);
  }
}

bool cpu_has_f16c() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = [] {
    __builtin_cpu_init();
    return static_cast<bool>(__builtin_cpu_supports("f16c"));
  }();
  return has;
#else
  return false;
#endif
}

}  // namespace detail

SimdIsa resolve_convert_isa() {
  if (const char* env = std::getenv("IBCHOL_CONVERT_ISA")) {
    const std::string s(env);
    SimdIsa req = SimdIsa::kAuto;
    bool known = true;
    if (s == "scalar") req = SimdIsa::kScalar;
    else if (s == "avx2") req = SimdIsa::kAvx2;
    else if (s == "avx512") req = SimdIsa::kAvx512;
    else if (s == "auto") req = SimdIsa::kAuto;
    else known = false;  // typo'd override must never crash a run
    if (known) {
      const SimdIsa detected = detect_simd_isa();
      if (req == SimdIsa::kAuto) return detected;
      return static_cast<int>(req) <= static_cast<int>(detected) ? req
                                                                 : detected;
    }
  }
  return resolve_simd_isa(SimdIsa::kAuto);
}

void widen_row(SimdIsa tier, StoragePrec prec, const std::uint16_t* src,
               float* dst, std::int64_t count) {
  switch (tier) {
    case SimdIsa::kAvx512:
      detail::widen_row_avx512(prec, src, dst, count);
      return;
    case SimdIsa::kAvx2:
      detail::widen_row_avx2(prec, src, dst, count);
      return;
    default:
      detail::widen_row_scalar(prec, src, dst, count);
      return;
  }
}

void narrow_row(SimdIsa tier, StoragePrec prec, const float* src,
                std::uint16_t* dst, std::int64_t count, bool nt_stores) {
  switch (tier) {
    case SimdIsa::kAvx512:
      detail::narrow_row_avx512(prec, src, dst, count, nt_stores);
      return;
    case SimdIsa::kAvx2:
      detail::narrow_row_avx2(prec, src, dst, count, nt_stores);
      return;
    default:
      detail::narrow_row_scalar(prec, src, dst, count);
      return;
  }
}

void narrow_fence() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_sfence();
#endif
}

}  // namespace ibchol
