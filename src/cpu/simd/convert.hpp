// Storage-precision conversion primitives: fp32 <-> bf16 / fp16.
//
// Reduced-precision *storage* lanes hold the interleaved batch as 16-bit
// words; the chunk pipeline widens rows into fp32 pack scratch on the way
// into L2 and narrows on write-back, so every tile-op still accumulates in
// full fp32 registers and only the memory traffic halves. These are the
// conversion kernels that sit on that boundary.
//
// Design rules:
//  - The scalar primitives below are the semantics. They are exact
//    round-to-nearest-even, preserve NaN (quietened, payload-truncating),
//    Inf, and signed zero, and convert fp32 denormals correctly (no
//    flush). Property tests exercise them exhaustively.
//  - The bf16 SIMD tiers use pure integer emulation of the same
//    add-half-ulp trick on every tier, so bf16 conversion is bit-identical
//    scalar vs AVX2 vs AVX-512. We deliberately do NOT use the native
//    vcvtneps2bf16 family: it flushes input denormals to zero, which would
//    make the forced-scalar sanitizer build diverge from production.
//  - The fp16 SIMD tiers use F16C (vcvtph2ps / vcvtps2ph with explicit
//    round-to-nearest), gated at runtime on cpuid; hosts without F16C run
//    the exact scalar bodies inside the vector tier. F16C matches the
//    scalar algorithm bit-for-bit on all finite values and infinities;
//    NaNs stay NaNs on both paths (payload handling may differ).
//
// The row APIs take a *resolved* tier (never kAuto) so hot loops resolve
// dispatch once per pipeline plan, not per row; resolve_convert_isa()
// performs that resolution and honors the IBCHOL_CONVERT_ISA override
// (falling back to the IBCHOL_SIMD_ISA behavior when unset) — the hook
// check.sh --prec uses to soak the scalar bodies under sanitizers.
#pragma once

#include <bit>
#include <cstdint>

#include "kernels/options.hpp"

namespace ibchol {

// ------------------------------------------------------- scalar: bf16 ----

/// fp32 bits -> bf16 bits, round-to-nearest-even. NaN payloads are
/// truncated to the high mantissa bits with the quiet bit forced on (so a
/// signaling NaN cannot narrow to Inf).
[[nodiscard]] inline std::uint16_t bf16_bits_from_f32_bits(std::uint32_t x) {
  if ((x & 0x7FFFFFFFu) > 0x7F800000u) {  // NaN
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  const std::uint32_t rounding = 0x7FFFu + ((x >> 16) & 1u);
  return static_cast<std::uint16_t>((x + rounding) >> 16);
}

[[nodiscard]] inline std::uint32_t f32_bits_from_bf16_bits(std::uint16_t h) {
  return static_cast<std::uint32_t>(h) << 16;
}

[[nodiscard]] inline std::uint16_t bf16_from_f32(float f) {
  return bf16_bits_from_f32_bits(std::bit_cast<std::uint32_t>(f));
}

[[nodiscard]] inline float f32_from_bf16(std::uint16_t h) {
  return std::bit_cast<float>(f32_bits_from_bf16_bits(h));
}

// ------------------------------------------------------- scalar: fp16 ----

/// fp32 bits -> IEEE binary16 bits, round-to-nearest-even across the
/// normal, subnormal, overflow-to-Inf, and underflow-to-signed-zero
/// ranges. The mantissa-increment rounding carries naturally into the
/// exponent (65520 -> Inf, largest-subnormal -> smallest-normal).
[[nodiscard]] inline std::uint16_t fp16_bits_from_f32_bits(std::uint32_t x) {
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFFFFFFu;
  if (abs > 0x7F800000u) {  // NaN: truncate payload, force quiet bit
    return static_cast<std::uint16_t>(sign | 0x7C00u | ((abs >> 13) & 0x3FFu) |
                                      0x200u);
  }
  const int e = static_cast<int>(abs >> 23) - 127;
  const std::uint32_t m = abs & 0x7FFFFFu;
  if (e > 15) {  // includes Inf; finite e>15 is >= 2^16 > max fp16 + ulp/2
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (e >= -14) {  // normal range (carry may round up to Inf)
    std::uint32_t h =
        sign | (static_cast<std::uint32_t>(e + 15) << 10) | (m >> 13);
    const std::uint32_t rem = m & 0x1FFFu;
    h += (rem > 0x1000u) || (rem == 0x1000u && (h & 1u));
    return static_cast<std::uint16_t>(h);
  }
  if (e >= -25) {  // subnormal range (carry may round up to smallest normal)
    const std::uint32_t full = m | 0x800000u;
    const int shift = -e - 1;  // 14..24
    std::uint32_t h = full >> shift;
    const std::uint32_t rem = full & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    h += (rem > half) || (rem == half && (h & 1u));
    return static_cast<std::uint16_t>(sign | h);
  }
  return static_cast<std::uint16_t>(sign);  // underflows to signed zero
}

[[nodiscard]] inline std::uint32_t f32_bits_from_fp16_bits(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  std::uint32_t exp = (static_cast<std::uint32_t>(h) >> 10) & 0x1Fu;
  std::uint32_t man = static_cast<std::uint32_t>(h) & 0x3FFu;
  if (exp == 0x1Fu) {  // Inf / NaN (payload widens in place, stays quiet)
    return sign | 0x7F800000u | (man << 13);
  }
  if (exp == 0) {
    if (man == 0) return sign;  // signed zero
    std::uint32_t shift = 0;    // subnormal: renormalize
    while (!(man & 0x400u)) {
      man <<= 1;
      ++shift;
    }
    man &= 0x3FFu;
    return sign | ((113u - shift) << 23) | (man << 13);
  }
  return sign | ((exp + 112u) << 23) | (man << 13);
}

[[nodiscard]] inline std::uint16_t fp16_from_f32(float f) {
  return fp16_bits_from_f32_bits(std::bit_cast<std::uint32_t>(f));
}

[[nodiscard]] inline float f32_from_fp16(std::uint16_t h) {
  return std::bit_cast<float>(f32_bits_from_fp16_bits(h));
}

// ------------------------------------------------ precision-generic ------

/// Narrow one fp32 value to the given storage precision (kFp32 is invalid
/// here — reduced-precision code paths only).
[[nodiscard]] inline std::uint16_t narrow_f32(float f, StoragePrec prec) {
  return prec == StoragePrec::kFp16 ? fp16_from_f32(f) : bf16_from_f32(f);
}

[[nodiscard]] inline float widen_f32(std::uint16_t h, StoragePrec prec) {
  return prec == StoragePrec::kFp16 ? f32_from_fp16(h) : f32_from_bf16(h);
}

/// Bit-level non-finite screens for stored 16-bit words (the service's
/// poison screen runs these instead of widening): all-ones exponent field.
[[nodiscard]] inline bool is_nonfinite_bf16(std::uint16_t h) {
  return (h & 0x7F80u) == 0x7F80u;
}
[[nodiscard]] inline bool is_nonfinite_fp16(std::uint16_t h) {
  return (h & 0x7C00u) == 0x7C00u;
}
[[nodiscard]] inline bool is_nonfinite_prec(std::uint16_t h, StoragePrec p) {
  return p == StoragePrec::kFp16 ? is_nonfinite_fp16(h) : is_nonfinite_bf16(h);
}

// --------------------------------------------------------- row APIs ------

/// Resolved conversion tier (never kAuto). IBCHOL_CONVERT_ISA
/// ("scalar"/"avx2"/"avx512"/"auto") overrides when set (clamped to the
/// detected host tier, unknown spellings ignored); otherwise follows
/// resolve_simd_isa(kAuto), i.e. the IBCHOL_SIMD_ISA behavior. Reads the
/// environment on every call — resolve once per plan, not per row.
[[nodiscard]] SimdIsa resolve_convert_isa();

/// Widen `count` stored 16-bit elements to fp32. `tier` must be resolved
/// (kAuto is treated as scalar). Exact on every tier.
void widen_row(SimdIsa tier, StoragePrec prec, const std::uint16_t* src,
               float* dst, std::int64_t count);

/// Narrow `count` fp32 elements to the storage precision, RN-even. With
/// `nt_stores` the aligned body of the row is written with non-temporal
/// stores (scalar tier ignores the hint); callers must fence afterwards
/// via narrow_fence() once per unit, not per row.
void narrow_row(SimdIsa tier, StoragePrec prec, const float* src,
                std::uint16_t* dst, std::int64_t count, bool nt_stores);

/// Store fence pairing with narrow_row(nt_stores=true).
void narrow_fence();

}  // namespace ibchol
