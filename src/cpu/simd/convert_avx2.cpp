// AVX2 tier of the storage conversion kernels (8 elements per step).
//
// bf16 uses pure integer emulation of the scalar add-half-ulp RN-even
// trick — bit-identical to the scalar tier on every input including fp32
// denormals (the native vcvtneps2bf16 family flushes them, so we avoid
// it). fp16 uses F16C when the host executes it (runtime cpuid gate), the
// exact scalar bodies otherwise.
//
// Compiled with -mavx2 -mfma -mf16c when the compiler supports them (see
// src/cpu/CMakeLists.txt); otherwise this TU compiles with default flags
// and decays to the scalar tier.
#include "cpu/simd/convert.hpp"
#include "cpu/simd/convert_impl.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ibchol::detail {

#if defined(__AVX2__)

namespace {

inline __m128i narrow8_bf16(const float* src) {
  const __m256i x = _mm256_castps_si256(_mm256_loadu_ps(src));
  const __m256i abs = _mm256_and_si256(x, _mm256_set1_epi32(0x7FFFFFFF));
  // NaN lanes: abs > 0x7F800000 — both sides fit signed-positive range, so
  // the signed compare is exact. (A negative-NaN bit pattern wraps the
  // rounding add below, but its lane is blended away here.)
  const __m256i nan = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7F800000));
  const __m256i lsb =
      _mm256_and_si256(_mm256_srli_epi32(x, 16), _mm256_set1_epi32(1));
  __m256i r = _mm256_srli_epi32(
      _mm256_add_epi32(_mm256_add_epi32(x, _mm256_set1_epi32(0x7FFF)), lsb),
      16);
  const __m256i qnan =
      _mm256_or_si256(_mm256_srli_epi32(x, 16), _mm256_set1_epi32(0x40));
  r = _mm256_blendv_epi8(r, qnan, nan);
  // Pack 8x u32 (each <= 0xFFFF, so packus cannot saturate) down to 8x u16:
  // per-lane pack duplicates, permute picks the low qword of each lane.
  const __m256i packed = _mm256_packus_epi32(r, r);
  return _mm256_castsi256_si128(_mm256_permute4x64_epi64(packed, 0x08));
}

inline void store8_u16(std::uint16_t* dst, __m128i v, bool nt) {
  if (nt && (reinterpret_cast<std::uintptr_t>(dst) & 15u) == 0) {
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst), v);
  } else {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
  }
}

}  // namespace

void widen_row_avx2(StoragePrec prec, const std::uint16_t* src, float* dst,
                    std::int64_t count) {
  std::int64_t i = 0;
  if (prec == StoragePrec::kFp16) {
#if defined(__F16C__)
    if (cpu_has_f16c()) {
      for (; i + 8 <= count; i += 8) {
        const __m128i h =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
      }
    }
#endif
    for (; i < count; ++i) dst[i] = f32_from_fp16(src[i]);
    return;
  }
  for (; i + 8 <= count; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    _mm256_storeu_ps(dst + i, _mm256_castsi256_ps(w));
  }
  for (; i < count; ++i) dst[i] = f32_from_bf16(src[i]);
}

void narrow_row_avx2(StoragePrec prec, const float* src, std::uint16_t* dst,
                     std::int64_t count, bool nt_stores) {
  std::int64_t i = 0;
  if (prec == StoragePrec::kFp16) {
#if defined(__F16C__)
    if (cpu_has_f16c()) {
      for (; i + 8 <= count; i += 8) {
        const __m128i h = _mm256_cvtps_ph(
            _mm256_loadu_ps(src + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        store8_u16(dst + i, h, nt_stores);
      }
    }
#endif
    for (; i < count; ++i) dst[i] = fp16_from_f32(src[i]);
    return;
  }
  for (; i + 8 <= count; i += 8) {
    store8_u16(dst + i, narrow8_bf16(src + i), nt_stores);
  }
  for (; i < count; ++i) dst[i] = bf16_from_f32(src[i]);
}

#else  // !__AVX2__ — compiler cannot target this tier; decay to scalar.

void widen_row_avx2(StoragePrec prec, const std::uint16_t* src, float* dst,
                    std::int64_t count) {
  widen_row_scalar(prec, src, dst, count);
}

void narrow_row_avx2(StoragePrec prec, const float* src, std::uint16_t* dst,
                     std::int64_t count, bool /*nt_stores*/) {
  narrow_row_scalar(prec, src, dst, count);
}

#endif

}  // namespace ibchol::detail
