// AVX2+FMA tier of the vectorized executor. This translation unit is
// compiled with per-file -mavx2 -mfma (see src/cpu/CMakeLists.txt) — the
// rest of the build keeps its own flags, and runtime dispatch guarantees
// this code only executes on hosts with both features. If the compiler
// cannot target AVX2 at all, the table decays to the scalar tier.
#include "cpu/simd/vec_avx2.hpp"
#include "cpu/simd/vec_exec_impl.hpp"

namespace ibchol {

#if defined(__AVX2__) && defined(__FMA__)

template <>
const VecKernels<float>& vec_kernels_avx2<float>() {
  static const VecKernels<float> k =
      simd::make_vec_kernels<simd::VecAvx2F>(SimdIsa::kAvx2);
  return k;
}

template <>
const VecKernels<double>& vec_kernels_avx2<double>() {
  static const VecKernels<double> k =
      simd::make_vec_kernels<simd::VecAvx2D>(SimdIsa::kAvx2);
  return k;
}

#else  // compiler cannot target AVX2: decay to the scalar tier

template <>
const VecKernels<float>& vec_kernels_avx2<float>() {
  return vec_kernels_scalar<float>();
}

template <>
const VecKernels<double>& vec_kernels_avx2<double>() {
  return vec_kernels_scalar<double>();
}

#endif

}  // namespace ibchol
