// Scalar-tier instantiation of the vectorized executor: the portable
// VecGeneric traits, compiled unconditionally with the build's default
// flags (never per-file ISA flags), so this tier exists in every binary —
// the fallback runtime dispatch lands on when the host offers neither
// AVX-512 nor AVX2+FMA, and the tier sanitizer runs force via
// IBCHOL_SIMD_ISA=scalar.
#include "cpu/simd/vec.hpp"
#include "cpu/simd/vec_exec_impl.hpp"

namespace ibchol {

namespace {

// 8 float / 4 double lanes: wide enough that the fixed-trip lane loops
// vectorize to whatever the baseline ISA offers, and both widths keep an
// even number of group pairs per 32-lane block.
using ScalarF = simd::VecGeneric<float, 8>;
using ScalarD = simd::VecGeneric<double, 4>;

}  // namespace

template <>
const VecKernels<float>& vec_kernels_scalar<float>() {
  static const VecKernels<float> k =
      simd::make_vec_kernels<ScalarF>(SimdIsa::kScalar);
  return k;
}

template <>
const VecKernels<double>& vec_kernels_scalar<double>() {
  static const VecKernels<double> k =
      simd::make_vec_kernels<ScalarD>(SimdIsa::kScalar);
  return k;
}

}  // namespace ibchol
