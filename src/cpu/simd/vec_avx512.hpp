// AVX-512F vector traits (see vec.hpp for the trait contract). Only
// meaningful inside the translation unit compiled with -mavx512f.
#pragma once

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstdint>

namespace ibchol::simd {

struct VecAvx512F {
  using Elem = float;
  static constexpr int kWidth = 16;
  using V = __m512;

  static V load(const float* p) { return _mm512_load_ps(p); }
  static void store(float* p, V x) { _mm512_store_ps(p, x); }
  static void store_nt(float* p, V x) { _mm512_stream_ps(p, x); }
  static V set1(float x) { return _mm512_set1_ps(x); }
  static V mul(V a, V b) { return _mm512_mul_ps(a, b); }
  static V fnmadd(V a, V b, V c) { return _mm512_fnmadd_ps(a, b, c); }
  static V sqrt(V x) { return _mm512_sqrt_ps(x); }
  static V div(V a, V b) { return _mm512_div_ps(a, b); }

  static std::uint32_t gt_zero_mask(V x) {
    // Ordered non-signaling compare: NaN lanes report "not > 0".
    return _mm512_cmp_ps_mask(x, _mm512_setzero_ps(), _CMP_GT_OQ);
  }

  // Fast math: rsqrt14/rcp14 seeds (2^-14 relative error) + one Newton
  // step — the CPU analog of MUFU.RSQ / MUFU.RCP with the fixup.
  static V fast_rsqrt(V x) {
    const V y = _mm512_rsqrt14_ps(x);
    const V half = _mm512_set1_ps(0.5f), three = _mm512_set1_ps(3.0f);
    return _mm512_mul_ps(
        _mm512_mul_ps(half, y),
        _mm512_fnmadd_ps(_mm512_mul_ps(x, y), y, three));
  }
  static V fast_sqrt(V x) {
    const V approx = _mm512_mul_ps(x, fast_rsqrt(x));
    const __mmask16 pos =
        _mm512_cmp_ps_mask(x, _mm512_setzero_ps(), _CMP_GT_OQ);
    // Non-positive lanes (incl. NaN) take the exact sqrt: 0 -> 0,
    // negatives -> NaN, as the scalar FastMath policy guarantees.
    return _mm512_mask_blend_ps(pos, _mm512_sqrt_ps(x), approx);
  }
  static V fast_recip(V x) {
    const V y = _mm512_rcp14_ps(x);
    return _mm512_mul_ps(
        y, _mm512_fnmadd_ps(x, y, _mm512_set1_ps(2.0f)));
  }
};

struct VecAvx512D {
  using Elem = double;
  static constexpr int kWidth = 8;
  using V = __m512d;

  static V load(const double* p) { return _mm512_load_pd(p); }
  static void store(double* p, V x) { _mm512_store_pd(p, x); }
  static void store_nt(double* p, V x) { _mm512_stream_pd(p, x); }
  static V set1(double x) { return _mm512_set1_pd(x); }
  static V mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V fnmadd(V a, V b, V c) { return _mm512_fnmadd_pd(a, b, c); }
  static V sqrt(V x) { return _mm512_sqrt_pd(x); }
  static V div(V a, V b) { return _mm512_div_pd(a, b); }

  static std::uint32_t gt_zero_mask(V x) {
    return _mm512_cmp_pd_mask(x, _mm512_setzero_pd(), _CMP_GT_OQ);
  }

  // Fast math is a single-precision feature (as in CUDA); double stays IEEE.
  static V fast_sqrt(V x) { return sqrt(x); }
  static V fast_recip(V x) { return div(set1(1.0), x); }
};

}  // namespace ibchol::simd

#endif  // __AVX512F__
