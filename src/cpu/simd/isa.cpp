#include "cpu/simd/isa.hpp"

#include <cstdlib>
#include <string>

namespace ibchol {

namespace {

SimdIsa detect_impl() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return SimdIsa::kAvx512;
  // The AVX2 tier's bodies are compiled with -mavx2 -mfma and use FMA
  // unconditionally, so both features must be present to select it.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdIsa::kAvx2;
  }
#endif
  return SimdIsa::kScalar;
}

}  // namespace

SimdIsa detect_simd_isa() {
  static const SimdIsa detected = detect_impl();
  return detected;
}

SimdIsa resolve_simd_isa(SimdIsa requested) {
  if (const char* env = std::getenv("IBCHOL_SIMD_ISA")) {
    const std::string s(env);
    if (s == "scalar") requested = SimdIsa::kScalar;
    else if (s == "avx2") requested = SimdIsa::kAvx2;
    else if (s == "avx512") requested = SimdIsa::kAvx512;
    else if (s == "auto") requested = SimdIsa::kAuto;
    // Unknown spellings are ignored: a typo'd override must never turn a
    // production run into a crash.
  }
  const SimdIsa detected = detect_simd_isa();
  if (requested == SimdIsa::kAuto) return detected;
  // Tiers are ordered scalar < avx2 < avx512; clamp to what the host has.
  return static_cast<int>(requested) <= static_cast<int>(detected)
             ? requested
             : detected;
}

}  // namespace ibchol
