// Template bodies of the vectorized executor, instantiated once per ISA
// tier (see vec_exec_scalar/avx2/avx512.cpp). Not part of the public API.
//
// Every body is a template over a vec trait V (vec.hpp) and a math adapter
// (VecIeee / VecFast below), and mirrors the interpreter in tile_exec.cpp
// op for op: identical operations on identical values in identical
// per-lane order, so the IEEE instantiations produce bit-identical factors
// (the interpreter's update loops contract onto FMA under the release
// flags; these bodies spell the same vfnmadd explicitly).
//
// The whole-matrix and fused bodies use the left-looking, in-place
// formulation: the active column is loaded (or accumulated) in vector
// registers, updated against the already-finished columns read straight
// from the interleaved buffer with aligned loads, then scaled and stored
// once. Per element (i,j) the update sequence k = 0..j-1 and the final
// scale are exactly the interpreter's right-looking sequence — only the
// interleaving across elements differs — so results stay bit-identical
// while each element is written once instead of j times.
#pragma once

#include <cstdint>

#include "cpu/simd/vec_exec.hpp"
#include "cpu/tile_exec_detail.hpp"
#include "util/error.hpp"

namespace ibchol::simd {

// ------------------------------------------------------ math adapters ----

template <class V>
struct VecIeee {
  static constexpr MathMode kMode = MathMode::kIeee;
  using VV = typename V::V;
  static VV sqrt(VV x) { return V::sqrt(x); }
  static VV recip(VV x) { return V::div(V::set1(typename V::Elem{1}), x); }
};

template <class V>
struct VecFast {
  static constexpr MathMode kMode = MathMode::kFastMath;
  using VV = typename V::V;
  static VV sqrt(VV x) { return V::fast_sqrt(x); }
  static VV recip(VV x) { return V::fast_recip(x); }
};

// ------------------------------------------------------ pivot checking ---

// Applies the interpreter's pivot rule to one vector group: lanes where
// !(x > 0) — including NaN — and info is still clear get the 1-based
// failing column. The common all-healthy case is one mask test.
template <class V>
inline void flag_nonpositive(typename V::V x, std::int32_t* info, int g,
                             int column_1based) {
  const std::uint32_t ok = V::gt_zero_mask(x);
  const std::uint32_t all = V::kWidth >= 32
                                ? 0xffffffffu
                                : (1u << V::kWidth) - 1u;
  std::uint32_t bad = ~ok & all;
  while (bad != 0) {
    const int l = __builtin_ctz(bad);
    bad &= bad - 1;
    if (info[g + l] == 0) info[g + l] = column_1based;
  }
}

// ------------------------------------------------- program executor ------

// One tile op for one lane block; mirrors run_op in tile_exec.cpp with the
// lane loop expressed as V::kWidth-wide vector groups.
template <class V, class Math>
void run_vec_op(const TileOp& op, exec_detail::RegFile<typename V::Elem>& rf,
                std::int64_t rstride, std::int64_t cstride,
                typename V::Elem* __restrict__ base, std::int32_t* info,
                bool nt_stores) {
  using T = typename V::Elem;
  using VV = typename V::V;
  constexpr int W = V::kWidth;
  static_assert(kLaneBlock % W == 0, "vector width must divide a lane block");
  const int rows = op.rows;
  const int cols = op.cols;
  switch (op.kind) {
    case TileOp::Kind::kLoadFull:
    case TileOp::Kind::kLoadLower: {
      const bool lower = op.kind == TileOp::Kind::kLoadLower;
      for (int j = 0; j < cols; ++j) {
        for (int i = lower ? j : 0; i < rows; ++i) {
          const T* src =
              base + (op.row0 + i) * rstride + (op.col0 + j) * cstride;
          T* dst = rf.tile(op.r1, i, j);
          for (int g = 0; g < kLaneBlock; g += W) {
            V::store(dst + g, V::load(src + g));
          }
        }
      }
      break;
    }
    case TileOp::Kind::kStoreFull:
    case TileOp::Kind::kStoreLower: {
      const bool lower = op.kind == TileOp::Kind::kStoreLower;
      for (int j = 0; j < cols; ++j) {
        for (int i = lower ? j : 0; i < rows; ++i) {
          T* dst = base + (op.row0 + i) * rstride + (op.col0 + j) * cstride;
          const T* src = rf.tile(op.r1, i, j);
          for (int g = 0; g < kLaneBlock; g += W) {
            const VV x = V::load(src + g);
            if (nt_stores) {
              V::store_nt(dst + g, x);
            } else {
              V::store(dst + g, x);
            }
          }
        }
      }
      break;
    }
    case TileOp::Kind::kPotrf: {
      for (int g = 0; g < kLaneBlock; g += W) {
        for (int k = 0; k < rows; ++k) {
          T* akk = rf.tile(op.r1, k, k);
          VV d = V::load(akk + g);
          if (info != nullptr) flag_nonpositive<V>(d, info, g, op.row0 + k + 1);
          const VV s = Math::sqrt(d);
          V::store(akk + g, s);
          const VV inv = Math::recip(s);
          for (int m = k + 1; m < rows; ++m) {
            T* amk = rf.tile(op.r1, m, k);
            V::store(amk + g, V::mul(V::load(amk + g), inv));
          }
          for (int nn = k + 1; nn < rows; ++nn) {
            const VV ank = V::load(rf.tile(op.r1, nn, k) + g);
            for (int m = nn; m < rows; ++m) {
              const VV amk = V::load(rf.tile(op.r1, m, k) + g);
              T* amn = rf.tile(op.r1, m, nn);
              V::store(amn + g, V::fnmadd(ank, amk, V::load(amn + g)));
            }
          }
        }
      }
      break;
    }
    case TileOp::Kind::kTrsm: {
      for (int g = 0; g < kLaneBlock; g += W) {
        for (int k = 0; k < cols; ++k) {
          const VV inv = Math::recip(V::load(rf.tile(op.r1, k, k) + g));
          for (int m = 0; m < rows; ++m) {
            T* bmk = rf.tile(op.r2, m, k);
            V::store(bmk + g, V::mul(V::load(bmk + g), inv));
          }
          for (int nn = k + 1; nn < cols; ++nn) {
            const VV lnk = V::load(rf.tile(op.r1, nn, k) + g);
            for (int m = 0; m < rows; ++m) {
              const VV bmk = V::load(rf.tile(op.r2, m, k) + g);
              T* bmn = rf.tile(op.r2, m, nn);
              V::store(bmn + g, V::fnmadd(bmk, lnk, V::load(bmn + g)));
            }
          }
        }
      }
      break;
    }
    case TileOp::Kind::kSyrk: {
      for (int g = 0; g < kLaneBlock; g += W) {
        for (int m = 0; m < rows; ++m) {
          for (int nn = 0; nn <= m; ++nn) {
            T* cmn = rf.tile(op.r2, m, nn);
            VV acc = V::load(cmn + g);
            for (int k = 0; k < op.kdim; ++k) {
              acc = V::fnmadd(V::load(rf.tile(op.r1, m, k) + g),
                              V::load(rf.tile(op.r1, nn, k) + g), acc);
            }
            V::store(cmn + g, acc);
          }
        }
      }
      break;
    }
    case TileOp::Kind::kGemm: {
      for (int g = 0; g < kLaneBlock; g += W) {
        for (int m = 0; m < rows; ++m) {
          for (int nn = 0; nn < cols; ++nn) {
            T* cmn = rf.tile(op.r3, m, nn);
            VV acc = V::load(cmn + g);
            for (int k = 0; k < op.kdim; ++k) {
              acc = V::fnmadd(V::load(rf.tile(op.r1, m, k) + g),
                              V::load(rf.tile(op.r2, nn, k) + g), acc);
            }
            V::store(cmn + g, acc);
          }
        }
      }
      break;
    }
  }
}

template <class V, class Math>
void run_program_impl(const TileProgram& program, typename V::Elem* base,
                      std::int64_t estride, std::int32_t* info,
                      Triangle triangle, bool nt_stores) {
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * program.n : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * program.n;
  exec_detail::RegFile<typename V::Elem> rf;
  for (const TileOp& op : program.ops) {
    run_vec_op<V, Math>(op, rf, rstride, cstride, base, info, nt_stores);
  }
}

// ---------------------------------------- whole matrix (left-looking) ----

// Factors one pair of vector groups (lanes [g, g+2W)) of one lane block,
// left-looking and in place. Processing two groups at once fills the FMA
// pipelines while each group's sqrt/div chain resolves. MaxN bounds the
// column arrays; N is the runtime dimension (N == MaxN for the fused
// compile-time instantiations, letting the optimizer fully unroll).
template <class V, class Math, int MaxN>
inline void factor_group_pair(int n, typename V::Elem* __restrict__ gb,
                              std::int64_t rstride, std::int64_t cstride,
                              std::int32_t* info, int g) {
  using VV = typename V::V;
  constexpr int W = V::kWidth;
  VV c0[MaxN], c1[MaxN];
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      c0[i] = V::load(gb + i * rstride + j * cstride);
      c1[i] = V::load(gb + i * rstride + j * cstride + W);
    }
    for (int k = 0; k < j; ++k) {
      const VV l0 = V::load(gb + j * rstride + k * cstride);
      const VV l1 = V::load(gb + j * rstride + k * cstride + W);
      for (int i = j; i < n; ++i) {
        c0[i] = V::fnmadd(l0, V::load(gb + i * rstride + k * cstride), c0[i]);
        c1[i] =
            V::fnmadd(l1, V::load(gb + i * rstride + k * cstride + W), c1[i]);
      }
    }
    if (info != nullptr) {
      flag_nonpositive<V>(c0[j], info, g, j + 1);
      flag_nonpositive<V>(c1[j], info, g + W, j + 1);
    }
    const VV s0 = Math::sqrt(c0[j]);
    const VV s1 = Math::sqrt(c1[j]);
    const VV i0 = Math::recip(s0);
    const VV i1 = Math::recip(s1);
    V::store(gb + j * rstride + j * cstride, s0);
    V::store(gb + j * rstride + j * cstride + W, s1);
    for (int i = j + 1; i < n; ++i) {
      V::store(gb + i * rstride + j * cstride, V::mul(c0[i], i0));
      V::store(gb + i * rstride + j * cstride + W, V::mul(c1[i], i1));
    }
  }
}

template <class V, class Math, int MaxN>
void factor_lane_block(int n, typename V::Elem* base, std::int64_t estride,
                       std::int32_t* info, Triangle triangle) {
  constexpr int W = V::kWidth;
  static_assert(kLaneBlock % (2 * W) == 0,
                "a lane block must hold an even number of vector groups");
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * n : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * n;
  for (int g = 0; g < kLaneBlock; g += 2 * W) {
    factor_group_pair<V, Math, MaxN>(n, base + g, rstride, cstride, info, g);
  }
}

template <class V, class Math>
bool whole_matrix_impl(int n, typename V::Elem* base, std::int64_t estride,
                       std::int32_t* info, Triangle triangle) {
  if (n > kMaxVecWholeDim) return false;
  factor_lane_block<V, Math, kMaxVecWholeDim>(n, base, estride, info,
                                              triangle);
  return true;
}

// ------------------------------------ blocked whole matrix (panelled) ----

// Cache-blocked variant of factor_group_pair: columns are factored in
// panels of PB. For a full interior panel the trailing update against the
// finished columns k in [0, p0) runs first as a register-tiled gemm sweep
// (IB row strips x PB panel columns of accumulators), then the panel is
// factored with its history restricted to the in-panel columns [p0, j).
// Per element (i,j) the fnmadd sequence is still k = 0..j-1 in increasing
// order on identical values, so the result is bit-identical to the
// unblocked body; the win is purely locality — each k-column of the lane
// block is streamed once per panel, not once per column.
template <class V, class Math, int PB, int IB>
inline void factor_group_blocked(int n, typename V::Elem* __restrict__ gb,
                                 std::int64_t rstride, std::int64_t cstride,
                                 std::int32_t* info, int g) {
  using VV = typename V::V;
  constexpr int W = V::kWidth;
  for (int p0 = 0; p0 < n; p0 += PB) {
    const int pw = n - p0 < PB ? n - p0 : PB;
    int kstart = 0;
    if (pw == PB && p0 > 0) {
      kstart = p0;
      // Phase 1: C[i, p0+jj] -= sum_{k < p0} A[i, k] * A[p0+jj, k], strips
      // of IB rows at a time with the full IB x PB accumulator tile in
      // vector registers.
      for (int i0 = p0; i0 < n; i0 += IB) {
        const int ih = n - i0 < IB ? n - i0 : IB;
        VV acc0[IB][PB], acc1[IB][PB];
        for (int ii = 0; ii < ih; ++ii) {
          for (int jj = 0; jj < PB; ++jj) {
            acc0[ii][jj] =
                V::load(gb + (i0 + ii) * rstride + (p0 + jj) * cstride);
            acc1[ii][jj] =
                V::load(gb + (i0 + ii) * rstride + (p0 + jj) * cstride + W);
          }
        }
        if (ih == IB) {
          for (int k = 0; k < p0; ++k) {
            VV l0[PB], l1[PB];
            for (int jj = 0; jj < PB; ++jj) {
              l0[jj] = V::load(gb + (p0 + jj) * rstride + k * cstride);
              l1[jj] = V::load(gb + (p0 + jj) * rstride + k * cstride + W);
            }
            for (int ii = 0; ii < IB; ++ii) {
              const VV a0 = V::load(gb + (i0 + ii) * rstride + k * cstride);
              const VV a1 =
                  V::load(gb + (i0 + ii) * rstride + k * cstride + W);
              for (int jj = 0; jj < PB; ++jj) {
                acc0[ii][jj] = V::fnmadd(a0, l0[jj], acc0[ii][jj]);
                acc1[ii][jj] = V::fnmadd(a1, l1[jj], acc1[ii][jj]);
              }
            }
          }
        } else {
          for (int k = 0; k < p0; ++k) {
            for (int ii = 0; ii < ih; ++ii) {
              const VV a0 = V::load(gb + (i0 + ii) * rstride + k * cstride);
              const VV a1 =
                  V::load(gb + (i0 + ii) * rstride + k * cstride + W);
              for (int jj = 0; jj < PB; ++jj) {
                const VV l0 = V::load(gb + (p0 + jj) * rstride + k * cstride);
                const VV l1 =
                    V::load(gb + (p0 + jj) * rstride + k * cstride + W);
                acc0[ii][jj] = V::fnmadd(a0, l0, acc0[ii][jj]);
                acc1[ii][jj] = V::fnmadd(a1, l1, acc1[ii][jj]);
              }
            }
          }
        }
        for (int ii = 0; ii < ih; ++ii) {
          for (int jj = 0; jj < PB; ++jj) {
            // Strictly-above-diagonal entries of the panel are padding in
            // the lower-triangular schedule; leave them untouched so the
            // result stays bit-identical to the unblocked in-place body.
            if (i0 + ii < p0 + jj) continue;
            V::store(gb + (i0 + ii) * rstride + (p0 + jj) * cstride,
                     acc0[ii][jj]);
            V::store(gb + (i0 + ii) * rstride + (p0 + jj) * cstride + W,
                     acc1[ii][jj]);
          }
        }
      }
    }
    // Phase 2: factor the panel's columns; history restricted to
    // [kstart, j) — the [0, kstart) part was applied in phase 1.
    VV c0[kMaxVecWholeDim], c1[kMaxVecWholeDim];
    for (int j = p0; j < p0 + pw; ++j) {
      for (int i = j; i < n; ++i) {
        c0[i] = V::load(gb + i * rstride + j * cstride);
        c1[i] = V::load(gb + i * rstride + j * cstride + W);
      }
      for (int k = kstart; k < j; ++k) {
        const VV l0 = V::load(gb + j * rstride + k * cstride);
        const VV l1 = V::load(gb + j * rstride + k * cstride + W);
        for (int i = j; i < n; ++i) {
          c0[i] =
              V::fnmadd(l0, V::load(gb + i * rstride + k * cstride), c0[i]);
          c1[i] = V::fnmadd(l1, V::load(gb + i * rstride + k * cstride + W),
                            c1[i]);
        }
      }
      if (info != nullptr) {
        flag_nonpositive<V>(c0[j], info, g, j + 1);
        flag_nonpositive<V>(c1[j], info, g + W, j + 1);
      }
      const VV s0 = Math::sqrt(c0[j]);
      const VV s1 = Math::sqrt(c1[j]);
      const VV i0v = Math::recip(s0);
      const VV i1v = Math::recip(s1);
      V::store(gb + j * rstride + j * cstride, s0);
      V::store(gb + j * rstride + j * cstride + W, s1);
      for (int i = j + 1; i < n; ++i) {
        V::store(gb + i * rstride + j * cstride, V::mul(c0[i], i0v));
        V::store(gb + i * rstride + j * cstride + W, V::mul(c1[i], i1v));
      }
    }
  }
}

template <class V, class Math>
bool blocked_impl(int n, typename V::Elem* base, std::int64_t estride,
                  std::int32_t* info, Triangle triangle) {
  if (n > kMaxVecWholeDim) return false;
  constexpr int W = V::kWidth;
  static_assert(kLaneBlock % (2 * W) == 0,
                "a lane block must hold an even number of vector groups");
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * n : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * n;
  for (int g = 0; g < kLaneBlock; g += 2 * W) {
    factor_group_blocked<V, Math, kVecPanelWidth, kVecPanelRows>(
        n, base + g, rstride, cstride, info, g);
  }
  return true;
}

// Compile-time-n dispatch: one fully unrolled instantiation per dimension.
template <class V, class Math, int N>
bool fused_switch(int n, typename V::Elem* base, std::int64_t estride,
                  std::int32_t* info, Triangle triangle) {
  if constexpr (N == 0) {
    (void)n; (void)base; (void)estride; (void)info; (void)triangle;
    return false;
  } else {
    if (n == N) {
      factor_lane_block<V, Math, N>(N, base, estride, info, triangle);
      return true;
    }
    return fused_switch<V, Math, N - 1>(n, base, estride, info, triangle);
  }
}

template <class V, class Math>
bool fused_impl(int n, typename V::Elem* base, std::int64_t estride,
                std::int32_t* info, Triangle triangle) {
  return fused_switch<V, Math, kMaxVecFusedDim>(n, base, estride, info,
                                                triangle);
}

// ------------------------------------------------------ table builder ----

// Builds one tier's VecKernels table from a vec trait. The MathMode switch
// happens here (per lane block, not per op), selecting the VecIeee or
// VecFast instantiation.
template <typename V>
[[nodiscard]] VecKernels<typename V::Elem> make_vec_kernels(SimdIsa tier) {
  using T = typename V::Elem;
  VecKernels<T> k;
  k.tier = tier;
  k.width = V::kWidth;
  k.run_program = [](const TileProgram& program, MathMode math, T* base,
                     std::int64_t estride, std::int32_t* info,
                     Triangle triangle, bool nt_stores) {
    IBCHOL_CHECK(program.nb <= kMaxTileSize,
                 "tile size exceeds the executor's register file");
    IBCHOL_CHECK(program.num_register_tiles() <= kMaxRegisterTiles,
                 "program uses too many register tiles");
    if (math == MathMode::kFastMath) {
      run_program_impl<V, VecFast<V>>(program, base, estride, info, triangle,
                                      nt_stores);
    } else {
      run_program_impl<V, VecIeee<V>>(program, base, estride, info, triangle,
                                      nt_stores);
    }
  };
  k.whole_matrix = [](int n, MathMode math, T* base, std::int64_t estride,
                      std::int32_t* info, Triangle triangle) {
    return math == MathMode::kFastMath
               ? whole_matrix_impl<V, VecFast<V>>(n, base, estride, info,
                                                  triangle)
               : whole_matrix_impl<V, VecIeee<V>>(n, base, estride, info,
                                                  triangle);
  };
  k.fused = [](int n, MathMode math, T* base, std::int64_t estride,
               std::int32_t* info, Triangle triangle) {
    return math == MathMode::kFastMath
               ? fused_impl<V, VecFast<V>>(n, base, estride, info, triangle)
               : fused_impl<V, VecIeee<V>>(n, base, estride, info, triangle);
  };
  k.blocked = [](int n, MathMode math, T* base, std::int64_t estride,
                 std::int32_t* info, Triangle triangle) {
    return math == MathMode::kFastMath
               ? blocked_impl<V, VecFast<V>>(n, base, estride, info, triangle)
               : blocked_impl<V, VecIeee<V>>(n, base, estride, info, triangle);
  };
  return k;
}

}  // namespace ibchol::simd
