// AVX-512F tier of the vectorized executor. This translation unit is
// compiled with per-file -mavx512f -mfma (see src/cpu/CMakeLists.txt);
// runtime dispatch guarantees the code only executes on AVX-512F hosts.
// If the compiler cannot target AVX-512, the table decays to the AVX2 tier
// (which may itself decay to scalar).
#include "cpu/simd/vec_avx512.hpp"
#include "cpu/simd/vec_exec_impl.hpp"

namespace ibchol {

#if defined(__AVX512F__)

template <>
const VecKernels<float>& vec_kernels_avx512<float>() {
  static const VecKernels<float> k =
      simd::make_vec_kernels<simd::VecAvx512F>(SimdIsa::kAvx512);
  return k;
}

template <>
const VecKernels<double>& vec_kernels_avx512<double>() {
  static const VecKernels<double> k =
      simd::make_vec_kernels<simd::VecAvx512D>(SimdIsa::kAvx512);
  return k;
}

#else  // compiler cannot target AVX-512: decay to the AVX2 tier

template <>
const VecKernels<float>& vec_kernels_avx512<float>() {
  return vec_kernels_avx2<float>();
}

template <>
const VecKernels<double>& vec_kernels_avx512<double>() {
  return vec_kernels_avx2<double>();
}

#endif

}  // namespace ibchol
