// Chunk-resident execution pipeline for interleaved layouts.
//
// The paper's chunked interleaved layout exists to keep one chunk of C
// matrices resident in fast memory while a thread block works on it. The
// CPU substrate gets the same effect here at *execution* time, for both
// executors and for both interleaved layouts:
//
//  * kInterleavedChunked — the address map is already chunk-local; the
//    pipeline walks lane blocks chunk by chunk (static schedule keeps a
//    chunk on one worker) and software-prefetches the next lane block.
//  * kInterleaved — the element stride equals the padded batch, so at
//    large batches every column sweep strides megabytes of memory and the
//    TLB/caches thrash. The pipeline packs one chunk of C lanes at a time
//    into a 64-byte-aligned, L2-sized scratch buffer (the rows of C
//    elements are contiguous in the source, so packing is n² memcpys),
//    runs the whole factorization over the chunk while it is hot, then
//    writes the factor back — with non-temporal streaming stores when the
//    batch is far larger than the cache hierarchy, so the write-back does
//    not evict the next chunk.
//
// Chunk size is thereby a live CPU tuning knob (CpuFactorOptions::
// chunk_size / TuningParams::chunk_size) even for the non-chunked layout,
// where it selects the pack-scratch size; 0 picks the sizing rule of
// chunk_scratch_lanes(). The pipeline also owns the per-(n, isa) executor
// dispatch table behind CpuExec::kAuto.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>

#include "cpu/batch_factor.hpp"
#include "kernels/options.hpp"
#include "kernels/tile_program.hpp"
#include "layout/layout.hpp"

namespace ibchol {

/// Scratch budget for one packed chunk: half a 2 MiB L2 slice, leaving the
/// other half for the lane-block column sweeps and the next chunk's
/// prefetched lines.
inline constexpr std::size_t kChunkScratchBudget = 1u << 20;

/// Batch footprint beyond which the write-back of a packed chunk uses
/// non-temporal streaming stores (the factor will not be re-read before
/// the caches have turned over anyway). IBCHOL_CHUNK_NT=0/1 overrides.
inline constexpr std::size_t kNtStoreMinBytes = 32u << 20;

/// Floor of the automatic packing threshold (see pack_threshold_bytes):
/// used verbatim when the host's last-level cache size cannot be detected.
inline constexpr std::size_t kPackMinBytes = 32u << 20;

/// Batch footprint beyond which automatic chunk sizing (chunk_size == 0)
/// stages the simple interleaved layout through pack scratch: the
/// pack/unpack round trip moves the whole batch through memory twice, which
/// only pays once the batch has clearly outgrown the last-level cache and
/// the wide-stride column sweeps actually miss. The threshold is four times
/// the detected LLC size (sysfs), with kPackMinBytes as the floor when
/// detection fails. An explicit chunk_size is a tuning knob and always
/// packs, so sweeps can measure both regimes at any batch size.
[[nodiscard]] std::size_t pack_threshold_bytes();

/// Columns of the *next* lane block prefetched while the current one is
/// being factored (each column is n element-rows of kLaneBlock elements).
inline constexpr int kPrefetchCols = 2;

/// Smallest dimension at which the cache-blocked vectorized whole-matrix
/// body (VecKernels::blocked) beats the unblocked one: below this the lane
/// block fits L1 and the panel bookkeeping only costs; measured crossover
/// on AVX-512 (n = 24 still favors the unblocked body, n = 32 and up the
/// blocked one; see DESIGN §8).
inline constexpr int kVecBlockedMinDim = 28;

/// Scratch chunk size (in matrices) for dimension n: the largest multiple
/// of kLaneBlock in [kLaneBlock, 512] whose chunk (n²·C elements) fits
/// kChunkScratchBudget. 512 matches the top of the paper's chunk-size
/// sweep (Fig 18).
[[nodiscard]] int chunk_scratch_lanes(int n, std::size_t elem_size);

/// The executor CpuExec::kAuto resolves to for dimension n on SIMD tier
/// `isa` (kAuto = the host's detected tier). Seeded from measured
/// crossovers on the CPU substrate: the vectorized fused/blocked in-place
/// pipeline wins at every n ≤ kMaxVecWholeDim on the AVX tiers; the scalar
/// tier and larger n belong to the specialized executor (whose tile
/// kernels the compiler autovectorizes). An installed instant-tuning
/// override (set_cpu_exec_overrides) wins over the static table for its
/// (n, resolved tier) entries. Never returns kAuto.
[[nodiscard]] CpuExec resolve_cpu_exec(int n, SimdIsa isa);

/// Hot-swappable overrides for the kAuto dispatch table above, keyed on
/// (n, resolved SIMD tier). Installed by the instant-tuning subsystem
/// (src/tune/instant.hpp) from measured winners; nullptr restores the
/// static table. The table is an immutable snapshot behind shared_ptr, so
/// concurrent resolve_cpu_exec calls never observe a half-applied swap.
void set_cpu_exec_overrides(
    std::shared_ptr<const std::map<std::pair<int, SimdIsa>, CpuExec>> table);

/// Packs `lanes` lanes of a simple-interleaved region into chunk scratch:
/// element-row e (of `elems` = n² rows) moves from src[e*src_stride .. +
/// lanes) to dst[e*lanes .. + lanes). dst must hold elems*lanes elements.
template <typename T>
void pack_chunk(const T* src, std::int64_t src_stride, T* dst,
                std::int64_t lanes, std::int64_t elems);

/// Inverse of pack_chunk. `nt_stores` streams the rows past the cache with
/// non-temporal stores (falls back to plain copies when the destination is
/// not 16-byte aligned or on non-x86 hosts); the store fence is issued
/// before returning.
template <typename T>
void unpack_chunk(const T* src, std::int64_t lanes, T* dst,
                  std::int64_t dst_stride, std::int64_t elems,
                  bool nt_stores);

template <typename T>
class SpecializedProgram;
template <typename T>
struct VecKernels;

/// Per-worker pipeline event tallies, accumulated in plain integers on the
/// hot path and folded into the obs counter registry once per worker (see
/// fold_unit_counters). Both the OpenMP driver and the persistent service
/// workers (src/svc/) use this so a counter never costs per-lane-block
/// atomics.
struct ChunkUnitCounters {
  std::int64_t packed_units = 0;
  std::int64_t inplace_lane_blocks = 0;
  std::int64_t prefetched_lane_blocks = 0;
  std::int64_t nt_store_bytes = 0;
};

/// Folds nonzero tallies into the "pipeline.*" obs counters.
void fold_unit_counters(const ChunkUnitCounters& counters);

/// Tallies one executor dispatch in the "cpu.exec.*" obs counters. `exec`
/// must be a resolved executor (never kAuto).
void note_exec_dispatch(CpuExec exec);

/// Everything one interleaved-layout factorization resolves before its hot
/// loop, plus the unit geometry that loop iterates over. A *unit* is the
/// pipeline's scheduling granule: one packed chunk of pack_lanes lanes when
/// the batch is staged through scratch, otherwise unit_lanes consecutive
/// lanes of the in-place traversal (one layout chunk for the chunked
/// layout). Units are independent — any thread may run any unit in any
/// order and the factor bits are identical — which is what lets the
/// persistent work-stealing service (src/svc/) drive the same stage
/// functions as the OpenMP driver below.
///
/// The struct holds non-owning pointers only (program/spec/vk outlive the
/// run; spec is set by the caller when needs_spec_program()), so a plan is
/// trivially copyable and can live in a pooled request slot without heap
/// traffic.
template <typename T>
struct ChunkExecPlan {
  BatchLayout layout = BatchLayout::interleaved(1, 1);
  int n = 0;
  CpuExec exec = CpuExec::kSpecialized;
  bool whole_matrix = false;  ///< full unrolling
  bool fused_spec = false;    ///< specialized fused whole-program kernel
  MathMode math = MathMode::kIeee;
  Triangle triangle = Triangle::kLower;
  const TileProgram* program = nullptr;
  const SpecializedProgram<T>* spec = nullptr;
  const VecKernels<T>* vk = nullptr;
  bool vec_nt_stores = false;  ///< run_program streaming stores (env hook)
  bool need_wm_scratch = false;  ///< interpreter scratch-triangle fallback

  /// Element width of the *caller's* batch. kFp32 is the classic path
  /// (storage == compute == T). Reduced-precision plans (built by
  /// plan_chunk_exec_mixed, T = float only) hold the batch as 16-bit words
  /// and always stage units through fp32 pack scratch: pack_unit_mixed
  /// widens rows on the way into L2, the unchanged factor_unit runs the
  /// fp32 compute body over scratch, writeback_unit_mixed narrows on the
  /// way out. convert_isa is the conversion tier resolved once at plan
  /// time (IBCHOL_CONVERT_ISA hook), never kAuto.
  StoragePrec storage = StoragePrec::kFp32;
  SimdIsa convert_isa = SimdIsa::kScalar;

  std::int64_t unit_lanes = 0;  ///< lanes per unit (multiple of kLaneBlock)
  std::int64_t num_units = 0;
  int pack_lanes = 0;    ///< >0: units stage through pack scratch
  bool nt_stores = false;  ///< packed write-back streams past the caches
  std::size_t pack_scratch_elems = 0;  ///< n²·pack_lanes, 0 when in-place
  std::size_t wm_scratch_elems = 0;    ///< per-worker whole-matrix scratch

  /// True when the caller must bind a SpecializedProgram (specialized
  /// executor, partial unrolling) into `spec` before running units.
  [[nodiscard]] bool needs_spec_program() const noexcept {
    return exec == CpuExec::kSpecialized && !whole_matrix && !fused_spec;
  }

  [[nodiscard]] std::int64_t first_lane(std::int64_t unit) const noexcept {
    return unit * unit_lanes;
  }
  [[nodiscard]] std::int64_t lanes_of(std::int64_t unit) const noexcept {
    const std::int64_t rest = layout.padded_batch() - first_lane(unit);
    return rest < unit_lanes ? rest : unit_lanes;
  }
};

/// Resolves the execution plan for one batch: kAuto dispatch, the packing
/// decision (pack_threshold_bytes / explicit chunk_size), the write-back
/// policy, alignment checks for the in-place vectorized path, and the unit
/// geometry. `data` is only inspected for alignment, never dereferenced.
/// Throws on the same precondition violations run_chunk_pipeline always
/// rejected.
template <typename T>
[[nodiscard]] ChunkExecPlan<T> plan_chunk_exec(const BatchLayout& layout,
                                               const T* data,
                                               const TileProgram* program,
                                               const CpuFactorOptions& options);

/// Stage 1 of a packed unit: copies the unit's lanes from the interleaved
/// batch into chunk scratch (pack_scratch_elems elements). Packed plans
/// only.
template <typename T>
void pack_unit(const ChunkExecPlan<T>& plan, const T* data, std::int64_t unit,
               T* scratch);

/// Stage 2: factors every lane block of the unit — over `pack_scratch` for
/// packed plans (after pack_unit), in place otherwise (`pack_scratch` may
/// be null). `wm_scratch` must hold wm_scratch_elems elements when
/// need_wm_scratch. Per-matrix statuses for the unit's non-padding lanes
/// land in `info` (when non-empty) and the reduction-local counters.
template <typename T>
void factor_unit(const ChunkExecPlan<T>& plan, T* data, std::int64_t unit,
                 T* pack_scratch, T* wm_scratch, std::span<std::int32_t> info,
                 std::int64_t& failed, std::int64_t& first_failed,
                 ChunkUnitCounters& counters);

/// Stage 3 of a packed unit: writes the factored scratch back into the
/// batch, with non-temporal streaming stores when the plan calls for them.
template <typename T>
void writeback_unit(const ChunkExecPlan<T>& plan, const T* scratch, T* data,
                    std::int64_t unit, ChunkUnitCounters& counters);

/// All stages of one unit back to back — the synchronous (non-overlapped)
/// schedule the OpenMP driver uses. The service's workers instead call the
/// stages directly so the pack of unit k+1 can overlap the write-back of
/// unit k (double buffering).
template <typename T>
void run_unit(const ChunkExecPlan<T>& plan, T* data, std::int64_t unit,
              T* pack_scratch, T* wm_scratch, std::span<std::int32_t> info,
              std::int64_t& failed, std::int64_t& first_failed,
              ChunkUnitCounters& counters);

/// Factors an interleaved-layout batch through the chunk-resident
/// pipeline. `program` may be null when no tile program is needed (full
/// unrolling, or kAuto resolving to a programless path). This is the
/// execution engine behind factor_batch_cpu for non-canonical layouts.
template <typename T>
FactorResult run_chunk_pipeline(const BatchLayout& layout, std::span<T> data,
                                const TileProgram* program,
                                const CpuFactorOptions& options,
                                std::span<std::int32_t> info);

// ------------------------------------------- reduced-precision storage ---
//
// The mixed lanes reuse the fp32 plan and stage functions wholesale: a
// mixed plan is a ChunkExecPlan<float> whose `storage` names the 16-bit
// element width of the caller's batch and which *always* packs (every
// executor including the interpreter oracle, and the chunked layout too —
// the u16 batch cannot be factored in place, widening IS the pack). The
// fp32 factor_unit runs unchanged over the widened scratch, so the compute
// body is bit-identical to the fp32 path; only the pack/write-back stages
// convert. One unit is one layout chunk for kInterleavedChunked, else
// chunk_size lanes (0 = the fp32 scratch sizing rule).

/// Plans a reduced-precision factorization (storage must not be kFp32).
/// `options.chunk_size` keeps its fp32 meaning; alignment of the caller's
/// u16 batch is never constrained (conversions load/store unaligned).
[[nodiscard]] ChunkExecPlan<float> plan_chunk_exec_mixed(
    const BatchLayout& layout, const TileProgram* program,
    const CpuFactorOptions& options, StoragePrec storage);

/// Stage 1 of a mixed unit: widens the unit's 16-bit lanes into fp32 chunk
/// scratch (pack_scratch_elems floats).
void pack_unit_mixed(const ChunkExecPlan<float>& plan,
                     const std::uint16_t* data, std::int64_t unit,
                     float* scratch);

/// Stage 3 of a mixed unit: narrows the factored fp32 scratch back into
/// the 16-bit batch (RN-even), streaming past the caches when the plan
/// calls for it (the store fence is issued before returning).
void writeback_unit_mixed(const ChunkExecPlan<float>& plan,
                          const float* scratch, std::uint16_t* data,
                          std::int64_t unit, ChunkUnitCounters& counters);

/// All stages of one mixed unit back to back (stage 2 is the unchanged
/// fp32 factor_unit over the scratch).
void run_unit_mixed(const ChunkExecPlan<float>& plan, std::uint16_t* data,
                    std::int64_t unit, float* pack_scratch, float* wm_scratch,
                    std::span<std::int32_t> info, std::int64_t& failed,
                    std::int64_t& first_failed, ChunkUnitCounters& counters);

/// Factors a reduced-precision interleaved-layout batch (bf16/fp16 words,
/// fp32 accumulate). The execution engine behind factor_batch_cpu_mixed.
FactorResult run_chunk_pipeline_mixed(const BatchLayout& layout,
                                      std::span<std::uint16_t> data,
                                      const TileProgram* program,
                                      const CpuFactorOptions& options,
                                      StoragePrec storage,
                                      std::span<std::int32_t> info);

}  // namespace ibchol
