// Shared internals of the tile-program executors (interpreter and
// specialized). Not part of the public API.
#pragma once

#include <cstdint>

#include "cpu/tile_exec.hpp"

namespace ibchol::exec_detail {

// Register-tile file for one lane block. Element (i,j) of register r lives
// at a fixed stride-kMaxTileSize slot so addressing is independent of the
// actual tile dims (edge tiles simply use fewer slots).
template <typename T>
struct RegFile {
  alignas(64) T regs[kMaxRegisterTiles][kMaxTileSize * kMaxTileSize]
                    [kLaneBlock];

  T* tile(int r, int i, int j) {
    return regs[r][i * kMaxTileSize + j];
  }
};

}  // namespace ibchol::exec_detail
