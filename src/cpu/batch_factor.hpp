// Batched Cholesky factorization drivers for the CPU substrate.
//
// Dispatches a whole batch across OpenMP workers: canonical layouts factor
// one matrix per task with the blocked reference routine (the "traditional"
// structure — one thread block per matrix on the GPU); interleaved layouts
// factor one lane block (32 matrices) per task with the tile-program
// executor (the paper's interleaved kernels — one warp per 32 matrices).
#pragma once

#include <cstdint>
#include <span>

#include "kernels/options.hpp"
#include "kernels/tile_program.hpp"
#include "layout/layout.hpp"

namespace ibchol {

/// Kernel configuration for the CPU substrate.
struct CpuFactorOptions {
  int nb = 8;                          ///< tile size (clamped to n)
  Looking looking = Looking::kTop;     ///< evaluation order
  Unroll unroll = Unroll::kPartial;    ///< full = whole-matrix registerized
  MathMode math = MathMode::kIeee;
  Triangle triangle = Triangle::kLower;  ///< which factor to produce
  /// Tile-program execution mode for interleaved layouts: the specialized
  /// executor (compile-time tile dims, bound dispatch table, fused
  /// whole-program kernels for n ≤ kMaxFusedDim), the vectorized executor
  /// (explicit SIMD intrinsics with cpuid runtime dispatch), or the
  /// op-by-op interpreter (the correctness oracle). Under IEEE math all
  /// three produce bit-identical factors.
  CpuExec exec = CpuExec::kSpecialized;
  /// ISA tier for exec == kVectorized (ignored otherwise). kAuto picks the
  /// best tier the host supports; explicit requests are clamped to the
  /// detected tier. IBCHOL_SIMD_ISA in the environment overrides kAuto.
  SimdIsa isa = SimdIsa::kAuto;
  /// Chunk size (in matrices) of the chunk-resident pipeline when the
  /// layout is simple interleaved: the pipeline packs this many lanes at a
  /// time into L2-sized scratch and factors them while hot. 0 = the sizing
  /// rule of chunk_scratch_lanes(); must otherwise be a positive multiple
  /// of kLaneBlock. Ignored for chunked layouts (the layout's own chunk is
  /// already resident) and for the canonical path.
  int chunk_size = 0;
  int num_threads = 0;                 ///< 0 = OpenMP default
};

/// Aggregate outcome of one batched factorization.
struct FactorResult {
  std::int64_t failed_count = 0;  ///< matrices with a non-positive pivot
  std::int64_t first_failed = -1; ///< smallest failing matrix index, or -1

  [[nodiscard]] bool ok() const { return failed_count == 0; }
};

/// Builds a FactorResult from reduction-local counters. The parallel
/// drivers track the first failing index with a "not seen yet" sentinel of
/// std::numeric_limits<int64_t>::max() (the identity of their min
/// reductions); this is the single place that sentinel is mapped back to
/// the public -1 convention, so it can never leak to callers — both the
/// canonical and the interleaved paths funnel through here.
[[nodiscard]] FactorResult finalize_factor_result(std::int64_t failed,
                                                  std::int64_t first_failed);

/// Factors every matrix of the batch in place (lower triangle holds L).
///
/// `info`, when non-empty, must have at least layout.batch() entries and
/// receives per-matrix status: 0 on success or the 1-based column of the
/// first non-positive pivot (LAPACK convention). Failed matrices contain
/// NaNs past the failing column; all other matrices are unaffected.
template <typename T>
FactorResult factor_batch_cpu(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info = {});

/// As above but with a caller-supplied tile program (autotuning sweeps
/// rebuild layouts, not programs). The program's n must equal layout.n();
/// used only for interleaved layouts with partial unrolling.
template <typename T>
FactorResult factor_batch_cpu_with_program(const BatchLayout& layout,
                                           std::span<T> data,
                                           const TileProgram& program,
                                           const CpuFactorOptions& options,
                                           std::span<std::int32_t> info = {});

/// Factors a reduced-precision batch: `data` holds layout.size_elems()
/// 16-bit words in `storage` format (kBf16 or kFp16 — kFp32 is rejected;
/// use factor_batch_cpu). The chunk pipeline widens each chunk into fp32
/// scratch, runs the unchanged fp32 compute body, and narrows the factor
/// back RN-even, so arithmetic is bit-identical to the fp32 executors and
/// only the stored operands round. Interleaved layouts only. The storage
/// rounding perturbs A by up to one half-ulp per element, so expect
/// occasional positive info codes near-singular fp32 would survive —
/// factor_batch_recover_mixed / refine self-healing handle those.
FactorResult factor_batch_cpu_mixed(const BatchLayout& layout,
                                    std::span<std::uint16_t> data,
                                    StoragePrec storage,
                                    const CpuFactorOptions& options,
                                    std::span<std::int32_t> info = {});

/// As above with a caller-supplied tile program (partial unrolling).
FactorResult factor_batch_cpu_mixed_with_program(
    const BatchLayout& layout, std::span<std::uint16_t> data,
    StoragePrec storage, const TileProgram& program,
    const CpuFactorOptions& options, std::span<std::int32_t> info = {});

}  // namespace ibchol
