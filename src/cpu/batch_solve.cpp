#include "cpu/batch_solve.hpp"

#include <omp.h>

#include <cmath>
#include <limits>

#include <vector>

#include "cpu/math_policy.hpp"
#include "cpu/reference.hpp"
#include "cpu/tile_exec.hpp"

namespace ibchol {

namespace {

template <typename T, typename Math>
void solve_lane_block(int n, const T* __restrict__ lbase,
                      std::int64_t rstride, std::int64_t cstride,
                      T* __restrict__ xbase, std::int64_t xstride) {
  // lelem(i, j) reads L(i, j); with transposed strides (upper factor) it
  // reads U(j, i) = L(i, j), so the substitution code is triangle-agnostic.
  auto lelem = [&](int i, int j) {
    return lbase + i * rstride + j * cstride;
  };
  auto xelem = [&](int i) { return xbase + i * xstride; };

  // Forward substitution L y = b.
  for (int i = 0; i < n; ++i) {
    T* __restrict__ xi = xelem(i);
    for (int j = 0; j < i; ++j) {
      const T* __restrict__ lij = lelem(i, j);
      const T* __restrict__ xj = xelem(j);
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) xi[l] -= lij[l] * xj[l];
    }
    const T* __restrict__ lii = lelem(i, i);
#pragma omp simd
    for (int l = 0; l < kLaneBlock; ++l) xi[l] = Math::div(xi[l], lii[l]);
  }
  // Backward substitution Lᵀ x = y.
  for (int i = n - 1; i >= 0; --i) {
    T* __restrict__ xi = xelem(i);
    for (int j = i + 1; j < n; ++j) {
      const T* __restrict__ lji = lelem(j, i);
      const T* __restrict__ xj = xelem(j);
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) xi[l] -= lji[l] * xj[l];
    }
    const T* __restrict__ lii = lelem(i, i);
#pragma omp simd
    for (int l = 0; l < kLaneBlock; ++l) xi[l] = Math::div(xi[l], lii[l]);
  }
}

}  // namespace

template <typename T>
void solve_batch_cpu(const BatchLayout& mlayout, std::span<const T> mats,
                     const BatchVectorLayout& vlayout, std::span<T> rhs,
                     MathMode math, int num_threads, Triangle triangle) {
  IBCHOL_CHECK(vlayout == BatchVectorLayout::matching(mlayout),
               "vector layout does not match the matrix layout");
  IBCHOL_CHECK(mats.size() >= mlayout.size_elems(), "matrix span too small");
  IBCHOL_CHECK(rhs.size() >= vlayout.size_elems(), "rhs span too small");
  const int n = mlayout.n();
  const int nt = num_threads > 0 ? num_threads : omp_get_max_threads();

  if (mlayout.kind() == LayoutKind::kCanonical) {
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t b = 0; b < mlayout.batch(); ++b) {
      if (triangle == Triangle::kUpper) {
        potrs_vector_upper(n, mats.data() + mlayout.index(b, 0, 0), n,
                           rhs.data() + vlayout.index(b, 0));
      } else {
        potrs_vector(n, mats.data() + mlayout.index(b, 0, 0), n,
                     rhs.data() + vlayout.index(b, 0));
      }
    }
    return;
  }

  const std::int64_t blocks = mlayout.padded_batch() / kLaneBlock;
#pragma omp parallel for schedule(static) num_threads(nt)
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t start = blk * kLaneBlock;
    const T* lbase = mats.data() + mlayout.chunk_base(start) +
                     (start % mlayout.chunk());
    T* xbase = rhs.data() + vlayout.index(start, 0);
    const std::int64_t rstride = triangle == Triangle::kUpper
                                     ? mlayout.chunk() * n
                                     : mlayout.chunk();
    const std::int64_t cstride = triangle == Triangle::kUpper
                                     ? mlayout.chunk()
                                     : mlayout.chunk() * n;
    if (math == MathMode::kFastMath) {
      solve_lane_block<T, FastMath>(n, lbase, rstride, cstride, xbase,
                                    vlayout.chunk());
    } else {
      solve_lane_block<T, IeeeMath>(n, lbase, rstride, cstride, xbase,
                                    vlayout.chunk());
    }
  }
}

template <typename T>
void batch_logdet(const BatchLayout& mlayout, std::span<const T> factors,
                  std::span<double> out, int num_threads) {
  IBCHOL_CHECK(factors.size() >= mlayout.size_elems(),
               "factor span too small");
  IBCHOL_CHECK(out.size() >= static_cast<std::size_t>(mlayout.batch()),
               "output span too small");
  const int n = mlayout.n();
  const int nt = num_threads > 0 ? num_threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt)
  for (std::int64_t b = 0; b < mlayout.batch(); ++b) {
    double acc = 0.0;
    bool ok = true;
    for (int i = 0; i < n; ++i) {
      const double d = static_cast<double>(factors[mlayout.index(b, i, i)]);
      if (!(d > 0.0)) {
        ok = false;
        break;
      }
      acc += std::log(d);
    }
    out[b] = ok ? 2.0 * acc : std::numeric_limits<double>::quiet_NaN();
  }
}

template void batch_logdet<float>(const BatchLayout&, std::span<const float>,
                                  std::span<double>, int);
template void batch_logdet<double>(const BatchLayout&,
                                   std::span<const double>, std::span<double>,
                                   int);

template void solve_batch_cpu<float>(const BatchLayout&,
                                     std::span<const float>,
                                     const BatchVectorLayout&,
                                     std::span<float>, MathMode, int,
                                     Triangle);
template void solve_batch_cpu<double>(const BatchLayout&,
                                      std::span<const double>,
                                      const BatchVectorLayout&,
                                      std::span<double>, MathMode, int,
                                      Triangle);

}  // namespace ibchol
