#include "cpu/chunk_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cpu/simd/convert.hpp"
#include "cpu/simd/isa.hpp"
#include "cpu/simd/vec_exec.hpp"
#include "cpu/thread_util.hpp"
#include "cpu/tile_exec.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/aligned_buffer.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#define IBCHOL_HAVE_STREAM_STORES 1
#endif

namespace ibchol {

int chunk_scratch_lanes(int n, std::size_t elem_size) {
  const std::size_t chunk_bytes =
      static_cast<std::size_t>(n) * n * kLaneBlock * elem_size;
  std::int64_t lanes = chunk_bytes == 0
                           ? 512
                           : static_cast<std::int64_t>(kChunkScratchBudget /
                                                       chunk_bytes) *
                                 kLaneBlock;
  lanes = std::clamp<std::int64_t>(lanes, kLaneBlock, 512);
  return static_cast<int>(lanes);
}

namespace {

// Instant-tuning override table for the kAuto dispatch below: an immutable
// snapshot swapped atomically, so the hot path is one lock-free load.
std::atomic<std::shared_ptr<const std::map<std::pair<int, SimdIsa>, CpuExec>>>&
exec_override_slot() {
  static std::atomic<
      std::shared_ptr<const std::map<std::pair<int, SimdIsa>, CpuExec>>>
      slot;
  return slot;
}

}  // namespace

void set_cpu_exec_overrides(
    std::shared_ptr<const std::map<std::pair<int, SimdIsa>, CpuExec>> table) {
  exec_override_slot().store(std::move(table));
}

CpuExec resolve_cpu_exec(int n, SimdIsa isa) {
  // Measured crossovers on the CPU substrate (AVX-512 host, see DESIGN §8
  // for provenance): with the chunk-resident pipeline the vectorized
  // executor's fused (n ≤ kMaxVecFusedDim) and cache-blocked
  // (n ≥ kVecBlockedMinDim) in-place bodies win at every n the runtime-n
  // body supports, on both AVX tiers. The scalar tier loses to the
  // specialized executor (whose compile-time tile kernels the compiler
  // autovectorizes with the build's own -march flags), as does any n past
  // kMaxVecWholeDim, where the vectorized path would fall back to the
  // interpreter's scratch triangle anyway.
  struct Row {
    int max_n;
    CpuExec exec;
  };
  static constexpr Row kAvxTable[] = {
      {kMaxVecWholeDim, CpuExec::kVectorized},
      {std::numeric_limits<int>::max(), CpuExec::kSpecialized},
  };
  static constexpr Row kScalarTable[] = {
      {std::numeric_limits<int>::max(), CpuExec::kSpecialized},
  };
  // Past the whole-dim ceiling every small-n executor degrades (the
  // specialized path interprets, the vectorized path falls back): count
  // it, so a facade that should have routed to the tiled large-N path is
  // visible in the obs snapshot rather than silently slow.
  if (n > kMaxVecWholeDim) IBCHOL_COUNT("cpu.large_n_fallback", 1);
  const SimdIsa tier = resolve_simd_isa(isa);
  // Measured instant-tuning winners override the static crossover table
  // for their exact (n, tier); everything else keeps the seeded defaults.
  if (const auto overrides = exec_override_slot().load()) {
    const auto it = overrides->find({n, tier});
    if (it != overrides->end() && it->second != CpuExec::kAuto) {
      IBCHOL_COUNT("tune.exec_override", 1);
      return it->second;
    }
  }
  const Row* table = tier == SimdIsa::kScalar ? kScalarTable : kAvxTable;
  for (const Row* r = table;; ++r) {
    if (n <= r->max_n) return r->exec;
  }
}

namespace {

// Largest cache size advertised for cpu0 in sysfs (Linux), 0 when unknown.
// Sizes are reported like "262144K"; unsuffixed values are bytes.
std::size_t detect_llc_bytes() {
  std::size_t best = 0;
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                             std::to_string(i) + "/size";
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) continue;
    char buf[32] = {};
    const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    if (got == 0) continue;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(buf, &end, 10);
    std::size_t bytes = static_cast<std::size_t>(v);
    if (end != nullptr && (*end == 'K' || *end == 'k')) bytes <<= 10;
    if (end != nullptr && (*end == 'M' || *end == 'm')) bytes <<= 20;
    best = std::max(best, bytes);
  }
  return best;
}

}  // namespace

std::size_t pack_threshold_bytes() {
  static const std::size_t threshold = [] {
    const std::size_t llc = detect_llc_bytes();
    return std::max<std::size_t>(kPackMinBytes, 4 * llc);
  }();
  return threshold;
}

FactorResult finalize_factor_result(std::int64_t failed,
                                    std::int64_t first_failed) {
  if (failed == 0 ||
      first_failed == std::numeric_limits<std::int64_t>::max()) {
    return {failed, -1};
  }
  return {failed, first_failed};
}

template <typename T>
void pack_chunk(const T* src, std::int64_t src_stride, T* dst,
                std::int64_t lanes, std::int64_t elems) {
  const std::size_t row_bytes = static_cast<std::size_t>(lanes) * sizeof(T);
  for (std::int64_t e = 0; e < elems; ++e) {
    std::memcpy(dst + e * lanes, src + e * src_stride, row_bytes);
  }
}

namespace {

// Streams `bytes` (a multiple of 16) from 16-byte-aligned src to
// 16-byte-aligned dst with non-temporal stores. Caller issues the fence.
#if defined(IBCHOL_HAVE_STREAM_STORES)
inline void stream_row(void* dst, const void* src, std::size_t bytes) {
  auto* d = static_cast<__m128i*>(dst);
  auto* s = static_cast<const __m128i*>(src);
  for (std::size_t i = 0; i < bytes / 16; ++i) {
    _mm_stream_si128(d + i, _mm_load_si128(s + i));
  }
}
#endif

}  // namespace

template <typename T>
void unpack_chunk(const T* src, std::int64_t lanes, T* dst,
                  std::int64_t dst_stride, std::int64_t elems,
                  bool nt_stores) {
  const std::size_t row_bytes = static_cast<std::size_t>(lanes) * sizeof(T);
#if defined(IBCHOL_HAVE_STREAM_STORES)
  // Lane counts are multiples of kLaneBlock, so rows are multiples of 64
  // bytes and the scratch side is always aligned; only a misaligned
  // destination base (callers not using AlignedBuffer) forces the fallback.
  const bool stream =
      nt_stores &&
      reinterpret_cast<std::uintptr_t>(dst) % 16 == 0 &&
      dst_stride * static_cast<std::int64_t>(sizeof(T)) % 16 == 0;
  if (stream) {
    for (std::int64_t e = 0; e < elems; ++e) {
      stream_row(dst + e * dst_stride, src + e * lanes, row_bytes);
    }
    _mm_sfence();
    return;
  }
#else
  (void)nt_stores;
#endif
  for (std::int64_t e = 0; e < elems; ++e) {
    std::memcpy(dst + e * dst_stride, src + e * lanes, row_bytes);
  }
}

namespace {

// Issues prefetches for the leading kPrefetchCols columns of the lane
// block at `base` (element (i,j) of lane l at base[(j*n+i)*estride + l]).
// The lines arrive while the current block's column sweeps run; rw=1
// because the factorization writes every element it reads.
template <typename T>
inline void prefetch_lane_block(const T* base, int n, std::int64_t estride) {
  const std::int64_t rows =
      std::min<std::int64_t>(static_cast<std::int64_t>(n) * kPrefetchCols,
                             static_cast<std::int64_t>(n) * n);
  constexpr std::size_t kRowBytes = kLaneBlock * sizeof(T);
  for (std::int64_t e = 0; e < rows; ++e) {
    const char* p = reinterpret_cast<const char*>(base + e * estride);
    for (std::size_t b = 0; b < kRowBytes; b += 64) {
      __builtin_prefetch(p + b, 1, 3);
    }
  }
}

// Merges a lane block's local info into the caller-visible info span and
// the reduction-local counters. `start` is the block's first matrix index.
void merge_lane_info(const std::int32_t* local, std::int64_t start,
                     std::int64_t batch, std::span<std::int32_t> info,
                     std::int64_t& failed, std::int64_t& first_failed) {
  const std::int64_t count =
      std::min<std::int64_t>(kLaneBlock, batch - start);
  for (std::int64_t l = 0; l < count; ++l) {
    if (!info.empty()) info[start + l] = local[l];
    if (local[l] != 0) {
      ++failed;
      first_failed = std::min(first_failed, start + l);
    }
  }
}

// Runs the resolved executor for one lane block; `wm_scratch` is the
// worker's whole-matrix scratch (null unless plan.need_wm_scratch).
template <typename T>
inline void run_lane_block(const ChunkExecPlan<T>& plan, T* base,
                           std::int64_t estride, std::int32_t* local_info,
                           T* wm_scratch) {
  if (plan.exec == CpuExec::kVectorized) {
    if (plan.whole_matrix) {
      // Fused (compile-time n), then the cache-blocked panel body once
      // the lane block outgrows L1, then the unblocked runtime-n body,
      // then the interpreter's scratch-triangle path past
      // kMaxVecWholeDim.
      if (plan.vk->fused(plan.n, plan.math, base, estride, local_info,
                         plan.triangle)) {
        return;
      }
      if (plan.n >= kVecBlockedMinDim &&
          plan.vk->blocked(plan.n, plan.math, base, estride, local_info,
                           plan.triangle)) {
        return;
      }
      if (plan.vk->whole_matrix(plan.n, plan.math, base, estride, local_info,
                                plan.triangle)) {
        return;
      }
      execute_whole_matrix_lane_block<T>(plan.n, plan.math, base, estride,
                                         local_info, wm_scratch,
                                         plan.triangle);
    } else {
      plan.vk->run_program(*plan.program, plan.math, base, estride, local_info,
                           plan.triangle, plan.vec_nt_stores);
    }
  } else if (plan.fused_spec) {
    execute_fused_lane_block<T>(plan.n, plan.math, base, estride, local_info,
                                plan.triangle);
  } else if (plan.whole_matrix) {
    execute_whole_matrix_lane_block<T>(plan.n, plan.math, base, estride,
                                       local_info, wm_scratch, plan.triangle);
  } else if (plan.spec != nullptr) {
    plan.spec->run(base, estride, local_info, plan.triangle);
  } else {
    execute_program_lane_block<T>(*plan.program, plan.math, base, estride,
                                  local_info, plan.triangle);
  }
}

// Env override for the write-back policy: IBCHOL_CHUNK_NT=1 forces
// streaming stores, =0 forbids them, unset defers to the footprint rule.
bool resolve_nt_stores(std::size_t batch_bytes) {
  if (const char* env = std::getenv("IBCHOL_CHUNK_NT")) {
    return env[0] == '1';
  }
  return batch_bytes >= kNtStoreMinBytes;
}

}  // namespace

void fold_unit_counters(const ChunkUnitCounters& counters) {
  if (counters.packed_units > 0) {
    IBCHOL_COUNT("pipeline.packed_chunks", counters.packed_units);
  }
  if (counters.inplace_lane_blocks > 0) {
    IBCHOL_COUNT("pipeline.inplace_lane_blocks",
                 counters.inplace_lane_blocks);
  }
  if (counters.prefetched_lane_blocks > 0) {
    IBCHOL_COUNT("pipeline.prefetched_lane_blocks",
                 counters.prefetched_lane_blocks);
  }
  if (counters.nt_store_bytes > 0) {
    IBCHOL_COUNT("pipeline.nt_store_bytes", counters.nt_store_bytes);
  }
}

// IBCHOL_COUNT caches its registry lookup per call site, so each executor
// needs its own literal.
void note_exec_dispatch(CpuExec exec) {
  switch (exec) {
    case CpuExec::kInterpreter:
      IBCHOL_COUNT("cpu.exec.interpreter", 1);
      break;
    case CpuExec::kSpecialized:
      IBCHOL_COUNT("cpu.exec.specialized", 1);
      break;
    case CpuExec::kVectorized:
      IBCHOL_COUNT("cpu.exec.vectorized", 1);
      break;
    case CpuExec::kAuto:
      break;  // resolved before this is called
  }
}

template <typename T>
ChunkExecPlan<T> plan_chunk_exec(const BatchLayout& layout, const T* data,
                                 const TileProgram* program,
                                 const CpuFactorOptions& options) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "the chunk pipeline runs interleaved layouts");
  ChunkExecPlan<T> plan;
  plan.layout = layout;
  plan.n = layout.n();

  // kAuto: consult the measured dispatch table. When it picks the
  // vectorized executor the whole-matrix pipeline (fused/blocked) is the
  // winning strategy at every supported n, so full unrolling is implied;
  // when it picks the specialized executor the caller's unrolling choice
  // stands (the table only fires for n where both unrollings are valid).
  plan.exec = options.exec;
  plan.whole_matrix = options.unroll == Unroll::kFull;
  if (plan.exec == CpuExec::kAuto) {
    plan.exec = resolve_cpu_exec(plan.n, options.isa);
    if (plan.exec == CpuExec::kVectorized) plan.whole_matrix = true;
  }
  IBCHOL_CHECK(plan.whole_matrix || program != nullptr,
               "partial unrolling requires a tile program");

  plan.math = options.math;
  plan.triangle = options.triangle;
  plan.program = program;
  plan.fused_spec = plan.exec == CpuExec::kSpecialized && plan.whole_matrix &&
                    plan.n <= kMaxFusedDim;
  if (plan.exec == CpuExec::kVectorized) {
    // Tier resolution (cpuid + IBCHOL_SIMD_ISA override) happens once, out
    // here; the intrinsic bodies then run with no per-block branching.
    plan.vk = &vec_kernels<T>(options.isa);
    plan.vec_nt_stores = std::getenv("IBCHOL_VEC_NT_STORES") != nullptr;
  }
  plan.need_wm_scratch =
      plan.whole_matrix && (plan.exec == CpuExec::kVectorized
                                ? plan.n > kMaxVecWholeDim
                                : !plan.fused_spec);
  plan.wm_scratch_elems =
      plan.need_wm_scratch ? whole_matrix_scratch_elems(plan.n) : 0;

  const std::int64_t padded = layout.padded_batch();
  const std::int64_t elems = static_cast<std::int64_t>(plan.n) * plan.n;

  // Pack only the simple-interleaved layout, only when a chunk is a strict
  // subset of the batch (otherwise scratch would be a copy of the whole
  // buffer with the identical stride), and never for the interpreter,
  // which stays the untouched oracle path.
  if (layout.kind() == LayoutKind::kInterleaved &&
      plan.exec != CpuExec::kInterpreter) {
    // Automatic sizing only packs once the batch has clearly outgrown the
    // cache hierarchy (pack_threshold_bytes); below that the in-place
    // sweeps hit cache anyway and the pack/unpack round trip is pure
    // overhead. An explicit chunk_size is the autotuner's knob and is
    // always honored.
    std::int64_t c = options.chunk_size;
    if (c == 0 && layout.size_elems() * sizeof(T) >= pack_threshold_bytes()) {
      c = chunk_scratch_lanes(plan.n, sizeof(T));
    }
    IBCHOL_CHECK(c % kLaneBlock == 0,
                 "pipeline chunk size must be a multiple of the lane block");
    if (c > 0 && c < padded) plan.pack_lanes = static_cast<int>(c);
  }

  if (plan.exec == CpuExec::kVectorized && plan.pack_lanes == 0) {
    // In-place execution issues aligned vector loads/stores straight into
    // the caller's buffer; AlignedBuffer plus the interleaved layouts
    // guarantee this by construction. (The packed path runs on its own
    // scratch, which is aligned by construction, and touches the caller's
    // buffer only through memcpy/streaming rows.)
    IBCHOL_CHECK(reinterpret_cast<std::uintptr_t>(data) % 64 == 0,
                 "vectorized executor requires 64-byte aligned batch data "
                 "(use AlignedBuffer)");
    IBCHOL_CHECK(
        layout.chunk() * static_cast<std::int64_t>(sizeof(T)) % 64 == 0,
        "vectorized executor requires the element stride to be a multiple "
        "of 64 bytes");
  }

  if (plan.pack_lanes > 0) {
    plan.unit_lanes = plan.pack_lanes;
    plan.nt_stores = resolve_nt_stores(layout.size_elems() * sizeof(T));
    plan.pack_scratch_elems =
        static_cast<std::size_t>(elems) * plan.pack_lanes;
  } else if (layout.kind() == LayoutKind::kInterleavedChunked) {
    // The address map is already chunk-local; one unit per layout chunk
    // keeps a whole chunk on one worker, the schedule the layout exists
    // for.
    plan.unit_lanes = layout.chunk();
  } else {
    // Simple interleaved batch small enough to stay in place: the unit is
    // a locality granule of the same size the pack scratch would use, so
    // the traversal still walks a cache-sized window of lanes at a time.
    plan.unit_lanes =
        std::min<std::int64_t>(padded, chunk_scratch_lanes(plan.n, sizeof(T)));
  }
  plan.num_units = (padded + plan.unit_lanes - 1) / plan.unit_lanes;
  return plan;
}

template <typename T>
void pack_unit(const ChunkExecPlan<T>& plan, const T* data, std::int64_t unit,
               T* scratch) {
  IBCHOL_TRACE_SPAN("pack", "pipeline", unit);
  const std::int64_t c0 = plan.first_lane(unit);
  pack_chunk(data + c0, plan.layout.padded_batch(), scratch,
             plan.lanes_of(unit),
             static_cast<std::int64_t>(plan.n) * plan.n);
}

template <typename T>
void factor_unit(const ChunkExecPlan<T>& plan, T* data, std::int64_t unit,
                 T* pack_scratch, T* wm_scratch, std::span<std::int32_t> info,
                 std::int64_t& failed, std::int64_t& first_failed,
                 ChunkUnitCounters& counters) {
  IBCHOL_TRACE_SPAN("factor", "pipeline", unit);
  const std::int64_t batch = plan.layout.batch();
  const std::int64_t c0 = plan.first_lane(unit);
  const std::int64_t lanes = plan.lanes_of(unit);

  if (plan.pack_lanes > 0) {
    for (std::int64_t b = 0; b < lanes; b += kLaneBlock) {
      if (b + kLaneBlock < lanes) {
        prefetch_lane_block(pack_scratch + b + kLaneBlock, plan.n, lanes);
        ++counters.prefetched_lane_blocks;
      }
      alignas(64) std::int32_t local_info[kLaneBlock] = {};
      run_lane_block(plan, pack_scratch + b, lanes, local_info, wm_scratch);
      const std::int64_t start = c0 + b;
      if (start < batch) {
        merge_lane_info(local_info, start, batch, info, failed, first_failed);
      }
    }
    ++counters.packed_units;
    return;
  }

  // In-place: chunked layouts are chunk-resident by address map, and lane
  // blocks of one chunk are adjacent, so walking the unit's blocks in order
  // is the chunk-by-chunk traversal.
  const std::int64_t chunk = plan.layout.chunk();
  for (std::int64_t b = 0; b < lanes; b += kLaneBlock) {
    const std::int64_t start = c0 + b;
    T* base = data + plan.layout.chunk_base(start) + (start % chunk);
    if ((start + kLaneBlock) % chunk != 0) {
      // Next lane block lives in the same chunk, one block over.
      prefetch_lane_block(base + kLaneBlock, plan.n, chunk);
      ++counters.prefetched_lane_blocks;
    }
    alignas(64) std::int32_t local_info[kLaneBlock] = {};
    run_lane_block(plan, base, chunk, local_info, wm_scratch);
    if (start < batch) {
      merge_lane_info(local_info, start, batch, info, failed, first_failed);
    }
    ++counters.inplace_lane_blocks;
  }
}

template <typename T>
void writeback_unit(const ChunkExecPlan<T>& plan, const T* scratch, T* data,
                    std::int64_t unit, ChunkUnitCounters& counters) {
  IBCHOL_TRACE_SPAN("writeback", "pipeline", unit);
  const std::int64_t c0 = plan.first_lane(unit);
  const std::int64_t lanes = plan.lanes_of(unit);
  const std::int64_t elems = static_cast<std::int64_t>(plan.n) * plan.n;
  unpack_chunk(scratch, lanes, data + c0, plan.layout.padded_batch(), elems,
               plan.nt_stores);
  if (plan.nt_stores) counters.nt_store_bytes += elems * lanes * sizeof(T);
}

template <typename T>
void run_unit(const ChunkExecPlan<T>& plan, T* data, std::int64_t unit,
              T* pack_scratch, T* wm_scratch, std::span<std::int32_t> info,
              std::int64_t& failed, std::int64_t& first_failed,
              ChunkUnitCounters& counters) {
  if (plan.pack_lanes > 0) {
    pack_unit(plan, data, unit, pack_scratch);
    factor_unit(plan, data, unit, pack_scratch, wm_scratch, info, failed,
                first_failed, counters);
    writeback_unit(plan, pack_scratch, data, unit, counters);
  } else {
    factor_unit(plan, data, unit, pack_scratch, wm_scratch, info, failed,
                first_failed, counters);
  }
}

template <typename T>
FactorResult run_chunk_pipeline(const BatchLayout& layout, std::span<T> data,
                                const TileProgram* program,
                                const CpuFactorOptions& options,
                                std::span<std::int32_t> info) {
  IBCHOL_TRACE_SPAN("chunk_pipeline", "cpu", layout.n());
  ChunkExecPlan<T> plan =
      plan_chunk_exec<T>(layout, data.data(), program, options);
  note_exec_dispatch(plan.exec);
  std::optional<SpecializedProgram<T>> spec;
  if (plan.needs_spec_program()) {
    spec.emplace(*program, options.math);
    plan.spec = &*spec;
  }

  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();

#pragma omp parallel num_threads(resolve_threads(options.num_threads))
  {
    AlignedBuffer<T> scratch(plan.pack_scratch_elems);
    std::vector<T> wm_scratch(plan.wm_scratch_elems);
    std::int64_t local_failed = 0;
    std::int64_t local_first = std::numeric_limits<std::int64_t>::max();
    // Counter deltas accumulate in plain thread-locals and fold into the
    // shared registry once per thread — the hot loop never touches an
    // atomic.
    ChunkUnitCounters counters;
#pragma omp for schedule(static)
    for (std::int64_t u = 0; u < plan.num_units; ++u) {
      run_unit(plan, data.data(), u, scratch.data(), wm_scratch.data(), info,
               local_failed, local_first, counters);
    }
    fold_unit_counters(counters);
#pragma omp critical
    {
      failed += local_failed;
      first_failed = std::min(first_failed, local_first);
    }
  }
  return finalize_factor_result(failed, first_failed);
}

// ------------------------------------------- reduced-precision storage ---

ChunkExecPlan<float> plan_chunk_exec_mixed(const BatchLayout& layout,
                                           const TileProgram* program,
                                           const CpuFactorOptions& options,
                                           StoragePrec storage) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "reduced-precision storage runs interleaved layouts");
  IBCHOL_CHECK(storage != StoragePrec::kFp32,
               "mixed plans are for reduced storage precisions only");
  ChunkExecPlan<float> plan;
  plan.layout = layout;
  plan.n = layout.n();
  plan.storage = storage;
  plan.convert_isa = resolve_convert_isa();

  plan.exec = options.exec;
  plan.whole_matrix = options.unroll == Unroll::kFull;
  if (plan.exec == CpuExec::kAuto) {
    plan.exec = resolve_cpu_exec(plan.n, options.isa);
    if (plan.exec == CpuExec::kVectorized) plan.whole_matrix = true;
  }
  IBCHOL_CHECK(plan.whole_matrix || program != nullptr,
               "partial unrolling requires a tile program");

  plan.math = options.math;
  plan.triangle = options.triangle;
  plan.program = program;
  plan.fused_spec = plan.exec == CpuExec::kSpecialized && plan.whole_matrix &&
                    plan.n <= kMaxFusedDim;
  if (plan.exec == CpuExec::kVectorized) {
    plan.vk = &vec_kernels<float>(options.isa);
    plan.vec_nt_stores = std::getenv("IBCHOL_VEC_NT_STORES") != nullptr;
  }
  plan.need_wm_scratch =
      plan.whole_matrix && (plan.exec == CpuExec::kVectorized
                                ? plan.n > kMaxVecWholeDim
                                : !plan.fused_spec);
  plan.wm_scratch_elems =
      plan.need_wm_scratch ? whole_matrix_scratch_elems(plan.n) : 0;

  const std::int64_t padded = layout.padded_batch();
  const std::int64_t elems = static_cast<std::int64_t>(plan.n) * plan.n;

  // A u16 batch cannot be factored in place — widening IS the pack — so
  // every mixed plan packs, the interpreter oracle and the chunked layout
  // included. One unit is one layout chunk when the address map already
  // has one; otherwise chunk_size keeps its meaning as the pack-scratch
  // lane count (0 = the fp32 sizing rule, so the fp32 scratch footprint
  // stays within the budget).
  std::int64_t c;
  if (layout.kind() == LayoutKind::kInterleavedChunked) {
    c = layout.chunk();
  } else {
    c = options.chunk_size > 0
            ? options.chunk_size
            : chunk_scratch_lanes(plan.n, sizeof(float));
    IBCHOL_CHECK(c % kLaneBlock == 0,
                 "pipeline chunk size must be a multiple of the lane block");
    c = std::min<std::int64_t>(c, padded);
  }
  plan.pack_lanes = static_cast<int>(c);
  plan.unit_lanes = c;
  plan.nt_stores =
      resolve_nt_stores(layout.size_elems() * sizeof(std::uint16_t));
  plan.pack_scratch_elems = static_cast<std::size_t>(elems) * c;
  plan.num_units = (padded + c - 1) / c;
  return plan;
}

namespace {

// The conversion stages only touch the element rows the factorization
// reads and writes: the stored triangle. Column j (elements j·n .. j·n+n,
// column-major) keeps rows [j, n) under kLower and [0, j] under kUpper —
// a contiguous element-row run either way, which halves the conversion
// work against a full-square sweep. The other triangle's stored words are
// left exactly as submitted (the full-square round trip would have
// rewritten them bit-identically: widen is exact and RN-even narrowing of
// an exactly-widened value restores the original word, so skipping it
// changes nothing but the traffic). The matching scratch region stays
// unwritten, which is fine for the same reason the fp32 in-place paths
// are: no compute body dereferences the unfactored triangle.
//
// Per column the run is `rows` element-rows of `lanes` elements at
// `stride`; when the stride equals the unit's lane count (a chunked layout
// walked in whole-chunk units) the rows abut and the whole run is one
// contiguous conversion call.
struct TriangleRun {
  std::int64_t e0 = 0;    ///< first element row of the run
  std::int64_t rows = 0;  ///< element rows in the run
};

inline TriangleRun column_run(int n, int j, Triangle triangle) {
  const std::int64_t lo = triangle == Triangle::kLower ? j : 0;
  const std::int64_t hi = triangle == Triangle::kLower ? n : j + 1;
  return {static_cast<std::int64_t>(j) * n + lo, hi - lo};
}

}  // namespace

void pack_unit_mixed(const ChunkExecPlan<float>& plan,
                     const std::uint16_t* data, std::int64_t unit,
                     float* scratch) {
  IBCHOL_TRACE_SPAN("pack", "pipeline", unit);
  const std::int64_t c0 = plan.first_lane(unit);
  const std::int64_t lanes = plan.lanes_of(unit);
  const bool chunked = plan.layout.kind() == LayoutKind::kInterleavedChunked;
  const std::uint16_t* src =
      chunked ? data + plan.layout.chunk_base(c0) : data + c0;
  const std::int64_t stride =
      chunked ? plan.layout.chunk() : plan.layout.padded_batch();
  for (int j = 0; j < plan.n; ++j) {
    const TriangleRun run = column_run(plan.n, j, plan.triangle);
    if (stride == lanes) {
      widen_row(plan.convert_isa, plan.storage, src + run.e0 * stride,
                scratch + run.e0 * lanes, run.rows * lanes);
      continue;
    }
    for (std::int64_t e = run.e0; e < run.e0 + run.rows; ++e) {
      widen_row(plan.convert_isa, plan.storage, src + e * stride,
                scratch + e * lanes, lanes);
    }
  }
}

void writeback_unit_mixed(const ChunkExecPlan<float>& plan,
                          const float* scratch, std::uint16_t* data,
                          std::int64_t unit, ChunkUnitCounters& counters) {
  IBCHOL_TRACE_SPAN("writeback", "pipeline", unit);
  const std::int64_t c0 = plan.first_lane(unit);
  const std::int64_t lanes = plan.lanes_of(unit);
  const bool chunked = plan.layout.kind() == LayoutKind::kInterleavedChunked;
  std::uint16_t* dst =
      chunked ? data + plan.layout.chunk_base(c0) : data + c0;
  const std::int64_t stride =
      chunked ? plan.layout.chunk() : plan.layout.padded_batch();
  std::int64_t converted = 0;
  for (int j = 0; j < plan.n; ++j) {
    const TriangleRun run = column_run(plan.n, j, plan.triangle);
    converted += run.rows * lanes;
    if (stride == lanes) {
      narrow_row(plan.convert_isa, plan.storage, scratch + run.e0 * lanes,
                 dst + run.e0 * stride, run.rows * lanes, plan.nt_stores);
      continue;
    }
    for (std::int64_t e = run.e0; e < run.e0 + run.rows; ++e) {
      narrow_row(plan.convert_isa, plan.storage, scratch + e * lanes,
                 dst + e * stride, lanes, plan.nt_stores);
    }
  }
  if (plan.nt_stores) {
    narrow_fence();
    counters.nt_store_bytes +=
        converted * static_cast<std::int64_t>(sizeof(std::uint16_t));
  }
}

void run_unit_mixed(const ChunkExecPlan<float>& plan, std::uint16_t* data,
                    std::int64_t unit, float* pack_scratch, float* wm_scratch,
                    std::span<std::int32_t> info, std::int64_t& failed,
                    std::int64_t& first_failed, ChunkUnitCounters& counters) {
  pack_unit_mixed(plan, data, unit, pack_scratch);
  // The packed branch of factor_unit never dereferences `data` — the fp32
  // compute body is reused verbatim over the widened scratch.
  factor_unit<float>(plan, nullptr, unit, pack_scratch, wm_scratch, info,
                     failed, first_failed, counters);
  writeback_unit_mixed(plan, pack_scratch, data, unit, counters);
}

FactorResult run_chunk_pipeline_mixed(const BatchLayout& layout,
                                      std::span<std::uint16_t> data,
                                      const TileProgram* program,
                                      const CpuFactorOptions& options,
                                      StoragePrec storage,
                                      std::span<std::int32_t> info) {
  IBCHOL_TRACE_SPAN("chunk_pipeline", "cpu", layout.n());
  ChunkExecPlan<float> plan =
      plan_chunk_exec_mixed(layout, program, options, storage);
  note_exec_dispatch(plan.exec);
  std::optional<SpecializedProgram<float>> spec;
  if (plan.needs_spec_program()) {
    spec.emplace(*program, options.math);
    plan.spec = &*spec;
  }

  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();

#pragma omp parallel num_threads(resolve_threads(options.num_threads))
  {
    AlignedBuffer<float> scratch(plan.pack_scratch_elems);
    std::vector<float> wm_scratch(plan.wm_scratch_elems);
    std::int64_t local_failed = 0;
    std::int64_t local_first = std::numeric_limits<std::int64_t>::max();
    ChunkUnitCounters counters;
#pragma omp for schedule(static)
    for (std::int64_t u = 0; u < plan.num_units; ++u) {
      run_unit_mixed(plan, data.data(), u, scratch.data(), wm_scratch.data(),
                     info, local_failed, local_first, counters);
    }
    fold_unit_counters(counters);
#pragma omp critical
    {
      failed += local_failed;
      first_failed = std::min(first_failed, local_first);
    }
  }
  return finalize_factor_result(failed, first_failed);
}

template void pack_chunk<float>(const float*, std::int64_t, float*,
                                std::int64_t, std::int64_t);
template void pack_chunk<double>(const double*, std::int64_t, double*,
                                 std::int64_t, std::int64_t);
template void unpack_chunk<float>(const float*, std::int64_t, float*,
                                  std::int64_t, std::int64_t, bool);
template void unpack_chunk<double>(const double*, std::int64_t, double*,
                                   std::int64_t, std::int64_t, bool);

#define IBCHOL_INSTANTIATE_PLAN(T)                                          \
  template ChunkExecPlan<T> plan_chunk_exec<T>(                             \
      const BatchLayout&, const T*, const TileProgram*,                     \
      const CpuFactorOptions&);                                             \
  template void pack_unit<T>(const ChunkExecPlan<T>&, const T*,             \
                             std::int64_t, T*);                             \
  template void factor_unit<T>(const ChunkExecPlan<T>&, T*, std::int64_t,   \
                               T*, T*, std::span<std::int32_t>,             \
                               std::int64_t&, std::int64_t&,                \
                               ChunkUnitCounters&);                         \
  template void writeback_unit<T>(const ChunkExecPlan<T>&, const T*, T*,    \
                                  std::int64_t, ChunkUnitCounters&);        \
  template void run_unit<T>(const ChunkExecPlan<T>&, T*, std::int64_t, T*,  \
                            T*, std::span<std::int32_t>, std::int64_t&,     \
                            std::int64_t&, ChunkUnitCounters&);             \
  template FactorResult run_chunk_pipeline<T>(                              \
      const BatchLayout&, std::span<T>, const TileProgram*,                 \
      const CpuFactorOptions&, std::span<std::int32_t>);

IBCHOL_INSTANTIATE_PLAN(float)
IBCHOL_INSTANTIATE_PLAN(double)
#undef IBCHOL_INSTANTIATE_PLAN

}  // namespace ibchol
