// Mixed-precision iterative refinement for batched solves.
//
// The paper's kernels run in single precision (the ALS workload tolerates
// it), but downstream users often need better forward accuracy than one
// float solve delivers. Classic iterative refinement recovers it at small
// cost: factor once in float, then iterate
//     r = b - A·x  (accumulated in double) ;  L·Lᵀ d = r ;  x += d.
// Each correction solve reuses the float factor; the residual is the only
// double-precision work.
#pragma once

#include <span>

#include "kernels/options.hpp"
#include "layout/layout.hpp"
#include "layout/vector_layout.hpp"

namespace ibchol {

/// Refinement configuration.
struct RefineOptions {
  int max_iterations = 5;
  double tolerance = 1e-6;  ///< stop when max relative correction is below
  MathMode math = MathMode::kIeee;
  int num_threads = 0;
};

/// Outcome of a refinement run.
struct RefineResult {
  int iterations = 0;
  double final_correction = 0.0;  ///< max |d|/|x| of the last sweep
  bool converged = false;
};

/// Solves A x = b for every matrix of the batch with iterative refinement.
///
/// `originals` holds the unfactored symmetric matrices (lower triangles
/// valid) and `factors` the same batch after factor_batch_cpu; both share
/// `mlayout`. `b` (vector layout matching the matrix layout) is the input;
/// `x` receives the refined solution. All in single precision storage with
/// double-precision residual accumulation.
RefineResult refine_batch_solve(const BatchLayout& mlayout,
                                std::span<const float> originals,
                                std::span<const float> factors,
                                const BatchVectorLayout& vlayout,
                                std::span<const float> b, std::span<float> x,
                                const RefineOptions& options = {});

}  // namespace ibchol
