// Mixed-precision iterative refinement for batched solves.
//
// The paper's kernels run in single precision (the ALS workload tolerates
// it), but downstream users often need better forward accuracy than one
// float solve delivers. Classic iterative refinement recovers it at small
// cost: factor once in float, then iterate
//     r = b - A·x  (accumulated in double) ;  L·Lᵀ d = r ;  x += d.
// Each correction solve reuses the float factor; the residual is the only
// double-precision work.
// Reduced-precision storage (bf16/fp16 factors, fp32 accumulate) leans on
// the same loop: the factor is rounded to 16 bits, so refinement against
// the fp32-held right-hand side is what recovers the lost accuracy —
// typically in one or two sweeps. Matrices whose sweeps stall get the
// distinct kInfoRefineStalled code and the self-healing escalation ladder
// (solve_batch_refine_recover_mixed): refine → shifted fp32 refactor of
// just the stalled sub-batch → re-refine — so half-precision failures
// degrade gracefully instead of erroring (DESIGN §12).
#pragma once

#include <cstdint>
#include <span>

#include "cpu/recover.hpp"
#include "kernels/options.hpp"
#include "layout/layout.hpp"
#include "layout/vector_layout.hpp"

namespace ibchol {

/// Per-matrix `info` code for matrices whose iterative refinement did not
/// reach the tolerance within max_iterations. Like kInfoNonFinite it is
/// negative (never a pivot column) and recoverable: the escalation ladder
/// and the service's quarantine path treat it as one more retryable code.
inline constexpr std::int32_t kInfoRefineStalled = -3;

/// Refinement configuration.
struct RefineOptions {
  int max_iterations = 5;
  double tolerance = 1e-6;  ///< stop when max relative correction is below
  MathMode math = MathMode::kIeee;
  int num_threads = 0;
};

/// Outcome of a refinement run.
struct RefineResult {
  int iterations = 0;
  double final_correction = 0.0;  ///< max |d|/|x| of the last sweep
  bool converged = false;
};

/// Solves A x = b for every matrix of the batch with iterative refinement.
///
/// `originals` holds the unfactored symmetric matrices (lower triangles
/// valid) and `factors` the same batch after factor_batch_cpu; both share
/// `mlayout`. `b` (vector layout matching the matrix layout) is the input;
/// `x` receives the refined solution. All in single precision storage with
/// double-precision residual accumulation.
RefineResult refine_batch_solve(const BatchLayout& mlayout,
                                std::span<const float> originals,
                                std::span<const float> factors,
                                const BatchVectorLayout& vlayout,
                                std::span<const float> b, std::span<float> x,
                                const RefineOptions& options = {});

/// Outcome of a per-matrix-converged refinement run (the mixed lanes need
/// per-matrix resolution: one stalled matrix must not fail the batch).
struct MixedRefineResult {
  int iterations = 0;             ///< sweeps actually run
  double final_correction = 0.0;  ///< max |d|/|x| over unconverged matrices
  std::int64_t stalled = 0;       ///< matrices that never met tolerance
  bool converged = false;         ///< every matrix converged

  [[nodiscard]] bool all_converged() const { return stalled == 0; }
};

/// refine_batch_solve for reduced-precision factors: `factors` holds the
/// batch as 16-bit words in `storage` format (the output of
/// factor_batch_cpu_mixed); they are widened once into fp32 scratch and
/// every solve runs in fp32 against the fp32-held `b`. Convergence is
/// tracked per matrix (a matrix freezes once its relative correction drops
/// below the tolerance); `info`, when non-empty, receives 0 for converged
/// matrices and kInfoRefineStalled for the rest.
MixedRefineResult refine_batch_solve_mixed(
    const BatchLayout& mlayout, std::span<const float> originals,
    std::span<const std::uint16_t> factors, StoragePrec storage,
    const BatchVectorLayout& vlayout, std::span<const float> b,
    std::span<float> x, std::span<std::int32_t> info = {},
    const RefineOptions& options = {});

/// Aggregate outcome of the self-healing mixed solve ladder.
struct MixedSolveReport {
  MixedRefineResult refine;   ///< the first refinement pass
  RecoveryReport recovery;    ///< shifted refactor of the stalled sub-batch
  std::int64_t healed = 0;    ///< stalled matrices the ladder recovered
  std::int64_t unrecovered = 0;  ///< still stalled after every rung

  [[nodiscard]] bool ok() const { return unrecovered == 0; }
};

/// The escalation ladder for reduced-precision solves (DESIGN §12):
///   1. solve + iterative refinement against the 16-bit factors;
///   2. matrices that stall are gathered into a compact fp32 sub-batch
///      rebuilt from `originals` and refactored through the shifted-retry
///      schedule (factor_batch_recover);
///   3. the sub-batch is re-refined against the shifted factors, healed
///      solutions are scattered back into `x`, healed factors are narrowed
///      back into `factors`, and healed `info` entries reset to 0.
/// Matrices that exhaust the ladder keep kInfoRefineStalled. `factors`
/// must be the in-place output of factor_batch_cpu_mixed over `originals`
/// (already-rounded input, factored); `fopts` configures the sub-batch
/// refactorizations.
MixedSolveReport solve_batch_refine_recover_mixed(
    const BatchLayout& mlayout, std::span<const float> originals,
    std::span<std::uint16_t> factors, StoragePrec storage,
    const BatchVectorLayout& vlayout, std::span<const float> b,
    std::span<float> x, const RefineOptions& options = {},
    const RecoveryOptions& recovery = {}, const CpuFactorOptions& fopts = {},
    std::span<std::int32_t> info = {});

}  // namespace ibchol
