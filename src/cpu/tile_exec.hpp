// Execution of tile programs on the CPU substrate.
//
// One GPU warp factoring 32 interleaved matrices in lockstep maps onto one
// CPU "lane block": 32 matrices whose elements are contiguous in memory
// (stride 1 across the batch index), processed by SIMD loops. Every tile
// operation's inner dimension loop carries a 32-wide lane loop that the
// compiler vectorizes — the direct analog of the paper's coalesced warp
// accesses.
//
// Two execution modes mirror the paper's unrolling parameter:
//  * execute_program_lane_block — interprets the tile program op by op;
//    every load/store hits memory (the partial-unroll behavior, where tile
//    ops move data between registers and DRAM).
//  * execute_whole_matrix_lane_block — loads the lower triangle once, runs
//    the whole factorization in a scratch "register file", stores once (the
//    behavior nvcc achieves for small matrices when the factorization is
//    fully unrolled and the matrix is promoted to registers).
#pragma once

#include <cstdint>

#include "kernels/options.hpp"
#include "kernels/tile_program.hpp"

namespace ibchol {

/// Number of matrices processed in SIMD lockstep; equals the warp size.
inline constexpr int kLaneBlock = 32;

/// Largest supported tile size (the paper sweeps n_b = 1…8).
inline constexpr int kMaxTileSize = 8;

/// Largest number of register tiles a program may use.
inline constexpr int kMaxRegisterTiles = 4;

/// Executes `program` for one lane block of kLaneBlock matrices.
///
/// `base` points at element (0,0) of the lane block's first matrix; element
/// (i,j) of lane l lives at base[(j*n + i)*estride + l], where `estride` is
/// the element stride (the chunk size of the interleaved layout).
///
/// `triangle` selects the factorization: kLower reads/writes the lower
/// triangle (A = L·Lᵀ); kUpper runs the same schedule over the transposed
/// index map, reading/writing the upper triangle (A = Uᵀ·U with U = Lᵀ).
///
/// `info` (kLaneBlock entries, may be null) receives 0 on success or the
/// 1-based column of the first non-positive pivot; entries must be
/// pre-zeroed. A failing lane keeps computing (NaNs propagate, as on the
/// GPU) so the other lanes are unaffected.
template <typename T>
void execute_program_lane_block(const TileProgram& program, MathMode math,
                                T* base, std::int64_t estride,
                                std::int32_t* info,
                                Triangle triangle = Triangle::kLower);

/// Scratch element count required by execute_whole_matrix_lane_block.
[[nodiscard]] std::size_t whole_matrix_scratch_elems(int n);

/// Fully "registerized" factorization of one lane block: one load pass, the
/// complete unblocked factorization in scratch, one store pass. `scratch`
/// must hold whole_matrix_scratch_elems(n) elements.
template <typename T>
void execute_whole_matrix_lane_block(int n, MathMode math, T* base,
                                     std::int64_t estride, std::int32_t* info,
                                     T* scratch,
                                     Triangle triangle = Triangle::kLower);

}  // namespace ibchol
