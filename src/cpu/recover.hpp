// Recovery-retry factorization: graceful degradation for failure-prone
// batches.
//
// A production batch pipeline (ALS, Kalman, block-Jacobi) feeds thousands of
// heterogeneous matrices through one factorization call; any member may be
// numerically non-SPD (round-off, a degenerate system) or outright corrupt
// (NaN/Inf from an upstream bug). The plain driver reports such members via
// `info` and leaves NaNs behind; this module adds the recovery path:
//
//  1. **Screening** — inputs are scanned for NaN/Inf before factoring and
//     reported with the distinct `kInfoNonFinite` code; their contents are
//     handed back exactly as supplied (a shift cannot repair a NaN).
//  2. **Shifted retry** — matrices that fail with a non-positive pivot are
//     gathered out of the interleaved layout into a compact retry sub-batch,
//     an escalating diagonal shift `shift0 · growth^attempt` (optionally
//     scaled by each matrix's mean |diagonal|, GPyTorch-style psd-safe
//     Cholesky) is applied, and only that sub-batch is refactored. Factors
//     of recovered matrices are scattered back and their `info` reset to 0.
//  3. **Graceful degradation** — matrices that were healthy are never
//     perturbed (bit-identical to a plain factorization); matrices that
//     exhaust every attempt keep their original failure code.
//
// The gather step needs no pristine copy of the batch: the factorization
// writes only the factored triangle, so each failed matrix is rebuilt from
// its untouched mirror triangle plus a pre-saved copy of its diagonal
// (inputs must be symmetric, which Cholesky assumes anyway).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "kernels/tile_program.hpp"
#include "layout/layout.hpp"

namespace ibchol {

/// Per-matrix `info` code for inputs rejected by the NaN/Inf screen,
/// distinct from 0 (success) and the 1-based failing pivot column.
inline constexpr std::int32_t kInfoNonFinite = -1;

/// Shift schedule for the retry pass. Attempt a (1-based) applies
/// `shift0 · growth^(a-1)`, scaled by the matrix's mean |diagonal| when
/// `relative` is set (so one schedule serves batches of any magnitude).
struct RecoveryOptions {
  double shift0 = 1e-6;  ///< first attempt's shift
  double growth = 10.0;  ///< escalation factor per attempt
  int max_attempts = 8;  ///< shifted refactorizations before giving up
  bool relative = true;  ///< scale shifts by mean |diag| of each matrix
};

/// Outcome for one matrix that needed recovery.
struct MatrixRecovery {
  std::int64_t index = 0;      ///< batch index
  std::int32_t first_info = 0; ///< initial failure: kInfoNonFinite or column
  int attempts = 0;            ///< shifted retries consumed
  double shift = 0.0;          ///< final (absolute) shift; 0 if none applied
  bool recovered = false;      ///< factor now valid (with `shift` added)
};

/// Aggregate outcome of factor_batch_recover.
struct RecoveryReport {
  std::int64_t nonfinite = 0;      ///< screened out (never retried)
  std::int64_t failed = 0;         ///< non-SPD failures in the first pass
  std::int64_t recovered = 0;      ///< repaired by a shifted retry
  std::int64_t unrecoverable = 0;  ///< nonfinite + retries exhausted
  /// One entry per matrix that screened out or failed, ascending index.
  std::vector<MatrixRecovery> matrices;

  [[nodiscard]] bool all_recovered() const { return unrecoverable == 0; }
};

/// Scans the factored triangle (the elements the factorization will read)
/// of every matrix for NaN/Inf and writes `kInfoNonFinite` into `info` for
/// offenders; other entries of `info` are left untouched. Returns the
/// number of non-finite matrices. `info` must have batch() entries.
template <typename T>
std::int64_t screen_nonfinite(const BatchLayout& layout,
                              std::span<const T> data, Triangle triangle,
                              std::span<std::int32_t> info);

/// screen_nonfinite for a reduced-precision batch: the NaN/Inf test runs at
/// the bit level on the 16-bit words (exponent field all-ones), so no fp32
/// widening pass is needed to screen. Interleaved layouts only.
std::int64_t screen_nonfinite_mixed(const BatchLayout& layout,
                                    std::span<const std::uint16_t> data,
                                    StoragePrec storage, Triangle triangle,
                                    std::span<std::int32_t> info);

/// Factors the batch in place like factor_batch_cpu, then recovers failed
/// matrices per `recovery` (see the file comment). `info`, when non-empty,
/// receives the final per-matrix status: 0 (possibly after recovery),
/// kInfoNonFinite, or the failing column for unrecoverable matrices.
/// `program`, when non-null, is used for interleaved partial-unroll
/// factorizations (the caller's prebuilt tile program, as in
/// factor_batch_cpu_with_program).
template <typename T>
RecoveryReport factor_batch_recover(const BatchLayout& layout,
                                    std::span<T> data,
                                    const CpuFactorOptions& options,
                                    const RecoveryOptions& recovery,
                                    std::span<std::int32_t> info = {},
                                    const TileProgram* program = nullptr);

/// Pluggable factorization backend for the recovery driver: invoked for
/// the first whole-batch pass and for every shifted-retry sub-batch, with
/// the same contract as factor_batch_cpu(_with_program). `ctx` is the
/// caller's closure state (a function pointer + void* rather than
/// std::function keeps the recovery path allocation-free and lets higher
/// layers — the service in src/svc/ — plug in without this layer
/// depending on them).
template <typename T>
using RecoverFactorFn = FactorResult (*)(void* ctx, const BatchLayout& layout,
                                         std::span<T> data,
                                         const CpuFactorOptions& options,
                                         const TileProgram* program,
                                         std::span<std::int32_t> info);

/// factor_batch_recover with every factorization pass routed through
/// `factor_fn` instead of the built-in OpenMP driver. factor_batch_recover
/// is this with the plain driver plugged in.
template <typename T>
RecoveryReport factor_batch_recover_via(RecoverFactorFn<T> factor_fn,
                                        void* ctx, const BatchLayout& layout,
                                        std::span<T> data,
                                        const CpuFactorOptions& options,
                                        const RecoveryOptions& recovery,
                                        std::span<std::int32_t> info = {},
                                        const TileProgram* program = nullptr);

/// factor_batch_recover for a reduced-precision batch (bf16/fp16 words in
/// `storage` format; interleaved layouts only). Recovery is a cold path,
/// so the whole batch is widened once into fp32 scratch, the full fp32
/// screen/factor/shifted-retry machinery runs there (the shift schedule
/// operates on fp32 values, exactly as the mixed pipeline's compute does),
/// and the result — recovered factors, preserved non-finite inputs, NaN
/// residue of unrecoverable matrices — is narrowed back RN-even.
RecoveryReport factor_batch_recover_mixed(const BatchLayout& layout,
                                          std::span<std::uint16_t> data,
                                          StoragePrec storage,
                                          const CpuFactorOptions& options,
                                          const RecoveryOptions& recovery,
                                          std::span<std::int32_t> info = {},
                                          const TileProgram* program = nullptr);

/// factor_batch_recover_mixed with the fp32 passes routed through
/// `factor_fn` (the service plugs its pool in here, exactly as it does for
/// factor_batch_recover_via). factor_batch_recover_mixed is this with the
/// plain OpenMP driver plugged in.
RecoveryReport factor_batch_recover_mixed_via(
    RecoverFactorFn<float> factor_fn, void* ctx, const BatchLayout& layout,
    std::span<std::uint16_t> data, StoragePrec storage,
    const CpuFactorOptions& options, const RecoveryOptions& recovery,
    std::span<std::int32_t> info = {}, const TileProgram* program = nullptr);

}  // namespace ibchol
