// Specialized (compile-time instantiated) execution of tile programs.
//
// The interpreter in tile_exec.cpp walks the op list with runtime trip
// counts: a switch per op, and row/column loops whose bounds the compiler
// cannot see. This module is the CPU analog of the paper's *generated*
// pyexpander kernels: every tile microkernel (spotrf/strsm/ssyrk/sgemm) and
// load/store op is template-instantiated over its compile-time tile
// dimensions (ROWS, COLS, and contraction depth up to kMaxTileSize), so the
// compiler sees constant trip counts, fully unrolls the element loops, and
// keeps the lane loops as clean SIMD.
//
// Two layers:
//  * SpecializedProgram — binds each TileOp of a program to its specialized
//    function pointer ONCE (at construction), not per op per lane block;
//    run() then executes straight through the bound table.
//  * execute_fused_lane_block — whole-program specialization for n ≤
//    kMaxFusedDim: the entire factorization is one instantiated function
//    with no dispatch at all (the full-unroll analog, paper §II.D
//    parameter 5).
//
// Both perform exactly the arithmetic of the interpreter in the same order;
// the interpreter remains the correctness oracle (see tile_exec_spec_test).
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/tile_exec_detail.hpp"
#include "kernels/options.hpp"
#include "kernels/tile_program.hpp"

namespace ibchol {

/// Largest dimension with a fused whole-program specialization.
inline constexpr int kMaxFusedDim = kMaxTileSize;

/// Specialized kernel signature: strides and base as in the interpreter;
/// the op supplies runtime operands (register ids, tile origin, kdim for
/// the ops that keep it runtime) while trip counts are compile-time.
template <typename T>
using SpecKernelFn = void (*)(const TileOp&, exec_detail::RegFile<T>&,
                              std::int64_t, std::int64_t, T*, std::int32_t*);

/// A tile program bound to its specialized kernels.
///
/// Construction resolves every op's (kind, rows, cols, kdim, math) to a
/// function pointer from the instantiation tables; run() executes the bound
/// sequence for one lane block with the same base/estride/info/triangle
/// contract as execute_program_lane_block. Binding is done once per
/// program, so a batch of B matrices pays B/32 indirect calls per op
/// instead of B/32 switch dispatches with runtime loop bounds.
template <typename T>
class SpecializedProgram {
 public:
  /// Binds `program` (copied; no dangling). Throws ibchol::Error if a tile
  /// exceeds kMaxTileSize or the program uses too many register tiles.
  SpecializedProgram(const TileProgram& program, MathMode math);

  /// Executes the bound program for one lane block (see
  /// execute_program_lane_block for the base/estride/info contract).
  void run(T* base, std::int64_t estride, std::int32_t* info,
           Triangle triangle = Triangle::kLower) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] std::size_t num_ops() const { return ops_.size(); }

 private:
  int n_ = 0;
  std::vector<TileOp> ops_;
  std::vector<SpecKernelFn<T>> fns_;
};

/// Fused whole-program factorization of one lane block for n ≤ kMaxFusedDim:
/// load, complete factorization, and store are a single instantiated
/// function with compile-time n — no dispatch, no scratch. Numerics match
/// execute_whole_matrix_lane_block exactly. Throws for larger n.
template <typename T>
void execute_fused_lane_block(int n, MathMode math, T* base,
                              std::int64_t estride, std::int32_t* info,
                              Triangle triangle = Triangle::kLower);

}  // namespace ibchol
