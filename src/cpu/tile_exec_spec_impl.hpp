// Template bodies of the specialized tile kernels. Included only by the
// per-element-type translation units (tile_exec_spec_float.cpp /
// tile_exec_spec_double.cpp) so the large instantiation tables compile in
// parallel and nothing here leaks into the public headers.
//
// Every kernel body mirrors the interpreter's run_op case for the same op
// kind operation-for-operation (tile_exec.cpp); only the loop bounds are
// compile-time. Keeping the arithmetic order identical is what lets the
// tests demand (near-)bit-identical factors between the two executors.
#pragma once

#include <array>
#include <utility>

#include "cpu/math_policy.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "util/error.hpp"

namespace ibchol {
namespace spec_detail {

using exec_detail::RegFile;

// ------------------------------------------------------------ kernels ----
// R = tile rows, C = tile cols, KD = contraction depth (kSyrk/kGemm only).
// Math matters only where sqrt/recip appear (kPotrf, kTrsm); the
// math-insensitive kinds are instantiated once with IeeeMath.

template <typename T, typename Math, TileOp::Kind KIND, int R, int C, int KD>
void spec_op(const TileOp& op, RegFile<T>& rf, std::int64_t rstride,
             std::int64_t cstride, T* __restrict__ base, std::int32_t* info) {
  if constexpr (KIND == TileOp::Kind::kLoadFull) {
    for (int j = 0; j < C; ++j) {
      for (int i = 0; i < R; ++i) {
        const T* __restrict__ src =
            base + (op.row0 + i) * rstride + (op.col0 + j) * cstride;
        T* __restrict__ dst = rf.tile(op.r1, i, j);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
      }
    }
  } else if constexpr (KIND == TileOp::Kind::kLoadLower) {
    for (int j = 0; j < C; ++j) {
      for (int i = j; i < R; ++i) {
        const T* __restrict__ src =
            base + (op.row0 + i) * rstride + (op.col0 + j) * cstride;
        T* __restrict__ dst = rf.tile(op.r1, i, j);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
      }
    }
  } else if constexpr (KIND == TileOp::Kind::kStoreFull) {
    for (int j = 0; j < C; ++j) {
      for (int i = 0; i < R; ++i) {
        T* __restrict__ dst =
            base + (op.row0 + i) * rstride + (op.col0 + j) * cstride;
        const T* __restrict__ src = rf.tile(op.r1, i, j);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
      }
    }
  } else if constexpr (KIND == TileOp::Kind::kStoreLower) {
    for (int j = 0; j < C; ++j) {
      for (int i = j; i < R; ++i) {
        T* __restrict__ dst =
            base + (op.row0 + i) * rstride + (op.col0 + j) * cstride;
        const T* __restrict__ src = rf.tile(op.r1, i, j);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
      }
    }
  } else if constexpr (KIND == TileOp::Kind::kPotrf) {
    for (int k = 0; k < R; ++k) {
      T* __restrict__ akk = rf.tile(op.r1, k, k);
      if (info != nullptr) {
        for (int l = 0; l < kLaneBlock; ++l) {
          if (info[l] == 0 && !(akk[l] > T{0})) {
            info[l] = op.row0 + k + 1;
          }
        }
      }
      alignas(64) T inv[kLaneBlock];
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) {
        const T s = Math::sqrt(akk[l]);
        akk[l] = s;
        inv[l] = Math::recip(s);
      }
      for (int m = k + 1; m < R; ++m) {
        T* __restrict__ amk = rf.tile(op.r1, m, k);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) amk[l] *= inv[l];
      }
      for (int nn = k + 1; nn < R; ++nn) {
        const T* __restrict__ ank = rf.tile(op.r1, nn, k);
        for (int m = nn; m < R; ++m) {
          const T* __restrict__ amk = rf.tile(op.r1, m, k);
          T* __restrict__ amn = rf.tile(op.r1, m, nn);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) amn[l] -= ank[l] * amk[l];
        }
      }
    }
  } else if constexpr (KIND == TileOp::Kind::kTrsm) {
    for (int k = 0; k < C; ++k) {
      const T* __restrict__ lkk = rf.tile(op.r1, k, k);
      alignas(64) T inv[kLaneBlock];
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) inv[l] = Math::recip(lkk[l]);
      for (int m = 0; m < R; ++m) {
        T* __restrict__ bmk = rf.tile(op.r2, m, k);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) bmk[l] *= inv[l];
      }
      for (int nn = k + 1; nn < C; ++nn) {
        const T* __restrict__ lnk = rf.tile(op.r1, nn, k);
        for (int m = 0; m < R; ++m) {
          const T* __restrict__ bmk = rf.tile(op.r2, m, k);
          T* __restrict__ bmn = rf.tile(op.r2, m, nn);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) bmn[l] -= bmk[l] * lnk[l];
        }
      }
    }
  } else if constexpr (KIND == TileOp::Kind::kSyrk) {
    for (int m = 0; m < R; ++m) {
      for (int nn = 0; nn <= m; ++nn) {
        T* __restrict__ cmn = rf.tile(op.r2, m, nn);
        for (int k = 0; k < KD; ++k) {
          const T* __restrict__ amk = rf.tile(op.r1, m, k);
          const T* __restrict__ ank = rf.tile(op.r1, nn, k);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) cmn[l] -= amk[l] * ank[l];
        }
      }
    }
  } else {
    static_assert(KIND == TileOp::Kind::kGemm);
    for (int m = 0; m < R; ++m) {
      for (int nn = 0; nn < C; ++nn) {
        T* __restrict__ cmn = rf.tile(op.r3, m, nn);
        for (int k = 0; k < KD; ++k) {
          const T* __restrict__ amk = rf.tile(op.r1, m, k);
          const T* __restrict__ bnk = rf.tile(op.r2, nn, k);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) cmn[l] -= amk[l] * bnk[l];
        }
      }
    }
  }
}

// ------------------------------------------------------------- tables ----
// One function-pointer table per op kind, indexed by the compile-time
// dimensions minus one. Built once (function-local static) per element
// type; binding a program is table lookups only.

template <typename T>
using Fn = SpecKernelFn<T>;

// [R-1]: square tiles (potrf, lower load/store).
template <typename T, typename Math, TileOp::Kind KIND>
const std::array<Fn<T>, kMaxTileSize>& r_table() {
  static const auto table = []<std::size_t... R>(std::index_sequence<R...>) {
    return std::array<Fn<T>, kMaxTileSize>{
        &spec_op<T, Math, KIND, R + 1, R + 1, 1>...};
  }(std::make_index_sequence<kMaxTileSize>{});
  return table;
}

// [R-1][C-1]: rectangular tiles (full load/store, trsm).
template <typename T, typename Math, TileOp::Kind KIND>
const std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>& rc_table() {
  static const auto table = []<std::size_t... R>(std::index_sequence<R...>) {
    return std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>{
        []<std::size_t RR, std::size_t... C>(
            std::integral_constant<std::size_t, RR>,
            std::index_sequence<C...>) {
          return std::array<Fn<T>, kMaxTileSize>{
              &spec_op<T, Math, KIND, RR + 1, C + 1, 1>...};
        }(std::integral_constant<std::size_t, R>{},
          std::make_index_sequence<kMaxTileSize>{})...};
  }(std::make_index_sequence<kMaxTileSize>{});
  return table;
}

// [R-1][KD-1]: syrk (square dst, compile-time contraction depth).
template <typename T>
const std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>& rk_table() {
  static const auto table = []<std::size_t... R>(std::index_sequence<R...>) {
    return std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>{
        []<std::size_t RR, std::size_t... K>(
            std::integral_constant<std::size_t, RR>,
            std::index_sequence<K...>) {
          return std::array<Fn<T>, kMaxTileSize>{
              &spec_op<T, IeeeMath, TileOp::Kind::kSyrk, RR + 1, RR + 1,
                       K + 1>...};
        }(std::integral_constant<std::size_t, R>{},
          std::make_index_sequence<kMaxTileSize>{})...};
  }(std::make_index_sequence<kMaxTileSize>{});
  return table;
}

// [R-1][C-1][KD-1]: gemm.
template <typename T>
const std::array<
    std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>,
    kMaxTileSize>&
rck_table() {
  static const auto table = []<std::size_t... R>(std::index_sequence<R...>) {
    return std::array<
        std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>,
        kMaxTileSize>{
        []<std::size_t RR, std::size_t... C>(
            std::integral_constant<std::size_t, RR>,
            std::index_sequence<C...>) {
          return std::array<std::array<Fn<T>, kMaxTileSize>, kMaxTileSize>{
              []<std::size_t RRR, std::size_t CC, std::size_t... K>(
                  std::integral_constant<std::size_t, RRR>,
                  std::integral_constant<std::size_t, CC>,
                  std::index_sequence<K...>) {
                return std::array<Fn<T>, kMaxTileSize>{
                    &spec_op<T, IeeeMath, TileOp::Kind::kGemm, RRR + 1, CC + 1,
                             K + 1>...};
              }(std::integral_constant<std::size_t, RR>{},
                std::integral_constant<std::size_t, C>{},
                std::make_index_sequence<kMaxTileSize>{})...};
        }(std::integral_constant<std::size_t, R>{},
          std::make_index_sequence<kMaxTileSize>{})...};
  }(std::make_index_sequence<kMaxTileSize>{});
  return table;
}

// -------------------------------------------------------------- lookup ---

template <typename T>
Fn<T> lookup(const TileOp& op, MathMode math) {
  const bool fast = math == MathMode::kFastMath;
  IBCHOL_CHECK(op.rows >= 1 && op.rows <= kMaxTileSize &&
                   op.cols >= 1 && op.cols <= kMaxTileSize,
               "tile size exceeds the executor's register file");
  const int r = op.rows - 1;
  const int c = op.cols - 1;
  switch (op.kind) {
    case TileOp::Kind::kLoadFull:
      return rc_table<T, IeeeMath, TileOp::Kind::kLoadFull>()[r][c];
    case TileOp::Kind::kLoadLower:
      IBCHOL_CHECK(op.rows == op.cols, "lower tiles must be square");
      return r_table<T, IeeeMath, TileOp::Kind::kLoadLower>()[r];
    case TileOp::Kind::kStoreFull:
      return rc_table<T, IeeeMath, TileOp::Kind::kStoreFull>()[r][c];
    case TileOp::Kind::kStoreLower:
      IBCHOL_CHECK(op.rows == op.cols, "lower tiles must be square");
      return r_table<T, IeeeMath, TileOp::Kind::kStoreLower>()[r];
    case TileOp::Kind::kPotrf:
      IBCHOL_CHECK(op.rows == op.cols, "potrf tiles must be square");
      return fast ? r_table<T, FastMath, TileOp::Kind::kPotrf>()[r]
                  : r_table<T, IeeeMath, TileOp::Kind::kPotrf>()[r];
    case TileOp::Kind::kTrsm:
      return fast ? rc_table<T, FastMath, TileOp::Kind::kTrsm>()[r][c]
                  : rc_table<T, IeeeMath, TileOp::Kind::kTrsm>()[r][c];
    case TileOp::Kind::kSyrk: {
      IBCHOL_CHECK(op.rows == op.cols, "syrk dst tiles must be square");
      IBCHOL_CHECK(op.kdim >= 1 && op.kdim <= kMaxTileSize,
                   "contraction depth exceeds the register file");
      return rk_table<T>()[r][op.kdim - 1];
    }
    case TileOp::Kind::kGemm: {
      IBCHOL_CHECK(op.kdim >= 1 && op.kdim <= kMaxTileSize,
                   "contraction depth exceeds the register file");
      return rck_table<T>()[r][c][op.kdim - 1];
    }
  }
  throw Error("unknown tile op kind");
}

// --------------------------------------------------------- fused small-N --
// Whole-program specialization: identical arithmetic order to
// whole_matrix_impl in tile_exec.cpp, with compile-time n so the entire
// factorization is straight-line code.

template <typename T, typename Math, int N>
void fused_factor(T* __restrict__ base, std::int64_t rstride,
                  std::int64_t cstride, std::int32_t* info) {
  // Local triangle: element (i,j), i >= j, at slot i*(i+1)/2 + j.
  alignas(64) T tri[N * (N + 1) / 2][kLaneBlock];

  for (int j = 0; j < N; ++j) {
    for (int i = j; i < N; ++i) {
      const T* __restrict__ src = base + i * rstride + j * cstride;
      T* __restrict__ dst = tri[i * (i + 1) / 2 + j];
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
    }
  }

  for (int k = 0; k < N; ++k) {
    T* __restrict__ akk = tri[k * (k + 1) / 2 + k];
    if (info != nullptr) {
      for (int l = 0; l < kLaneBlock; ++l) {
        if (info[l] == 0 && !(akk[l] > T{0})) info[l] = k + 1;
      }
    }
    alignas(64) T inv[kLaneBlock];
#pragma omp simd
    for (int l = 0; l < kLaneBlock; ++l) {
      const T s = Math::sqrt(akk[l]);
      akk[l] = s;
      inv[l] = Math::recip(s);
    }
    for (int m = k + 1; m < N; ++m) {
      T* __restrict__ amk = tri[m * (m + 1) / 2 + k];
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) amk[l] *= inv[l];
    }
    for (int j = k + 1; j < N; ++j) {
      const T* __restrict__ ajk = tri[j * (j + 1) / 2 + k];
      for (int m = j; m < N; ++m) {
        const T* __restrict__ amk = tri[m * (m + 1) / 2 + k];
        T* __restrict__ amj = tri[m * (m + 1) / 2 + j];
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) amj[l] -= ajk[l] * amk[l];
      }
    }
  }

  for (int j = 0; j < N; ++j) {
    for (int i = j; i < N; ++i) {
      T* __restrict__ dst = base + i * rstride + j * cstride;
      const T* __restrict__ src = tri[i * (i + 1) / 2 + j];
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
    }
  }
}

template <typename T, typename Math>
void fused_dispatch(int n, T* base, std::int64_t rstride, std::int64_t cstride,
                    std::int32_t* info) {
  switch (n) {
    case 1: fused_factor<T, Math, 1>(base, rstride, cstride, info); return;
    case 2: fused_factor<T, Math, 2>(base, rstride, cstride, info); return;
    case 3: fused_factor<T, Math, 3>(base, rstride, cstride, info); return;
    case 4: fused_factor<T, Math, 4>(base, rstride, cstride, info); return;
    case 5: fused_factor<T, Math, 5>(base, rstride, cstride, info); return;
    case 6: fused_factor<T, Math, 6>(base, rstride, cstride, info); return;
    case 7: fused_factor<T, Math, 7>(base, rstride, cstride, info); return;
    case 8: fused_factor<T, Math, 8>(base, rstride, cstride, info); return;
    default:
      throw Error("no fused specialization for n = " + std::to_string(n));
  }
}

}  // namespace spec_detail

// ------------------------------------------------- SpecializedProgram ----

template <typename T>
SpecializedProgram<T>::SpecializedProgram(const TileProgram& program,
                                          MathMode math)
    : n_(program.n), ops_(program.ops) {
  IBCHOL_CHECK(program.nb <= kMaxTileSize,
               "tile size exceeds the executor's register file");
  IBCHOL_CHECK(program.num_register_tiles() <= kMaxRegisterTiles,
               "program uses too many register tiles");
  fns_.reserve(ops_.size());
  for (const TileOp& op : ops_) {
    fns_.push_back(spec_detail::lookup<T>(op, math));
  }
}

template <typename T>
void SpecializedProgram<T>::run(T* base, std::int64_t estride,
                                std::int32_t* info, Triangle triangle) const {
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * n_ : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * n_;
  exec_detail::RegFile<T> rf;
  const std::size_t count = ops_.size();
  for (std::size_t i = 0; i < count; ++i) {
    fns_[i](ops_[i], rf, rstride, cstride, base, info);
  }
}

template <typename T>
void execute_fused_lane_block(int n, MathMode math, T* base,
                              std::int64_t estride, std::int32_t* info,
                              Triangle triangle) {
  IBCHOL_CHECK(n >= 1 && n <= kMaxFusedDim,
               "no fused specialization for this dimension");
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * n : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * n;
  if (math == MathMode::kFastMath) {
    spec_detail::fused_dispatch<T, FastMath>(n, base, rstride, cstride, info);
  } else {
    spec_detail::fused_dispatch<T, IeeeMath>(n, base, rstride, cstride, info);
  }
}

}  // namespace ibchol
