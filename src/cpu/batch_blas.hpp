// Batched BLAS companions on interleaved layouts.
//
// cuBLAS, MKL and MAGMA pair their batched factorizations with batched
// Level-3 building blocks; this module provides the same companions for the
// interleaved layouts, processed one SIMD lane block at a time like the
// factorization itself:
//   * batch_trsm_left_lower   — X <- L^{-1} B  or  L^{-T} B (multi-RHS)
//   * batch_potrs             — X <- (L·Lᵀ)^{-1} B (multi-RHS solve)
//   * batch_syrk_lower        — C <- C - A·Aᵀ (lower triangle)
//   * batch_gemm_nt           — C <- C - A·Bᵀ
// Canonical layouts dispatch to the per-matrix reference routines.
//
// Operand layouts must be `compatible` (same scheme, chunk, batch) so a
// lane block addresses the same 32 matrices in every operand.
#pragma once

#include <span>

#include "kernels/options.hpp"
#include "layout/layout.hpp"
#include "layout/rect_layout.hpp"

namespace ibchol {

/// X <- L^{-1}·X (trans == false) or L^{-T}·X (trans == true), where L is
/// the lower triangle of each n×n matrix in `mats` and X is the matching
/// n×nrhs right-hand-side block in `rhs`. In-place on `rhs`.
template <typename T>
void batch_trsm_left_lower(const BatchLayout& mlayout, std::span<const T> mats,
                           const BatchRectLayout& rlayout, std::span<T> rhs,
                           bool trans, MathMode math = MathMode::kIeee,
                           int num_threads = 0,
                           Triangle triangle = Triangle::kLower);

/// Solves L·Lᵀ X = B for every matrix (multi-RHS POTRS): forward then
/// backward batched triangular solve.
template <typename T>
void batch_potrs(const BatchLayout& mlayout, std::span<const T> mats,
                 const BatchRectLayout& rlayout, std::span<T> rhs,
                 MathMode math = MathMode::kIeee, int num_threads = 0,
                 Triangle triangle = Triangle::kLower);

/// C <- C - A·Aᵀ, lower triangle only. C is the n×n batch `cs`; A is the
/// n×k batch `as`.
template <typename T>
void batch_syrk_lower(const BatchLayout& clayout, std::span<T> cs,
                      const BatchRectLayout& alayout, std::span<const T> as,
                      int num_threads = 0);

/// C <- C - A·Bᵀ. C is m×n, A is m×k, B is n×k (all rect batches).
template <typename T>
void batch_gemm_nt(const BatchRectLayout& clayout, std::span<T> cs,
                   const BatchRectLayout& alayout, std::span<const T> as,
                   const BatchRectLayout& blayout, std::span<const T> bs,
                   int num_threads = 0);

}  // namespace ibchol
