// Double-precision instantiations of the specialized tile kernels (see
// tile_exec_spec_float.cpp for why instantiation is split by type).
#include "cpu/tile_exec_spec_impl.hpp"

namespace ibchol {

template class SpecializedProgram<double>;
template void execute_fused_lane_block<double>(int, MathMode, double*,
                                               std::int64_t, std::int32_t*,
                                               Triangle);

}  // namespace ibchol
