#include "cpu/tile_exec.hpp"

#include "cpu/math_policy.hpp"
#include "cpu/tile_exec_detail.hpp"
#include "util/error.hpp"

namespace ibchol {

namespace {

using exec_detail::RegFile;

// rstride/cstride: element strides of a unit step in the row / column
// direction. The lower factorization uses (estride, n*estride); the upper
// factorization swaps them, transposing the index map so the same schedule
// produces U = L^T in the upper triangle.
template <typename T, typename Math>
void run_op(const TileOp& op, RegFile<T>& rf, std::int64_t rstride,
            std::int64_t cstride, T* __restrict__ base, std::int32_t* info) {
  const int rows = op.rows;
  const int cols = op.cols;
  switch (op.kind) {
    case TileOp::Kind::kLoadFull: {
      for (int j = 0; j < cols; ++j) {
        for (int i = 0; i < rows; ++i) {
          const T* __restrict__ src = base + (op.row0 + i) * rstride +
                                      (op.col0 + j) * cstride;
          T* __restrict__ dst = rf.tile(op.r1, i, j);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
        }
      }
      break;
    }
    case TileOp::Kind::kLoadLower: {
      for (int j = 0; j < cols; ++j) {
        for (int i = j; i < rows; ++i) {
          const T* __restrict__ src = base + (op.row0 + i) * rstride +
                                      (op.col0 + j) * cstride;
          T* __restrict__ dst = rf.tile(op.r1, i, j);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
        }
      }
      break;
    }
    case TileOp::Kind::kStoreFull: {
      for (int j = 0; j < cols; ++j) {
        for (int i = 0; i < rows; ++i) {
          T* __restrict__ dst = base + (op.row0 + i) * rstride +
                                (op.col0 + j) * cstride;
          const T* __restrict__ src = rf.tile(op.r1, i, j);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
        }
      }
      break;
    }
    case TileOp::Kind::kStoreLower: {
      for (int j = 0; j < cols; ++j) {
        for (int i = j; i < rows; ++i) {
          T* __restrict__ dst = base + (op.row0 + i) * rstride +
                                (op.col0 + j) * cstride;
          const T* __restrict__ src = rf.tile(op.r1, i, j);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
        }
      }
      break;
    }
    case TileOp::Kind::kPotrf: {
      // Mirrors spotrf_tile (paper Fig 9) across lanes. op.row0 carries the
      // tile's global diagonal position for failure reporting.
      for (int k = 0; k < rows; ++k) {
        T* __restrict__ akk = rf.tile(op.r1, k, k);
        if (info != nullptr) {
          for (int l = 0; l < kLaneBlock; ++l) {
            if (info[l] == 0 && !(akk[l] > T{0})) {
              info[l] = op.row0 + k + 1;
            }
          }
        }
        alignas(64) T inv[kLaneBlock];
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) {
          const T s = Math::sqrt(akk[l]);
          akk[l] = s;
          inv[l] = Math::recip(s);
        }
        for (int m = k + 1; m < rows; ++m) {
          T* __restrict__ amk = rf.tile(op.r1, m, k);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) amk[l] *= inv[l];
        }
        for (int nn = k + 1; nn < rows; ++nn) {
          const T* __restrict__ ank = rf.tile(op.r1, nn, k);
          for (int m = nn; m < rows; ++m) {
            const T* __restrict__ amk = rf.tile(op.r1, m, k);
            T* __restrict__ amn = rf.tile(op.r1, m, nn);
#pragma omp simd
            for (int l = 0; l < kLaneBlock; ++l) amn[l] -= ank[l] * amk[l];
          }
        }
      }
      break;
    }
    case TileOp::Kind::kTrsm: {
      // rB (rows×cols) <- rB · tril(rL)^{-T}, column-forward order.
      for (int k = 0; k < cols; ++k) {
        const T* __restrict__ lkk = rf.tile(op.r1, k, k);
        alignas(64) T inv[kLaneBlock];
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) inv[l] = Math::recip(lkk[l]);
        for (int m = 0; m < rows; ++m) {
          T* __restrict__ bmk = rf.tile(op.r2, m, k);
#pragma omp simd
          for (int l = 0; l < kLaneBlock; ++l) bmk[l] *= inv[l];
        }
        for (int nn = k + 1; nn < cols; ++nn) {
          const T* __restrict__ lnk = rf.tile(op.r1, nn, k);
          for (int m = 0; m < rows; ++m) {
            const T* __restrict__ bmk = rf.tile(op.r2, m, k);
            T* __restrict__ bmn = rf.tile(op.r2, m, nn);
#pragma omp simd
            for (int l = 0; l < kLaneBlock; ++l) bmn[l] -= bmk[l] * lnk[l];
          }
        }
      }
      break;
    }
    case TileOp::Kind::kSyrk: {
      // rC (rows×rows lower) -= rA·rAᵀ with contraction depth op.kdim.
      for (int m = 0; m < rows; ++m) {
        for (int nn = 0; nn <= m; ++nn) {
          T* __restrict__ cmn = rf.tile(op.r2, m, nn);
          for (int k = 0; k < op.kdim; ++k) {
            const T* __restrict__ amk = rf.tile(op.r1, m, k);
            const T* __restrict__ ank = rf.tile(op.r1, nn, k);
#pragma omp simd
            for (int l = 0; l < kLaneBlock; ++l) cmn[l] -= amk[l] * ank[l];
          }
        }
      }
      break;
    }
    case TileOp::Kind::kGemm: {
      // rC (rows×cols) -= rA·rBᵀ with contraction depth op.kdim.
      for (int m = 0; m < rows; ++m) {
        for (int nn = 0; nn < cols; ++nn) {
          T* __restrict__ cmn = rf.tile(op.r3, m, nn);
          for (int k = 0; k < op.kdim; ++k) {
            const T* __restrict__ amk = rf.tile(op.r1, m, k);
            const T* __restrict__ bnk = rf.tile(op.r2, nn, k);
#pragma omp simd
            for (int l = 0; l < kLaneBlock; ++l) cmn[l] -= amk[l] * bnk[l];
          }
        }
      }
      break;
    }
  }
}

template <typename T, typename Math>
void execute_impl(const TileProgram& program, T* base, std::int64_t estride,
                  std::int32_t* info, Triangle triangle) {
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * program.n : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * program.n;
  RegFile<T> rf;
  for (const TileOp& op : program.ops) {
    run_op<T, Math>(op, rf, rstride, cstride, base, info);
  }
}

template <typename T, typename Math>
void whole_matrix_impl(int n, T* __restrict__ base, std::int64_t estride,
                       std::int32_t* info, T* __restrict__ tri,
                       Triangle triangle) {
  const std::int64_t rstride =
      triangle == Triangle::kUpper ? estride * n : estride;
  const std::int64_t cstride =
      triangle == Triangle::kUpper ? estride : estride * n;
  // tri holds the lower triangle: element (i,j), i >= j, at slot
  // (i*(i+1)/2 + j) * kLaneBlock.
  auto slot = [](int i, int j) {
    return (static_cast<std::size_t>(i) * (i + 1) / 2 + j) *
           static_cast<std::size_t>(kLaneBlock);
  };

  // Single load pass over the lower triangle.
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      const T* __restrict__ src = base + i * rstride + j * cstride;
      T* __restrict__ dst = tri + slot(i, j);
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
    }
  }

  // Unblocked factorization entirely in scratch.
  for (int k = 0; k < n; ++k) {
    T* __restrict__ akk = tri + slot(k, k);
    if (info != nullptr) {
      for (int l = 0; l < kLaneBlock; ++l) {
        if (info[l] == 0 && !(akk[l] > T{0})) info[l] = k + 1;
      }
    }
    alignas(64) T inv[kLaneBlock];
#pragma omp simd
    for (int l = 0; l < kLaneBlock; ++l) {
      const T s = Math::sqrt(akk[l]);
      akk[l] = s;
      inv[l] = Math::recip(s);
    }
    for (int m = k + 1; m < n; ++m) {
      T* __restrict__ amk = tri + slot(m, k);
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) amk[l] *= inv[l];
    }
    for (int j = k + 1; j < n; ++j) {
      const T* __restrict__ ajk = tri + slot(j, k);
      for (int m = j; m < n; ++m) {
        const T* __restrict__ amk = tri + slot(m, k);
        T* __restrict__ amj = tri + slot(m, j);
#pragma omp simd
        for (int l = 0; l < kLaneBlock; ++l) amj[l] -= ajk[l] * amk[l];
      }
    }
  }

  // Single store pass.
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      T* __restrict__ dst = base + i * rstride + j * cstride;
      const T* __restrict__ src = tri + slot(i, j);
#pragma omp simd
      for (int l = 0; l < kLaneBlock; ++l) dst[l] = src[l];
    }
  }
}

}  // namespace

template <typename T>
void execute_program_lane_block(const TileProgram& program, MathMode math,
                                T* base, std::int64_t estride,
                                std::int32_t* info, Triangle triangle) {
  IBCHOL_CHECK(program.nb <= kMaxTileSize,
               "tile size exceeds the executor's register file");
  IBCHOL_CHECK(program.num_register_tiles() <= kMaxRegisterTiles,
               "program uses too many register tiles");
  if (math == MathMode::kFastMath) {
    execute_impl<T, FastMath>(program, base, estride, info, triangle);
  } else {
    execute_impl<T, IeeeMath>(program, base, estride, info, triangle);
  }
}

std::size_t whole_matrix_scratch_elems(int n) {
  return static_cast<std::size_t>(n) * (n + 1) / 2 *
         static_cast<std::size_t>(kLaneBlock);
}

template <typename T>
void execute_whole_matrix_lane_block(int n, MathMode math, T* base,
                                     std::int64_t estride, std::int32_t* info,
                                     T* scratch, Triangle triangle) {
  if (math == MathMode::kFastMath) {
    whole_matrix_impl<T, FastMath>(n, base, estride, info, scratch, triangle);
  } else {
    whole_matrix_impl<T, IeeeMath>(n, base, estride, info, scratch, triangle);
  }
}

template void execute_program_lane_block<float>(const TileProgram&, MathMode,
                                                float*, std::int64_t,
                                                std::int32_t*, Triangle);
template void execute_program_lane_block<double>(const TileProgram&, MathMode,
                                                 double*, std::int64_t,
                                                 std::int32_t*, Triangle);
template void execute_whole_matrix_lane_block<float>(int, MathMode, float*,
                                                     std::int64_t,
                                                     std::int32_t*, float*,
                                                     Triangle);
template void execute_whole_matrix_lane_block<double>(int, MathMode, double*,
                                                      std::int64_t,
                                                      std::int32_t*, double*,
                                                      Triangle);

}  // namespace ibchol
