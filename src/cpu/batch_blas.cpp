#include "cpu/batch_blas.hpp"

#include "cpu/math_policy.hpp"
#include "cpu/reference.hpp"
#include "cpu/thread_util.hpp"
#include "cpu/tile_exec.hpp"

namespace ibchol {

namespace {

// Lane-block pointers for an operand: base of the 32 consecutive matrices
// starting at `start`, with element stride `estride`.
template <typename T>
T* lane_base(T* data, const BatchRectLayout& layout, std::int64_t start) {
  return data + layout.chunk_base(start) +
         (layout.kind() == LayoutKind::kCanonical ? 0 : start % layout.chunk());
}

template <typename T>
const T* lane_base(const T* data, const BatchLayout& layout,
                   std::int64_t start) {
  return data + layout.chunk_base(start) +
         (layout.kind() == LayoutKind::kCanonical ? 0 : start % layout.chunk());
}

// --- lane-block kernels (interleaved layouts) ---------------------------

template <typename T, typename Math>
void trsm_lane_block(int n, int nrhs, const T* __restrict__ l,
                     std::int64_t rstride, std::int64_t cstride,
                     T* __restrict__ x, std::int64_t xs, bool trans) {
  // With transposed strides (upper factor) lelem(i, j) reads U(j, i),
  // which is exactly the L(i, j) the substitution below needs.
  auto lelem = [&](int i, int j) {
    return l + i * rstride + j * cstride;
  };
  auto xelem = [&](int i, int j) {
    return x + (static_cast<std::int64_t>(j) * n + i) * xs;
  };
  for (int col = 0; col < nrhs; ++col) {
    if (!trans) {
      // Forward: L y = b.
      for (int i = 0; i < n; ++i) {
        T* __restrict__ xi = xelem(i, col);
        for (int j = 0; j < i; ++j) {
          const T* __restrict__ lij = lelem(i, j);
          const T* __restrict__ xj = xelem(j, col);
#pragma omp simd
          for (int lane = 0; lane < kLaneBlock; ++lane) {
            xi[lane] -= lij[lane] * xj[lane];
          }
        }
        const T* __restrict__ lii = lelem(i, i);
#pragma omp simd
        for (int lane = 0; lane < kLaneBlock; ++lane) {
          xi[lane] = Math::div(xi[lane], lii[lane]);
        }
      }
    } else {
      // Backward: L^T y = b.
      for (int i = n - 1; i >= 0; --i) {
        T* __restrict__ xi = xelem(i, col);
        for (int j = i + 1; j < n; ++j) {
          const T* __restrict__ lji = lelem(j, i);
          const T* __restrict__ xj = xelem(j, col);
#pragma omp simd
          for (int lane = 0; lane < kLaneBlock; ++lane) {
            xi[lane] -= lji[lane] * xj[lane];
          }
        }
        const T* __restrict__ lii = lelem(i, i);
#pragma omp simd
        for (int lane = 0; lane < kLaneBlock; ++lane) {
          xi[lane] = Math::div(xi[lane], lii[lane]);
        }
      }
    }
  }
}

template <typename T>
void syrk_lane_block(int n, int k, T* __restrict__ c, std::int64_t cs,
                     const T* __restrict__ a, std::int64_t as) {
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      T* __restrict__ cij = c + (static_cast<std::int64_t>(j) * n + i) * cs;
      for (int p = 0; p < k; ++p) {
        const T* __restrict__ aip =
            a + (static_cast<std::int64_t>(p) * n + i) * as;
        const T* __restrict__ ajp =
            a + (static_cast<std::int64_t>(p) * n + j) * as;
#pragma omp simd
        for (int lane = 0; lane < kLaneBlock; ++lane) {
          cij[lane] -= aip[lane] * ajp[lane];
        }
      }
    }
  }
}

template <typename T>
void gemm_lane_block(int m, int n, int k, T* __restrict__ c, std::int64_t cs,
                     const T* __restrict__ a, std::int64_t as,
                     const T* __restrict__ b, std::int64_t bs) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      T* __restrict__ cij = c + (static_cast<std::int64_t>(j) * m + i) * cs;
      for (int p = 0; p < k; ++p) {
        const T* __restrict__ aip =
            a + (static_cast<std::int64_t>(p) * m + i) * as;
        const T* __restrict__ bjp =
            b + (static_cast<std::int64_t>(p) * n + j) * bs;
#pragma omp simd
        for (int lane = 0; lane < kLaneBlock; ++lane) {
          cij[lane] -= aip[lane] * bjp[lane];
        }
      }
    }
  }
}

// --- canonical per-matrix fallbacks -------------------------------------

template <typename T>
void trsm_canonical(int n, int nrhs, const T* l, T* x, bool trans,
                    Triangle triangle) {
  // Column-by-column substitution, one RHS at a time. The upper factor is
  // accessed through the transposed index map: L(i,j) := U(j,i).
  const std::ptrdiff_t rs = triangle == Triangle::kUpper ? n : 1;
  const std::ptrdiff_t cs = triangle == Triangle::kUpper ? 1 : n;
  auto lelem = [&](int i, int j) { return l[i * rs + j * cs]; };
  for (int col = 0; col < nrhs; ++col) {
    T* xc = x + static_cast<std::ptrdiff_t>(col) * n;
    if (!trans) {
      for (int i = 0; i < n; ++i) {
        T acc = xc[i];
        for (int j = 0; j < i; ++j) acc -= lelem(i, j) * xc[j];
        xc[i] = acc / lelem(i, i);
      }
    } else {
      for (int i = n - 1; i >= 0; --i) {
        T acc = xc[i];
        for (int j = i + 1; j < n; ++j) acc -= lelem(j, i) * xc[j];
        xc[i] = acc / lelem(i, i);
      }
    }
  }
}

}  // namespace

template <typename T>
void batch_trsm_left_lower(const BatchLayout& mlayout, std::span<const T> mats,
                           const BatchRectLayout& rlayout, std::span<T> rhs,
                           bool trans, MathMode math, int num_threads,
                           Triangle triangle) {
  IBCHOL_CHECK(rlayout.compatible(mlayout),
               "rhs layout incompatible with the matrix layout");
  IBCHOL_CHECK(rlayout.rows() == mlayout.n(), "rhs row count must equal n");
  IBCHOL_CHECK(mats.size() >= mlayout.size_elems(), "matrix span too small");
  IBCHOL_CHECK(rhs.size() >= rlayout.size_elems(), "rhs span too small");
  const int n = mlayout.n();
  const int nrhs = rlayout.cols();
  const int nt = resolve_threads(num_threads);

  if (mlayout.kind() == LayoutKind::kCanonical) {
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t b = 0; b < mlayout.batch(); ++b) {
      trsm_canonical(n, nrhs, mats.data() + mlayout.index(b, 0, 0),
                     rhs.data() + rlayout.index(b, 0, 0), trans, triangle);
    }
    return;
  }

  const std::int64_t blocks = mlayout.padded_batch() / kLaneBlock;
#pragma omp parallel for schedule(static) num_threads(nt)
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t start = blk * kLaneBlock;
    const T* l = lane_base(mats.data(), mlayout, start);
    T* x = lane_base(rhs.data(), rlayout, start);
    const std::int64_t rstride = triangle == Triangle::kUpper
                                     ? mlayout.chunk() * n
                                     : mlayout.chunk();
    const std::int64_t cstride = triangle == Triangle::kUpper
                                     ? mlayout.chunk()
                                     : mlayout.chunk() * n;
    if (math == MathMode::kFastMath) {
      trsm_lane_block<T, FastMath>(n, nrhs, l, rstride, cstride, x,
                                   rlayout.chunk(), trans);
    } else {
      trsm_lane_block<T, IeeeMath>(n, nrhs, l, rstride, cstride, x,
                                   rlayout.chunk(), trans);
    }
  }
}

template <typename T>
void batch_potrs(const BatchLayout& mlayout, std::span<const T> mats,
                 const BatchRectLayout& rlayout, std::span<T> rhs,
                 MathMode math, int num_threads, Triangle triangle) {
  batch_trsm_left_lower(mlayout, mats, rlayout, rhs, /*trans=*/false, math,
                        num_threads, triangle);
  batch_trsm_left_lower(mlayout, mats, rlayout, rhs, /*trans=*/true, math,
                        num_threads, triangle);
}

template <typename T>
void batch_syrk_lower(const BatchLayout& clayout, std::span<T> cs,
                      const BatchRectLayout& alayout, std::span<const T> as,
                      int num_threads) {
  IBCHOL_CHECK(alayout.compatible(clayout),
               "A layout incompatible with C layout");
  IBCHOL_CHECK(alayout.rows() == clayout.n(), "A row count must equal n");
  IBCHOL_CHECK(cs.size() >= clayout.size_elems(), "C span too small");
  IBCHOL_CHECK(as.size() >= alayout.size_elems(), "A span too small");
  const int n = clayout.n();
  const int k = alayout.cols();
  const int nt = resolve_threads(num_threads);

  if (clayout.kind() == LayoutKind::kCanonical) {
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t b = 0; b < clayout.batch(); ++b) {
      syrk_lower_nt(n, k, as.data() + alayout.index(b, 0, 0), n,
                    cs.data() + clayout.index(b, 0, 0), n);
    }
    return;
  }

  const std::int64_t blocks = clayout.padded_batch() / kLaneBlock;
#pragma omp parallel for schedule(static) num_threads(nt)
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t start = blk * kLaneBlock;
    syrk_lane_block<T>(n, k,
                       cs.data() + clayout.chunk_base(start) +
                           start % clayout.chunk(),
                       clayout.chunk(), lane_base(as.data(), alayout, start),
                       alayout.chunk());
  }
}

template <typename T>
void batch_gemm_nt(const BatchRectLayout& clayout, std::span<T> cs,
                   const BatchRectLayout& alayout, std::span<const T> as,
                   const BatchRectLayout& blayout, std::span<const T> bs,
                   int num_threads) {
  IBCHOL_CHECK(alayout.compatible(clayout) && blayout.compatible(clayout),
               "operand layouts incompatible");
  const int m = clayout.rows();
  const int n = clayout.cols();
  const int k = alayout.cols();
  IBCHOL_CHECK(alayout.rows() == m, "A rows must equal C rows");
  IBCHOL_CHECK(blayout.rows() == n && blayout.cols() == k,
               "B must be cols(C) x cols(A)");
  IBCHOL_CHECK(cs.size() >= clayout.size_elems(), "C span too small");
  IBCHOL_CHECK(as.size() >= alayout.size_elems(), "A span too small");
  IBCHOL_CHECK(bs.size() >= blayout.size_elems(), "B span too small");
  const int nt = resolve_threads(num_threads);

  if (clayout.kind() == LayoutKind::kCanonical) {
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t b = 0; b < clayout.batch(); ++b) {
      gemm_nt_minus(m, n, k, as.data() + alayout.index(b, 0, 0), m,
                    bs.data() + blayout.index(b, 0, 0), n,
                    cs.data() + clayout.index(b, 0, 0), m);
    }
    return;
  }

  const std::int64_t blocks = clayout.padded_batch() / kLaneBlock;
#pragma omp parallel for schedule(static) num_threads(nt)
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    const std::int64_t start = blk * kLaneBlock;
    gemm_lane_block<T>(m, n, k, lane_base(cs.data(), clayout, start),
                       clayout.chunk(), lane_base(as.data(), alayout, start),
                       alayout.chunk(), lane_base(bs.data(), blayout, start),
                       blayout.chunk());
  }
}

#define IBCHOL_INSTANTIATE(T)                                               \
  template void batch_trsm_left_lower<T>(const BatchLayout&,               \
                                         std::span<const T>,               \
                                         const BatchRectLayout&,           \
                                         std::span<T>, bool, MathMode, int,\
                                         Triangle);                        \
  template void batch_potrs<T>(const BatchLayout&, std::span<const T>,     \
                               const BatchRectLayout&, std::span<T>,       \
                               MathMode, int, Triangle);                   \
  template void batch_syrk_lower<T>(const BatchLayout&, std::span<T>,      \
                                    const BatchRectLayout&,                \
                                    std::span<const T>, int);              \
  template void batch_gemm_nt<T>(const BatchRectLayout&, std::span<T>,     \
                                 const BatchRectLayout&,                   \
                                 std::span<const T>,                       \
                                 const BatchRectLayout&,                   \
                                 std::span<const T>, int)

IBCHOL_INSTANTIATE(float);
IBCHOL_INSTANTIATE(double);
#undef IBCHOL_INSTANTIATE

}  // namespace ibchol
