#include "cpu/batch_factor.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include <optional>

#include "cpu/reference.hpp"
#include "cpu/simd/vec_exec.hpp"
#include "cpu/thread_util.hpp"
#include "cpu/tile_exec.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "layout/convert.hpp"

namespace ibchol {

namespace {

// Merges a lane block's local info into the global result/info arrays.
// `start` is the first matrix index of the lane block.
void merge_info(const std::int32_t* local, std::int64_t start,
                std::int64_t batch, std::span<std::int32_t> info,
                std::int64_t& failed, std::int64_t& first_failed) {
  const std::int64_t count = std::min<std::int64_t>(kLaneBlock, batch - start);
  for (std::int64_t l = 0; l < count; ++l) {
    if (!info.empty()) info[start + l] = local[l];
    if (local[l] != 0) {
      ++failed;
      const std::int64_t idx = start + l;
      if (first_failed < 0 || idx < first_failed) first_failed = idx;
    }
  }
}

template <typename T>
FactorResult factor_canonical(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info) {
  const int n = layout.n();
  const int nb = std::min(options.nb, n);
  const std::int64_t batch = layout.batch();
  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for schedule(static) num_threads(resolve_threads(options.num_threads)) \
    reduction(+ : failed) reduction(min : first_failed)
  for (std::int64_t b = 0; b < batch; ++b) {
    T* a = data.data() + layout.index(b, 0, 0);
    const int st = options.triangle == Triangle::kUpper
                       ? potrf_unblocked_upper(n, a, n)
                       : potrf_blocked(n, nb, a, n);
    if (!info.empty()) info[b] = st;
    if (st != 0) {
      ++failed;
      first_failed = std::min(first_failed, b);
    }
  }
  if (failed == 0) return {0, -1};
  return {failed, first_failed};
}

template <typename T>
FactorResult factor_interleaved(const BatchLayout& layout, std::span<T> data,
                                const TileProgram* program,
                                const CpuFactorOptions& options,
                                std::span<std::int32_t> info) {
  const std::int64_t blocks = layout.padded_batch() / kLaneBlock;
  const std::int64_t estride = layout.chunk();
  const bool whole_matrix = options.unroll == Unroll::kFull;
  const bool specialized = options.exec == CpuExec::kSpecialized;
  const bool vectorized = options.exec == CpuExec::kVectorized;
  // Full unrolling on a small matrix takes the fused whole-program kernel
  // (no dispatch at all); otherwise the specialized path binds the tile
  // program to its instantiated kernels once, ahead of the parallel loop.
  const bool fused = specialized && whole_matrix && layout.n() <= kMaxFusedDim;
  std::optional<SpecializedProgram<T>> spec;
  if (specialized && !whole_matrix) spec.emplace(*program, options.math);
  const VecKernels<T>* vk = nullptr;
  bool nt_stores = false;
  if (vectorized) {
    // Tier resolution (cpuid + IBCHOL_SIMD_ISA override) happens once, out
    // here; the intrinsic bodies then run with no per-block branching.
    vk = &vec_kernels<T>(options.isa);
    // The vectorized bodies use aligned vector loads/stores, so the lane
    // dimension must sit on 64-byte boundaries. AlignedBuffer (128-byte
    // base) plus the interleaved layouts (chunk a multiple of kWarpSize
    // elements) guarantee this by construction; a caller handing us an
    // unaligned span gets a hard error, not a SIGSEGV inside a kernel.
    IBCHOL_CHECK(reinterpret_cast<std::uintptr_t>(data.data()) % 64 == 0,
                 "vectorized executor requires 64-byte aligned batch data "
                 "(use AlignedBuffer)");
    IBCHOL_CHECK(estride * static_cast<std::int64_t>(sizeof(T)) % 64 == 0,
                 "vectorized executor requires the element stride to be a "
                 "multiple of 64 bytes");
    nt_stores = std::getenv("IBCHOL_VEC_NT_STORES") != nullptr;
  }
  // Interpreter scratch fallback: specialized/interpreter whole-matrix runs
  // always use it; the vectorized in-place body only needs it past
  // kMaxVecWholeDim.
  const bool need_scratch =
      whole_matrix &&
      (vectorized ? layout.n() > kMaxVecWholeDim : !fused);
  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();

#pragma omp parallel num_threads(resolve_threads(options.num_threads))
  {
    std::vector<T> scratch;
    if (need_scratch) {
      scratch.resize(whole_matrix_scratch_elems(layout.n()));
    }
    std::int64_t local_failed = 0;
    std::int64_t local_first = std::numeric_limits<std::int64_t>::max();
#pragma omp for schedule(static)
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
      const std::int64_t start = blk * kLaneBlock;
      T* base = data.data() + layout.chunk_base(start) +
                (start % layout.chunk());
      alignas(64) std::int32_t local_info[kLaneBlock] = {};
      if (vectorized) {
        if (whole_matrix) {
          // Fused (compile-time n) when small enough, then the runtime-n
          // in-place body, then the interpreter's scratch-triangle path for
          // n beyond kMaxVecWholeDim.
          if (!vk->fused(layout.n(), options.math, base, estride, local_info,
                         options.triangle) &&
              !vk->whole_matrix(layout.n(), options.math, base, estride,
                                local_info, options.triangle)) {
            execute_whole_matrix_lane_block<T>(layout.n(), options.math, base,
                                               estride, local_info,
                                               scratch.data(),
                                               options.triangle);
          }
        } else {
          vk->run_program(*program, options.math, base, estride, local_info,
                          options.triangle, nt_stores);
        }
      } else if (fused) {
        execute_fused_lane_block<T>(layout.n(), options.math, base, estride,
                                    local_info, options.triangle);
      } else if (whole_matrix) {
        execute_whole_matrix_lane_block<T>(layout.n(), options.math, base,
                                           estride, local_info,
                                           scratch.data(), options.triangle);
      } else if (spec.has_value()) {
        spec->run(base, estride, local_info, options.triangle);
      } else {
        execute_program_lane_block<T>(*program, options.math, base, estride,
                                      local_info, options.triangle);
      }
      if (start < layout.batch()) {
        std::int64_t f = 0, ff = -1;
        merge_info(local_info, start, layout.batch(), info, f, ff);
        local_failed += f;
        if (ff >= 0) local_first = std::min(local_first, ff);
      }
    }
#pragma omp critical
    {
      failed += local_failed;
      first_failed = std::min(first_failed, local_first);
    }
  }
  if (failed == 0) return {0, -1};
  return {failed, first_failed};
}

}  // namespace

template <typename T>
FactorResult factor_batch_cpu(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  if (layout.kind() == LayoutKind::kCanonical) {
    return factor_canonical(layout, data, options, info);
  }
  if (options.unroll == Unroll::kFull) {
    return factor_interleaved<T>(layout, data, nullptr, options, info);
  }
  const int nb = std::min(options.nb, layout.n());
  const TileProgram program =
      build_tile_program(layout.n(), nb, options.looking);
  return factor_interleaved(layout, data, &program, options, info);
}

template <typename T>
FactorResult factor_batch_cpu_with_program(const BatchLayout& layout,
                                           std::span<T> data,
                                           const TileProgram& program,
                                           const CpuFactorOptions& options,
                                           std::span<std::int32_t> info) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "tile programs run on interleaved layouts");
  IBCHOL_CHECK(program.n == layout.n(), "program/layout dimension mismatch");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  return factor_interleaved(layout, data, &program, options, info);
}

template FactorResult factor_batch_cpu<float>(const BatchLayout&,
                                              std::span<float>,
                                              const CpuFactorOptions&,
                                              std::span<std::int32_t>);
template FactorResult factor_batch_cpu<double>(const BatchLayout&,
                                               std::span<double>,
                                               const CpuFactorOptions&,
                                               std::span<std::int32_t>);
template FactorResult factor_batch_cpu_with_program<float>(
    const BatchLayout&, std::span<float>, const TileProgram&,
    const CpuFactorOptions&, std::span<std::int32_t>);
template FactorResult factor_batch_cpu_with_program<double>(
    const BatchLayout&, std::span<double>, const TileProgram&,
    const CpuFactorOptions&, std::span<std::int32_t>);

}  // namespace ibchol
