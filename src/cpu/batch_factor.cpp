#include "cpu/batch_factor.hpp"

#include <omp.h>

#include <algorithm>
#include <limits>
#include <vector>

#include <optional>

#include "cpu/reference.hpp"
#include "cpu/tile_exec.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "layout/convert.hpp"

namespace ibchol {

namespace {

int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

// Merges a lane block's local info into the global result/info arrays.
// `start` is the first matrix index of the lane block.
void merge_info(const std::int32_t* local, std::int64_t start,
                std::int64_t batch, std::span<std::int32_t> info,
                std::int64_t& failed, std::int64_t& first_failed) {
  const std::int64_t count = std::min<std::int64_t>(kLaneBlock, batch - start);
  for (std::int64_t l = 0; l < count; ++l) {
    if (!info.empty()) info[start + l] = local[l];
    if (local[l] != 0) {
      ++failed;
      const std::int64_t idx = start + l;
      if (first_failed < 0 || idx < first_failed) first_failed = idx;
    }
  }
}

template <typename T>
FactorResult factor_canonical(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info) {
  const int n = layout.n();
  const int nb = std::min(options.nb, n);
  const std::int64_t batch = layout.batch();
  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for schedule(static) num_threads(resolve_threads(options.num_threads)) \
    reduction(+ : failed) reduction(min : first_failed)
  for (std::int64_t b = 0; b < batch; ++b) {
    T* a = data.data() + layout.index(b, 0, 0);
    const int st = options.triangle == Triangle::kUpper
                       ? potrf_unblocked_upper(n, a, n)
                       : potrf_blocked(n, nb, a, n);
    if (!info.empty()) info[b] = st;
    if (st != 0) {
      ++failed;
      first_failed = std::min(first_failed, b);
    }
  }
  if (failed == 0) return {0, -1};
  return {failed, first_failed};
}

template <typename T>
FactorResult factor_interleaved(const BatchLayout& layout, std::span<T> data,
                                const TileProgram* program,
                                const CpuFactorOptions& options,
                                std::span<std::int32_t> info) {
  const std::int64_t blocks = layout.padded_batch() / kLaneBlock;
  const std::int64_t estride = layout.chunk();
  const bool whole_matrix = options.unroll == Unroll::kFull;
  const bool specialized = options.exec == CpuExec::kSpecialized;
  // Full unrolling on a small matrix takes the fused whole-program kernel
  // (no dispatch at all); otherwise the specialized path binds the tile
  // program to its instantiated kernels once, ahead of the parallel loop.
  const bool fused = specialized && whole_matrix && layout.n() <= kMaxFusedDim;
  std::optional<SpecializedProgram<T>> spec;
  if (specialized && !whole_matrix) spec.emplace(*program, options.math);
  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();

#pragma omp parallel num_threads(resolve_threads(options.num_threads))
  {
    std::vector<T> scratch;
    if (whole_matrix && !fused) {
      scratch.resize(whole_matrix_scratch_elems(layout.n()));
    }
    std::int64_t local_failed = 0;
    std::int64_t local_first = std::numeric_limits<std::int64_t>::max();
#pragma omp for schedule(static)
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
      const std::int64_t start = blk * kLaneBlock;
      T* base = data.data() + layout.chunk_base(start) +
                (start % layout.chunk());
      alignas(64) std::int32_t local_info[kLaneBlock] = {};
      if (fused) {
        execute_fused_lane_block<T>(layout.n(), options.math, base, estride,
                                    local_info, options.triangle);
      } else if (whole_matrix) {
        execute_whole_matrix_lane_block<T>(layout.n(), options.math, base,
                                           estride, local_info,
                                           scratch.data(), options.triangle);
      } else if (spec.has_value()) {
        spec->run(base, estride, local_info, options.triangle);
      } else {
        execute_program_lane_block<T>(*program, options.math, base, estride,
                                      local_info, options.triangle);
      }
      if (start < layout.batch()) {
        std::int64_t f = 0, ff = -1;
        merge_info(local_info, start, layout.batch(), info, f, ff);
        local_failed += f;
        if (ff >= 0) local_first = std::min(local_first, ff);
      }
    }
#pragma omp critical
    {
      failed += local_failed;
      first_failed = std::min(first_failed, local_first);
    }
  }
  if (failed == 0) return {0, -1};
  return {failed, first_failed};
}

}  // namespace

template <typename T>
FactorResult factor_batch_cpu(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  if (layout.kind() == LayoutKind::kCanonical) {
    return factor_canonical(layout, data, options, info);
  }
  if (options.unroll == Unroll::kFull) {
    return factor_interleaved<T>(layout, data, nullptr, options, info);
  }
  const int nb = std::min(options.nb, layout.n());
  const TileProgram program =
      build_tile_program(layout.n(), nb, options.looking);
  return factor_interleaved(layout, data, &program, options, info);
}

template <typename T>
FactorResult factor_batch_cpu_with_program(const BatchLayout& layout,
                                           std::span<T> data,
                                           const TileProgram& program,
                                           const CpuFactorOptions& options,
                                           std::span<std::int32_t> info) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "tile programs run on interleaved layouts");
  IBCHOL_CHECK(program.n == layout.n(), "program/layout dimension mismatch");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  return factor_interleaved(layout, data, &program, options, info);
}

template FactorResult factor_batch_cpu<float>(const BatchLayout&,
                                              std::span<float>,
                                              const CpuFactorOptions&,
                                              std::span<std::int32_t>);
template FactorResult factor_batch_cpu<double>(const BatchLayout&,
                                               std::span<double>,
                                               const CpuFactorOptions&,
                                               std::span<std::int32_t>);
template FactorResult factor_batch_cpu_with_program<float>(
    const BatchLayout&, std::span<float>, const TileProgram&,
    const CpuFactorOptions&, std::span<std::int32_t>);
template FactorResult factor_batch_cpu_with_program<double>(
    const BatchLayout&, std::span<double>, const TileProgram&,
    const CpuFactorOptions&, std::span<std::int32_t>);

}  // namespace ibchol
