#include "cpu/batch_factor.hpp"

#include <algorithm>
#include <limits>

#include "cpu/chunk_pipeline.hpp"
#include "cpu/reference.hpp"
#include "cpu/thread_util.hpp"
#include "cpu/tile_exec.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace ibchol {

namespace {

template <typename T>
FactorResult factor_canonical(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info) {
  const int n = layout.n();
  const int nb = std::min(options.nb, n);
  const std::int64_t batch = layout.batch();
  IBCHOL_TRACE_SPAN("factor_canonical", "cpu", n);
  IBCHOL_COUNT("cpu.exec.canonical", 1);
  std::int64_t failed = 0;
  std::int64_t first_failed = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for schedule(static) num_threads(resolve_threads(options.num_threads)) \
    reduction(+ : failed) reduction(min : first_failed)
  for (std::int64_t b = 0; b < batch; ++b) {
    T* a = data.data() + layout.index(b, 0, 0);
    const int st = options.triangle == Triangle::kUpper
                       ? potrf_unblocked_upper(n, a, n)
                       : potrf_blocked(n, nb, a, n);
    if (!info.empty()) info[b] = st;
    if (st != 0) {
      ++failed;
      first_failed = std::min(first_failed, b);
    }
  }
  // The min-reduction identity (int64 max) must never escape as a matrix
  // index; finalize_factor_result maps it back to the -1 convention the
  // interleaved path uses, keeping both paths consistent.
  return finalize_factor_result(failed, first_failed);
}

}  // namespace

template <typename T>
FactorResult factor_batch_cpu(const BatchLayout& layout, std::span<T> data,
                              const CpuFactorOptions& options,
                              std::span<std::int32_t> info) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  IBCHOL_TRACE_SPAN("factor_batch", "cpu", layout.batch());
  if (layout.kind() == LayoutKind::kCanonical) {
    return factor_canonical(layout, data, options, info);
  }
  if (options.unroll == Unroll::kFull) {
    return run_chunk_pipeline<T>(layout, data, nullptr, options, info);
  }
  const int nb = std::min(options.nb, layout.n());
  const TileProgram program =
      build_tile_program(layout.n(), nb, options.looking);
  return run_chunk_pipeline(layout, data, &program, options, info);
}

template <typename T>
FactorResult factor_batch_cpu_with_program(const BatchLayout& layout,
                                           std::span<T> data,
                                           const TileProgram& program,
                                           const CpuFactorOptions& options,
                                           std::span<std::int32_t> info) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "tile programs run on interleaved layouts");
  IBCHOL_CHECK(program.n == layout.n(), "program/layout dimension mismatch");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  return run_chunk_pipeline(layout, data, &program, options, info);
}

FactorResult factor_batch_cpu_mixed(const BatchLayout& layout,
                                    std::span<std::uint16_t> data,
                                    StoragePrec storage,
                                    const CpuFactorOptions& options,
                                    std::span<std::int32_t> info) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "reduced-precision storage runs interleaved layouts");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  IBCHOL_TRACE_SPAN("factor_batch", "cpu", layout.batch());
  if (options.unroll == Unroll::kFull) {
    return run_chunk_pipeline_mixed(layout, data, nullptr, options, storage,
                                    info);
  }
  const int nb = std::min(options.nb, layout.n());
  const TileProgram program =
      build_tile_program(layout.n(), nb, options.looking);
  return run_chunk_pipeline_mixed(layout, data, &program, options, storage,
                                  info);
}

FactorResult factor_batch_cpu_mixed_with_program(
    const BatchLayout& layout, std::span<std::uint16_t> data,
    StoragePrec storage, const TileProgram& program,
    const CpuFactorOptions& options, std::span<std::int32_t> info) {
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "tile programs run on interleaved layouts");
  IBCHOL_CHECK(program.n == layout.n(), "program/layout dimension mismatch");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  return run_chunk_pipeline_mixed(layout, data, &program, options, storage,
                                  info);
}

template FactorResult factor_batch_cpu<float>(const BatchLayout&,
                                              std::span<float>,
                                              const CpuFactorOptions&,
                                              std::span<std::int32_t>);
template FactorResult factor_batch_cpu<double>(const BatchLayout&,
                                               std::span<double>,
                                               const CpuFactorOptions&,
                                               std::span<std::int32_t>);
template FactorResult factor_batch_cpu_with_program<float>(
    const BatchLayout&, std::span<float>, const TileProgram&,
    const CpuFactorOptions&, std::span<std::int32_t>);
template FactorResult factor_batch_cpu_with_program<double>(
    const BatchLayout&, std::span<double>, const TileProgram&,
    const CpuFactorOptions&, std::span<std::int32_t>);

}  // namespace ibchol
