// Arithmetic policies: IEEE-compliant vs fast-math.
//
// The paper compares IEEE-compliant kernels against kernels compiled with
// nvcc --use_fast_math, which replaces square root and division with
// hardware approximation sequences and flushes denormals. On the CPU
// substrate we reproduce that trade explicitly: FastMath uses approximate
// reciprocal / reciprocal-square-root seeds refined with Newton iterations
// (float) — faster and slightly less accurate, exactly the fast-math deal.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "kernels/options.hpp"

namespace ibchol {

/// IEEE policy: library sqrt and true division.
struct IeeeMath {
  static constexpr MathMode kMode = MathMode::kIeee;

  template <typename T>
  static T sqrt(T x) { return std::sqrt(x); }

  template <typename T>
  static T recip(T x) { return T{1} / x; }

  template <typename T>
  static T div(T a, T b) { return a / b; }
};

/// Fast policy: approximation + Newton refinement for float; double falls
/// back to IEEE (CUDA's fast math is a single-precision feature).
struct FastMath {
  static constexpr MathMode kMode = MathMode::kFastMath;

  static float rsqrt(float x) {
    // Bit-level reciprocal square root seed with two Newton–Raphson steps
    // (~full single precision minus 1-2 ulp, like MUFU.RSQ + fixup).
    const std::uint32_t i =
        0x5f375a86u - (std::bit_cast<std::uint32_t>(x) >> 1);
    float y = std::bit_cast<float>(i);
    y = y * (1.5f - 0.5f * x * y * y);
    y = y * (1.5f - 0.5f * x * y * y);
    return y;
  }

  static float sqrt(float x) { return x <= 0.0f ? std::sqrt(x) : x * rsqrt(x); }
  static double sqrt(double x) { return std::sqrt(x); }

  static float recip(float x) {
    // Reciprocal via rsqrt(x)^2 would lose sign; use a Newton-refined seed
    // from the exponent trick instead.
    const std::uint32_t i = 0x7ef311c3u - std::bit_cast<std::uint32_t>(x);
    float y = std::bit_cast<float>(i);
    y = y * (2.0f - x * y);
    y = y * (2.0f - x * y);
    y = y * (2.0f - x * y);
    return y;
  }
  static double recip(double x) { return 1.0 / x; }

  static float div(float a, float b) { return a * recip(b); }
  static double div(double a, double b) { return a / b; }
};

}  // namespace ibchol
