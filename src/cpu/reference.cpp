#include "cpu/reference.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ibchol {

template <typename T>
int potrf_unblocked(int n, T* a, int lda) {
  for (int k = 0; k < n; ++k) {
    T akk = a[k + k * static_cast<std::ptrdiff_t>(lda)];
    if (!(akk > T{0})) return k + 1;
    akk = std::sqrt(akk);
    a[k + k * static_cast<std::ptrdiff_t>(lda)] = akk;
    const T inv = T{1} / akk;
    for (int m = k + 1; m < n; ++m) {
      a[m + k * static_cast<std::ptrdiff_t>(lda)] *= inv;
    }
    for (int j = k + 1; j < n; ++j) {
      const T ajk = a[j + k * static_cast<std::ptrdiff_t>(lda)];
      for (int i = j; i < n; ++i) {
        a[i + j * static_cast<std::ptrdiff_t>(lda)] -=
            a[i + k * static_cast<std::ptrdiff_t>(lda)] * ajk;
      }
    }
  }
  return 0;
}

template <typename T>
int potrf_unblocked_upper(int n, T* a, int lda) {
  // The lower algorithm over the transposed index map: element (i,j) of
  // the virtual lower matrix is storage (j,i).
  auto at = [&](int i, int j) -> T& {
    return a[j + i * static_cast<std::ptrdiff_t>(lda)];
  };
  for (int k = 0; k < n; ++k) {
    T akk = at(k, k);
    if (!(akk > T{0})) return k + 1;
    akk = std::sqrt(akk);
    at(k, k) = akk;
    const T inv = T{1} / akk;
    for (int m = k + 1; m < n; ++m) at(m, k) *= inv;
    for (int j = k + 1; j < n; ++j) {
      const T ajk = at(j, k);
      for (int i = j; i < n; ++i) at(i, j) -= at(i, k) * ajk;
    }
  }
  return 0;
}

template <typename T>
void potrs_vector_upper(int n, const T* u, int ldu, T* x) {
  // Forward: Uᵀ y = b (Uᵀ is lower with Uᵀ(i,j) = U(j,i)).
  for (int i = 0; i < n; ++i) {
    T acc = x[i];
    for (int j = 0; j < i; ++j) {
      acc -= u[j + i * static_cast<std::ptrdiff_t>(ldu)] * x[j];
    }
    x[i] = acc / u[i + i * static_cast<std::ptrdiff_t>(ldu)];
  }
  // Backward: U x = y.
  for (int i = n - 1; i >= 0; --i) {
    T acc = x[i];
    for (int j = i + 1; j < n; ++j) {
      acc -= u[i + j * static_cast<std::ptrdiff_t>(ldu)] * x[j];
    }
    x[i] = acc / u[i + i * static_cast<std::ptrdiff_t>(ldu)];
  }
}

template <typename T>
void trsm_right_lower_trans(int m, int n, const T* l, int ldl, T* b, int ldb) {
  // Solve X · tril(L)ᵀ = B for X, overwriting B; column k of the result
  // depends on columns < k (forward order).
  for (int k = 0; k < n; ++k) {
    const T inv = T{1} / l[k + k * static_cast<std::ptrdiff_t>(ldl)];
    for (int i = 0; i < m; ++i) {
      b[i + k * static_cast<std::ptrdiff_t>(ldb)] *= inv;
    }
    for (int j = k + 1; j < n; ++j) {
      const T ljk = l[j + k * static_cast<std::ptrdiff_t>(ldl)];
      if (ljk == T{0}) continue;
      for (int i = 0; i < m; ++i) {
        b[i + j * static_cast<std::ptrdiff_t>(ldb)] -=
            b[i + k * static_cast<std::ptrdiff_t>(ldb)] * ljk;
      }
    }
  }
}

template <typename T>
void syrk_lower_nt(int n, int k, const T* a, int lda, T* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      const T ajp = a[j + p * static_cast<std::ptrdiff_t>(lda)];
      if (ajp == T{0}) continue;
      for (int i = j; i < n; ++i) {
        c[i + j * static_cast<std::ptrdiff_t>(ldc)] -=
            a[i + p * static_cast<std::ptrdiff_t>(lda)] * ajp;
      }
    }
  }
}

template <typename T>
void gemm_nt_minus(int m, int n, int k, const T* a, int lda, const T* b,
                   int ldb, T* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      const T bjp = b[j + p * static_cast<std::ptrdiff_t>(ldb)];
      if (bjp == T{0}) continue;
      for (int i = 0; i < m; ++i) {
        c[i + j * static_cast<std::ptrdiff_t>(ldc)] -=
            a[i + p * static_cast<std::ptrdiff_t>(lda)] * bjp;
      }
    }
  }
}

template <typename T>
int potrf_blocked(int n, int nb, T* a, int lda) {
  IBCHOL_CHECK(nb >= 1, "block size must be positive");
  if (nb >= n) return potrf_unblocked(n, a, lda);
  for (int k = 0; k < n; k += nb) {
    const int kb = std::min(nb, n - k);
    // Left-looking: update the panel from the already factored part.
    syrk_lower_nt(kb, k, a + k, lda, a + k + k * static_cast<std::ptrdiff_t>(lda),
                  lda);
    if (k + kb < n) {
      gemm_nt_minus(n - k - kb, kb, k, a + k + kb, lda, a + k, lda,
                    a + k + kb + k * static_cast<std::ptrdiff_t>(lda), lda);
    }
    // Factor the diagonal block.
    const int info = potrf_unblocked(
        kb, a + k + k * static_cast<std::ptrdiff_t>(lda), lda);
    if (info != 0) return k + info;
    // Triangular solve below the diagonal block.
    if (k + kb < n) {
      trsm_right_lower_trans(n - k - kb, kb,
                             a + k + k * static_cast<std::ptrdiff_t>(lda), lda,
                             a + k + kb + k * static_cast<std::ptrdiff_t>(lda),
                             lda);
    }
  }
  return 0;
}

template <typename T>
void potrs_vector(int n, const T* l, int ldl, T* x) {
  // Forward substitution: L y = b.
  for (int i = 0; i < n; ++i) {
    T acc = x[i];
    for (int j = 0; j < i; ++j) {
      acc -= l[i + j * static_cast<std::ptrdiff_t>(ldl)] * x[j];
    }
    x[i] = acc / l[i + i * static_cast<std::ptrdiff_t>(ldl)];
  }
  // Backward substitution: Lᵀ x = y.
  for (int i = n - 1; i >= 0; --i) {
    T acc = x[i];
    for (int j = i + 1; j < n; ++j) {
      acc -= l[j + i * static_cast<std::ptrdiff_t>(ldl)] * x[j];
    }
    x[i] = acc / l[i + i * static_cast<std::ptrdiff_t>(ldl)];
  }
}

template <typename T>
double reconstruction_error(int n, std::span<const T> orig,
                            std::span<const T> fact) {
  IBCHOL_CHECK(orig.size() >= static_cast<std::size_t>(n) * n &&
                   fact.size() >= static_cast<std::size_t>(n) * n,
               "reconstruction_error: buffers too small");
  double num = 0.0, den = 0.0;
  // Compare the lower triangles of A and L·Lᵀ (the factorization only
  // references/produces the lower part).
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double llt = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        llt += static_cast<double>(fact[i + k * static_cast<std::size_t>(n)]) *
               static_cast<double>(fact[j + k * static_cast<std::size_t>(n)]);
      }
      const double aij = static_cast<double>(orig[i + j * static_cast<std::size_t>(n)]);
      num += (aij - llt) * (aij - llt);
      den += aij * aij;
    }
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

template <typename T>
double residual_error(int n, std::span<const T> a, std::span<const T> x,
                      std::span<const T> b) {
  double rmax = 0.0, amax = 0.0, xmax = 0.0;
  for (int i = 0; i < n; ++i) {
    double acc = -static_cast<double>(b[i]);
    double arow = 0.0;
    for (int j = 0; j < n; ++j) {
      // Symmetric matrix stored in the lower triangle.
      const double aij = static_cast<double>(
          i >= j ? a[i + j * static_cast<std::size_t>(n)]
                 : a[j + i * static_cast<std::size_t>(n)]);
      acc += aij * static_cast<double>(x[j]);
      arow += std::abs(aij);
    }
    rmax = std::max(rmax, std::abs(acc));
    amax = std::max(amax, arow);
    xmax = std::max(xmax, std::abs(static_cast<double>(x[i])));
  }
  const double den = amax * xmax;
  return den == 0.0 ? rmax : rmax / den;
}

#define IBCHOL_INSTANTIATE(T)                                                \
  template int potrf_unblocked<T>(int, T*, int);                            \
  template int potrf_blocked<T>(int, int, T*, int);                         \
  template int potrf_unblocked_upper<T>(int, T*, int);                      \
  template void potrs_vector_upper<T>(int, const T*, int, T*);              \
  template void trsm_right_lower_trans<T>(int, int, const T*, int, T*, int);\
  template void syrk_lower_nt<T>(int, int, const T*, int, T*, int);         \
  template void gemm_nt_minus<T>(int, int, int, const T*, int, const T*,    \
                                 int, T*, int);                             \
  template void potrs_vector<T>(int, const T*, int, T*);                    \
  template double reconstruction_error<T>(int, std::span<const T>,          \
                                          std::span<const T>);              \
  template double residual_error<T>(int, std::span<const T>,                \
                                    std::span<const T>, std::span<const T>)

IBCHOL_INSTANTIATE(float);
IBCHOL_INSTANTIATE(double);
#undef IBCHOL_INSTANTIATE

}  // namespace ibchol
