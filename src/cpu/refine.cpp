#include "cpu/refine.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cpu/batch_solve.hpp"
#include "util/aligned_buffer.hpp"
#include "util/error.hpp"

namespace ibchol {

namespace {

// r[b] = rhs[b] - A[b]·x[b], accumulated in double; returns into `r`
// (float storage). Also tracks the max |x| per matrix for the relative
// correction norm.
void residual(const BatchLayout& mlayout, std::span<const float> originals,
              const BatchVectorLayout& vlayout, std::span<const float> rhs,
              std::span<const float> x, std::span<float> r, int num_threads) {
  const int n = mlayout.n();
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::int64_t b = 0; b < mlayout.batch(); ++b) {
    for (int i = 0; i < n; ++i) {
      double acc = static_cast<double>(rhs[vlayout.index(b, i)]);
      for (int j = 0; j < n; ++j) {
        // Symmetric matrix, lower triangle stored.
        const float aij = i >= j ? originals[mlayout.index(b, i, j)]
                                 : originals[mlayout.index(b, j, i)];
        acc -= static_cast<double>(aij) *
               static_cast<double>(x[vlayout.index(b, j)]);
      }
      r[vlayout.index(b, i)] = static_cast<float>(acc);
    }
  }
}

}  // namespace

RefineResult refine_batch_solve(const BatchLayout& mlayout,
                                std::span<const float> originals,
                                std::span<const float> factors,
                                const BatchVectorLayout& vlayout,
                                std::span<const float> b, std::span<float> x,
                                const RefineOptions& options) {
  IBCHOL_CHECK(originals.size() >= mlayout.size_elems() &&
                   factors.size() >= mlayout.size_elems(),
               "matrix spans too small");
  IBCHOL_CHECK(b.size() >= vlayout.size_elems() &&
                   x.size() >= vlayout.size_elems(),
               "vector spans too small");
  IBCHOL_CHECK(vlayout == BatchVectorLayout::matching(mlayout),
               "vector layout does not match the matrix layout");
  const int nt =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();
  const int n = mlayout.n();

  // Initial solve: x = (L·Lᵀ)^{-1} b.
  std::copy(b.begin(), b.end(), x.begin());
  solve_batch_cpu<float>(mlayout, factors, vlayout, x, options.math, nt);

  AlignedBuffer<float> d(vlayout.size_elems());
  RefineResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    // d = (L·Lᵀ)^{-1} (b - A x), then x += d.
    residual(mlayout, originals, vlayout, b, std::span<const float>(x),
             d.span(), nt);
    solve_batch_cpu<float>(mlayout, std::span<const float>(factors), vlayout,
                           d.span(), options.math, nt);
    double max_rel = 0.0;
#pragma omp parallel for schedule(static) num_threads(nt) \
    reduction(max : max_rel)
    for (std::int64_t bm = 0; bm < mlayout.batch(); ++bm) {
      double xmax = 0.0, dmax = 0.0;
      for (int i = 0; i < n; ++i) {
        xmax = std::max(xmax,
                        std::abs(static_cast<double>(x[vlayout.index(bm, i)])));
        dmax = std::max(
            dmax, std::abs(static_cast<double>(d[vlayout.index(bm, i)])));
      }
      for (int i = 0; i < n; ++i) {
        x[vlayout.index(bm, i)] += d[vlayout.index(bm, i)];
      }
      if (xmax > 0.0) max_rel = std::max(max_rel, dmax / xmax);
    }
    result.iterations = it + 1;
    result.final_correction = max_rel;
    if (max_rel < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace ibchol
