#include "cpu/refine.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cpu/batch_solve.hpp"
#include "cpu/simd/convert.hpp"
#include "layout/convert.hpp"
#include "util/aligned_buffer.hpp"
#include "util/error.hpp"

namespace ibchol {

namespace {

// r[b] = rhs[b] - A[b]·x[b], accumulated in double; returns into `r`
// (float storage). Also tracks the max |x| per matrix for the relative
// correction norm.
void residual(const BatchLayout& mlayout, std::span<const float> originals,
              const BatchVectorLayout& vlayout, std::span<const float> rhs,
              std::span<const float> x, std::span<float> r, int num_threads) {
  const int n = mlayout.n();
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::int64_t b = 0; b < mlayout.batch(); ++b) {
    for (int i = 0; i < n; ++i) {
      double acc = static_cast<double>(rhs[vlayout.index(b, i)]);
      for (int j = 0; j < n; ++j) {
        // Symmetric matrix, lower triangle stored.
        const float aij = i >= j ? originals[mlayout.index(b, i, j)]
                                 : originals[mlayout.index(b, j, i)];
        acc -= static_cast<double>(aij) *
               static_cast<double>(x[vlayout.index(b, j)]);
      }
      r[vlayout.index(b, i)] = static_cast<float>(acc);
    }
  }
}

// Per-matrix-converged refinement over fp32 factors: like the global loop
// below, but each matrix freezes as soon as its own relative correction
// drops under the tolerance (one stalled matrix must not keep iterating —
// or fail — the whole batch). `info`, when non-empty, gets 0 / stalled.
MixedRefineResult refine_per_matrix(const BatchLayout& mlayout,
                                    std::span<const float> originals,
                                    std::span<const float> factors,
                                    const BatchVectorLayout& vlayout,
                                    std::span<const float> b,
                                    std::span<float> x,
                                    std::span<std::int32_t> info,
                                    const RefineOptions& options) {
  const int nt =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();
  const int n = mlayout.n();
  const std::int64_t batch = mlayout.batch();

  std::copy(b.begin(), b.end(), x.begin());
  solve_batch_cpu<float>(mlayout, factors, vlayout, x, options.math, nt);

  AlignedBuffer<float> d(vlayout.size_elems());
  std::vector<std::uint8_t> done(static_cast<std::size_t>(batch), 0);
  std::vector<double> last_rel(static_cast<std::size_t>(batch),
                               std::numeric_limits<double>::infinity());
  MixedRefineResult result;
  std::int64_t remaining = batch;
  for (int it = 0; it < options.max_iterations && remaining > 0; ++it) {
    residual(mlayout, originals, vlayout, b, std::span<const float>(x),
             d.span(), nt);
    solve_batch_cpu<float>(mlayout, factors, vlayout, d.span(), options.math,
                           nt);
    std::int64_t newly = 0;
#pragma omp parallel for schedule(static) num_threads(nt) \
    reduction(+ : newly)
    for (std::int64_t bm = 0; bm < batch; ++bm) {
      if (done[static_cast<std::size_t>(bm)]) continue;
      double xmax = 0.0, dmax = 0.0;
      for (int i = 0; i < n; ++i) {
        xmax = std::max(
            xmax, std::abs(static_cast<double>(x[vlayout.index(bm, i)])));
        dmax = std::max(
            dmax, std::abs(static_cast<double>(d[vlayout.index(bm, i)])));
      }
      for (int i = 0; i < n; ++i) {
        x[vlayout.index(bm, i)] += d[vlayout.index(bm, i)];
      }
      // NaN corrections (poisoned factor) compare false and stay stalled.
      const double rel = dmax == 0.0 ? 0.0 : dmax / std::max(xmax, 1e-300);
      last_rel[static_cast<std::size_t>(bm)] = rel;
      if (rel < options.tolerance) {
        done[static_cast<std::size_t>(bm)] = 1;
        ++newly;
      }
    }
    remaining -= newly;
    result.iterations = it + 1;
  }
  for (std::int64_t bm = 0; bm < batch; ++bm) {
    const bool ok = done[static_cast<std::size_t>(bm)] != 0;
    if (!ok) {
      result.final_correction = std::max(
          result.final_correction, last_rel[static_cast<std::size_t>(bm)]);
    }
    if (!info.empty()) info[bm] = ok ? 0 : kInfoRefineStalled;
  }
  result.stalled = remaining;
  result.converged = remaining == 0;
  return result;
}

}  // namespace

RefineResult refine_batch_solve(const BatchLayout& mlayout,
                                std::span<const float> originals,
                                std::span<const float> factors,
                                const BatchVectorLayout& vlayout,
                                std::span<const float> b, std::span<float> x,
                                const RefineOptions& options) {
  IBCHOL_CHECK(originals.size() >= mlayout.size_elems() &&
                   factors.size() >= mlayout.size_elems(),
               "matrix spans too small");
  IBCHOL_CHECK(b.size() >= vlayout.size_elems() &&
                   x.size() >= vlayout.size_elems(),
               "vector spans too small");
  IBCHOL_CHECK(vlayout == BatchVectorLayout::matching(mlayout),
               "vector layout does not match the matrix layout");
  const int nt =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();
  const int n = mlayout.n();

  // Initial solve: x = (L·Lᵀ)^{-1} b.
  std::copy(b.begin(), b.end(), x.begin());
  solve_batch_cpu<float>(mlayout, factors, vlayout, x, options.math, nt);

  AlignedBuffer<float> d(vlayout.size_elems());
  RefineResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    // d = (L·Lᵀ)^{-1} (b - A x), then x += d.
    residual(mlayout, originals, vlayout, b, std::span<const float>(x),
             d.span(), nt);
    solve_batch_cpu<float>(mlayout, std::span<const float>(factors), vlayout,
                           d.span(), options.math, nt);
    double max_rel = 0.0;
#pragma omp parallel for schedule(static) num_threads(nt) \
    reduction(max : max_rel)
    for (std::int64_t bm = 0; bm < mlayout.batch(); ++bm) {
      double xmax = 0.0, dmax = 0.0;
      for (int i = 0; i < n; ++i) {
        xmax = std::max(xmax,
                        std::abs(static_cast<double>(x[vlayout.index(bm, i)])));
        dmax = std::max(
            dmax, std::abs(static_cast<double>(d[vlayout.index(bm, i)])));
      }
      for (int i = 0; i < n; ++i) {
        x[vlayout.index(bm, i)] += d[vlayout.index(bm, i)];
      }
      if (xmax > 0.0) max_rel = std::max(max_rel, dmax / xmax);
    }
    result.iterations = it + 1;
    result.final_correction = max_rel;
    if (max_rel < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

MixedRefineResult refine_batch_solve_mixed(
    const BatchLayout& mlayout, std::span<const float> originals,
    std::span<const std::uint16_t> factors, StoragePrec storage,
    const BatchVectorLayout& vlayout, std::span<const float> b,
    std::span<float> x, std::span<std::int32_t> info,
    const RefineOptions& options) {
  IBCHOL_CHECK(storage != StoragePrec::kFp32,
               "mixed refinement is for reduced storage precisions");
  IBCHOL_CHECK(originals.size() >= mlayout.size_elems() &&
                   factors.size() >= mlayout.size_elems(),
               "matrix spans too small");
  IBCHOL_CHECK(b.size() >= vlayout.size_elems() &&
                   x.size() >= vlayout.size_elems(),
               "vector spans too small");
  IBCHOL_CHECK(vlayout == BatchVectorLayout::matching(mlayout),
               "vector layout does not match the matrix layout");
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(mlayout.batch()),
               "info span too small for batch");
  // Widen the 16-bit factor once; every correction solve reuses it in
  // fp32 (a solve is O(n²) per matrix — converting per sweep would double
  // the memory traffic refinement exists to spend on accuracy).
  AlignedBuffer<float> wide(mlayout.size_elems());
  widen_row(resolve_convert_isa(), storage, factors.data(), wide.data(),
            static_cast<std::int64_t>(mlayout.size_elems()));
  return refine_per_matrix(mlayout, originals,
                           std::span<const float>(wide.span()), vlayout, b, x,
                           info, options);
}

MixedSolveReport solve_batch_refine_recover_mixed(
    const BatchLayout& mlayout, std::span<const float> originals,
    std::span<std::uint16_t> factors, StoragePrec storage,
    const BatchVectorLayout& vlayout, std::span<const float> b,
    std::span<float> x, const RefineOptions& options,
    const RecoveryOptions& recovery, const CpuFactorOptions& fopts,
    std::span<std::int32_t> info) {
  const int n = mlayout.n();
  const std::int64_t batch = mlayout.batch();
  MixedSolveReport report;

  // Rung 1: refine against the 16-bit factors.
  std::vector<std::int32_t> rinfo(static_cast<std::size_t>(batch));
  report.refine =
      refine_batch_solve_mixed(mlayout, originals, factors, storage, vlayout,
                               b, x, rinfo, options);
  if (!info.empty()) {
    std::copy(rinfo.begin(), rinfo.end(), info.begin());
  }
  if (report.refine.stalled == 0) return report;

  // Rung 2: gather the stalled matrices into a compact fp32 sub-batch
  // rebuilt from the originals and run them through the shifted-retry
  // schedule. (This is the one place the full-precision input is needed —
  // the 16-bit factor of a stalled matrix has already lost the bits.)
  std::vector<std::int64_t> idx;
  for (std::int64_t bm = 0; bm < batch; ++bm) {
    if (rinfo[static_cast<std::size_t>(bm)] == kInfoRefineStalled) {
      idx.push_back(bm);
    }
  }
  const auto m = static_cast<std::int64_t>(idx.size());
  const BatchLayout sub = BatchLayout::interleaved(n, m);
  AlignedBuffer<float> sorig(sub.size_elems());
  for (std::int64_t k = 0; k < m; ++k) {
    const std::int64_t bm = idx[static_cast<std::size_t>(k)];
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j <= i; ++j) {
        const float v = originals[mlayout.index(bm, i, j)];
        sorig[sub.index(k, i, j)] = v;
        if (i != j) sorig[sub.index(k, j, i)] = v;
      }
    }
  }
  fill_padding_identity<float>(sub, sorig.span());
  AlignedBuffer<float> sfact(sub.size_elems());
  std::copy(sorig.begin(), sorig.end(), sfact.begin());
  std::vector<std::int32_t> sinfo(static_cast<std::size_t>(m));
  report.recovery = factor_batch_recover<float>(sub, sfact.span(), fopts,
                                                recovery, sinfo);

  // Rung 3: re-refine the sub-batch against the (possibly shifted) fp32
  // factors and scatter what healed.
  const BatchVectorLayout svl = BatchVectorLayout::matching(sub);
  AlignedBuffer<float> sb(svl.size_elems()), sx(svl.size_elems());
  std::fill(sb.begin(), sb.end(), 0.0f);
  for (std::int64_t k = 0; k < m; ++k) {
    const std::int64_t bm = idx[static_cast<std::size_t>(k)];
    for (int i = 0; i < n; ++i) {
      sb[svl.index(k, i)] = b[vlayout.index(bm, i)];
    }
  }
  std::vector<std::int32_t> rinfo2(static_cast<std::size_t>(m));
  (void)refine_per_matrix(sub, std::span<const float>(sorig.span()),
                          std::span<const float>(sfact.span()), svl,
                          std::span<const float>(sb.span()), sx.span(),
                          rinfo2, options);

  for (std::int64_t k = 0; k < m; ++k) {
    const std::int64_t bm = idx[static_cast<std::size_t>(k)];
    const bool factor_ok = sinfo[static_cast<std::size_t>(k)] == 0;
    const bool conv = rinfo2[static_cast<std::size_t>(k)] == 0;
    if (factor_ok) {
      // Best-effort scatter even when this matrix is still stalled: the
      // shifted solve is no worse than the rung-1 one it replaces.
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          factors[mlayout.index(bm, i, j)] =
              narrow_f32(sfact[sub.index(k, i, j)], storage);
        }
      }
      for (int i = 0; i < n; ++i) {
        x[vlayout.index(bm, i)] = sx[svl.index(k, i)];
      }
    }
    if (factor_ok && conv) {
      ++report.healed;
      if (!info.empty()) info[bm] = 0;
    }
  }
  report.unrecovered = report.refine.stalled - report.healed;
  return report;
}

}  // namespace ibchol
