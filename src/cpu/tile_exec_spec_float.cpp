// Single-precision instantiations of the specialized tile kernels. Kept in
// a translation unit of their own: the full (rows, cols, kdim) cross
// product is hundreds of unrolled function bodies, and splitting by element
// type lets the two halves compile in parallel.
#include "cpu/tile_exec_spec_impl.hpp"

namespace ibchol {

template class SpecializedProgram<float>;
template void execute_fused_lane_block<float>(int, MathMode, float*,
                                              std::int64_t, std::int32_t*,
                                              Triangle);

}  // namespace ibchol
