// Batched triangular solves (POTRS) on the CPU substrate.
//
// After factor_batch_cpu has overwritten each matrix's lower triangle with
// its Cholesky factor L, these routines solve L·Lᵀ x = b for one right-hand
// side per matrix, in the layout-matched vector batch. Interleaved layouts
// are processed one SIMD lane block at a time, exactly like the
// factorization.
#pragma once

#include <span>

#include "kernels/options.hpp"
#include "layout/layout.hpp"
#include "layout/vector_layout.hpp"

namespace ibchol {

/// Solves L·Lᵀ x = b in place for every matrix of the batch. `mats` holds
/// the factored batch (layout `mlayout`), `rhs` the right-hand sides in the
/// matching vector layout; on return `rhs` holds the solutions.
/// The vector layout must match the matrix layout's kind, chunk and batch.
template <typename T>
void solve_batch_cpu(const BatchLayout& mlayout, std::span<const T> mats,
                     const BatchVectorLayout& vlayout, std::span<T> rhs,
                     MathMode math = MathMode::kIeee, int num_threads = 0,
                     Triangle triangle = Triangle::kLower);

/// Log-determinants from the factored batch: out[b] = log det A_b =
/// 2·Σ_i log L_b[i,i], accumulated in double. `out` needs batch() entries.
/// Matrices whose factorization failed (non-positive diagonal) receive NaN.
template <typename T>
void batch_logdet(const BatchLayout& mlayout, std::span<const T> factors,
                  std::span<double> out, int num_threads = 0);

}  // namespace ibchol
