// Per-matrix dense reference routines (column-major, LAPACK conventions).
//
// These are the ground truth for every batch implementation in the library
// and the building blocks of the traditional (canonical-layout) baseline.
// Naming and semantics follow LAPACK/BLAS: potrf factors A = L·Lᵀ in the
// lower triangle; info = 0 on success or the 1-based index of the first
// non-positive pivot.
#pragma once

#include <cstdint>
#include <span>

namespace ibchol {

/// Unblocked lower Cholesky of the n×n matrix `a` (column-major, leading
/// dimension lda). Overwrites the lower triangle with L; the strict upper
/// triangle is not referenced. Returns 0 or the 1-based failing column.
template <typename T>
int potrf_unblocked(int n, T* a, int lda);

/// Blocked lower Cholesky with block size nb (LAPACK xPOTRF structure:
/// left-looking panel update + unblocked panel factorization).
template <typename T>
int potrf_blocked(int n, int nb, T* a, int lda);

/// Unblocked upper Cholesky: A = Uᵀ·U, the upper triangle is overwritten
/// with U and the strict lower triangle is not referenced.
template <typename T>
int potrf_unblocked_upper(int n, T* a, int lda);

/// Solves Uᵀ·U x = b in place given the factor U (upper, from
/// potrf_unblocked_upper).
template <typename T>
void potrs_vector_upper(int n, const T* u, int ldu, T* x);

/// B <- B · tril(L)^{-T}. B is m×n, L is n×n lower triangular.
/// (Right side, lower, transposed — the TRSM of the Cholesky panel.)
template <typename T>
void trsm_right_lower_trans(int m, int n, const T* l, int ldl, T* b, int ldb);

/// C <- C - A·Aᵀ, lower triangle only. C is n×n, A is n×k.
template <typename T>
void syrk_lower_nt(int n, int k, const T* a, int lda, T* c, int ldc);

/// C <- C - A·Bᵀ. C is m×n, A is m×k, B is n×k.
template <typename T>
void gemm_nt_minus(int m, int n, int k, const T* a, int lda, const T* b,
                   int ldb, T* c, int ldc);

/// Solves L·Lᵀ x = b in place given the factor L (lower, from potrf).
template <typename T>
void potrs_vector(int n, const T* l, int ldl, T* x);

/// Frobenius-norm relative reconstruction error ||A - L·Lᵀ||_F / ||A||_F,
/// where `orig` holds the original symmetric matrix and `fact` the factor in
/// its lower triangle. Both column-major n×n with leading dimension n.
template <typename T>
double reconstruction_error(int n, std::span<const T> orig,
                            std::span<const T> fact);

/// Max-norm relative error of a solve: ||A·x - b||_inf / (||A||_inf·||x||_inf).
template <typename T>
double residual_error(int n, std::span<const T> a, std::span<const T> x,
                      std::span<const T> b);

}  // namespace ibchol
