#include "forest/dataset.hpp"

namespace ibchol {

FeatureMatrix::FeatureMatrix(std::vector<std::string> names, std::size_t rows)
    : names_(std::move(names)), rows_(rows), data_(rows_ * names_.size()) {}

void FeatureMatrix::add_row(std::span<const double> values) {
  IBCHOL_CHECK(values.size() == cols(), "feature row width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::size_t FeatureMatrix::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return c;
  }
  throw Error("feature column not found: " + name);
}

}  // namespace ibchol
