// Random-forest regression (Breiman 2001), as used for the paper's
// postmortem analysis of the autotuning dataset (§IV): 500 trees in
// regression mode, out-of-bag error, and permutation variable importance —
// the "predictive power ... in terms of mean square error" of Table I.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "forest/dataset.hpp"
#include "forest/tree.hpp"

namespace ibchol {

/// Forest configuration (defaults follow the paper / R randomForest).
struct ForestOptions {
  int num_trees = 500;
  TreeOptions tree;
  std::uint64_t seed = 20170529;  ///< deterministic bootstrap/mtry sampling
  int num_threads = 0;            ///< 0 = OpenMP default
};

/// A fitted random-forest regressor.
class RandomForest {
 public:
  /// Fits on the full dataset with bootstrap resampling per tree.
  void fit(const FeatureMatrix& x, std::span<const double> y,
           const ForestOptions& options = {});

  /// Ensemble prediction for one feature row.
  [[nodiscard]] double predict(std::span<const double> row) const;

  /// Ensemble predictions for every row of a matrix.
  [[nodiscard]] std::vector<double> predict(const FeatureMatrix& x) const;

  /// Out-of-bag prediction per training row (NaN if a row was never OOB).
  [[nodiscard]] const std::vector<double>& oob_predictions() const {
    return oob_pred_;
  }

  /// Out-of-bag mean squared error (rows never OOB are skipped).
  [[nodiscard]] double oob_mse() const;

  /// Permutation variable importance: for each feature, the mean increase
  /// in OOB MSE across trees when that feature's values are permuted among
  /// each tree's OOB samples (R randomForest's IncMSE, unscaled). Negative
  /// values indicate a variable whose permutation accidentally *helped* —
  /// i.e. no real predictive power (cf. Table I's cache row).
  [[nodiscard]] std::vector<double> permutation_importance(
      std::uint64_t seed = 7) const;

  [[nodiscard]] int num_trees() const { return static_cast<int>(trees_.size()); }
  [[nodiscard]] double average_depth() const;

 private:
  std::vector<RegressionTree> trees_;
  std::vector<std::vector<std::size_t>> oob_indices_;  ///< per tree
  std::vector<double> oob_pred_;
  const FeatureMatrix* train_x_ = nullptr;  ///< borrowed during analysis
  std::vector<double> train_y_;
};

}  // namespace ibchol
