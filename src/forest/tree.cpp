#include "forest/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ibchol {

namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double score = -1.0;  ///< variance reduction; < 0 = no valid split
};

/// Finds the best threshold on one feature for samples [begin, end) by a
/// sorted sweep with prefix sums. Returns score < 0 if no split satisfies
/// min_leaf.
SplitCandidate best_split_on_feature(const FeatureMatrix& x,
                                     std::span<const double> y,
                                     std::span<std::size_t> idx, int feature,
                                     int min_leaf,
                                     std::vector<std::pair<double, double>>&
                                         scratch) {
  SplitCandidate best;
  best.feature = feature;
  const std::size_t n = idx.size();
  scratch.clear();
  scratch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.emplace_back(x.at(idx[i], feature), y[idx[i]]);
  }
  std::sort(scratch.begin(), scratch.end());
  if (scratch.front().first == scratch.back().first) return best;  // constant

  double total = 0.0;
  for (const auto& [v, t] : scratch) total += t;

  double left_sum = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += scratch[i].second;
    if (scratch[i].first == scratch[i + 1].first) continue;  // tie group
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < static_cast<std::size_t>(min_leaf) ||
        nr < static_cast<std::size_t>(min_leaf)) {
      continue;
    }
    const double right_sum = total - left_sum;
    // Variance reduction is (up to constants) the gain in sum of squared
    // means: nl*meanL² + nr*meanR² - n*mean².
    const double score = left_sum * left_sum / static_cast<double>(nl) +
                         right_sum * right_sum / static_cast<double>(nr);
    if (score > best.score) {
      best.score = score;
      best.threshold =
          0.5 * (scratch[i].first + scratch[i + 1].first);
    }
  }
  return best;
}

}  // namespace

void RegressionTree::fit(const FeatureMatrix& x, std::span<const double> y,
                         std::span<const std::size_t> indices,
                         const TreeOptions& options, Xoshiro256& rng) {
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> idx(indices.begin(), indices.end());
  if (idx.empty()) {
    nodes_.push_back({});  // degenerate leaf predicting 0
    return;
  }
  build(x, y, idx, 0, idx.size(), 1, options, rng);
}

std::int32_t RegressionTree::build(const FeatureMatrix& x,
                                   std::span<const double> y,
                                   std::vector<std::size_t>& indices,
                                   std::size_t begin, std::size_t end,
                                   int depth, const TreeOptions& options,
                                   Xoshiro256& rng) {
  depth_ = std::max(depth_, depth);
  const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({});

  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y[indices[i]];
  const double mean_y = sum / static_cast<double>(n);
  nodes_[id].value = mean_y;

  const bool depth_ok = options.max_depth == 0 || depth < options.max_depth;
  if (!depth_ok || n < 2 * static_cast<std::size_t>(options.min_leaf)) {
    return id;
  }

  const int p = static_cast<int>(x.cols());
  const int mtry = options.mtry > 0 ? std::min(options.mtry, p)
                                    : std::max(1, p / 3);

  // Sample mtry features without replacement (partial Fisher–Yates).
  std::vector<int> features(p);
  for (int f = 0; f < p; ++f) features[f] = f;
  for (int f = 0; f < mtry; ++f) {
    const auto j = f + static_cast<int>(rng.uniform_index(p - f));
    std::swap(features[f], features[j]);
  }

  SplitCandidate best;
  std::vector<std::pair<double, double>> scratch;
  std::span<std::size_t> node_idx(indices.data() + begin, n);
  for (int f = 0; f < mtry; ++f) {
    const SplitCandidate cand = best_split_on_feature(
        x, y, node_idx, features[f], options.min_leaf, scratch);
    if (cand.score > best.score) best = cand;
  }
  // Only accept splits that actually reduce variance.
  const double parent_score = sum * sum / static_cast<double>(n);
  if (best.score <= parent_score + 1e-12) return id;

  // Partition in place.
  auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](std::size_t s) {
        return x.at(s, best.feature) <= best.threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return id;  // numerically degenerate

  nodes_[id].feature = best.feature;
  nodes_[id].threshold = best.threshold;
  const std::int32_t left =
      build(x, y, indices, begin, mid, depth + 1, options, rng);
  const std::int32_t right =
      build(x, y, indices, mid, end, depth + 1, options, rng);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

double RegressionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) return 0.0;
  std::int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

}  // namespace ibchol
