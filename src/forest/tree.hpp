// Regression CART tree (the base learner of the random forest).
//
// Standard variance-reduction splitting with threshold tests; leaves
// predict the mean of their training targets. Feature subsampling (mtry)
// at every node, as in Breiman's random forest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "forest/dataset.hpp"
#include "util/rng.hpp"

namespace ibchol {

/// Tree growth controls.
struct TreeOptions {
  int max_depth = 0;   ///< 0 = unbounded
  int min_leaf = 5;    ///< minimum samples per leaf
  int mtry = 0;        ///< features tried per node; 0 = max(1, p/3)
};

/// A fitted regression tree (flat node array).
class RegressionTree {
 public:
  /// Fits on the sample subset `indices` of (X, y).
  void fit(const FeatureMatrix& x, std::span<const double> y,
           std::span<const std::size_t> indices, const TreeOptions& options,
           Xoshiro256& rng);

  [[nodiscard]] double predict(std::span<const double> row) const;

  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::int32_t feature = -1;   ///< -1 = leaf
    double threshold = 0.0;      ///< go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;          ///< leaf prediction
  };

  std::int32_t build(const FeatureMatrix& x, std::span<const double> y,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, int depth, const TreeOptions& options,
                     Xoshiro256& rng);

  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace ibchol
