// Feature matrix for the random-forest regressor.
//
// The autotuning dataset mixes integer variables (n, n_b, chunk size) and
// categorical ones (looking order, chunking, unrolling, cache preference).
// Categorical variables are stored as small integer codes; the regression
// trees split them with thresholds, which is exact for binary variables and
// an adequate encoding for the ternary looking order (paper §IV discusses
// exactly this encoding concern).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ibchol {

/// Row-major feature matrix with named columns.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(std::vector<std::string> names, std::size_t rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols() + c];
  }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols() + c]; }

  /// One row as a contiguous span.
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols(), cols()};
  }

  /// Appends one row; must match cols().
  void add_row(std::span<const double> values);

  [[nodiscard]] std::size_t column_index(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::size_t rows_ = 0;
  std::vector<double> data_;
};

}  // namespace ibchol
