#include "forest/forest.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace ibchol {

void RandomForest::fit(const FeatureMatrix& x, std::span<const double> y,
                       const ForestOptions& options) {
  IBCHOL_CHECK(x.rows() == y.size(), "feature/target size mismatch");
  IBCHOL_CHECK(x.rows() > 0, "empty training set");
  IBCHOL_CHECK(options.num_trees > 0, "forest needs at least one tree");

  const std::size_t n = x.rows();
  trees_.assign(options.num_trees, {});
  oob_indices_.assign(options.num_trees, {});
  train_x_ = &x;
  train_y_.assign(y.begin(), y.end());

  std::vector<double> oob_sum(n, 0.0);
  std::vector<int> oob_count(n, 0);

  const int nt = options.num_threads > 0 ? options.num_threads
                                         : omp_get_max_threads();
#pragma omp parallel num_threads(nt)
  {
    std::vector<std::size_t> sample;
    std::vector<char> in_bag;
#pragma omp for schedule(dynamic)
    for (int t = 0; t < options.num_trees; ++t) {
      Xoshiro256 rng(options.seed + 0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(t + 1));
      sample.clear();
      sample.reserve(n);
      in_bag.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = rng.uniform_index(n);
        sample.push_back(s);
        in_bag[s] = 1;
      }
      trees_[t].fit(x, y, sample, options.tree, rng);
      for (std::size_t i = 0; i < n; ++i) {
        if (!in_bag[i]) oob_indices_[t].push_back(i);
      }
    }
  }

  // OOB predictions (sequential aggregation; cheap relative to fitting).
  for (int t = 0; t < options.num_trees; ++t) {
    for (const std::size_t i : oob_indices_[t]) {
      oob_sum[i] += trees_[t].predict(x.row(i));
      ++oob_count[i];
    }
  }
  oob_pred_.assign(n, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < n; ++i) {
    if (oob_count[i] > 0) oob_pred_[i] = oob_sum[i] / oob_count[i];
  }
}

double RandomForest::predict(std::span<const double> row) const {
  IBCHOL_CHECK(!trees_.empty(), "forest is not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict(row);
  return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(const FeatureMatrix& x) const {
  std::vector<double> out(x.rows());
#pragma omp parallel for schedule(static)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(x.rows()); ++r) {
    out[r] = predict(x.row(r));
  }
  return out;
}

double RandomForest::oob_mse() const {
  IBCHOL_CHECK(train_x_ != nullptr, "forest is not fitted");
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < oob_pred_.size(); ++i) {
    if (std::isnan(oob_pred_[i])) continue;
    const double d = oob_pred_[i] - train_y_[i];
    acc += d * d;
    ++count;
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

std::vector<double> RandomForest::permutation_importance(
    std::uint64_t seed) const {
  IBCHOL_CHECK(train_x_ != nullptr, "forest is not fitted");
  const FeatureMatrix& x = *train_x_;
  const std::size_t p = x.cols();
  std::vector<double> importance(p, 0.0);

#pragma omp parallel for schedule(dynamic)
  for (std::int64_t f = 0; f < static_cast<std::int64_t>(p); ++f) {
    double acc = 0.0;
    int used_trees = 0;
    std::vector<double> row;
    std::vector<std::size_t> perm;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      const auto& oob = oob_indices_[t];
      if (oob.size() < 2) continue;
      Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)) ^
                     (0xbf58476d1ce4e5b9ULL * (f + 1)));
      // Baseline OOB MSE of this tree.
      double mse0 = 0.0;
      for (const std::size_t i : oob) {
        const double d = trees_[t].predict(x.row(i)) - train_y_[i];
        mse0 += d * d;
      }
      mse0 /= static_cast<double>(oob.size());
      // Permute feature f among the OOB rows.
      perm.assign(oob.begin(), oob.end());
      for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
      }
      double mse1 = 0.0;
      for (std::size_t k = 0; k < oob.size(); ++k) {
        const std::size_t i = oob[k];
        row.assign(x.row(i).begin(), x.row(i).end());
        row[f] = x.at(perm[k], f);
        const double d = trees_[t].predict(row) - train_y_[i];
        mse1 += d * d;
      }
      mse1 /= static_cast<double>(oob.size());
      acc += mse1 - mse0;
      ++used_trees;
    }
    importance[f] = used_trees == 0 ? 0.0 : acc / used_trees;
  }
  return importance;
}

double RandomForest::average_depth() const {
  if (trees_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.depth();
  return acc / static_cast<double>(trees_.size());
}

}  // namespace ibchol
