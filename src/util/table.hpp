// Fixed-width text table rendering for bench output (paper-style tables).
#pragma once

#include <string>
#include <vector>

namespace ibchol {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders the table with a header separator line.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibchol
