// Minimal CSV reader/writer for autotuning result databases.
//
// The autotuner persists its sweep as CSV so the analysis stage (random
// forest, Table I) can run on a stored dataset, mirroring the paper's
// postmortem analysis of a 14,000-row measurement archive.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ibchol {

/// In-memory CSV table: one header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws ibchol::Error if absent.
  std::size_t column(const std::string& name) const;

  /// Number of data rows.
  std::size_t size() const { return rows.size(); }
};

/// Parses CSV text. Supports quoted fields with embedded commas/quotes.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file; throws ibchol::Error on I/O failure.
CsvTable read_csv_file(const std::string& path);

/// Serializes a table to CSV text (RFC-4180 quoting where needed).
std::string to_csv(const CsvTable& table);

/// Writes a table to a file; throws ibchol::Error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Quotes a single CSV field if needed.
std::string csv_escape(const std::string& field);

}  // namespace ibchol
