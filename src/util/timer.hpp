// Wall-clock timing helpers for the measured (CPU substrate) benchmarks.
#pragma once

#include <chrono>
#include <cstddef>
#include <utility>

namespace ibchol {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly and returns the best (minimum) time of `reps`
/// timed repetitions, after `warmup` untimed ones. Best-of-k is the
/// standard estimator for kernel benchmarking: it discards scheduler noise.
template <typename Fn>
double best_of(std::size_t warmup, std::size_t reps, Fn&& fn) {
  for (std::size_t i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (std::size_t i = 0; i < reps; ++i) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace ibchol
