#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ibchol {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  IBCHOL_CHECK(q >= 0.0 && q <= 1.0, "quantile level out of range");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mse(std::span<const double> a, std::span<const double> b) {
  IBCHOL_CHECK(a.size() == b.size(), "mse requires equal sizes");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double pearson(std::span<const double> a, std::span<const double> b) {
  IBCHOL_CHECK(a.size() == b.size(), "pearson requires equal sizes");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double r_squared(std::span<const double> truth, std::span<const double> pred) {
  IBCHOL_CHECK(truth.size() == pred.size(), "r_squared requires equal sizes");
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.median = median(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

}  // namespace ibchol
