// Descriptive statistics used by the autotuner, the random forest, and the
// benchmark harness.
#pragma once

#include <span>
#include <vector>

namespace ibchol {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Population variance; 0 for ranges of size < 2.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Median (copies and partially sorts); 0 for an empty range.
double median(std::span<const double> xs);

/// q-th quantile with linear interpolation, q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Mean squared error between two equally sized ranges.
double mse(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of predictions `pred` against `truth`.
double r_squared(std::span<const double> truth, std::span<const double> pred);

/// Summary statistics of one sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace ibchol
