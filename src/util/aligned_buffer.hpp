// Cache-line / GPU-transaction aligned storage.
//
// The interleaved layouts in this library require the base pointer to be
// aligned to the 128-byte memory-transaction granularity the paper assumes
// ("as long as the whole dataset is 128-byte aligned ... data will always be
// read with perfect coalescing"). AlignedBuffer provides that guarantee on
// the CPU substrate as well, so SIMD loads across the batch index are
// aligned vector loads.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>

#include "util/error.hpp"

namespace ibchol {

/// Alignment used for all batch data, matching the GPU 128-byte cache line.
inline constexpr std::size_t kBatchAlignment = 128;

// The vectorized executor issues 64-byte aligned vector loads/stores at
// lane-block bases; every buffer allocated here must satisfy that.
static_assert(kBatchAlignment % 64 == 0,
              "batch alignment must cover the widest SIMD vector (64 bytes)");

/// Owning, aligned, zero-initialized array of trivially copyable elements.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer requires trivially copyable elements");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { resize(count); }

  /// Reallocates to hold `count` elements, zero-initialized. Existing
  /// contents are discarded (batch workloads always refill).
  void resize(std::size_t count) {
    if (count == 0) {
      data_.reset();
      size_ = 0;
      return;
    }
    const std::size_t bytes = round_up(count * sizeof(T), kBatchAlignment);
    void* p = std::aligned_alloc(kBatchAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    std::memset(p, 0, bytes);
    data_.reset(static_cast<T*>(p));
    size_ = count;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  [[nodiscard]] std::span<T> span() noexcept { return {data_.get(), size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_.get(), size_};
  }

  [[nodiscard]] T* begin() noexcept { return data_.get(); }
  [[nodiscard]] T* end() noexcept { return data_.get() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_.get(); }
  [[nodiscard]] const T* end() const noexcept { return data_.get() + size_; }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };

  std::unique_ptr<T[], FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace ibchol
