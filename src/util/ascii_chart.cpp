#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace ibchol {

namespace {

constexpr char kMarkers[] = {'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'};

struct Bounds {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
};

Bounds compute_bounds(const std::vector<Series>& series, bool y_from_zero) {
  Bounds b;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      b.xmin = std::min(b.xmin, s.x[i]);
      b.xmax = std::max(b.xmax, s.x[i]);
      b.ymin = std::min(b.ymin, s.y[i]);
      b.ymax = std::max(b.ymax, s.y[i]);
    }
  }
  if (!(b.xmin <= b.xmax)) {  // no points at all
    b = {0, 1, 0, 1};
  }
  if (y_from_zero) b.ymin = std::min(b.ymin, 0.0);
  if (b.xmax == b.xmin) b.xmax = b.xmin + 1;
  if (b.ymax == b.ymin) b.ymax = b.ymin + 1;
  return b;
}

std::string format_num(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 1000) {
    os.precision(0);
  } else if (std::abs(v) >= 10) {
    os.precision(1);
  } else {
    os.precision(2);
  }
  os << std::fixed << v;
  return os.str();
}

std::string render(const std::vector<Series>& series,
                   const ChartOptions& opt, bool connect) {
  const int w = std::max(opt.width, 16);
  const int h = std::max(opt.height, 6);
  const Bounds b = compute_bounds(series, opt.y_from_zero);

  std::vector<std::string> grid(h, std::string(w, ' '));
  auto to_col = [&](double x) {
    return static_cast<int>(std::lround((x - b.xmin) / (b.xmax - b.xmin) *
                                        (w - 1)));
  };
  auto to_row = [&](double y) {
    return (h - 1) - static_cast<int>(std::lround(
                         (y - b.ymin) / (b.ymax - b.ymin) * (h - 1)));
  };
  auto plot = [&](int c, int r, char m) {
    if (c >= 0 && c < w && r >= 0 && r < h) grid[r][c] = m;
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char m = kMarkers[si % sizeof(kMarkers)];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    // Sort points by x for line interpolation.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a2, std::size_t b2) { return s.x[a2] < s.x[b2]; });
    int prev_c = -1, prev_r = -1;
    for (std::size_t oi = 0; oi < n; ++oi) {
      const std::size_t i = order[oi];
      const int c = to_col(s.x[i]);
      const int r = to_row(s.y[i]);
      if (connect && prev_c >= 0) {
        // Linear interpolation between consecutive points, light marker.
        const int steps = std::max(std::abs(c - prev_c), std::abs(r - prev_r));
        for (int t = 1; t < steps; ++t) {
          const int ic = prev_c + (c - prev_c) * t / steps;
          const int ir = prev_r + (r - prev_r) * t / steps;
          if (ic >= 0 && ic < w && ir >= 0 && ir < h && grid[ir][ic] == ' ') {
            grid[ir][ic] = '.';
          }
        }
      }
      plot(c, r, m);
      prev_c = c;
      prev_r = r;
    }
  }

  std::ostringstream os;
  if (!opt.title.empty()) os << "  " << opt.title << '\n';
  const std::string ytop = format_num(b.ymax);
  const std::string ybot = format_num(b.ymin);
  const std::size_t label_w = std::max(ytop.size(), ybot.size());
  for (int r = 0; r < h; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = std::string(label_w - ytop.size(), ' ') + ytop;
    if (r == h - 1) label = std::string(label_w - ybot.size(), ' ') + ybot;
    os << label << " |" << grid[r] << '\n';
  }
  os << std::string(label_w, ' ') << " +" << std::string(w, '-') << '\n';
  os << std::string(label_w, ' ') << "  " << format_num(b.xmin);
  const std::string xmax_s = format_num(b.xmax);
  const std::string xl = opt.x_label;
  const int pad = w - static_cast<int>(format_num(b.xmin).size()) -
                  static_cast<int>(xmax_s.size());
  if (pad > static_cast<int>(xl.size()) + 2) {
    const int left = (pad - static_cast<int>(xl.size())) / 2;
    os << std::string(left, ' ') << xl
       << std::string(pad - left - static_cast<int>(xl.size()), ' ');
  } else {
    os << std::string(std::max(pad, 1), ' ');
  }
  os << xmax_s << '\n';
  // Legend.
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "    " << kMarkers[si % sizeof(kMarkers)] << "  "
       << series[si].name << '\n';
  }
  if (!opt.y_label.empty()) os << "    y: " << opt.y_label << '\n';
  return os.str();
}

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
  return render(series, options, /*connect=*/true);
}

std::string render_scatter(const std::vector<Series>& series,
                           const ChartOptions& options) {
  return render(series, options, /*connect=*/false);
}

}  // namespace ibchol
