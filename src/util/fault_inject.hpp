// Deterministic fault injection for resilience testing.
//
// Production batches fail in two places: the data (a non-SPD or corrupt
// matrix slips into a 16k-matrix batch) and the tuning loop (one evaluation
// out of ~14,000 throws or hangs). This header provides seedable, scripted
// versions of both so tests and demos can rehearse recovery paths:
//
//  * plan_faults / inject_faults — corrupt chosen batch members with a
//    negative pivot (numerically non-SPD), a NaN, or an Inf. Plans are pure
//    functions of (seed, batch, n), so a test can re-derive exactly which
//    matrices were hit. Injection keeps matrices symmetric (both mirror
//    elements are written) and places NaN/Inf strictly off-diagonal so the
//    first failing pivot — and therefore `info` — is deterministic across
//    executors, layouts, and looking orders.
//  * FlakyEvaluator — a decorator that makes scripted sweep points throw
//    (a configurable number of times) or stall before answering, for
//    exercising the sweep driver's retry/deadline/journal machinery.
//  * SvcChaosPlan / ibchol::chaos — seeded chaos hooks for the persistent
//    batch service (src/svc/): worker stalls before a unit's factorization,
//    delayed write-backs, and forced upstream allocation failures in
//    ScratchArena. Decision points draw from a seeded hash of a per-site
//    counter, so a fixed plan yields a fixed decision *sequence* per site
//    regardless of which worker lands on which draw — the chaos suite
//    asserts invariants (no deadlock, no leak, correct statuses, bit-exact
//    successful results) that must hold under any interleaving anyway.
//    Activated programmatically (install_svc_chaos) or via the IBCHOL_CHAOS
//    environment variable ("stall_rate=0.05,stall_ms=10,alloc_fail_rate=
//    0.2,seed=3", latched on first query); compiled to inert stubs with
//    -DIBCHOL_CHAOS=OFF.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "autotune/evaluator.hpp"
#include "layout/layout.hpp"

#ifndef IBCHOL_CHAOS_ENABLED
#define IBCHOL_CHAOS_ENABLED 1
#endif

namespace ibchol {

/// What kind of corruption to apply to a matrix.
enum class FaultKind : std::uint8_t {
  kNegativePivot,  ///< flip a diagonal element negative (non-SPD, finite)
  kNaN,            ///< plant a NaN at an off-diagonal pair
  kInf,            ///< plant an Inf at an off-diagonal pair
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// One planned corruption. For kNegativePivot, row == col (the pivot).
/// For kNaN/kInf, row > col; both (row, col) and (col, row) are written so
/// the matrix stays symmetric.
struct MatrixFault {
  std::int64_t index = 0;  ///< batch index of the victim matrix
  FaultKind kind = FaultKind::kNegativePivot;
  int row = 0;
  int col = 0;
  /// For kNegativePivot: the diagonal becomes -magnitude · max(|a|, 1).
  double magnitude = 1.0;
};

/// Knobs for plan_faults.
struct FaultPlanOptions {
  std::uint64_t seed = 1234;  ///< same seed + shape => same plan
  double fault_rate = 0.01;   ///< per-matrix corruption probability
  bool negative_pivot = true; ///< include kNegativePivot faults
  bool nan = true;            ///< include kNaN faults
  bool inf = true;            ///< include kInf faults
  double magnitude = 1.0;     ///< negative-pivot magnitude
};

/// Draws a deterministic fault plan for a batch of `batch` n×n matrices:
/// each matrix is corrupted with probability `fault_rate`, cycling through
/// the enabled kinds. Entries come back in ascending matrix index. Throws
/// if every kind is disabled or the rate is outside [0, 1].
[[nodiscard]] std::vector<MatrixFault> plan_faults(
    std::int64_t batch, int n, const FaultPlanOptions& options);

/// Applies a fault plan to batch data in place.
template <typename T>
void inject_faults(const BatchLayout& layout, std::span<T> data,
                   std::span<const MatrixFault> faults);

/// Evaluator decorator that fails or stalls scripted points.
///
/// A point is identified by (n, params) — value equality, so scripts can be
/// built from the same enumeration the sweep uses. Each scripted failure
/// fires a fixed number of times and then the point behaves normally, which
/// is exactly the transient-fault shape the sweep's retry loop targets;
/// stalls delay the inner answer so a sweep deadline sees an overrun.
class FlakyEvaluator final : public Evaluator {
 public:
  explicit FlakyEvaluator(Evaluator& inner) : inner_(inner) {}

  /// The first `times` evaluations of (n, params) throw.
  void fail_point(int n, const TuningParams& params, int times = 1);

  /// The first `times` evaluations of (n, params) sleep for
  /// `stall_seconds` of wall time before delegating.
  void stall_point(int n, const TuningParams& params, double stall_seconds,
                   int times = 1);

  double seconds(int n, std::int64_t batch,
                 const TuningParams& params) override;
  [[nodiscard]] bool parallel_safe() const override {
    return inner_.parallel_safe();
  }
  [[nodiscard]] std::string name() const override {
    return "flaky(" + inner_.name() + ")";
  }

  /// Total seconds() calls and how many of them threw an injected fault.
  [[nodiscard]] std::int64_t calls() const;
  [[nodiscard]] std::int64_t faults_fired() const;

 private:
  struct Script {
    int n = 0;
    TuningParams params;
    int failures_left = 0;
    int stalls_left = 0;
    double stall_seconds = 0.0;
  };

  Script& script_for(int n, const TuningParams& params);

  Evaluator& inner_;
  mutable std::mutex mu_;
  std::vector<Script> scripts_;
  std::int64_t calls_ = 0;
  std::int64_t faults_ = 0;
};

namespace chaos {

/// Compile-time gate (-DIBCHOL_CHAOS=OFF): when false every hook below is
/// an inert stub and install_svc_chaos / IBCHOL_CHAOS have no effect.
inline constexpr bool kEnabled = IBCHOL_CHAOS_ENABLED != 0;

/// One chaos configuration for the service layer. All rates are per-draw
/// probabilities in [0, 1]; a zero rate disables that fault class.
struct SvcChaosPlan {
  std::uint64_t seed = 1;            ///< same plan + same seed => same draws
  double stall_rate = 0.0;           ///< P(worker stalls before a unit)
  double stall_ms = 20.0;            ///< stall duration when drawn
  double writeback_delay_rate = 0.0; ///< P(write-back of a unit is delayed)
  double writeback_delay_ms = 1.0;   ///< delay duration when drawn
  double alloc_fail_rate = 0.0;      ///< P(ScratchArena upstream alloc fails)
  /// Suggested poison-injection rate for harnesses that corrupt request
  /// batches via plan_faults/inject_faults. The service itself never reads
  /// it — poisoning happens to the data, not inside the service.
  double poison_rate = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return stall_rate > 0.0 || writeback_delay_rate > 0.0 ||
           alloc_fail_rate > 0.0 || poison_rate > 0.0;
  }
};

/// Parses an IBCHOL_CHAOS-style spec: comma-separated key=value pairs with
/// the SvcChaosPlan field names ("seed=3,stall_rate=0.05,stall_ms=10").
/// Empty spec => default (inactive) plan. Throws on unknown keys, rates
/// outside [0, 1], or negative durations.
[[nodiscard]] SvcChaosPlan parse_svc_chaos(const std::string& spec);

/// Installs `plan` process-wide and resets the per-site draw counters, so
/// consecutive test cases with the same plan see the same decision
/// sequences. Overrides any IBCHOL_CHAOS environment plan.
void install_svc_chaos(const SvcChaosPlan& plan);

/// Deactivates chaos (decision points all answer "no fault").
void uninstall_svc_chaos();

/// True when a plan with any nonzero rate is active. The first call latches
/// IBCHOL_CHAOS from the environment if install_svc_chaos was never called.
[[nodiscard]] bool svc_chaos_active();

/// The active plan (default-constructed when inactive).
[[nodiscard]] SvcChaosPlan svc_chaos_plan();

/// Decision points, called by the service layer. Each site draws from its
/// own counter; inactive chaos costs one relaxed atomic load per call.
void chaos_stall_unit();       ///< sleeps stall_ms when drawn
void chaos_delay_writeback();  ///< sleeps writeback_delay_ms when drawn
[[nodiscard]] bool chaos_fail_alloc();  ///< true: arena must fail upstream

/// Total draws answered "fault" since the last install (test hook).
[[nodiscard]] std::uint64_t chaos_faults_fired();

}  // namespace chaos

}  // namespace ibchol
