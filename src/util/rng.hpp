// Deterministic random number generation.
//
// Every stochastic component of the library (matrix generators, the ALS
// ratings synthesizer, the random forest's bootstrap sampling) draws from
// these generators so that experiments are reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace ibchol {

/// xoshiro256++ by Blackman & Vigna — fast, high-quality, tiny state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
      s = w ^ (w >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free approximation is adequate here;
    // n is tiny compared to 2^64 so bias is negligible for our uses, but we
    // still reject to keep sampling exact.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derives an independent stream (e.g. one per OpenMP worker).
  Xoshiro256 split(std::uint64_t stream) noexcept {
    return Xoshiro256((*this)() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace ibchol
