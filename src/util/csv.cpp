#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ibchol {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("CSV column not found: " + name);
}

namespace {

// Splits one logical CSV record starting at `pos`; advances `pos` past the
// record's trailing newline. Handles quoted fields spanning commas.
std::vector<std::string> parse_record(const std::string& text,
                                      std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n and finish the record.
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(field));
      return fields;
    } else {
      field += c;
    }
    ++pos;
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::size_t pos = 0;
  if (text.empty()) return table;
  table.header = parse_record(text, pos);
  while (pos < text.size()) {
    auto row = parse_record(text, pos);
    if (row.size() == 1 && row[0].empty()) continue;  // blank line
    IBCHOL_CHECK(row.size() == table.header.size(),
                 "CSV row width differs from header");
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const CsvTable& table) {
  std::ostringstream os;
  auto emit_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  emit_row(table.header);
  for (const auto& row : table.rows) emit_row(row);
  return os.str();
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write CSV file: " + path);
  out << to_csv(table);
  if (!out) throw Error("write failure on CSV file: " + path);
}

}  // namespace ibchol
