#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace ibchol {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

long Cli::get_int(const std::string& name, long def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  IBCHOL_CHECK(end != nullptr && *end == '\0',
               "flag --" + name + " expects an integer, got " + it->second);
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  IBCHOL_CHECK(end != nullptr && *end == '\0',
               "flag --" + name + " expects a number, got " + it->second);
  return v;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " expects a boolean, got " + v);
}

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, v] : flags_) names.push_back(k);
  return names;
}

}  // namespace ibchol
