// Tiny command-line flag parser for bench binaries and examples.
//
// Flags take the form --name=value or --name value; unrecognized flags
// raise an error so typos in sweep scripts are caught immediately.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ibchol {

/// Parsed command line with typed accessors and defaults.
class Cli {
 public:
  /// Parses argv; throws ibchol::Error on malformed flags.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& name, long def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Names of all flags seen (for validation against an allowlist).
  [[nodiscard]] std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ibchol
