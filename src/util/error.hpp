// Error handling primitives shared across the library.
//
// The library reports precondition violations by throwing ibchol::Error.
// Numerical failures (e.g. a non-positive pivot in a Cholesky factorization)
// are reported through status values, not exceptions, because they are
// expected outcomes on user data.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ibchol {

/// Exception thrown on precondition violations and invalid configurations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* expr, const std::string& msg,
                                    const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

/// Throws ibchol::Error if `cond` does not hold. Used to validate user-facing
/// API preconditions; always active (not compiled out in release builds).
#define IBCHOL_CHECK(cond, ...)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ibchol::detail::fail_check(#cond, ::std::string{__VA_ARGS__},   \
                                   ::std::source_location::current());  \
    }                                                                   \
  } while (false)

}  // namespace ibchol
