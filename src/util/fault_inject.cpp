#include "util/fault_inject.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ibchol {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNegativePivot: return "negative-pivot";
    case FaultKind::kNaN: return "nan";
    case FaultKind::kInf: return "inf";
  }
  return "?";
}

std::vector<MatrixFault> plan_faults(std::int64_t batch, int n,
                                     const FaultPlanOptions& options) {
  IBCHOL_CHECK(batch > 0 && n > 0, "fault plan needs a non-empty batch");
  IBCHOL_CHECK(options.fault_rate >= 0.0 && options.fault_rate <= 1.0,
               "fault_rate must be in [0, 1]");
  std::vector<FaultKind> kinds;
  if (options.negative_pivot) kinds.push_back(FaultKind::kNegativePivot);
  if (options.nan) kinds.push_back(FaultKind::kNaN);
  if (options.inf) kinds.push_back(FaultKind::kInf);
  IBCHOL_CHECK(!kinds.empty(), "fault plan needs at least one enabled kind");

  Xoshiro256 rng(options.seed);
  std::vector<MatrixFault> plan;
  std::size_t next_kind = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (rng.uniform() >= options.fault_rate) continue;
    MatrixFault f;
    f.index = b;
    f.kind = kinds[next_kind++ % kinds.size()];
    f.magnitude = options.magnitude;
    if (f.kind == FaultKind::kNegativePivot) {
      f.row = f.col = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(n)));
    } else if (n < 2) {
      // Off-diagonal faults need n >= 2; a 1x1 matrix takes the pivot hit.
      f.kind = FaultKind::kNegativePivot;
      f.row = f.col = 0;
    } else {
      f.row = 1 + static_cast<int>(rng.uniform_index(
                      static_cast<std::uint64_t>(n - 1)));
      f.col = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(f.row)));
    }
    plan.push_back(f);
  }
  return plan;
}

template <typename T>
void inject_faults(const BatchLayout& layout, std::span<T> data,
                   std::span<const MatrixFault> faults) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for batch layout");
  for (const MatrixFault& f : faults) {
    IBCHOL_CHECK(f.index >= 0 && f.index < layout.batch(),
                 "fault index out of range");
    IBCHOL_CHECK(f.row >= 0 && f.row < layout.n() && f.col >= 0 &&
                     f.col < layout.n(),
                 "fault element out of range");
    switch (f.kind) {
      case FaultKind::kNegativePivot: {
        T& a = data[layout.index(f.index, f.row, f.row)];
        const double mag =
            std::max(std::abs(static_cast<double>(a)), 1.0);
        a = static_cast<T>(-f.magnitude * mag);
        break;
      }
      case FaultKind::kNaN: {
        const T v = std::numeric_limits<T>::quiet_NaN();
        data[layout.index(f.index, f.row, f.col)] = v;
        data[layout.index(f.index, f.col, f.row)] = v;
        break;
      }
      case FaultKind::kInf: {
        const T v = std::numeric_limits<T>::infinity();
        data[layout.index(f.index, f.row, f.col)] = v;
        data[layout.index(f.index, f.col, f.row)] = v;
        break;
      }
    }
  }
}

template void inject_faults<float>(const BatchLayout&, std::span<float>,
                                   std::span<const MatrixFault>);
template void inject_faults<double>(const BatchLayout&, std::span<double>,
                                    std::span<const MatrixFault>);

FlakyEvaluator::Script& FlakyEvaluator::script_for(int n,
                                                   const TuningParams& params) {
  for (Script& s : scripts_) {
    if (s.n == n && s.params == params) return s;
  }
  scripts_.push_back({n, params, 0, 0, 0.0});
  return scripts_.back();
}

void FlakyEvaluator::fail_point(int n, const TuningParams& params, int times) {
  const std::lock_guard<std::mutex> lock(mu_);
  script_for(n, params).failures_left = times;
}

void FlakyEvaluator::stall_point(int n, const TuningParams& params,
                                 double stall_seconds, int times) {
  const std::lock_guard<std::mutex> lock(mu_);
  Script& s = script_for(n, params);
  s.stalls_left = times;
  s.stall_seconds = stall_seconds;
}

double FlakyEvaluator::seconds(int n, std::int64_t batch,
                               const TuningParams& params) {
  double stall = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    for (Script& s : scripts_) {
      if (s.n != n || !(s.params == params)) continue;
      if (s.failures_left > 0) {
        --s.failures_left;
        ++faults_;
        throw std::runtime_error("injected evaluator fault");
      }
      if (s.stalls_left > 0) {
        --s.stalls_left;
        ++faults_;
        stall = s.stall_seconds;
      }
      break;
    }
  }
  if (stall > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(stall));
  }
  return inner_.seconds(n, batch, params);
}

std::int64_t FlakyEvaluator::calls() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

std::int64_t FlakyEvaluator::faults_fired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

namespace chaos {

namespace {

/// Draw sites. Each keeps its own counter so one site's draw frequency
/// cannot shift another's sequence.
enum Site : int { kStall = 0, kWriteback = 1, kAlloc = 2, kNumSites = 3 };

struct ChaosState {
  // The plan is written only while inactive (install/uninstall flip
  // `active` last/first), so decision points read it without a lock.
  SvcChaosPlan plan;
  std::atomic<bool> active{false};
  std::atomic<bool> latched{false};  ///< env was consulted (or install ran)
  std::atomic<std::uint64_t> draws[kNumSites];
  std::atomic<std::uint64_t> fired{0};
  std::mutex install_mu;
};

ChaosState& state() {
  static ChaosState* s = new ChaosState;  // leaked: usable at static dtor time
  return *s;
}

/// SplitMix64 finalizer: uniform draw in [0, 1) from (seed, site, n).
double chaos_uniform(std::uint64_t seed, int site, std::uint64_t n) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL *
                               (n * kNumSites + static_cast<std::uint64_t>(site) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// One decision at `site`: true when the site's next draw lands under
/// `rate`.
bool draw(ChaosState& s, int site, double rate) {
  if (rate <= 0.0) return false;
  const std::uint64_t n =
      s.draws[site].fetch_add(1, std::memory_order_relaxed);
  if (chaos_uniform(s.plan.seed, site, n) >= rate) return false;
  s.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void latch_env(ChaosState& s) {
  const std::lock_guard<std::mutex> lock(s.install_mu);
  if (s.latched.load(std::memory_order_acquire)) return;
  const char* env = std::getenv("IBCHOL_CHAOS");
  if (env != nullptr && env[0] != '\0') {
    s.plan = parse_svc_chaos(env);
    s.active.store(s.plan.any(), std::memory_order_release);
  }
  s.latched.store(true, std::memory_order_release);
}

void sleep_ms(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

SvcChaosPlan parse_svc_chaos(const std::string& spec) {
  SvcChaosPlan plan;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    IBCHOL_CHECK(eq != std::string::npos,
                 "IBCHOL_CHAOS entry needs key=value: " + item);
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = std::stoull(value);
    } else if (key == "stall_rate") {
      plan.stall_rate = std::stod(value);
    } else if (key == "stall_ms") {
      plan.stall_ms = std::stod(value);
    } else if (key == "writeback_delay_rate") {
      plan.writeback_delay_rate = std::stod(value);
    } else if (key == "writeback_delay_ms") {
      plan.writeback_delay_ms = std::stod(value);
    } else if (key == "alloc_fail_rate") {
      plan.alloc_fail_rate = std::stod(value);
    } else if (key == "poison_rate") {
      plan.poison_rate = std::stod(value);
    } else {
      IBCHOL_CHECK(false, "unknown IBCHOL_CHAOS key: " + key);
    }
  }
  for (double rate : {plan.stall_rate, plan.writeback_delay_rate,
                      plan.alloc_fail_rate, plan.poison_rate}) {
    IBCHOL_CHECK(rate >= 0.0 && rate <= 1.0,
                 "chaos rates must be in [0, 1]");
  }
  IBCHOL_CHECK(plan.stall_ms >= 0.0 && plan.writeback_delay_ms >= 0.0,
               "chaos durations must be non-negative");
  return plan;
}

void install_svc_chaos(const SvcChaosPlan& plan) {
  if constexpr (!kEnabled) return;
  ChaosState& s = state();
  const std::lock_guard<std::mutex> lock(s.install_mu);
  s.active.store(false, std::memory_order_release);
  s.plan = plan;
  for (auto& d : s.draws) d.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
  s.latched.store(true, std::memory_order_release);
  s.active.store(plan.any(), std::memory_order_release);
}

void uninstall_svc_chaos() {
  if constexpr (!kEnabled) return;
  ChaosState& s = state();
  const std::lock_guard<std::mutex> lock(s.install_mu);
  s.active.store(false, std::memory_order_release);
  s.plan = SvcChaosPlan{};
  s.latched.store(true, std::memory_order_release);
}

bool svc_chaos_active() {
  if constexpr (!kEnabled) return false;
  ChaosState& s = state();
  if (!s.latched.load(std::memory_order_acquire)) latch_env(s);
  return s.active.load(std::memory_order_relaxed);
}

SvcChaosPlan svc_chaos_plan() {
  if constexpr (!kEnabled) return {};
  ChaosState& s = state();
  if (!s.latched.load(std::memory_order_acquire)) latch_env(s);
  const std::lock_guard<std::mutex> lock(s.install_mu);
  return s.plan;
}

void chaos_stall_unit() {
  if (!svc_chaos_active()) return;
  ChaosState& s = state();
  if (draw(s, kStall, s.plan.stall_rate)) sleep_ms(s.plan.stall_ms);
}

void chaos_delay_writeback() {
  if (!svc_chaos_active()) return;
  ChaosState& s = state();
  if (draw(s, kWriteback, s.plan.writeback_delay_rate)) {
    sleep_ms(s.plan.writeback_delay_ms);
  }
}

bool chaos_fail_alloc() {
  if (!svc_chaos_active()) return false;
  ChaosState& s = state();
  return draw(s, kAlloc, s.plan.alloc_fail_rate);
}

std::uint64_t chaos_faults_fired() {
  if constexpr (!kEnabled) return 0;
  return state().fired.load(std::memory_order_relaxed);
}

}  // namespace chaos

}  // namespace ibchol
