#include "util/fault_inject.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ibchol {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNegativePivot: return "negative-pivot";
    case FaultKind::kNaN: return "nan";
    case FaultKind::kInf: return "inf";
  }
  return "?";
}

std::vector<MatrixFault> plan_faults(std::int64_t batch, int n,
                                     const FaultPlanOptions& options) {
  IBCHOL_CHECK(batch > 0 && n > 0, "fault plan needs a non-empty batch");
  IBCHOL_CHECK(options.fault_rate >= 0.0 && options.fault_rate <= 1.0,
               "fault_rate must be in [0, 1]");
  std::vector<FaultKind> kinds;
  if (options.negative_pivot) kinds.push_back(FaultKind::kNegativePivot);
  if (options.nan) kinds.push_back(FaultKind::kNaN);
  if (options.inf) kinds.push_back(FaultKind::kInf);
  IBCHOL_CHECK(!kinds.empty(), "fault plan needs at least one enabled kind");

  Xoshiro256 rng(options.seed);
  std::vector<MatrixFault> plan;
  std::size_t next_kind = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (rng.uniform() >= options.fault_rate) continue;
    MatrixFault f;
    f.index = b;
    f.kind = kinds[next_kind++ % kinds.size()];
    f.magnitude = options.magnitude;
    if (f.kind == FaultKind::kNegativePivot) {
      f.row = f.col = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(n)));
    } else if (n < 2) {
      // Off-diagonal faults need n >= 2; a 1x1 matrix takes the pivot hit.
      f.kind = FaultKind::kNegativePivot;
      f.row = f.col = 0;
    } else {
      f.row = 1 + static_cast<int>(rng.uniform_index(
                      static_cast<std::uint64_t>(n - 1)));
      f.col = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(f.row)));
    }
    plan.push_back(f);
  }
  return plan;
}

template <typename T>
void inject_faults(const BatchLayout& layout, std::span<T> data,
                   std::span<const MatrixFault> faults) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for batch layout");
  for (const MatrixFault& f : faults) {
    IBCHOL_CHECK(f.index >= 0 && f.index < layout.batch(),
                 "fault index out of range");
    IBCHOL_CHECK(f.row >= 0 && f.row < layout.n() && f.col >= 0 &&
                     f.col < layout.n(),
                 "fault element out of range");
    switch (f.kind) {
      case FaultKind::kNegativePivot: {
        T& a = data[layout.index(f.index, f.row, f.row)];
        const double mag =
            std::max(std::abs(static_cast<double>(a)), 1.0);
        a = static_cast<T>(-f.magnitude * mag);
        break;
      }
      case FaultKind::kNaN: {
        const T v = std::numeric_limits<T>::quiet_NaN();
        data[layout.index(f.index, f.row, f.col)] = v;
        data[layout.index(f.index, f.col, f.row)] = v;
        break;
      }
      case FaultKind::kInf: {
        const T v = std::numeric_limits<T>::infinity();
        data[layout.index(f.index, f.row, f.col)] = v;
        data[layout.index(f.index, f.col, f.row)] = v;
        break;
      }
    }
  }
}

template void inject_faults<float>(const BatchLayout&, std::span<float>,
                                   std::span<const MatrixFault>);
template void inject_faults<double>(const BatchLayout&, std::span<double>,
                                    std::span<const MatrixFault>);

FlakyEvaluator::Script& FlakyEvaluator::script_for(int n,
                                                   const TuningParams& params) {
  for (Script& s : scripts_) {
    if (s.n == n && s.params == params) return s;
  }
  scripts_.push_back({n, params, 0, 0, 0.0});
  return scripts_.back();
}

void FlakyEvaluator::fail_point(int n, const TuningParams& params, int times) {
  const std::lock_guard<std::mutex> lock(mu_);
  script_for(n, params).failures_left = times;
}

void FlakyEvaluator::stall_point(int n, const TuningParams& params,
                                 double stall_seconds, int times) {
  const std::lock_guard<std::mutex> lock(mu_);
  Script& s = script_for(n, params);
  s.stalls_left = times;
  s.stall_seconds = stall_seconds;
}

double FlakyEvaluator::seconds(int n, std::int64_t batch,
                               const TuningParams& params) {
  double stall = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    for (Script& s : scripts_) {
      if (s.n != n || !(s.params == params)) continue;
      if (s.failures_left > 0) {
        --s.failures_left;
        ++faults_;
        throw std::runtime_error("injected evaluator fault");
      }
      if (s.stalls_left > 0) {
        --s.stalls_left;
        ++faults_;
        stall = s.stall_seconds;
      }
      break;
    }
  }
  if (stall > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(stall));
  }
  return inner_.seconds(n, batch, params);
}

std::int64_t FlakyEvaluator::calls() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

std::int64_t FlakyEvaluator::faults_fired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

}  // namespace ibchol
