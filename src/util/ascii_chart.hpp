// Terminal rendering of the paper's figures.
//
// Every bench binary prints its series both as a machine-readable table and
// as an ASCII chart so the reproduced figure shape (crossovers, plateaus,
// orderings) is visible directly in the harness output.
#pragma once

#include <string>
#include <vector>

namespace ibchol {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Options controlling chart rendering.
struct ChartOptions {
  int width = 72;    ///< plot area width in characters
  int height = 20;   ///< plot area height in characters
  std::string x_label;
  std::string y_label;
  std::string title;
  bool y_from_zero = true;  ///< anchor the y axis at zero (GFLOP/s charts)
};

/// Renders one or more series as a multi-line ASCII chart. Each series is
/// drawn with its own marker character and listed in a legend.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options);

/// Renders a scatter plot (used for Fig 20 / Fig 21 style clouds).
std::string render_scatter(const std::vector<Series>& series,
                           const ChartOptions& options);

}  // namespace ibchol
