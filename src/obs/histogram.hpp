// Process-wide named latency/size histogram registry.
//
// Histograms record value *distributions* where counters record tallies —
// the canonical use is per-request service latency (p50/p95/p99), where a
// mean hides exactly the tail the service layer exists to control. Like
// counters they are always live while the layer is compiled in, need no
// tracing session, and cost one relaxed fetch_add per record on the hot
// path; trace exports attach a snapshot next to the counter snapshot.
//
// Buckets are log-linear (HdrHistogram-style): 8 linear sub-buckets per
// power of two, 512 buckets total, covering the full uint64 range with a
// worst-case quantile error of one part in 16 — nanosecond latencies from
// sub-microsecond to hours fit one fixed 4 KiB array, no allocation or
// rescaling ever happens on the record path, and every operation is a
// relaxed atomic (safe to scrape concurrently with writers).
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"  // IBCHOL_OBS_ENABLED / kEnabled

namespace ibchol::obs {

/// Point-in-time view of one histogram. Quantiles are bucket midpoints, so
/// they carry the bucket's relative error (≤ 1/16); min/max are exact.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Fixed-footprint concurrent histogram of uint64 samples.
class Histogram {
 public:
  static constexpr int kSubBits = 3;  ///< 8 linear sub-buckets per octave
  static constexpr int kNumBuckets = 512;

  /// Records one sample. Wait-free; relaxed atomics only.
  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  /// Bucket index of `value` (public for the bucket-boundary tests).
  [[nodiscard]] static int bucket_of(std::uint64_t value) noexcept {
    if (value < (std::uint64_t{1} << kSubBits)) {
      return static_cast<int>(value);  // exact buckets for 0..7
    }
    const int exp = 63 - std::countl_zero(value);
    const auto sub = static_cast<int>((value >> (exp - kSubBits)) &
                                      ((std::uint64_t{1} << kSubBits) - 1));
    return ((exp - kSubBits + 1) << kSubBits) | sub;
  }

  /// Midpoint of bucket `b`, the value quantiles report for it. Computed
  /// in floating point (ldexp, not shifts): the top buckets of the range
  /// have exp > 63, where a uint64 shift would be undefined; the operands
  /// carry at most 4 significant bits, so the double arithmetic is exact.
  [[nodiscard]] static double bucket_mid(int b) noexcept {
    if (b < (1 << kSubBits)) return static_cast<double>(b);
    const int exp = (b >> kSubBits) + kSubBits - 1;
    const int sub = b & ((1 << kSubBits) - 1);
    const double lo = std::ldexp(1.0, exp) +
                      std::ldexp(static_cast<double>(sub), exp - kSubBits);
    const double width = std::ldexp(1.0, exp - kSubBits);
    return lo + width / 2.0;
  }

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// The histogram registered under `name`, created on first use. References
/// stay valid for the process lifetime. Thread-safe.
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Snapshot of every registered histogram, sorted by name.
[[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
histograms_snapshot();

/// Resets every registered histogram (tests/benchmarks wanting per-run
/// distributions).
void reset_histograms();

}  // namespace ibchol::obs

#if IBCHOL_OBS_ENABLED
/// Records `value` into the histogram named by the string literal `name`.
/// The registry lookup happens once per call site (function-local static).
#define IBCHOL_HIST(name, value)                                  \
  do {                                                            \
    static ::ibchol::obs::Histogram& ibchol_obs_hist_ref_ =       \
        ::ibchol::obs::histogram(name);                           \
    ibchol_obs_hist_ref_.record(static_cast<std::uint64_t>(value)); \
  } while (0)
#else
#define IBCHOL_HIST(name, value) static_cast<void>(0)
#endif
