// Linux perf_event hardware counters (cycles, instructions, LLC misses).
//
// A thin RAII wrapper over perf_event_open(2) measuring the calling
// thread. Opening the counters requires kernel support and permission
// (perf_event_paranoid, seccomp, containers often deny it); every failure
// path degrades to a no-op object whose samples report valid = false —
// callers never branch on platform, only on HwSample::valid. Non-Linux
// builds compile the same interface with the no-op behaviour.
//
// Usage:
//   HwCounters hw;              // open (or degrade)
//   hw.start();                 // reset + enable
//   ... region of interest ...
//   HwSample s = hw.stop();     // disable + read
//   if (s.valid) { use s.cycles / s.instructions / s.llc_misses; }
#pragma once

#include <cstdint>

namespace ibchol::obs {

/// One reading of the three hardware counters. `valid` is false when the
/// counters could not be opened or a multiplexed read came back short.
struct HwSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  bool valid = false;

  /// Instructions per cycle, 0 when invalid or cycles is zero.
  [[nodiscard]] double ipc() const noexcept {
    return (valid && cycles > 0)
               ? static_cast<double>(instructions) /
                     static_cast<double>(cycles)
               : 0.0;
  }
};

/// Per-thread hardware counter set. Movable-from-nothing by design: the
/// file descriptors are owned for the object's lifetime.
class HwCounters {
 public:
  /// Opens cycles / instructions / LLC-miss counters for the calling
  /// thread; degrades to a disabled object when any open fails.
  HwCounters();
  ~HwCounters();

  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True when all three counters opened successfully.
  [[nodiscard]] bool available() const noexcept { return available_; }

  /// Resets and enables the counters. No-op when unavailable.
  void start() noexcept;

  /// Disables the counters and returns the accumulated sample (invalid
  /// when unavailable or a read fails).
  [[nodiscard]] HwSample stop() noexcept;

 private:
  int fds_[3] = {-1, -1, -1};  ///< cycles, instructions, LLC misses
  bool available_ = false;
};

}  // namespace ibchol::obs
