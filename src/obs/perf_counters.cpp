#include "obs/perf_counters.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define IBCHOL_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace ibchol::obs {

#if defined(IBCHOL_HAVE_PERF_EVENT)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // stay below perf_event_paranoid=1
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU; no group leader (independent
  // counters read one by one — multiplexing is acceptable at our
  // measurement granularity and keeps the failure modes independent).
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

bool read_counter(int fd, std::uint64_t& out) {
  return fd >= 0 && read(fd, &out, sizeof(out)) ==
                        static_cast<ssize_t>(sizeof(out));
}

}  // namespace

HwCounters::HwCounters() {
  fds_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fds_[1] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[2] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  available_ = fds_[0] >= 0 && fds_[1] >= 0 && fds_[2] >= 0;
  if (!available_) {
    // All-or-nothing: a partial counter set would report misleading IPC.
    for (int& fd : fds_) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
  }
}

HwCounters::~HwCounters() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void HwCounters::start() noexcept {
  if (!available_) return;
  for (const int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

HwSample HwCounters::stop() noexcept {
  HwSample s;
  if (!available_) return s;
  for (const int fd : fds_) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  s.valid = read_counter(fds_[0], s.cycles) &&
            read_counter(fds_[1], s.instructions) &&
            read_counter(fds_[2], s.llc_misses);
  return s;
}

#else  // !IBCHOL_HAVE_PERF_EVENT — non-Linux: permanent graceful no-op.

HwCounters::HwCounters() = default;
HwCounters::~HwCounters() = default;
void HwCounters::start() noexcept {}
HwSample HwCounters::stop() noexcept { return {}; }

#endif

}  // namespace ibchol::obs
