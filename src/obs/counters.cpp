#include "obs/counters.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace ibchol::obs {

namespace {

// Leaked for the same shutdown-ordering reason as the trace registry:
// IBCHOL_COUNT sites hold references into it for the process lifetime.
struct CounterRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
};

CounterRegistry& registry() {
  static CounterRegistry* r = new CounterRegistry;
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.counters.find(name);
  if (it != reg.counters.end()) return *it->second;
  return *reg.counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

std::uint64_t counter_value(std::string_view name) {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.counters.find(name);
  return it == reg.counters.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(reg.counters.size());
  for (const auto& [name, c] : reg.counters) {
    out.emplace_back(name, c->value());
  }
  return out;  // std::map iteration is already name-sorted
}

void reset_counters() {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, c] : reg.counters) c->reset();
}

}  // namespace ibchol::obs
