#include "obs/histogram.hpp"

#include <map>
#include <memory>
#include <mutex>

namespace ibchol::obs {

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  std::uint64_t counts[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += counts[b];
  }
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);

  // Walk the cumulative distribution once for all four quantiles. The
  // rank convention is "smallest value with cumulative count >= q*count"
  // (nearest-rank), reported as the bucket midpoint.
  struct Q {
    double q;
    double* out;
  };
  Q quantiles[] = {{0.50, &s.p50}, {0.90, &s.p90}, {0.95, &s.p95},
                   {0.99, &s.p99}};
  std::size_t qi = 0;
  std::uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets && qi < std::size(quantiles); ++b) {
    cum += counts[b];
    while (qi < std::size(quantiles) &&
           static_cast<double>(cum) >=
               quantiles[qi].q * static_cast<double>(s.count)) {
      *quantiles[qi].out = bucket_mid(b);
      ++qi;
    }
  }
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

// Leaked for the same shutdown-ordering reason as the counter registry:
// IBCHOL_HIST sites hold references into it for the process lifetime.
struct HistogramRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

HistogramRegistry& registry() {
  static HistogramRegistry* r = new HistogramRegistry;
  return *r;
}

}  // namespace

Histogram& histogram(std::string_view name) {
  HistogramRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.histograms.find(name);
  if (it != reg.histograms.end()) return *it->second;
  return *reg.histograms
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

std::vector<std::pair<std::string, HistogramSnapshot>> histograms_snapshot() {
  HistogramRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(reg.histograms.size());
  for (const auto& [name, h] : reg.histograms) {
    out.emplace_back(name, h->snapshot());
  }
  return out;  // std::map iteration is already name-sorted
}

void reset_histograms() {
  HistogramRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, h] : reg.histograms) h->reset();
}

}  // namespace ibchol::obs
