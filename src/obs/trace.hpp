// Low-overhead scoped tracing for the batch pipeline.
//
// A trace is a flat list of spans — (name, category, integer payload,
// start, duration, thread) — recorded into thread-local ring buffers by
// RAII scopes at the pipeline's stage boundaries (pack / factor /
// write-back per chunk, sweep points, recovery attempts). Recording is a
// three-step cost ladder:
//
//  * IBCHOL_OBS=OFF (CMake option, -DIBCHOL_OBS_ENABLED=0): the macros
//    expand to `static_cast<void>(0)` and every obs call site inside an
//    `if constexpr (kEnabled)` guard is discarded at compile time — the
//    instrumented binary is instruction-identical to an uninstrumented
//    one (micro_cpu's summary mode asserts the per-site cost rounds to
//    zero in this configuration).
//  * Compiled in, no trace session active (the default at runtime): one
//    relaxed atomic load and a branch per span site.
//  * Session active (start_tracing()): two steady_clock reads plus a
//    ring-buffer store per span, well under the 2% budget at the
//    pipeline's chunk granularity (see docs/OBSERVABILITY.md).
//
// Ring buffers hold the most recent kRingCapacity spans per thread;
// overflow overwrites the oldest spans and is counted, never reallocates,
// and never blocks the hot path on another thread. collect_spans()
// gathers a deterministic snapshot (rings in thread-id order, record
// order within a ring); export_trace() writes either a Chrome
// `trace_event` JSON (load in about://tracing or https://ui.perfetto.dev)
// or a JSONL stream, chosen by file extension.
//
// Span identity is deterministic for a fixed workload and thread count —
// names are string literals, payloads are loop indices — so two traces of
// the same seeded run differ only in timestamps and thread ids. The
// replay test (tests/obs_replay_test.cpp) pins that property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef IBCHOL_OBS_ENABLED
#define IBCHOL_OBS_ENABLED 1
#endif

namespace ibchol::obs {

/// True when the observability layer is compiled in (IBCHOL_OBS=ON).
inline constexpr bool kEnabled = IBCHOL_OBS_ENABLED != 0;

/// Spans retained per thread before the ring overwrites the oldest.
inline constexpr std::size_t kRingCapacity = 1u << 14;

/// One completed span. `name` and `cat` must be string literals (the ring
/// stores the pointers); `arg` is a free integer payload (chunk index,
/// sweep-point index, retry attempt, ...), -1 when unused.
struct TraceSpan {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t arg = -1;
  std::uint64_t start_ns = 0;  ///< steady_clock, process-relative
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< small sequential id, first-record order
};

/// Monotonic clock read in nanoseconds (steady_clock based).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// True while a trace session is active. The inactive check is the only
/// cost a compiled-in span site pays when nobody is tracing.
[[nodiscard]] bool tracing_active() noexcept;

/// Starts a trace session: discards spans of any previous session and
/// begins recording. Safe to call when already active (restarts).
void start_tracing();

/// Stops recording. Spans stay collectable until the next start_tracing().
void stop_tracing();

/// Snapshot of every span of the current session, rings ordered by thread
/// id and record order preserved within each ring. Call outside parallel
/// regions (it locks each ring briefly).
[[nodiscard]] std::vector<TraceSpan> collect_spans();

/// Spans overwritten by ring overflow since the session started.
[[nodiscard]] std::uint64_t dropped_spans() noexcept;

/// Records a completed span; called by TraceScope, exposed for tests.
void record_span(const char* name, const char* cat, std::int64_t arg,
                 std::uint64_t start_ns, std::uint64_t dur_ns);

/// RAII span: captures the clock on construction and records on
/// destruction when a session is active. With IBCHOL_OBS=OFF every member
/// function body vanishes behind `if constexpr`; use the macro below so
/// the object itself is never even declared in that configuration.
class TraceScope {
 public:
  TraceScope(const char* name, const char* cat,
             std::int64_t arg = -1) noexcept {
    if constexpr (kEnabled) {
      if (tracing_active()) {
        name_ = name;
        cat_ = cat;
        arg_ = arg;
        start_ = now_ns();
      }
    } else {
      (void)name;
      (void)cat;
      (void)arg;
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if constexpr (kEnabled) {
      if (name_ != nullptr) {
        record_span(name_, cat_, arg_, start_, now_ns() - start_);
      }
    }
  }

 private:
  const char* name_ = nullptr;  ///< null = was inactive at construction
  const char* cat_ = nullptr;
  std::int64_t arg_ = -1;
  std::uint64_t start_ = 0;
};

// ------------------------------------------------------------- export ----

/// Chrome trace_event JSON ("X" complete events, microsecond timestamps
/// rebased to the earliest span) with the counter registry snapshot and
/// the dropped-span count attached under "otherData".
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceSpan>& spans);

/// One JSON object per line: every span, then one {"counters": ...}
/// trailer. Greppable / streamable; not a single JSON document.
[[nodiscard]] std::string trace_jsonl(const std::vector<TraceSpan>& spans);

/// Collects the current session and writes it to `path` — JSONL when the
/// path ends in ".jsonl", Chrome trace JSON otherwise. Returns false when
/// the file cannot be written or the layer is compiled out.
bool export_trace(const std::string& path);

}  // namespace ibchol::obs

#define IBCHOL_OBS_CONCAT_IMPL(a, b) a##b
#define IBCHOL_OBS_CONCAT(a, b) IBCHOL_OBS_CONCAT_IMPL(a, b)

#if IBCHOL_OBS_ENABLED
/// Opens a scoped span: IBCHOL_TRACE_SPAN("pack", "pipeline", chunk_idx).
/// Name and category must be string literals.
#define IBCHOL_TRACE_SPAN(...)                                       \
  ::ibchol::obs::TraceScope IBCHOL_OBS_CONCAT(ibchol_trace_scope_,   \
                                              __LINE__)(__VA_ARGS__)
#else
// Compiled out: no object, no clock reads, no atomic load. The
// static_assert documents (and proves at compile time) which expansion
// this translation unit received.
#define IBCHOL_TRACE_SPAN(...) static_cast<void>(0)
static_assert(!ibchol::obs::kEnabled,
              "IBCHOL_TRACE_SPAN is empty only when the obs layer is off");
#endif
