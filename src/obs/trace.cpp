#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace ibchol::obs {

namespace {

// Shared trailer fragment: the histogram snapshot both exporters attach
// next to the counter snapshot.
void append_histograms_json(std::ostringstream& os) {
  os << ", \"histograms\": {";
  bool first = true;
  for (const auto& [name, h] : histograms_snapshot()) {
    os << (first ? "" : ", ") << '"' << name << "\": {\"count\": " << h.count
       << ", \"mean\": " << h.mean() << ", \"p50\": " << h.p50
       << ", \"p90\": " << h.p90 << ", \"p95\": " << h.p95
       << ", \"p99\": " << h.p99 << ", \"min\": " << h.min
       << ", \"max\": " << h.max << "}";
    first = false;
  }
  os << "}";
}

std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::uint64_t> g_dropped{0};

struct Ring;

// Global ring registry. Leaked on purpose: thread_local ring destructors
// run during thread (and process) teardown, after function-local statics
// may already be gone; a leaked registry is reachable at any point of
// shutdown.
struct Registry {
  std::mutex mu;
  std::vector<Ring*> rings;
  // Spans salvaged from rings of threads that exited mid-session.
  std::vector<TraceSpan> retired;
  std::uint64_t retired_epoch = 0;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Per-thread span ring. The mutex is uncontended on the hot path (only
// collect_spans and the owning thread ever take it) so recording costs a
// futex-free lock plus a store. Epoch tagging lets start_tracing() reset
// every ring lazily without touching other threads' memory.
struct Ring {
  std::mutex mu;
  std::vector<TraceSpan> spans;
  std::size_t next = 0;     // overwrite cursor once the ring is full
  bool wrapped = false;
  std::uint64_t epoch = 0;
  std::uint32_t tid = 0;

  Ring() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    tid = reg.next_tid++;
    reg.rings.push_back(this);
  }

  ~Ring() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    // Salvage this thread's spans for the session still in flight.
    if (epoch == g_epoch.load(std::memory_order_relaxed)) {
      if (reg.retired_epoch != epoch) {
        reg.retired.clear();
        reg.retired_epoch = epoch;
      }
      append_in_order(reg.retired);
    }
    std::erase(reg.rings, this);
  }

  // Appends this ring's spans, oldest first, to `out`. Caller holds mu
  // (or is the owning thread during teardown).
  void append_in_order(std::vector<TraceSpan>& out) const {
    if (wrapped) {
      out.insert(out.end(), spans.begin() + static_cast<std::ptrdiff_t>(next),
                 spans.end());
      out.insert(out.end(), spans.begin(),
                 spans.begin() + static_cast<std::ptrdiff_t>(next));
    } else {
      out.insert(out.end(), spans.begin(), spans.end());
    }
  }
};

Ring& thread_ring() {
  thread_local Ring ring;
  return ring;
}

void json_escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        os << *s;
    }
  }
}

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool tracing_active() noexcept {
  if constexpr (!kEnabled) return false;
  return g_active.load(std::memory_order_relaxed);
}

void start_tracing() {
  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    g_epoch.fetch_add(1, std::memory_order_relaxed);
    reg.retired.clear();
    reg.retired_epoch = 0;
  }
  g_dropped.store(0, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
}

void stop_tracing() { g_active.store(false, std::memory_order_release); }

void record_span(const char* name, const char* cat, std::int64_t arg,
                 std::uint64_t start_ns, std::uint64_t dur_ns) {
  Ring& ring = thread_ring();
  const std::lock_guard<std::mutex> lock(ring.mu);
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  if (ring.epoch != epoch) {
    ring.spans.clear();
    ring.next = 0;
    ring.wrapped = false;
    ring.epoch = epoch;
  }
  const TraceSpan span{name, cat, arg, start_ns, dur_ns, ring.tid};
  if (ring.spans.size() < kRingCapacity) {
    ring.spans.push_back(span);
  } else {
    ring.spans[ring.next] = span;
    ring.next = (ring.next + 1) % kRingCapacity;
    ring.wrapped = true;
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<TraceSpan> collect_spans() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);

  std::vector<Ring*> rings = reg.rings;
  std::sort(rings.begin(), rings.end(),
            [](const Ring* a, const Ring* b) { return a->tid < b->tid; });

  std::vector<TraceSpan> out;
  if (reg.retired_epoch == epoch) {
    out.insert(out.end(), reg.retired.begin(), reg.retired.end());
  }
  for (Ring* ring : rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->epoch != epoch) continue;  // ring predates this session
    ring->append_in_order(out);
  }
  return out;
}

std::uint64_t dropped_spans() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string chrome_trace_json(const std::vector<TraceSpan>& spans) {
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const TraceSpan& s : spans) t0 = std::min(t0, s.start_ns);
  if (spans.empty()) t0 = 0;

  std::ostringstream os;
  os << "{\n\"traceEvents\": [";
  bool first = true;
  for (const TraceSpan& s : spans) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << R"({"name": ")";
    json_escape(os, s.name);
    os << R"(", "cat": ")";
    json_escape(os, s.cat);
    os << R"(", "ph": "X", "pid": 0, "tid": )" << s.tid << ", \"ts\": "
       << static_cast<double>(s.start_ns - t0) / 1e3
       << ", \"dur\": " << static_cast<double>(s.dur_ns) / 1e3;
    if (s.arg >= 0) os << R"(, "args": {"v": )" << s.arg << "}";
    os << "}";
  }
  os << "\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {"
     << "\"dropped_spans\": " << dropped_spans() << ", \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_snapshot()) {
    os << (first ? "" : ", ") << '"' << name << "\": " << value;
    first = false;
  }
  os << "}";
  append_histograms_json(os);
  os << "}\n}\n";
  return os.str();
}

std::string trace_jsonl(const std::vector<TraceSpan>& spans) {
  std::ostringstream os;
  for (const TraceSpan& s : spans) {
    os << R"({"name": ")";
    json_escape(os, s.name);
    os << R"(", "cat": ")";
    json_escape(os, s.cat);
    os << R"(", "arg": )" << s.arg << ", \"ts_ns\": " << s.start_ns
       << ", \"dur_ns\": " << s.dur_ns << ", \"tid\": " << s.tid << "}\n";
  }
  os << R"({"dropped_spans": )" << dropped_spans() << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_snapshot()) {
    os << (first ? "" : ", ") << '"' << name << "\": " << value;
    first = false;
  }
  os << "}";
  append_histograms_json(os);
  os << "}\n";
  return os.str();
}

bool export_trace(const std::string& path) {
  if constexpr (!kEnabled) {
    (void)path;
    return false;
  }
  const std::vector<TraceSpan> spans = collect_spans();
  std::ofstream f(path);
  if (!f) return false;
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  f << (jsonl ? trace_jsonl(spans) : chrome_trace_json(spans));
  return static_cast<bool>(f);
}

}  // namespace ibchol::obs
