// Process-wide named-counter registry.
//
// Counters are monotone uint64 event tallies (chunks packed, bytes
// streamed through non-temporal stores, lane blocks prefetched, executor
// dispatches, recovery retries). Unlike spans they are always live while
// the layer is compiled in — no session needed — so long-running services
// can scrape them at any time; trace exports attach a snapshot.
//
// Hot paths amortize: they accumulate into a thread-local plain integer
// and fold it into the shared atomic once per chunk / parallel region,
// so a counter never adds per-lane-block contention. The IBCHOL_COUNT
// macro caches the registry lookup in a function-local static, making
// the steady-state cost one relaxed fetch_add.
//
// Counter names are dot-separated paths ("pipeline.nt_store_bytes");
// docs/OBSERVABILITY.md is the canonical taxonomy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"  // IBCHOL_OBS_ENABLED / kEnabled

namespace ibchol::obs {

/// One named counter; cache-line sized so neighbours never false-share.
class alignas(64) Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// The counter registered under `name`, created on first use. References
/// stay valid for the process lifetime. Thread-safe.
[[nodiscard]] Counter& counter(std::string_view name);

/// Current value of `name`, 0 when the counter was never touched (the
/// registry is not grown by reads).
[[nodiscard]] std::uint64_t counter_value(std::string_view name);

/// Snapshot of every registered counter, sorted by name.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
counters_snapshot();

/// Resets every registered counter to zero (tests and benchmarks that
/// want per-run deltas; production readers should diff snapshots).
void reset_counters();

}  // namespace ibchol::obs

#if IBCHOL_OBS_ENABLED
/// Adds `delta` to the counter named by the string literal `name`. The
/// registry lookup happens once per call site (function-local static).
#define IBCHOL_COUNT(name, delta)                              \
  do {                                                         \
    static ::ibchol::obs::Counter& ibchol_obs_counter_ref_ =   \
        ::ibchol::obs::counter(name);                          \
    ibchol_obs_counter_ref_.add(                               \
        static_cast<std::uint64_t>(delta));                    \
  } while (0)
#else
#define IBCHOL_COUNT(name, delta) static_cast<void>(0)
#endif
