// Batch matrix data layouts.
//
// The paper studies three ways of storing a batch of `batch` matrices of
// size n×n (single matrices are always column-major):
//
//  * Canonical          — matrices stored one after another, each contiguous:
//                         offset(b,i,j) = b·n² + j·n + i.
//                         This is the layout cuBLAS/MAGMA batch routines use.
//  * Interleaved        — the batch index is the fastest-growing dimension
//                         (paper Fig 7): offset(b,i,j) = (j·n + i)·B + b,
//                         where B is the batch padded to a warp multiple.
//                         A warp (or SIMD vector) reading element (i,j) of 32
//                         consecutive matrices performs one fully coalesced
//                         128-byte transaction.
//  * InterleavedChunked — matrices grouped in chunks of C (a multiple of 32,
//                         paper Fig 8); each chunk is a contiguous
//                         interleaved block:
//                         offset(b,i,j) = (b/C)·n²·C + (j·n + i)·C + (b mod C).
//                         Keeps coalescing while restoring spatial locality.
//
// BatchLayout is a value-type descriptor: it performs the index algebra and
// carries padding information, but does not own data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace ibchol {

/// The warp width the layouts pad to; also the SIMD batch granularity on
/// the CPU substrate.
inline constexpr int kWarpSize = 32;

/// Which of the three storage schemes a batch uses.
enum class LayoutKind : std::uint8_t {
  kCanonical,
  kInterleaved,
  kInterleavedChunked,
};

[[nodiscard]] std::string to_string(LayoutKind kind);

/// Descriptor of a batch of n×n matrices in one of the three layouts.
class BatchLayout {
 public:
  /// Canonical layout: contiguous column-major matrices.
  static BatchLayout canonical(int n, std::int64_t batch);

  /// Simple interleaved layout (paper Fig 7). The batch is padded to a
  /// multiple of the warp size.
  static BatchLayout interleaved(int n, std::int64_t batch);

  /// Chunked interleaved layout (paper Fig 8). `chunk` must be a positive
  /// multiple of the warp size; the batch is padded to a multiple of it.
  static BatchLayout interleaved_chunked(int n, std::int64_t batch, int chunk);

  [[nodiscard]] LayoutKind kind() const noexcept { return kind_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] std::int64_t batch() const noexcept { return batch_; }

  /// Batch count including padding matrices (equals batch() for canonical).
  [[nodiscard]] std::int64_t padded_batch() const noexcept {
    return padded_batch_;
  }

  /// Chunk size: number of matrices per contiguous interleaved block.
  /// For the simple interleaved layout this equals padded_batch(); for the
  /// canonical layout it is 1 (each matrix is its own contiguous block).
  [[nodiscard]] int64_t chunk() const noexcept { return chunk_; }

  /// Number of chunks ( = padded_batch / chunk for interleaved layouts).
  [[nodiscard]] std::int64_t num_chunks() const noexcept {
    return kind_ == LayoutKind::kCanonical ? batch_ : padded_batch_ / chunk_;
  }

  /// Total element count of the allocation backing this layout.
  [[nodiscard]] std::size_t size_elems() const noexcept {
    return static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_) *
           static_cast<std::size_t>(kind_ == LayoutKind::kCanonical
                                        ? batch_
                                        : padded_batch_);
  }

  /// Linear element offset of element (i, j) of matrix b. Row i, column j,
  /// zero-based, 0 <= i, j < n, 0 <= b < padded_batch().
  [[nodiscard]] std::size_t index(std::int64_t b, int i, int j) const noexcept {
    const auto nn = static_cast<std::size_t>(n_);
    const auto e = static_cast<std::size_t>(j) * nn + static_cast<std::size_t>(i);
    switch (kind_) {
      case LayoutKind::kCanonical:
        return static_cast<std::size_t>(b) * nn * nn + e;
      case LayoutKind::kInterleaved:
        return e * static_cast<std::size_t>(padded_batch_) +
               static_cast<std::size_t>(b);
      case LayoutKind::kInterleavedChunked: {
        const auto c = static_cast<std::size_t>(b / chunk_);
        const auto l = static_cast<std::size_t>(b % chunk_);
        return c * nn * nn * static_cast<std::size_t>(chunk_) +
               e * static_cast<std::size_t>(chunk_) + l;
      }
    }
    return 0;  // unreachable
  }

  /// Stride (in elements) between element (i,j) of matrix b and matrix b+1,
  /// when both live in the same chunk. 1 for interleaved layouts — this is
  /// the property that makes warp reads coalesced.
  [[nodiscard]] std::int64_t batch_stride_within_chunk() const noexcept {
    return kind_ == LayoutKind::kCanonical
               ? static_cast<std::int64_t>(n_) * n_
               : 1;
  }

  /// Stride (in elements) between consecutive elements down a column of one
  /// matrix. 1 for canonical; chunk() for interleaved layouts.
  [[nodiscard]] std::int64_t element_stride() const noexcept {
    return kind_ == LayoutKind::kCanonical ? 1 : chunk_;
  }

  /// Offset of the start of the chunk containing matrix b.
  [[nodiscard]] std::size_t chunk_base(std::int64_t b) const noexcept {
    const auto nn = static_cast<std::size_t>(n_);
    switch (kind_) {
      case LayoutKind::kCanonical:
        return static_cast<std::size_t>(b) * nn * nn;
      case LayoutKind::kInterleaved:
        return 0;
      case LayoutKind::kInterleavedChunked:
        return static_cast<std::size_t>(b / chunk_) * nn * nn *
               static_cast<std::size_t>(chunk_);
    }
    return 0;  // unreachable
  }

  /// True if the two descriptors describe the same shape (n, batch), so a
  /// conversion between them is well defined.
  [[nodiscard]] bool same_shape(const BatchLayout& other) const noexcept {
    return n_ == other.n_ && batch_ == other.batch_;
  }

  [[nodiscard]] bool operator==(const BatchLayout& other) const noexcept =
      default;

  [[nodiscard]] std::string to_string() const;

 private:
  BatchLayout(LayoutKind kind, int n, std::int64_t batch, std::int64_t chunk,
              std::int64_t padded_batch)
      : kind_(kind), n_(n), batch_(batch), chunk_(chunk),
        padded_batch_(padded_batch) {}

  LayoutKind kind_ = LayoutKind::kCanonical;
  int n_ = 0;
  std::int64_t batch_ = 0;
  std::int64_t chunk_ = 1;
  std::int64_t padded_batch_ = 0;
};

/// Rounds `v` up to a multiple of `m` (m > 0).
[[nodiscard]] constexpr std::int64_t round_up(std::int64_t v, std::int64_t m) {
  return (v + m - 1) / m * m;
}

}  // namespace ibchol
