#include "layout/layout.hpp"

#include <sstream>

namespace ibchol {

std::string to_string(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kCanonical: return "canonical";
    case LayoutKind::kInterleaved: return "interleaved";
    case LayoutKind::kInterleavedChunked: return "interleaved_chunked";
  }
  return "?";
}

BatchLayout BatchLayout::canonical(int n, std::int64_t batch) {
  IBCHOL_CHECK(n > 0, "matrix dimension must be positive");
  IBCHOL_CHECK(batch > 0, "batch count must be positive");
  return BatchLayout(LayoutKind::kCanonical, n, batch, /*chunk=*/1,
                     /*padded_batch=*/batch);
}

BatchLayout BatchLayout::interleaved(int n, std::int64_t batch) {
  IBCHOL_CHECK(n > 0, "matrix dimension must be positive");
  IBCHOL_CHECK(batch > 0, "batch count must be positive");
  const std::int64_t padded = round_up(batch, kWarpSize);
  return BatchLayout(LayoutKind::kInterleaved, n, batch, /*chunk=*/padded,
                     padded);
}

BatchLayout BatchLayout::interleaved_chunked(int n, std::int64_t batch,
                                             int chunk) {
  IBCHOL_CHECK(n > 0, "matrix dimension must be positive");
  IBCHOL_CHECK(batch > 0, "batch count must be positive");
  IBCHOL_CHECK(chunk > 0 && chunk % kWarpSize == 0,
               "chunk size must be a positive multiple of the warp size");
  const std::int64_t padded = round_up(batch, chunk);
  return BatchLayout(LayoutKind::kInterleavedChunked, n, batch, chunk, padded);
}

std::string BatchLayout::to_string() const {
  std::ostringstream os;
  os << ibchol::to_string(kind_) << "(n=" << n_ << ", batch=" << batch_;
  if (kind_ == LayoutKind::kInterleavedChunked) os << ", chunk=" << chunk_;
  if (padded_batch_ != batch_) os << ", padded=" << padded_batch_;
  os << ")";
  return os.str();
}

}  // namespace ibchol
