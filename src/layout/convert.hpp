// Conversions between batch layouts.
//
// A production batch pipeline receives matrices in the canonical layout
// (that is what callers and file formats produce) and repacks them into an
// interleaved layout before factorization. These routines implement all
// pairwise conversions through the layouts' index maps, parallelized across
// the batch. Padding matrices introduced by interleaved layouts are filled
// with identity matrices so that factorizing the padding never fails.
#pragma once

#include <span>

#include "layout/layout.hpp"

namespace ibchol {

/// Copies a batch from `src` (described by `from`) into `dst` (described by
/// `to`). The two layouts must have the same n and batch. `src` and `dst`
/// must not alias. Sizes are validated against the layouts.
template <typename T>
void convert_layout(const BatchLayout& from, std::span<const T> src,
                    const BatchLayout& to, std::span<T> dst);

/// Fills the padding region of an interleaved batch (matrices with index
/// >= layout.batch()) with identity matrices. No-op for canonical layouts.
template <typename T>
void fill_padding_identity(const BatchLayout& layout, std::span<T> data);

/// Extracts matrix `b` into a dense column-major n×n buffer `out`
/// (out.size() == n*n).
template <typename T>
void extract_matrix(const BatchLayout& layout, std::span<const T> data,
                    std::int64_t b, std::span<T> out);

/// Overwrites matrix `b` from a dense column-major n×n buffer `in`.
template <typename T>
void insert_matrix(const BatchLayout& layout, std::span<T> data,
                   std::int64_t b, std::span<const T> in);

}  // namespace ibchol
