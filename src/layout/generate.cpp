#include "layout/generate.hpp"

#include <cmath>
#include <vector>

#include "layout/convert.hpp"
#include "util/rng.hpp"

namespace ibchol {

namespace {

// Builds one n×n SPD matrix (column-major, dense) into `a` using an RNG
// stream private to matrix index b.
template <typename T>
void make_spd(int n, std::uint64_t seed, std::int64_t b, SpdKind kind,
              double condition, std::vector<double>& scratch,
              std::span<T> a) {
  Xoshiro256 rng(seed ^ (0x5851f42d4c957f2dULL * static_cast<std::uint64_t>(b + 1)));
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  scratch.assign(nn, 0.0);

  switch (kind) {
    case SpdKind::kGramPlusDiagonal: {
      // G uniform in [-1, 1); A = G·Gᵀ + n·I.
      std::vector<double> g(nn);
      for (auto& v : g) v = rng.uniform(-1.0, 1.0);
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          double acc = (i == j) ? static_cast<double>(n) : 0.0;
          for (int k = 0; k < n; ++k) {
            acc += g[static_cast<std::size_t>(k) * n + i] *
                   g[static_cast<std::size_t>(k) * n + j];
          }
          scratch[static_cast<std::size_t>(j) * n + i] = acc;
        }
      }
      break;
    }
    case SpdKind::kDiagonallyDominant: {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i <= j; ++i) {
          const double v = rng.uniform(-1.0, 1.0);
          scratch[static_cast<std::size_t>(j) * n + i] = v;
          scratch[static_cast<std::size_t>(i) * n + j] = v;
        }
      }
      for (int i = 0; i < n; ++i) {
        double row = 0.0;
        for (int j = 0; j < n; ++j) {
          if (j != i) row += std::abs(scratch[static_cast<std::size_t>(j) * n + i]);
        }
        scratch[static_cast<std::size_t>(i) * n + i] = row + 1.0;
      }
      break;
    }
    case SpdKind::kControlledCondition: {
      // A = Q·D·Qᵀ where Q comes from Gram–Schmidt on a random matrix and
      // D has log-uniform eigenvalues in [1/cond, 1].
      std::vector<double> q(nn);
      for (auto& v : q) v = rng.normal();
      // Modified Gram–Schmidt.
      for (int j = 0; j < n; ++j) {
        double* qj = &q[static_cast<std::size_t>(j) * n];
        for (int k = 0; k < j; ++k) {
          const double* qk = &q[static_cast<std::size_t>(k) * n];
          double dot = 0.0;
          for (int i = 0; i < n; ++i) dot += qj[i] * qk[i];
          for (int i = 0; i < n; ++i) qj[i] -= dot * qk[i];
        }
        double norm = 0.0;
        for (int i = 0; i < n; ++i) norm += qj[i] * qj[i];
        norm = std::sqrt(norm);
        if (norm < 1e-12) {  // re-draw a degenerate column deterministically
          for (int i = 0; i < n; ++i) qj[i] = (i == j) ? 1.0 : 0.0;
          norm = 1.0;
        }
        for (int i = 0; i < n; ++i) qj[i] /= norm;
      }
      std::vector<double> d(n);
      const double logc = std::log(condition);
      for (int i = 0; i < n; ++i) {
        const double t = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
        d[i] = std::exp(-logc * t);  // eigenvalues from 1 down to 1/cond
      }
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          double acc = 0.0;
          for (int k = 0; k < n; ++k) {
            acc += q[static_cast<std::size_t>(k) * n + i] * d[k] *
                   q[static_cast<std::size_t>(k) * n + j];
          }
          scratch[static_cast<std::size_t>(j) * n + i] = acc;
        }
      }
      break;
    }
  }

  for (std::size_t e = 0; e < nn; ++e) a[e] = static_cast<T>(scratch[e]);
}

}  // namespace

template <typename T>
void generate_spd_batch(const BatchLayout& layout, std::span<T> data,
                        const SpdOptions& options) {
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  const int n = layout.n();
#pragma omp parallel
  {
    std::vector<double> scratch;
    std::vector<T> dense(static_cast<std::size_t>(n) * n);
#pragma omp for schedule(static)
    for (std::int64_t b = 0; b < layout.batch(); ++b) {
      make_spd<T>(n, options.seed, b, options.kind, options.condition,
                  scratch, dense);
      insert_matrix<T>(layout, data, b, dense);
    }
  }
  fill_padding_identity(layout, data);
}

template <typename T>
void poison_matrix(const BatchLayout& layout, std::span<T> data,
                   std::int64_t b, int break_at) {
  IBCHOL_CHECK(break_at >= 0 && break_at < layout.n(),
               "poison position out of range");
  const int n = layout.n();
  // Identity everywhere, but a -1 on the diagonal at `break_at`; the
  // factorization hits a negative pivot exactly at column break_at.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      T v = (i == j) ? T{1} : T{0};
      if (i == j && i == break_at) v = T{-1};
      data[layout.index(b, i, j)] = v;
    }
  }
}

template void generate_spd_batch<float>(const BatchLayout&, std::span<float>,
                                        const SpdOptions&);
template void generate_spd_batch<double>(const BatchLayout&, std::span<double>,
                                         const SpdOptions&);
template void poison_matrix<float>(const BatchLayout&, std::span<float>,
                                   std::int64_t, int);
template void poison_matrix<double>(const BatchLayout&, std::span<double>,
                                    std::int64_t, int);

}  // namespace ibchol
