// Layouts for batches of length-n vectors (right-hand sides / solutions).
//
// The solve stage (POTRS) pairs each factored matrix with one right-hand
// side. Vectors follow the same three storage schemes as matrices so a
// warp/SIMD lane-block reads RHS elements with the same coalescing
// properties as the matrix elements.
#pragma once

#include "layout/layout.hpp"

namespace ibchol {

/// Descriptor of a batch of length-n vectors, mirroring BatchLayout.
class BatchVectorLayout {
 public:
  static BatchVectorLayout canonical(int n, std::int64_t batch) {
    IBCHOL_CHECK(n > 0 && batch > 0, "invalid vector batch shape");
    return BatchVectorLayout(LayoutKind::kCanonical, n, batch, 1, batch);
  }

  static BatchVectorLayout interleaved(int n, std::int64_t batch) {
    IBCHOL_CHECK(n > 0 && batch > 0, "invalid vector batch shape");
    const std::int64_t padded = round_up(batch, kWarpSize);
    return BatchVectorLayout(LayoutKind::kInterleaved, n, batch, padded,
                             padded);
  }

  static BatchVectorLayout interleaved_chunked(int n, std::int64_t batch,
                                               int chunk) {
    IBCHOL_CHECK(n > 0 && batch > 0, "invalid vector batch shape");
    IBCHOL_CHECK(chunk > 0 && chunk % kWarpSize == 0,
                 "chunk must be a positive multiple of the warp size");
    const std::int64_t padded = round_up(batch, chunk);
    return BatchVectorLayout(LayoutKind::kInterleavedChunked, n, batch, chunk,
                             padded);
  }

  /// Vector layout matching a matrix layout's scheme and batch shape.
  static BatchVectorLayout matching(const BatchLayout& m) {
    switch (m.kind()) {
      case LayoutKind::kCanonical:
        return canonical(m.n(), m.batch());
      case LayoutKind::kInterleaved:
        return interleaved(m.n(), m.batch());
      case LayoutKind::kInterleavedChunked:
        return interleaved_chunked(m.n(), m.batch(),
                                   static_cast<int>(m.chunk()));
    }
    throw Error("unknown layout kind");
  }

  [[nodiscard]] LayoutKind kind() const noexcept { return kind_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] std::int64_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::int64_t padded_batch() const noexcept {
    return padded_batch_;
  }
  [[nodiscard]] std::int64_t chunk() const noexcept { return chunk_; }

  [[nodiscard]] std::size_t size_elems() const noexcept {
    return static_cast<std::size_t>(n_) *
           static_cast<std::size_t>(kind_ == LayoutKind::kCanonical
                                        ? batch_
                                        : padded_batch_);
  }

  /// Linear offset of element i of vector b.
  [[nodiscard]] std::size_t index(std::int64_t b, int i) const noexcept {
    switch (kind_) {
      case LayoutKind::kCanonical:
        return static_cast<std::size_t>(b) * n_ + i;
      case LayoutKind::kInterleaved:
        return static_cast<std::size_t>(i) * padded_batch_ + b;
      case LayoutKind::kInterleavedChunked:
        return static_cast<std::size_t>(b / chunk_) * n_ * chunk_ +
               static_cast<std::size_t>(i) * chunk_ +
               static_cast<std::size_t>(b % chunk_);
    }
    return 0;  // unreachable
  }

  [[nodiscard]] bool operator==(const BatchVectorLayout&) const noexcept =
      default;

 private:
  BatchVectorLayout(LayoutKind kind, int n, std::int64_t batch,
                    std::int64_t chunk, std::int64_t padded)
      : kind_(kind), n_(n), batch_(batch), chunk_(chunk),
        padded_batch_(padded) {}

  LayoutKind kind_;
  int n_;
  std::int64_t batch_;
  std::int64_t chunk_;
  std::int64_t padded_batch_;
};

}  // namespace ibchol
