// Batch problem generators.
//
// The benchmarks and tests need large batches of random symmetric positive
// definite (SPD) matrices. Generation is deterministic from a seed and is
// performed directly in the target layout through its index map, so the
// same seed yields numerically identical batches in every layout — the
// property the correctness tests rely on when comparing implementations.
#pragma once

#include <cstdint>
#include <span>

#include "layout/layout.hpp"

namespace ibchol {

/// How the SPD test matrices are constructed.
enum class SpdKind : std::uint8_t {
  /// A = G·Gᵀ + n·I with G uniform in [-1, 1): well conditioned, the
  /// generator used for all performance experiments.
  kGramPlusDiagonal,
  /// Diagonally dominant: random symmetric with row-sum-dominant diagonal.
  kDiagonallyDominant,
  /// A = Q·D·Qᵀ with log-uniform eigenvalues in [1/cond, 1]: controlled
  /// condition number for accuracy studies.
  kControlledCondition,
};

/// Options for generate_spd_batch.
struct SpdOptions {
  SpdKind kind = SpdKind::kGramPlusDiagonal;
  std::uint64_t seed = 42;
  double condition = 100.0;  ///< target condition (kControlledCondition only)
};

/// Fills `data` (described by `layout`) with `layout.batch()` random SPD
/// matrices; padding matrices are set to identity. Only the lower triangle
/// is guaranteed SPD-consistent; the full symmetric matrix is stored.
template <typename T>
void generate_spd_batch(const BatchLayout& layout, std::span<T> data,
                        const SpdOptions& options = {});

/// Fills matrix `b` of the batch with one matrix that is symmetric but NOT
/// positive definite (its leading (break_at+1)×(break_at+1) minor is
/// singular/negative), for failure-injection tests. `break_at` in [0, n).
template <typename T>
void poison_matrix(const BatchLayout& layout, std::span<T> data,
                   std::int64_t b, int break_at);

}  // namespace ibchol
