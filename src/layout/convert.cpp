#include "layout/convert.hpp"

namespace ibchol {

namespace {

template <typename T>
void check_span(const BatchLayout& layout, std::size_t got) {
  IBCHOL_CHECK(got >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
}

}  // namespace

template <typename T>
void convert_layout(const BatchLayout& from, std::span<const T> src,
                    const BatchLayout& to, std::span<T> dst) {
  IBCHOL_CHECK(from.same_shape(to), "layout conversion requires equal shapes");
  check_span<T>(from, src.size());
  check_span<T>(to, dst.size());
  IBCHOL_CHECK(static_cast<const void*>(src.data()) !=
                   static_cast<const void*>(dst.data()),
               "layout conversion requires distinct buffers");
  const int n = from.n();
  const std::int64_t batch = from.batch();
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        dst[to.index(b, i, j)] = src[from.index(b, i, j)];
      }
    }
  }
  fill_padding_identity(to, dst);
}

template <typename T>
void fill_padding_identity(const BatchLayout& layout, std::span<T> data) {
  if (layout.padded_batch() == layout.batch()) return;
  check_span<T>(layout, data.size());
  const int n = layout.n();
  for (std::int64_t b = layout.batch(); b < layout.padded_batch(); ++b) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        data[layout.index(b, i, j)] = (i == j) ? T{1} : T{0};
      }
    }
  }
}

template <typename T>
void extract_matrix(const BatchLayout& layout, std::span<const T> data,
                    std::int64_t b, std::span<T> out) {
  check_span<T>(layout, data.size());
  IBCHOL_CHECK(b >= 0 && b < layout.padded_batch(), "matrix index out of range");
  const int n = layout.n();
  IBCHOL_CHECK(out.size() >= static_cast<std::size_t>(n) * n,
               "output buffer too small");
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(j) * n + i] = data[layout.index(b, i, j)];
    }
  }
}

template <typename T>
void insert_matrix(const BatchLayout& layout, std::span<T> data,
                   std::int64_t b, std::span<const T> in) {
  check_span<T>(layout, data.size());
  IBCHOL_CHECK(b >= 0 && b < layout.padded_batch(), "matrix index out of range");
  const int n = layout.n();
  IBCHOL_CHECK(in.size() >= static_cast<std::size_t>(n) * n,
               "input buffer too small");
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      data[layout.index(b, i, j)] = in[static_cast<std::size_t>(j) * n + i];
    }
  }
}

// Explicit instantiations for the supported precisions.
template void convert_layout<float>(const BatchLayout&, std::span<const float>,
                                    const BatchLayout&, std::span<float>);
template void convert_layout<double>(const BatchLayout&,
                                     std::span<const double>,
                                     const BatchLayout&, std::span<double>);
template void fill_padding_identity<float>(const BatchLayout&,
                                           std::span<float>);
template void fill_padding_identity<double>(const BatchLayout&,
                                            std::span<double>);
template void extract_matrix<float>(const BatchLayout&, std::span<const float>,
                                    std::int64_t, std::span<float>);
template void extract_matrix<double>(const BatchLayout&,
                                     std::span<const double>, std::int64_t,
                                     std::span<double>);
template void insert_matrix<float>(const BatchLayout&, std::span<float>,
                                   std::int64_t, std::span<const float>);
template void insert_matrix<double>(const BatchLayout&, std::span<double>,
                                    std::int64_t, std::span<const double>);

}  // namespace ibchol
