// Layouts for batches of rectangular rows×cols matrices.
//
// The factorization itself works on square matrices (BatchLayout), but the
// batched BLAS companions — multi-RHS triangular solves, SYRK/GEMM updates —
// need rectangular operands (an n×nrhs right-hand-side block, an n×k panel).
// BatchRectLayout extends the same three storage schemes to rows×cols
// shapes; for rows == cols it produces exactly BatchLayout's index map.
#pragma once

#include "layout/layout.hpp"

namespace ibchol {

/// Descriptor of a batch of rows×cols column-major matrices.
class BatchRectLayout {
 public:
  static BatchRectLayout canonical(int rows, int cols, std::int64_t batch) {
    check(rows, cols, batch);
    return BatchRectLayout(LayoutKind::kCanonical, rows, cols, batch, 1,
                           batch);
  }

  static BatchRectLayout interleaved(int rows, int cols, std::int64_t batch) {
    check(rows, cols, batch);
    const std::int64_t padded = round_up(batch, kWarpSize);
    return BatchRectLayout(LayoutKind::kInterleaved, rows, cols, batch,
                           padded, padded);
  }

  static BatchRectLayout interleaved_chunked(int rows, int cols,
                                             std::int64_t batch, int chunk) {
    check(rows, cols, batch);
    IBCHOL_CHECK(chunk > 0 && chunk % kWarpSize == 0,
                 "chunk size must be a positive multiple of the warp size");
    const std::int64_t padded = round_up(batch, chunk);
    return BatchRectLayout(LayoutKind::kInterleavedChunked, rows, cols, batch,
                           chunk, padded);
  }

  /// Rectangular layout matching a square matrix layout's scheme and batch.
  static BatchRectLayout matching(const BatchLayout& m, int rows, int cols) {
    switch (m.kind()) {
      case LayoutKind::kCanonical:
        return canonical(rows, cols, m.batch());
      case LayoutKind::kInterleaved:
        return interleaved(rows, cols, m.batch());
      case LayoutKind::kInterleavedChunked:
        return interleaved_chunked(rows, cols, m.batch(),
                                   static_cast<int>(m.chunk()));
    }
    throw Error("unknown layout kind");
  }

  [[nodiscard]] LayoutKind kind() const noexcept { return kind_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::int64_t padded_batch() const noexcept {
    return padded_batch_;
  }
  [[nodiscard]] std::int64_t chunk() const noexcept { return chunk_; }

  [[nodiscard]] std::size_t size_elems() const noexcept {
    return static_cast<std::size_t>(rows_) * cols_ *
           static_cast<std::size_t>(kind_ == LayoutKind::kCanonical
                                        ? batch_
                                        : padded_batch_);
  }

  /// Linear offset of element (i, j) of matrix b.
  [[nodiscard]] std::size_t index(std::int64_t b, int i, int j) const noexcept {
    const auto e = static_cast<std::size_t>(j) * rows_ +
                   static_cast<std::size_t>(i);
    const auto mat = static_cast<std::size_t>(rows_) * cols_;
    switch (kind_) {
      case LayoutKind::kCanonical:
        return static_cast<std::size_t>(b) * mat + e;
      case LayoutKind::kInterleaved:
        return e * static_cast<std::size_t>(padded_batch_) +
               static_cast<std::size_t>(b);
      case LayoutKind::kInterleavedChunked:
        return static_cast<std::size_t>(b / chunk_) * mat *
                   static_cast<std::size_t>(chunk_) +
               e * static_cast<std::size_t>(chunk_) +
               static_cast<std::size_t>(b % chunk_);
    }
    return 0;  // unreachable
  }

  /// Offset of the start of the chunk containing matrix b.
  [[nodiscard]] std::size_t chunk_base(std::int64_t b) const noexcept {
    const auto mat = static_cast<std::size_t>(rows_) * cols_;
    switch (kind_) {
      case LayoutKind::kCanonical:
        return static_cast<std::size_t>(b) * mat;
      case LayoutKind::kInterleaved:
        return 0;
      case LayoutKind::kInterleavedChunked:
        return static_cast<std::size_t>(b / chunk_) * mat *
               static_cast<std::size_t>(chunk_);
    }
    return 0;  // unreachable
  }

  /// Element stride within a chunk (chunk() for interleaved; 1 canonical).
  [[nodiscard]] std::int64_t element_stride() const noexcept {
    return kind_ == LayoutKind::kCanonical ? 1 : chunk_;
  }

  /// True when two rect layouts use the same scheme, chunking and batch, so
  /// a lane block spans the same matrices in both.
  [[nodiscard]] bool compatible(const BatchRectLayout& o) const noexcept {
    return kind_ == o.kind_ && chunk_ == o.chunk_ && batch_ == o.batch_ &&
           padded_batch_ == o.padded_batch_;
  }

  /// Compatibility with a square matrix layout.
  [[nodiscard]] bool compatible(const BatchLayout& o) const noexcept {
    return kind_ == o.kind() && chunk_ == o.chunk() && batch_ == o.batch() &&
           padded_batch_ == o.padded_batch();
  }

  [[nodiscard]] bool operator==(const BatchRectLayout&) const noexcept =
      default;

 private:
  static void check(int rows, int cols, std::int64_t batch) {
    IBCHOL_CHECK(rows > 0 && cols > 0, "matrix dims must be positive");
    IBCHOL_CHECK(batch > 0, "batch count must be positive");
  }

  BatchRectLayout(LayoutKind kind, int rows, int cols, std::int64_t batch,
                  std::int64_t chunk, std::int64_t padded)
      : kind_(kind), rows_(rows), cols_(cols), batch_(batch), chunk_(chunk),
        padded_batch_(padded) {}

  LayoutKind kind_;
  int rows_;
  int cols_;
  std::int64_t batch_;
  std::int64_t chunk_;
  std::int64_t padded_batch_;
};

}  // namespace ibchol
