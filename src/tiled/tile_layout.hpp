// Tile-major (2D partitioned-block) storage for one large lower-triangular
// matrix, the layout the tiled task-parallel Cholesky path factors in.
//
// The n×n matrix is partitioned into an nt×nt grid of nb×nb tiles
// (nt = ceil(n/nb)); only the lower-triangular tiles (I >= J) are stored,
// each as a contiguous nb×nb column-major block with leading dimension nb.
// Edge tiles occupy a full nb×nb slot but only their leading
// dim(I)×dim(J) corner is meaningful. Kim et al. (arXiv:1601.05871) show
// this partitioned-block shape beats flat layouts for task-parallel
// Cholesky: every task touches whole contiguous tiles, so the working set
// of a task is exactly the tiles it names.
//
// Linear block order is column-of-tiles major: tile (I, J) lives at block
// index J*nt - J*(J-1)/2 + (I - J), i.e. columns of tiles stored
// top-to-bottom, left-to-right — the same order PACK/UNPACK tasks walk.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace ibchol::tiled {

/// Descriptor of the tile-major packed-lower layout (no data ownership).
class TileLayout {
 public:
  TileLayout(int n, int nb) : n_(n), nb_(nb < n ? nb : n) {
    IBCHOL_CHECK(n >= 1, "tiled: matrix dimension must be positive");
    IBCHOL_CHECK(nb >= 1, "tiled: tile size must be positive");
    nt_ = (n_ + nb_ - 1) / nb_;
  }

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int nb() const noexcept { return nb_; }
  [[nodiscard]] int nt() const noexcept { return nt_; }

  /// Rows (== cols) of tile row/column index t: nb except a short last tile.
  [[nodiscard]] int dim(int t) const noexcept {
    const int rem = n_ - t * nb_;
    return rem < nb_ ? rem : nb_;
  }

  /// Linear block index of tile (I, J), I >= J.
  [[nodiscard]] std::int64_t block(int I, int J) const noexcept {
    return static_cast<std::int64_t>(J) * nt_ -
           static_cast<std::int64_t>(J) * (J - 1) / 2 + (I - J);
  }

  /// Element offset of tile (I, J) in the packed-lower tile buffer.
  [[nodiscard]] std::int64_t tile_offset(int I, int J) const noexcept {
    return block(I, J) * nb_ * nb_;
  }

  /// Number of stored (lower-triangular) tiles.
  [[nodiscard]] std::int64_t num_blocks() const noexcept {
    return static_cast<std::int64_t>(nt_) * (nt_ + 1) / 2;
  }

  /// Element count of the packed-lower tile buffer for one matrix.
  [[nodiscard]] std::int64_t size_elems() const noexcept {
    return num_blocks() * nb_ * nb_;
  }

 private:
  int n_;
  int nb_;
  int nt_;
};

/// Copies the lower triangle of tile-column J from a gather/scatter source
/// into tile-major storage. `load(i, j)` must return element (i, j) of the
/// source matrix (global indices); only i >= j is read.
template <typename T, typename LoadFn>
void pack_tile_column(const TileLayout& tl, int J, T* tiles, LoadFn&& load) {
  const int nb = tl.nb();
  const int jb = tl.dim(J);
  const int j0 = J * nb;
  for (int I = J; I < tl.nt(); ++I) {
    T* tile = tiles + tl.tile_offset(I, J);
    const int ib = tl.dim(I);
    const int i0 = I * nb;
    for (int j = 0; j < jb; ++j) {
      const int lo = I == J ? j : 0;  // diagonal tiles: lower part only
      for (int i = lo; i < ib; ++i) {
        tile[j * nb + i] = load(i0 + i, j0 + j);
      }
    }
  }
}

/// Writes the lower triangle of tile-column J back through `store(i, j, v)`
/// (global indices, i >= j only).
template <typename T, typename StoreFn>
void unpack_tile_column(const TileLayout& tl, int J, const T* tiles,
                        StoreFn&& store) {
  const int nb = tl.nb();
  const int jb = tl.dim(J);
  const int j0 = J * nb;
  for (int I = J; I < tl.nt(); ++I) {
    const T* tile = tiles + tl.tile_offset(I, J);
    const int ib = tl.dim(I);
    const int i0 = I * nb;
    for (int j = 0; j < jb; ++j) {
      const int lo = I == J ? j : 0;
      for (int i = lo; i < ib; ++i) {
        store(i0 + i, j0 + j, tile[j * nb + i]);
      }
    }
  }
}

}  // namespace ibchol::tiled
