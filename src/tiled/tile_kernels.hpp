// Tile task bodies for the large-N tiled Cholesky path.
//
// One function per DAG task kind, each operating on whole nb×nb column-major
// tiles (lda = nb, edge tiles pass their true dims). These bodies are the
// *only* arithmetic the tiled path performs, and they are shared verbatim
// between the task-parallel executor (svc) and the single-threaded blocked
// reference (tiled/reference.cpp). Combined with the per-tile update chains
// in the DAG (each tile's SYRK/GEMM updates are serialized in ascending
// step order), this makes the parallel result bit-identical to the
// sequential one under any stealing schedule: every tile sees the same
// sequence of the same compiled functions with the same operands.
//
// GEMM/SYRK use a 4-wide rank-update inner structure (four B columns held
// in registers, contiguous stride-1 sweep down the C/A columns) so the
// compiler can autovectorize the i-loop at whatever ISA the build targets;
// determinism is unaffected because both executors call the same compiled
// body. TRSM mirrors the reference column sweep without its zero-skip so
// the i-loop stays branch-free. POTRF delegates to the blocked reference
// factorization (its flop share is O(1/nt²) of the DAG — not worth a
// separate body).
#pragma once

#include "cpu/reference.hpp"

// The task bodies must never be inlined: inlining into different call sites
// can change floating-point contraction (fma fusion) per context, and the
// bit-identity contract requires the parallel executor and the sequential
// reference to run the *same* instructions. Out-of-line comdat copies are
// compiled with identical flags in every TU and deduplicated at link time.
#if defined(__GNUC__) || defined(__clang__)
#define IBCHOL_TILED_NOINLINE [[gnu::noinline]]
#else
#define IBCHOL_TILED_NOINLINE
#endif

namespace ibchol::tiled {

/// Inner panel width of the per-tile POTRF (LAPACK-style blocked panel).
inline constexpr int kPotrfPanel = 32;

/// Factors the kk×kk diagonal tile in place. Returns 0 or the 1-based
/// failing column within the tile.
template <typename T>
IBCHOL_TILED_NOINLINE int tile_potrf(int kk, T* a, int lda) {
  return potrf_blocked(kk, kPotrfPanel, a, lda);
}

/// B <- B · tril(L)^{-T}; B is m×kk, L is the kk×kk factored diagonal tile.
template <typename T>
IBCHOL_TILED_NOINLINE void tile_trsm(int m, int kk, const T* l, int ldl,
                                     T* b, int ldb) {
  for (int j = 0; j < kk; ++j) {
    T* bj = b + static_cast<std::int64_t>(j) * ldb;
    for (int p = 0; p < j; ++p) {
      const T ljp = l[static_cast<std::int64_t>(p) * ldl + j];
      const T* bp = b + static_cast<std::int64_t>(p) * ldb;
      for (int i = 0; i < m; ++i) bj[i] -= bp[i] * ljp;
    }
    const T d = l[static_cast<std::int64_t>(j) * ldl + j];
    for (int i = 0; i < m; ++i) bj[i] /= d;
  }
}

/// C <- C - A·Bᵀ (full block). C is m×n, A is m×kk, B is n×kk; all
/// column-major. Four B rows are broadcast per pass so the stride-1 i-loop
/// carries four fused updates — the register-tiled panel-GEMM shape.
template <typename T>
IBCHOL_TILED_NOINLINE void tile_gemm_nt(int m, int n, int kk, const T* a,
                                        int lda, const T* b, int ldb, T* c,
                                        int ldc) {
  for (int j = 0; j < n; ++j) {
    T* cj = c + static_cast<std::int64_t>(j) * ldc;
    int p = 0;
    for (; p + 4 <= kk; p += 4) {
      const T b0 = b[static_cast<std::int64_t>(p + 0) * ldb + j];
      const T b1 = b[static_cast<std::int64_t>(p + 1) * ldb + j];
      const T b2 = b[static_cast<std::int64_t>(p + 2) * ldb + j];
      const T b3 = b[static_cast<std::int64_t>(p + 3) * ldb + j];
      const T* a0 = a + static_cast<std::int64_t>(p + 0) * lda;
      const T* a1 = a + static_cast<std::int64_t>(p + 1) * lda;
      const T* a2 = a + static_cast<std::int64_t>(p + 2) * lda;
      const T* a3 = a + static_cast<std::int64_t>(p + 3) * lda;
      for (int i = 0; i < m; ++i) {
        cj[i] -= a0[i] * b0 + a1[i] * b1 + a2[i] * b2 + a3[i] * b3;
      }
    }
    for (; p < kk; ++p) {
      const T bp = b[static_cast<std::int64_t>(p) * ldb + j];
      const T* ap = a + static_cast<std::int64_t>(p) * lda;
      for (int i = 0; i < m; ++i) cj[i] -= ap[i] * bp;
    }
  }
}

/// C <- C - A·Aᵀ, lower triangle only. C is n×n, A is n×kk.
template <typename T>
IBCHOL_TILED_NOINLINE void tile_syrk_ln(int n, int kk, const T* a, int lda,
                                        T* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    T* cj = c + static_cast<std::int64_t>(j) * ldc;
    int p = 0;
    for (; p + 4 <= kk; p += 4) {
      const T b0 = a[static_cast<std::int64_t>(p + 0) * lda + j];
      const T b1 = a[static_cast<std::int64_t>(p + 1) * lda + j];
      const T b2 = a[static_cast<std::int64_t>(p + 2) * lda + j];
      const T b3 = a[static_cast<std::int64_t>(p + 3) * lda + j];
      const T* a0 = a + static_cast<std::int64_t>(p + 0) * lda;
      const T* a1 = a + static_cast<std::int64_t>(p + 1) * lda;
      const T* a2 = a + static_cast<std::int64_t>(p + 2) * lda;
      const T* a3 = a + static_cast<std::int64_t>(p + 3) * lda;
      for (int i = j; i < n; ++i) {
        cj[i] -= a0[i] * b0 + a1[i] * b1 + a2[i] * b2 + a3[i] * b3;
      }
    }
    for (; p < kk; ++p) {
      const T bp = a[static_cast<std::int64_t>(p) * lda + j];
      const T* ap = a + static_cast<std::int64_t>(p) * lda;
      for (int i = j; i < n; ++i) cj[i] -= ap[i] * bp;
    }
  }
}

}  // namespace ibchol::tiled
