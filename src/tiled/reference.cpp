#include "tiled/reference.hpp"

#include <algorithm>
#include <vector>

#include "tiled/tile_kernels.hpp"
#include "tiled/tile_layout.hpp"

namespace ibchol::tiled {

template <typename T>
int potrf_tiled_reference(int n, int nb, T* a, int lda) {
  const TileLayout tl(n, nb);
  const int nt = tl.nt();
  const int bnb = tl.nb();
  std::vector<T> tiles(static_cast<std::size_t>(tl.size_elems()));
  for (int j = 0; j < nt; ++j) {
    pack_tile_column(tl, j, tiles.data(), [&](int gi, int gj) {
      return a[static_cast<std::int64_t>(gj) * lda + gi];
    });
  }

  int info = 0;
  for (int k = 0; k < nt; ++k) {
    const int kk = tl.dim(k);
    T* dkk = tiles.data() + tl.tile_offset(k, k);
    const int r = tile_potrf(kk, dkk, bnb);
    if (r != 0 && info == 0) info = k * bnb + r;
    for (int i = k + 1; i < nt; ++i) {
      tile_trsm(tl.dim(i), kk, dkk, bnb,
                tiles.data() + tl.tile_offset(i, k), bnb);
    }
    for (int i = k + 1; i < nt; ++i) {
      tile_syrk_ln(tl.dim(i), kk, tiles.data() + tl.tile_offset(i, k), bnb,
                   tiles.data() + tl.tile_offset(i, i), bnb);
    }
    for (int j = k + 1; j < nt; ++j) {
      for (int i = j + 1; i < nt; ++i) {
        tile_gemm_nt(tl.dim(i), tl.dim(j), kk,
                     tiles.data() + tl.tile_offset(i, k), bnb,
                     tiles.data() + tl.tile_offset(j, k), bnb,
                     tiles.data() + tl.tile_offset(i, j), bnb);
      }
    }
  }

  for (int j = 0; j < nt; ++j) {
    unpack_tile_column(tl, j, tiles.data(), [&](int gi, int gj, T v) {
      a[static_cast<std::int64_t>(gj) * lda + gi] = v;
    });
  }
  return info;
}

template int potrf_tiled_reference<float>(int, int, float*, int);
template int potrf_tiled_reference<double>(int, int, double*, int);

}  // namespace ibchol::tiled
