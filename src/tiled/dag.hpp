// Task DAG of the blocked right-looking tiled Cholesky.
//
// For an nt×nt tile grid the factorization is the classic dependence graph
//
//   for k = 0 … nt-1:
//     POTRF(k)                          — factor diagonal tile (k,k)
//     TRSM(i,k)   for i in (k, nt)      — A(i,k) ← A(i,k)·L(k,k)^{-T}
//     SYRK(i,k)   for i in (k, nt)      — A(i,i) ← A(i,i) − A(i,k)·A(i,k)ᵀ
//     GEMM(i,j,k) for k < j < i < nt    — A(i,j) ← A(i,j) − A(i,k)·A(j,k)ᵀ
//
// bracketed by per-tile-column PACK/UNPACK tasks that convert between the
// caller's BatchLayout and the tile-major scratch. Edges:
//
//   PACK(0)      → POTRF(0)
//   PACK(c)      → SYRK(c,0), GEMM(i,c,0)          (target-column pack)
//   POTRF(k)     → TRSM(i,k) ∀i,  UNPACK(k)
//   TRSM(i,k)    → SYRK(i,k), GEMM(i,j,k) j<i, GEMM(i',i,k) i'>i, UNPACK(k)
//   SYRK(i,k)    → SYRK(i,k+1)   (or POTRF(i) when k+1 == i)
//   GEMM(i,j,k)  → GEMM(i,j,k+1) (or TRSM(i,j) when k+1 == j)
//
// The SYRK/GEMM *chains* are the determinism contract: every tile's update
// sequence is totally ordered by step index, so any topological execution
// (hence any stealing schedule) applies the same operations to each tile in
// the same order and the result is bit-identical to the sequential
// reference.
//
// Lookahead throttle (perf-only, order-preserving): an update task whose
// target column c is more than `lookahead` steps ahead of its own step k
// gains one extra edge POTRF(c − lookahead) → task. This bounds how far the
// trailing update wavefront can run ahead of the panel (bounding live tile
// traffic) without touching any chain, so bit-identity is preserved for
// every lookahead value. lookahead is clamped to ≥ 1 — at 0 the extra edge
// POTRF(c) → SYRK(c,k) closes a cycle — and values ≥ nt disable the
// throttle. Priorities are ALAP heights (longest path to the sink, Quach &
// Langou arXiv:1510.05107) computed on the un-throttled DAG; the executor
// releases ready successors in ascending height so the owner's LIFO pop
// runs the most critical task first while FIFO thieves drain the slack.
#pragma once

#include <cstdint>
#include <vector>

#include "tiled/tile_layout.hpp"

namespace ibchol::tiled {

/// Hard cap on the tile-grid order (nt). Keeps per-task bookkeeping
/// (ready-successor bursts, DAG spec vectors) bounded; n = 4096 at the
/// minimum supported nb of 16 is nt = 256.
inline constexpr int kMaxNt = 512;

enum class TaskKind : std::uint8_t {
  kPack,    ///< gather tile-column k from the caller's layout
  kPotrf,   ///< factor diagonal tile (k,k)
  kTrsm,    ///< solve panel tile (i,k)
  kSyrk,    ///< rank-update diagonal tile (i,i) from step k
  kGemm,    ///< rank-update tile (i,j) from step k
  kUnpack,  ///< scatter tile-column k back to the caller's layout
};

/// A decoded task. k is the step (for pack/unpack: the tile column); i/j
/// are tile indices where the kind uses them.
struct TileTask {
  TaskKind kind = TaskKind::kPack;
  int k = 0;
  int i = 0;
  int j = 0;
};

/// Immutable, shareable description of one matrix's task DAG. Local task
/// ids occupy [0, tasks_per_matrix): PACK tasks at [0, nt), then per-step
/// blocks {POTRF, TRSMs, SYRKs, GEMMs} at [step_base[k], step_base[k+1]),
/// then UNPACK tasks at [unpack_base, unpack_base + nt).
struct DagSpec {
  int n = 0;
  int nb = 0;
  int nt = 0;
  int lookahead = 1;  ///< clamped to [1, nt]

  std::int64_t tasks_per_matrix = 0;
  std::int64_t rest_per_matrix = 0;  ///< tasks_per_matrix - nt (non-PACK)
  std::int64_t unpack_base = 0;
  std::vector<std::int64_t> step_base;  ///< [nt + 1]

  /// Initial in-degree of every non-PACK task, indexed by local_id - nt.
  /// Built by accumulating for_each_successor so the executor's decrements
  /// match the edge enumeration by construction.
  std::vector<std::int32_t> init_indegree;

  /// ALAP height of every task (higher = more critical), [tasks_per_matrix].
  std::vector<std::int32_t> priority;

  // ---- id algebra ------------------------------------------------------
  [[nodiscard]] std::int64_t pack_id(int j) const { return j; }
  [[nodiscard]] std::int64_t potrf_id(int k) const { return step_base[k]; }
  [[nodiscard]] std::int64_t trsm_id(int k, int i) const {
    return step_base[k] + 1 + (i - k - 1);
  }
  [[nodiscard]] std::int64_t syrk_id(int k, int i) const {
    return step_base[k] + 1 + (nt - k - 1) + (i - k - 1);
  }
  [[nodiscard]] std::int64_t gemm_id(int k, int i, int j) const {
    const std::int64_t m = nt - k - 1;
    const std::int64_t a = j - k - 1;
    return step_base[k] + 1 + 2 * m + a * m - a * (a + 1) / 2 + (i - j - 1);
  }
  [[nodiscard]] std::int64_t unpack_id(int j) const { return unpack_base + j; }

  [[nodiscard]] TileTask decode(std::int64_t local_id) const;

  /// Calls fn(successor_local_id) for every out-edge of `local_id`.
  /// Throttle edges (POTRF → far-ahead updates) are included only when
  /// `include_throttle`; the executor includes them, ALAP heights do not.
  template <typename Fn>
  void for_each_successor(std::int64_t local_id, bool include_throttle,
                          Fn&& fn) const;
};

/// Builds the DAG spec for an n×n matrix with tile size nb. `lookahead` is
/// clamped to [1, nt]. Throws ibchol::Error when nt would exceed kMaxNt.
[[nodiscard]] DagSpec build_dag_spec(int n, int nb, int lookahead);

/// I/O-lower-bound-seeded default tile size: the largest power-of-two nb
/// (within [32, 256]) whose three-tile working set fits the detected
/// last-level cache share, per the communication lower bound of Kwasniewski
/// et al. (a GEMM task streams A(i,k), B(j,k) and updates C(i,j)).
[[nodiscard]] int recommended_nb(int n, int elem_size);

/// nb candidates for the autotune tiled lane at dimension n (power-of-two
/// ladder around recommended_nb, clamped so nt stays within kMaxNt).
[[nodiscard]] std::vector<int> tiled_nb_candidates(int n, int elem_size);

// ---- template bodies ---------------------------------------------------

template <typename Fn>
void DagSpec::for_each_successor(std::int64_t local_id, bool include_throttle,
                                 Fn&& fn) const {
  const TileTask t = decode(local_id);
  switch (t.kind) {
    case TaskKind::kPack:
      // Column 0 gates POTRF(0); every later column gates the first update
      // that writes into it (the step-0 SYRK/GEMMs targeting column t.k).
      if (t.k == 0) {
        fn(potrf_id(0));
      } else if (nt > 1) {
        fn(syrk_id(0, t.k));
        for (int i = t.k + 1; i < nt; ++i) fn(gemm_id(0, i, t.k));
      }
      break;
    case TaskKind::kPotrf:
      for (int i = t.k + 1; i < nt; ++i) fn(trsm_id(t.k, i));
      fn(unpack_id(t.k));
      if (include_throttle) {
        const int c = t.k + lookahead;
        if (c < nt) {
          for (int kp = 0; kp < t.k; ++kp) {
            fn(syrk_id(kp, c));
            for (int i = c + 1; i < nt; ++i) fn(gemm_id(kp, i, c));
          }
        }
      }
      break;
    case TaskKind::kTrsm:
      fn(syrk_id(t.k, t.i));
      for (int j = t.k + 1; j < t.i; ++j) fn(gemm_id(t.k, t.i, j));
      for (int i = t.i + 1; i < nt; ++i) fn(gemm_id(t.k, i, t.i));
      fn(unpack_id(t.k));
      break;
    case TaskKind::kSyrk:
      if (t.k + 1 == t.i) {
        fn(potrf_id(t.i));
      } else {
        fn(syrk_id(t.k + 1, t.i));
      }
      break;
    case TaskKind::kGemm:
      if (t.k + 1 == t.j) {
        fn(trsm_id(t.j, t.i));
      } else {
        fn(gemm_id(t.k + 1, t.i, t.j));
      }
      break;
    case TaskKind::kUnpack:
      break;
  }
}

}  // namespace ibchol::tiled
