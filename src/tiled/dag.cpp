#include "tiled/dag.hpp"

#include <algorithm>

#include "cpu/chunk_pipeline.hpp"
#include "util/error.hpp"

namespace ibchol::tiled {

TileTask DagSpec::decode(std::int64_t local_id) const {
  TileTask t;
  if (local_id < nt) {
    t.kind = TaskKind::kPack;
    t.k = static_cast<int>(local_id);
    return t;
  }
  if (local_id >= unpack_base) {
    t.kind = TaskKind::kUnpack;
    t.k = static_cast<int>(local_id - unpack_base);
    return t;
  }
  // Step lookup: step_base is strictly increasing, step_base[0] == nt.
  const auto it =
      std::upper_bound(step_base.begin(), step_base.end(), local_id);
  const int k = static_cast<int>(it - step_base.begin()) - 1;
  t.k = k;
  const std::int64_t m = nt - k - 1;
  std::int64_t off = local_id - step_base[k];
  if (off == 0) {
    t.kind = TaskKind::kPotrf;
    return t;
  }
  off -= 1;
  if (off < m) {
    t.kind = TaskKind::kTrsm;
    t.i = k + 1 + static_cast<int>(off);
    return t;
  }
  off -= m;
  if (off < m) {
    t.kind = TaskKind::kSyrk;
    t.i = k + 1 + static_cast<int>(off);
    return t;
  }
  off -= m;
  // GEMM block: pairs ordered by target column a = j-k-1, then row. Column
  // a starts at offset a·m − a(a+1)/2; binary-search the largest such a.
  t.kind = TaskKind::kGemm;
  std::int64_t lo = 0;
  std::int64_t hi = m - 1;  // a ranges over [0, m-1)
  while (lo < hi) {
    const std::int64_t mid = (lo + hi + 1) / 2;
    if (mid * m - mid * (mid + 1) / 2 <= off) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const std::int64_t a = lo;
  t.j = k + 1 + static_cast<int>(a);
  t.i = t.j + 1 + static_cast<int>(off - (a * m - a * (a + 1) / 2));
  return t;
}

DagSpec build_dag_spec(int n, int nb, int lookahead) {
  DagSpec s;
  const TileLayout tl(n, nb);
  s.n = n;
  s.nb = tl.nb();
  s.nt = tl.nt();
  IBCHOL_CHECK(s.nt <= kMaxNt,
               "tiled: tile grid too fine (raise nb or shrink n)");
  s.lookahead = std::clamp(lookahead, 1, s.nt);

  s.step_base.resize(s.nt + 1);
  std::int64_t base = s.nt;  // PACK tasks occupy [0, nt)
  for (int k = 0; k < s.nt; ++k) {
    s.step_base[k] = base;
    const std::int64_t m = s.nt - k - 1;
    base += 1 + 2 * m + m * (m - 1) / 2;
  }
  s.step_base[s.nt] = base;
  s.unpack_base = base;
  s.tasks_per_matrix = base + s.nt;
  s.rest_per_matrix = s.tasks_per_matrix - s.nt;

  // In-degrees by edge accumulation: the executor decrements exactly what
  // for_each_successor enumerates, so building the counts from the same
  // enumeration keeps the two consistent by construction. PACK tasks have
  // no incoming edges (they are the seeds) and carry no counter.
  s.init_indegree.assign(s.rest_per_matrix, 0);
  for (std::int64_t id = 0; id < s.tasks_per_matrix; ++id) {
    s.for_each_successor(id, /*include_throttle=*/true,
                         [&](std::int64_t succ) {
                           s.init_indegree[succ - s.nt] += 1;
                         });
  }

  // ALAP heights over the un-throttled DAG: visit in reverse topological
  // order (UNPACKs, then steps nt-1…0 — within a step GEMM/SYRK successors
  // live in later steps and TRSM/POTRF successors in the already-visited
  // remainder of the same step — then PACKs) so every successor's height is
  // final when read.
  s.priority.assign(s.tasks_per_matrix, 0);
  auto visit = [&](std::int64_t id) {
    std::int32_t best = 0;
    s.for_each_successor(id, /*include_throttle=*/false,
                         [&](std::int64_t succ) {
                           best = std::max(best, s.priority[succ]);
                         });
    s.priority[id] = best + 1;
  };
  for (int j = 0; j < s.nt; ++j) visit(s.unpack_id(j));
  for (int k = s.nt - 1; k >= 0; --k) {
    for (int j = k + 1; j < s.nt; ++j) {
      for (int i = j + 1; i < s.nt; ++i) visit(s.gemm_id(k, i, j));
    }
    for (int i = k + 1; i < s.nt; ++i) visit(s.syrk_id(k, i));
    for (int i = k + 1; i < s.nt; ++i) visit(s.trsm_id(k, i));
    visit(s.potrf_id(k));
  }
  for (int j = 0; j < s.nt; ++j) visit(s.pack_id(j));
  return s;
}

int recommended_nb(int n, int elem_size) {
  // pack_threshold_bytes() is 4× the detected LLC (with a floor); recover
  // the LLC estimate and give the three live tiles of a GEMM task half of
  // it, leaving room for concurrent workers and the pack scratch.
  const auto llc = static_cast<std::int64_t>(pack_threshold_bytes() / 4);
  int nb = 32;
  while (nb < 256 &&
         3 * static_cast<std::int64_t>(2 * nb) * (2 * nb) * elem_size <=
             llc / 2) {
    nb *= 2;
  }
  while ((n + nb - 1) / nb > kMaxNt) nb *= 2;
  return nb;
}

std::vector<int> tiled_nb_candidates(int n, int elem_size) {
  const int pivot = recommended_nb(n, elem_size);
  std::vector<int> out;
  for (int nb = pivot / 2; nb <= pivot * 2; nb *= 2) {
    if (nb < 16 || nb >= 2 * n) continue;
    if ((n + nb - 1) / nb > kMaxNt) continue;
    out.push_back(nb);
  }
  if (out.empty()) out.push_back(pivot);
  return out;
}

}  // namespace ibchol::tiled
