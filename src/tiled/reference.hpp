// Single-threaded blocked reference for the tiled path: executes the same
// tile task bodies (tile_kernels.hpp) in canonical order (steps ascending;
// POTRF, then TRSMs, SYRKs, GEMMs by ascending tile index). This is one
// particular topological order of the task DAG, so the parallel executor is
// bit-identical to it under any stealing schedule — the determinism oracle
// the tiled tests pin against.
#pragma once

#include <cstdint>

namespace ibchol::tiled {

/// Factors the column-major n×n matrix `a` (leading dimension lda, lower
/// triangle) in place through the tile-major path: pack → tiled right-
/// looking Cholesky with tile size nb → unpack. Returns 0 on success or
/// the 1-based global index of the first non-positive pivot column. After
/// a failed diagonal-tile factorization the remaining task bodies still
/// run (on whatever the failed tile holds), mirroring the parallel
/// executor's run-everything semantics, so failed outputs match bitwise
/// too.
template <typename T>
int potrf_tiled_reference(int n, int nb, T* a, int lda);

}  // namespace ibchol::tiled
