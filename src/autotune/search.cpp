#include "autotune/search.hpp"

#include <map>
#include <string>

#include "util/rng.hpp"

namespace ibchol {

namespace {

/// One mutable axis of the search space.
enum class Axis { kNb, kLooking, kChunked, kChunkSize, kUnroll, kCount };

/// All values of one axis, given the space options and the matrix size.
std::vector<TuningParams> axis_neighbors(const TuningParams& p, Axis axis,
                                         int n, const SpaceOptions& space) {
  std::vector<TuningParams> out;
  auto push = [&](TuningParams q) { out.push_back(q); };
  switch (axis) {
    case Axis::kNb:
      for (const int nb : space.tile_sizes) {
        if (nb > n) continue;
        TuningParams q = p;
        q.nb = nb;
        push(q);
      }
      break;
    case Axis::kLooking:
      for (const Looking l :
           {Looking::kRight, Looking::kLeft, Looking::kTop}) {
        TuningParams q = p;
        q.looking = l;
        push(q);
      }
      break;
    case Axis::kChunked: {
      if (space.include_non_chunked) {
        TuningParams q = p;
        q.chunked = false;
        q.chunk_size = 0;
        push(q);
      }
      TuningParams q = p;
      q.chunked = true;
      q.chunk_size = p.chunked && p.chunk_size > 0 ? p.chunk_size
                                                   : space.chunk_sizes.front();
      push(q);
      break;
    }
    case Axis::kChunkSize:
      if (!p.chunked) {
        push(p);
        break;
      }
      for (const int c : space.chunk_sizes) {
        TuningParams q = p;
        q.chunk_size = c;
        push(q);
      }
      break;
    case Axis::kUnroll:
      for (const Unroll u : {Unroll::kPartial, Unroll::kFull}) {
        TuningParams q = p;
        q.unroll = u;
        push(q);
      }
      break;
    case Axis::kCount:
      break;
  }
  return out;
}

TuningParams random_start(int n, const SpaceOptions& space, Xoshiro256& rng) {
  TuningParams p;
  std::vector<int> nbs;
  for (const int nb : space.tile_sizes) {
    if (nb <= n) nbs.push_back(nb);
  }
  p.nb = nbs[rng.uniform_index(nbs.size())];
  p.looking = static_cast<Looking>(rng.uniform_index(3));
  p.unroll = rng.uniform() < 0.5 ? Unroll::kPartial : Unroll::kFull;
  p.chunked = !space.include_non_chunked || rng.uniform() < 0.8;
  p.chunk_size =
      p.chunked
          ? space.chunk_sizes[rng.uniform_index(space.chunk_sizes.size())]
          : 0;
  return p;
}

}  // namespace

SearchResult guided_search(Evaluator& evaluator, int n, std::int64_t batch,
                           const SearchOptions& options) {
  IBCHOL_CHECK(n >= 1 && batch > 0, "invalid problem shape");
  Xoshiro256 rng(options.seed ^ (0x9e3779b97f4a7c15ULL * n));

  std::map<std::string, double> cache;
  SearchResult result;
  auto measure = [&](const TuningParams& p) {
    const std::string key = p.key();
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const double g = evaluator.gflops(n, batch, p);
    cache.emplace(key, g);
    ++result.evaluations;
    return g;
  };

  for (int restart = 0; restart < options.restarts; ++restart) {
    TuningParams current = random_start(n, options.space, rng);
    double current_g = measure(current);
    for (int round = 0; round < options.max_rounds; ++round) {
      bool improved = false;
      for (int a = 0; a < static_cast<int>(Axis::kCount); ++a) {
        for (const TuningParams& q :
             axis_neighbors(current, static_cast<Axis>(a), n,
                            options.space)) {
          if (q == current) continue;
          const double g = measure(q);
          if (g > current_g) {
            current = q;
            current_g = g;
            improved = true;
          }
        }
      }
      if (!improved) break;  // local optimum of the coordinate moves
    }
    if (current_g > result.best_gflops) {
      result.best_gflops = current_g;
      result.best = current;
    }
  }
  return result;
}

}  // namespace ibchol
