#include "autotune/dispatch.hpp"

#include <cstdlib>

#include "core/batch_cholesky.hpp"
#include "kernels/tile_program.hpp"

namespace ibchol {

TunedDispatch TunedDispatch::from_dataset(const SweepDataset& dataset) {
  TunedDispatch dispatch;
  for (const auto& [n, record] : dataset.best_by_n()) {
    dispatch.table_[n] = record.params;
  }
  return dispatch;
}

void TunedDispatch::set(int n, const TuningParams& params) {
  params.validate(n);
  table_[n] = params;
}

std::optional<TuningParams> TunedDispatch::exact(int n) const {
  const auto it = table_.find(n);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

TuningParams TunedDispatch::lookup(int n) const {
  IBCHOL_CHECK(n >= 1, "matrix dimension must be positive");
  if (table_.empty()) return recommended_params(n);
  // lower_bound gives the first entry >= n; compare with its predecessor.
  auto hi = table_.lower_bound(n);
  if (hi != table_.end() && hi->first == n) return hi->second;
  if (hi == table_.end()) {
    TuningParams p = std::prev(hi)->second;
    p.nb = p.effective_nb(n);
    return p;
  }
  if (hi == table_.begin()) {
    TuningParams p = hi->second;
    p.nb = p.effective_nb(n);
    return p;
  }
  const auto lo = std::prev(hi);
  // Prefer the nearer size; ties go to the larger one.
  const int dlo = n - lo->first;
  const int dhi = hi->first - n;
  TuningParams p = (dhi <= dlo) ? hi->second : lo->second;
  p.nb = p.effective_nb(n);
  return p;
}

CsvTable TunedDispatch::to_csv() const {
  CsvTable t;
  t.header = {"n",      "nb",     "looking", "chunked", "chunk_size",
              "unroll", "math",   "cache"};
  for (const auto& [n, p] : table_) {
    t.rows.push_back({std::to_string(n), std::to_string(p.nb),
                      to_string(p.looking), p.chunked ? "1" : "0",
                      std::to_string(p.chunk_size), to_string(p.unroll),
                      to_string(p.math), p.prefer_shared ? "shared" : "l1"});
  }
  return t;
}

TunedDispatch TunedDispatch::from_csv(const CsvTable& table) {
  TunedDispatch dispatch;
  const std::size_t cn = table.column("n");
  const std::size_t cnb = table.column("nb");
  const std::size_t clook = table.column("looking");
  const std::size_t cch = table.column("chunked");
  const std::size_t ccs = table.column("chunk_size");
  const std::size_t cun = table.column("unroll");
  const std::size_t cma = table.column("math");
  const std::size_t cca = table.column("cache");
  for (const auto& row : table.rows) {
    TuningParams p;
    const int n = std::stoi(row[cn]);
    p.nb = std::stoi(row[cnb]);
    p.looking = looking_from_string(row[clook]);
    p.chunked = row[cch] == "1";
    p.chunk_size = std::stoi(row[ccs]);
    p.unroll = unroll_from_string(row[cun]);
    p.math = math_from_string(row[cma]);
    p.prefer_shared = row[cca] == "shared";
    dispatch.set(n, p);
  }
  return dispatch;
}

}  // namespace ibchol
