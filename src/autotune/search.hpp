// Guided (heuristic) autotuning search.
//
// The paper deliberately runs an *exhaustive* sweep to enable the §IV
// analysis, noting that "workable heuristics [exist] to guide the search
// more efficiently towards a nearly-optimal solution while skipping large
// portions of suboptimal combinations" — at the price of selection bias.
// This module implements that alternative: coordinate descent over the
// five parameter axes with random restarts. The ablation bench
// (bench/ablation_guided_search) quantifies the trade: evaluations saved
// vs distance from the exhaustive optimum.
#pragma once

#include <cstdint>

#include "autotune/evaluator.hpp"
#include "autotune/space.hpp"

namespace ibchol {

/// Search configuration.
struct SearchOptions {
  int restarts = 3;          ///< random starting points
  int max_rounds = 8;        ///< coordinate-descent sweeps per restart
  std::uint64_t seed = 7;
  SpaceOptions space;        ///< axis domains (same as the exhaustive sweep)
};

/// Search outcome.
struct SearchResult {
  TuningParams best;
  double best_gflops = 0.0;
  int evaluations = 0;       ///< kernel evaluations spent (cache misses only)
};

/// Coordinate-descent search for the best tuning point at one matrix size.
/// Evaluations are memoized, so `evaluations` counts distinct kernels
/// actually run — the number an on-line autotuner would have to measure.
[[nodiscard]] SearchResult guided_search(Evaluator& evaluator, int n,
                                         std::int64_t batch,
                                         const SearchOptions& options = {});

}  // namespace ibchol
