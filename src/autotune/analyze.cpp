#include "autotune/analyze.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace ibchol {

const std::vector<std::string>& analysis_feature_names() {
  static const std::vector<std::string> names{
      "n",         "nb",        "looking", "chunking",
      "chunk_size", "unrolling", "cache",   "isa",
      "storage",    "lookahead"};
  return names;
}

AnalysisData build_analysis_data(const SweepDataset& dataset) {
  AnalysisData data;
  data.features = FeatureMatrix(analysis_feature_names(), 0);
  data.target.reserve(dataset.size());
  for (const auto& r : dataset.records()) {
    // Failed points carry NaN targets; one NaN would poison every split's
    // variance, so the forest trains on successful measurements only.
    if (r.failed || !std::isfinite(r.gflops)) continue;
    const double row[] = {
        static_cast<double>(r.n),
        static_cast<double>(r.params.nb),
        static_cast<double>(static_cast<int>(r.params.looking)),
        r.params.chunked ? 1.0 : 0.0,
        static_cast<double>(r.params.chunk_size),
        r.params.unroll == Unroll::kFull ? 1.0 : 0.0,
        r.params.prefer_shared ? 1.0 : 0.0,
        // SIMD tier of the vectorized executor, ordinal in vector width
        // (auto/scalar/avx2/avx512); non-vectorized records sit at 0.
        r.params.exec == CpuExec::kVectorized
            ? static_cast<double>(static_cast<int>(r.params.isa))
            : 0.0,
        // Storage precision, ordinal in word width: fp32 (0) is the
        // classic lane, bf16 (1) and fp16 (2) the 16-bit ones.
        static_cast<double>(static_cast<int>(r.params.storage)),
        // Tiled-path panel lookahead; small-n records all sit at the
        // default so the feature carries signal only for tiled sweeps.
        static_cast<double>(r.params.lookahead),
    };
    data.features.add_row(row);
    data.target.push_back(r.gflops);
  }
  return data;
}

AnalysisResult analyze_dataset(const SweepDataset& dataset,
                               const ForestOptions& options) {
  IBCHOL_CHECK(dataset.size() > 0, "cannot analyze an empty dataset");
  const AnalysisData data = build_analysis_data(dataset);

  RandomForest forest;
  forest.fit(data.features, data.target, options);

  AnalysisResult result;
  result.num_trees = forest.num_trees();
  result.average_depth = forest.average_depth();
  result.oob_mse = forest.oob_mse();

  static const char* kTypes[] = {"integer", "integer", "ternary", "binary",
                                 "integer", "binary",  "binary",  "ordinal",
                                 "ternary", "integer"};
  static const char* kExplanations[] = {
      "size of single matrix", "internal blocking",    "Left, Right, or Top",
      "yes or no",             "matrix count in chunk", "use unrolling?",
      "more L1 or shared mem.", "SIMD tier (vectorized)",
      "fp32, bf16, or fp16 storage", "tiled panel lookahead"};
  const std::vector<double> importance = forest.permutation_importance();
  for (std::size_t f = 0; f < analysis_feature_names().size(); ++f) {
    PredictivePower p;
    p.parameter = analysis_feature_names()[f];
    p.inc_mse = importance[f];
    p.type = kTypes[f];
    p.explanation = kExplanations[f];
    result.table.push_back(std::move(p));
  }

  // Fig 21: predicted-vs-observed cloud from the out-of-bag predictions
  // (rows never out of bag are skipped).
  const auto& oob = forest.oob_predictions();
  for (std::size_t i = 0; i < oob.size(); ++i) {
    if (std::isnan(oob[i])) continue;
    result.observed.push_back(data.target[i]);
    result.predicted.push_back(oob[i]);
  }
  result.correlation = pearson(result.observed, result.predicted);
  result.r_squared = r_squared(result.observed, result.predicted);
  return result;
}

}  // namespace ibchol
