#include "autotune/analyze.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace ibchol {

const std::vector<FeatureSpec>& analysis_feature_schema() {
  // THE feature table (see analyze.hpp): column order here is the encoding
  // order of analysis_features_for, and Table I's type/explanation columns
  // ride along so no second array can fall out of sync with the count.
  static const std::vector<FeatureSpec> schema{
      {"n", "integer", "size of single matrix"},
      {"nb", "integer", "internal blocking"},
      {"looking", "ternary", "Left, Right, or Top"},
      {"chunking", "binary", "yes or no"},
      {"chunk_size", "integer", "matrix count in chunk"},
      {"unrolling", "binary", "use unrolling?"},
      {"cache", "binary", "more L1 or shared mem."},
      {"isa", "ordinal", "SIMD tier (vectorized)"},
      {"storage", "ternary", "fp32, bf16, or fp16 storage"},
      {"lookahead", "integer", "tiled panel lookahead"},
  };
  return schema;
}

const std::vector<std::string>& analysis_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const FeatureSpec& f : analysis_feature_schema()) {
      out.emplace_back(f.name);
    }
    return out;
  }();
  return names;
}

std::vector<double> analysis_features_for(int n, const TuningParams& p) {
  return {
      static_cast<double>(n),
      static_cast<double>(p.nb),
      static_cast<double>(static_cast<int>(p.looking)),
      p.chunked ? 1.0 : 0.0,
      static_cast<double>(p.chunk_size),
      p.unroll == Unroll::kFull ? 1.0 : 0.0,
      p.prefer_shared ? 1.0 : 0.0,
      // SIMD tier of the vectorized executor, ordinal in vector width
      // (auto/scalar/avx2/avx512); non-vectorized records sit at 0.
      p.exec == CpuExec::kVectorized
          ? static_cast<double>(static_cast<int>(p.isa))
          : 0.0,
      // Storage precision, ordinal in word width: fp32 (0) is the
      // classic lane, bf16 (1) and fp16 (2) the 16-bit ones.
      static_cast<double>(static_cast<int>(p.storage)),
      // Tiled-path panel lookahead; small-n records all sit at the
      // default so the feature carries signal only for tiled sweeps.
      static_cast<double>(p.lookahead),
  };
}

AnalysisData build_analysis_data(const SweepDataset& dataset) {
  AnalysisData data;
  data.features = FeatureMatrix(analysis_feature_names(), 0);
  data.target.reserve(dataset.size());
  for (const auto& r : dataset.records()) {
    // Failed points carry NaN targets; one NaN would poison every split's
    // variance, so the forest trains on successful measurements only.
    if (r.failed || !std::isfinite(r.gflops)) continue;
    data.features.add_row(analysis_features_for(r.n, r.params));
    data.target.push_back(r.gflops);
  }
  return data;
}

AnalysisResult analyze_dataset(const SweepDataset& dataset,
                               const ForestOptions& options) {
  IBCHOL_CHECK(dataset.size() > 0, "cannot analyze an empty dataset");
  const AnalysisData data = build_analysis_data(dataset);

  RandomForest forest;
  forest.fit(data.features, data.target, options);

  AnalysisResult result;
  result.num_trees = forest.num_trees();
  result.average_depth = forest.average_depth();
  result.oob_mse = forest.oob_mse();

  const std::vector<double> importance = forest.permutation_importance();
  const std::vector<FeatureSpec>& schema = analysis_feature_schema();
  for (std::size_t f = 0; f < schema.size(); ++f) {
    PredictivePower p;
    p.parameter = schema[f].name;
    p.inc_mse = importance[f];
    p.type = schema[f].type;
    p.explanation = schema[f].explanation;
    result.table.push_back(std::move(p));
  }

  // Fig 21: predicted-vs-observed cloud from the out-of-bag predictions
  // (rows never out of bag are skipped).
  const auto& oob = forest.oob_predictions();
  for (std::size_t i = 0; i < oob.size(); ++i) {
    if (std::isnan(oob[i])) continue;
    result.observed.push_back(data.target[i]);
    result.predicted.push_back(oob[i]);
  }
  result.correlation = pearson(result.observed, result.predicted);
  result.r_squared = r_squared(result.observed, result.predicted);
  return result;
}

}  // namespace ibchol
