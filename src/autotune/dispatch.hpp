// Tuned dispatch tables — the autotuner's production output.
//
// An exhaustive sweep (or guided search) distills into a small table:
// matrix size -> winning tuning point. TunedDispatch persists that table
// as CSV, loads it at run time, and answers "which kernel should size n
// use?" — with nearest-size fallback for dimensions that were not swept
// and the paper-derived recommended_params as the last resort. This is the
// artifact a deployment actually ships (cf. bench/ablation_gpu_arch: the
// table is per-machine, so it is data, not code).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "autotune/records.hpp"
#include "kernels/variant.hpp"

namespace ibchol {

/// A size -> tuning-point table with CSV persistence.
class TunedDispatch {
 public:
  TunedDispatch() = default;

  /// Builds a table from a sweep dataset (best GFLOP/s per size).
  [[nodiscard]] static TunedDispatch from_dataset(const SweepDataset& dataset);

  /// Parses a table previously produced by to_csv().
  [[nodiscard]] static TunedDispatch from_csv(const CsvTable& table);

  [[nodiscard]] CsvTable to_csv() const;

  /// Inserts/overwrites one entry.
  void set(int n, const TuningParams& params);

  /// Number of entries.
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// The exact entry for n, if the table has one.
  [[nodiscard]] std::optional<TuningParams> exact(int n) const;

  /// Tuning point for an n×n batch: the exact entry if present, otherwise
  /// the entry of the nearest swept size (ties prefer the larger size,
  /// whose kernel is always valid for smaller n after nb clamping),
  /// otherwise recommended_params(n). Always valid for n.
  [[nodiscard]] TuningParams lookup(int n) const;

 private:
  std::map<int, TuningParams> table_;
};

}  // namespace ibchol
