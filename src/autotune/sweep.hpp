// Exhaustive autotuning sweep driver.
#pragma once

#include <functional>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/records.hpp"
#include "autotune/space.hpp"

namespace ibchol {

/// Sweep configuration.
struct SweepOptions {
  std::vector<int> sizes;          ///< matrix dimensions to sweep
  std::int64_t batch = 16384;      ///< the paper's batch size
  SpaceOptions space;              ///< which parameter axes to enumerate
  /// Sweep-point parallelism: 0 = OpenMP default, 1 = serial. Only applies
  /// when the evaluator reports parallel_safe(); measured evaluators always
  /// run serially so timings own the machine.
  int num_threads = 0;
  /// Progress callback: (completed points, total points); may be null.
  ///
  /// Thread-safety contract (enforced by the driver): invocations are
  /// serialized under a mutex — the callback never runs concurrently with
  /// itself — and `done` counts are strictly monotone from 1 to total.
  /// Under the parallel driver the callback may fire from worker threads,
  /// and points complete in arbitrary order, so `done` tracks the count of
  /// finished points, not their dataset positions.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Runs the exhaustive sweep of `options.space` over `options.sizes`
/// through the given evaluator and returns the dataset.
///
/// The record order is deterministic — (size, enumeration index), exactly
/// as the serial driver produced it — regardless of how many threads
/// evaluate points.
[[nodiscard]] SweepDataset run_sweep(Evaluator& evaluator,
                                     const SweepOptions& options);

/// Picks the best tuning point per size from a dataset (the autotuner's
/// final output table).
[[nodiscard]] std::map<int, TuningParams> select_winners(
    const SweepDataset& dataset);

}  // namespace ibchol
