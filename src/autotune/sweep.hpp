// Exhaustive autotuning sweep driver.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/records.hpp"
#include "autotune/space.hpp"

namespace ibchol {

/// Sweep configuration.
struct SweepOptions {
  std::vector<int> sizes;          ///< matrix dimensions to sweep
  std::int64_t batch = 16384;      ///< the paper's batch size
  SpaceOptions space;              ///< which parameter axes to enumerate
  /// Sweep-point parallelism: 0 = OpenMP default, 1 = serial. Only applies
  /// when the evaluator reports parallel_safe(); measured evaluators always
  /// run serially so timings own the machine.
  int num_threads = 0;
  /// Progress callback: (completed points, total points); may be null.
  ///
  /// Thread-safety contract (enforced by the driver): invocations are
  /// serialized under a mutex — the callback never runs concurrently with
  /// itself — and `done` counts are strictly monotone up to total.
  /// Under the parallel driver the callback may fire from worker threads,
  /// and points complete in arbitrary order, so `done` tracks the count of
  /// finished points, not their dataset positions. Points satisfied from
  /// `resume_from` are pre-counted: the first invocation reports
  /// resumed + 1.
  std::function<void(std::size_t, std::size_t)> progress;

  // --- Fault tolerance (see DESIGN.md "Failure semantics & recovery") ---

  /// Extra attempts after an evaluation throws or overruns the deadline.
  /// Once every attempt (1 + max_retries) has failed, the point is recorded
  /// with failed = true and NaN time instead of aborting the sweep.
  int max_retries = 0;
  /// Sleep between a failure and the next attempt; attempt k waits
  /// k · retry_backoff_seconds (linear backoff). 0 retries immediately.
  double retry_backoff_seconds = 0.0;
  /// Wall-clock budget for one evaluation; an evaluation that returns after
  /// longer than this counts as a failure (a cooperative hang detector —
  /// the evaluation is never killed mid-flight). 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// When non-empty, every completed record is appended to this JSONL
  /// journal (flushed per line) so a crashed sweep can resume.
  std::string journal_path;
  /// When non-empty, records found in this journal are reused and their
  /// points skipped. Identity is (n, batch, tuning key); journal entries
  /// matching no enumerated point are ignored, so a stale journal from a
  /// different sweep cannot corrupt the dataset. Pointing journal_path at
  /// the same file continues the journal in place.
  std::string resume_from;
};

/// Runs the exhaustive sweep of `options.space` over `options.sizes`
/// through the given evaluator and returns the dataset.
///
/// The record order is deterministic — (size, enumeration index), exactly
/// as the serial driver produced it — regardless of how many threads
/// evaluate points.
[[nodiscard]] SweepDataset run_sweep(Evaluator& evaluator,
                                     const SweepOptions& options);

/// Picks the best tuning point per size from a dataset (the autotuner's
/// final output table).
[[nodiscard]] std::map<int, TuningParams> select_winners(
    const SweepDataset& dataset);

}  // namespace ibchol
