// Exhaustive autotuning sweep driver.
#pragma once

#include <functional>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/records.hpp"
#include "autotune/space.hpp"

namespace ibchol {

/// Sweep configuration.
struct SweepOptions {
  std::vector<int> sizes;          ///< matrix dimensions to sweep
  std::int64_t batch = 16384;      ///< the paper's batch size
  SpaceOptions space;              ///< which parameter axes to enumerate
  /// Progress callback: (completed points, total points); may be null.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Runs the exhaustive sweep of `options.space` over `options.sizes`
/// through the given evaluator and returns the dataset.
[[nodiscard]] SweepDataset run_sweep(Evaluator& evaluator,
                                     const SweepOptions& options);

/// Picks the best tuning point per size from a dataset (the autotuner's
/// final output table).
[[nodiscard]] std::map<int, TuningParams> select_winners(
    const SweepDataset& dataset);

}  // namespace ibchol
