// The autotuning results database.
//
// Mirrors the paper's measurement archive: one record per (n, tuning point)
// with the achieved time and GFLOP/s. Persisted as CSV for the §IV
// postmortem analysis; reducers compute the "best over everything else"
// series every figure plots.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "kernels/variant.hpp"
#include "util/csv.hpp"

namespace ibchol {

/// One sweep measurement.
struct SweepRecord {
  int n = 0;
  std::int64_t batch = 0;
  TuningParams params;
  double seconds = 0.0;
  double gflops = 0.0;
  /// Evaluation attempts consumed (> 1 when the sweep retried a fault).
  int attempts = 1;
  /// True when every attempt failed; seconds/gflops are then NaN and the
  /// reducers (best / best_by_n) skip the record.
  bool failed = false;
};

/// The full sweep dataset with CSV round-tripping and figure reducers.
class SweepDataset {
 public:
  void add(SweepRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] const std::vector<SweepRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// All distinct matrix sizes, ascending.
  [[nodiscard]] std::vector<int> sizes() const;

  /// Best GFLOP/s at size n over records satisfying `filter`
  /// (nullopt if none match). Failed and non-finite records are always
  /// skipped — a NaN time from one failed point must not poison the argmax.
  [[nodiscard]] std::optional<SweepRecord> best(
      int n,
      const std::function<bool(const SweepRecord&)>& filter = nullptr) const;

  /// Best GFLOP/s per size over records satisfying `filter`.
  [[nodiscard]] std::map<int, SweepRecord> best_by_n(
      const std::function<bool(const SweepRecord&)>& filter = nullptr) const;

  [[nodiscard]] CsvTable to_csv() const;
  [[nodiscard]] static SweepDataset from_csv(const CsvTable& table);

 private:
  std::vector<SweepRecord> records_;
};

}  // namespace ibchol
