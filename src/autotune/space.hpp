// Enumeration of the tuning-parameter search space (paper §II.D / §IV).
//
// The paper performs an *exhaustive* sweep — "our goal is not the minimal
// search time but rather meaningful exploration of the parameter
// configurations" — producing the 14,000-measurement dataset analyzed in
// §IV. enumerate_space generates exactly that grid for one matrix size.
#pragma once

#include <vector>

#include "kernels/variant.hpp"

namespace ibchol {

/// Controls which axes of the space are enumerated.
struct SpaceOptions {
  std::vector<int> tile_sizes = standard_tile_sizes();    ///< n_b (≤ n kept)
  std::vector<int> chunk_sizes = standard_chunk_sizes();  ///< chunked only
  bool include_non_chunked = true;
  /// Pack-scratch chunk sizes enumerated for the *non-chunked* layout (the
  /// CPU pipeline packs a simple-interleaved batch chunk-by-chunk into
  /// L2-sized scratch; chunk_size selects that scratch's lane count, so it
  /// is a live axis even without the chunked address map). Empty = the
  /// historical grid: one non-chunked point with chunk_size 0 (automatic
  /// sizing rule).
  std::vector<int> pack_chunk_sizes;
  bool include_fast_math = false;   ///< add the --use_fast_math variants
  bool include_cache_pref = false;  ///< add the L1-vs-shared carveout axis
  /// Executors to sweep. The paper's grid tunes one kernel implementation;
  /// on the CPU substrate the executor (and, for the vectorized one, the
  /// SIMD tier) is a sixth parameter of the space. Empty = specialized only
  /// (the historical grid, so existing sweep datasets stay comparable).
  std::vector<CpuExec> execs;
  /// ISA tiers enumerated for CpuExec::kVectorized entries in `execs`
  /// (ignored for the other executors). kAuto = the host's best tier.
  std::vector<SimdIsa> isas = {SimdIsa::kAuto};
  /// Storage precisions enumerated (the seventh axis). The default keeps
  /// the historical fp32-only grid; adding kBf16/kFp16 multiplies the
  /// space by the reduced-precision storage lanes.
  std::vector<StoragePrec> storage_precs = {StoragePrec::kFp32};
  /// Tiled large-N lane (the eighth axis, off by default so existing
  /// sweeps and journals stay byte-identical): at n > 64, appends
  /// exec = kAuto points whose nb comes from tiled::tiled_nb_candidates
  /// (the I/O-lower-bound cache-fit ladder) crossed with
  /// `tiled_lookaheads`. These points route through the task-parallel DAG
  /// executor; the classic small-n axes (looking/unroll/math) are pinned
  /// to their defaults since the tiled path does not read them. No effect
  /// at n ≤ 64.
  bool include_tiled = false;
  std::vector<int> tiled_lookaheads = {1, 2, 4};
};

/// All valid tuning points for an n×n batch. Tile sizes larger than n are
/// skipped (nb == n is kept as the "single tile" configuration when n ≤ 8).
[[nodiscard]] std::vector<TuningParams> enumerate_space(
    int n, const SpaceOptions& options = {});

/// The matrix sizes the paper's evaluation sweeps (2…64).
[[nodiscard]] std::vector<int> standard_sizes();

/// A reduced size list for quick runs (powers of two plus the paper's
/// featured sizes 24 and 48).
[[nodiscard]] std::vector<int> quick_sizes();

/// The matrix sizes of the tiled large-N lane (past the small-n
/// executors' n = 64 ceiling). Sweeps that set SpaceOptions::include_tiled
/// append these to their size list.
[[nodiscard]] std::vector<int> tiled_sizes();

}  // namespace ibchol
