#include "autotune/space.hpp"

#include "tiled/dag.hpp"

namespace ibchol {

std::vector<TuningParams> enumerate_space(int n, const SpaceOptions& options) {
  std::vector<TuningParams> space;
  std::vector<MathMode> maths{MathMode::kIeee};
  if (options.include_fast_math) maths.push_back(MathMode::kFastMath);
  std::vector<bool> caches{false};
  if (options.include_cache_pref) caches.push_back(true);
  // Executor axis: expand kVectorized into one point per requested ISA
  // tier; the other executors ignore the tier and get exactly one point.
  std::vector<std::pair<CpuExec, SimdIsa>> execs;
  if (options.execs.empty()) {
    execs.emplace_back(CpuExec::kSpecialized, SimdIsa::kAuto);
  } else {
    for (const CpuExec e : options.execs) {
      if (e == CpuExec::kVectorized) {
        for (const SimdIsa isa : options.isas) execs.emplace_back(e, isa);
        if (options.isas.empty()) execs.emplace_back(e, SimdIsa::kAuto);
      } else {
        execs.emplace_back(e, SimdIsa::kAuto);
      }
    }
  }
  const std::vector<StoragePrec> storages =
      options.storage_precs.empty()
          ? std::vector<StoragePrec>{StoragePrec::kFp32}
          : options.storage_precs;

  for (const int nb : options.tile_sizes) {
    if (nb > n) continue;
    for (const Looking looking :
         {Looking::kRight, Looking::kLeft, Looking::kTop}) {
      for (const Unroll unroll : {Unroll::kPartial, Unroll::kFull}) {
        for (const MathMode math : maths) {
          for (const bool prefer_shared : caches) {
            for (const auto& [exec, isa] : execs) {
              for (const StoragePrec storage : storages) {
                auto add = [&](bool chunked, int chunk_size) {
                  TuningParams p;
                  p.nb = nb;
                  p.looking = looking;
                  p.unroll = unroll;
                  p.math = math;
                  p.prefer_shared = prefer_shared;
                  p.chunked = chunked;
                  p.chunk_size = chunk_size;
                  p.exec = exec;
                  p.isa = isa;
                  p.storage = storage;
                  space.push_back(p);
                };
                if (options.include_non_chunked) {
                  if (options.pack_chunk_sizes.empty()) {
                    add(false, 0);
                  } else {
                    // chunk_size stays live for the non-chunked layout as
                    // the pipeline's pack-scratch lane count.
                    for (const int c : options.pack_chunk_sizes) add(false, c);
                  }
                }
                for (const int c : options.chunk_sizes) add(true, c);
              }
            }
          }
        }
      }
    }
  }
  // Tiled large-N lane: appended after the classic grid so that, with the
  // lane off (the default), the enumeration is byte-identical to the
  // historical one. Each point pins the small-n axes at their defaults
  // (the tiled executor does not read them) and varies only the DAG axes:
  // tile size (cache-fit ladder) × lookahead.
  if (options.include_tiled && n > 64) {
    const std::vector<int> lookaheads = options.tiled_lookaheads.empty()
                                            ? std::vector<int>{2}
                                            : options.tiled_lookaheads;
    for (const int nb : tiled::tiled_nb_candidates(n, sizeof(float))) {
      for (const int la : lookaheads) {
        TuningParams p;
        p.exec = CpuExec::kAuto;  // routes to tiled past n = 64
        p.chunked = false;
        p.chunk_size = 0;
        p.nb = nb;
        p.lookahead = la;
        space.push_back(p);
      }
    }
  }
  return space;
}

std::vector<int> standard_sizes() {
  std::vector<int> sizes;
  for (int n = 2; n <= 64; n += 2) sizes.push_back(n);
  return sizes;
}

std::vector<int> quick_sizes() { return {4, 8, 16, 24, 32, 48, 64}; }

std::vector<int> tiled_sizes() { return {96, 128, 256, 512, 1024}; }

}  // namespace ibchol
