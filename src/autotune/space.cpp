#include "autotune/space.hpp"

namespace ibchol {

std::vector<TuningParams> enumerate_space(int n, const SpaceOptions& options) {
  std::vector<TuningParams> space;
  std::vector<MathMode> maths{MathMode::kIeee};
  if (options.include_fast_math) maths.push_back(MathMode::kFastMath);
  std::vector<bool> caches{false};
  if (options.include_cache_pref) caches.push_back(true);

  for (const int nb : options.tile_sizes) {
    if (nb > n) continue;
    for (const Looking looking :
         {Looking::kRight, Looking::kLeft, Looking::kTop}) {
      for (const Unroll unroll : {Unroll::kPartial, Unroll::kFull}) {
        for (const MathMode math : maths) {
          for (const bool prefer_shared : caches) {
            auto add = [&](bool chunked, int chunk_size) {
              TuningParams p;
              p.nb = nb;
              p.looking = looking;
              p.unroll = unroll;
              p.math = math;
              p.prefer_shared = prefer_shared;
              p.chunked = chunked;
              p.chunk_size = chunk_size;
              space.push_back(p);
            };
            if (options.include_non_chunked) add(false, 0);
            for (const int c : options.chunk_sizes) add(true, c);
          }
        }
      }
    }
  }
  return space;
}

std::vector<int> standard_sizes() {
  std::vector<int> sizes;
  for (int n = 2; n <= 64; n += 2) sizes.push_back(n);
  return sizes;
}

std::vector<int> quick_sizes() { return {4, 8, 16, 24, 32, 48, 64}; }

}  // namespace ibchol
