#include "autotune/records.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"

namespace ibchol {

namespace {

// Records a reducer must never consider: failed points carry NaN times, and
// `r.gflops > best` is false for every comparison against NaN, so a single
// failed record seen first would win the argmax forever.
bool unusable(const SweepRecord& r) {
  return r.failed || !std::isfinite(r.seconds) || !std::isfinite(r.gflops);
}

}  // namespace

std::vector<int> SweepDataset::sizes() const {
  std::set<int> s;
  for (const auto& r : records_) s.insert(r.n);
  return {s.begin(), s.end()};
}

std::optional<SweepRecord> SweepDataset::best(
    int n, const std::function<bool(const SweepRecord&)>& filter) const {
  std::optional<SweepRecord> out;
  for (const auto& r : records_) {
    if (r.n != n) continue;
    if (unusable(r)) continue;
    if (filter && !filter(r)) continue;
    if (!out || r.gflops > out->gflops) out = r;
  }
  return out;
}

std::map<int, SweepRecord> SweepDataset::best_by_n(
    const std::function<bool(const SweepRecord&)>& filter) const {
  std::map<int, SweepRecord> out;
  for (const auto& r : records_) {
    if (unusable(r)) continue;
    if (filter && !filter(r)) continue;
    auto it = out.find(r.n);
    if (it == out.end() || r.gflops > it->second.gflops) out[r.n] = r;
  }
  return out;
}

CsvTable SweepDataset::to_csv() const {
  CsvTable t;
  t.header = {"n",          "batch",   "nb",        "looking", "chunked",
              "chunk_size", "unroll",  "math",      "cache",   "exec",
              "isa",        "storage", "lookahead", "seconds", "gflops",
              "attempts",   "failed"};
  for (const auto& r : records_) {
    t.rows.push_back({std::to_string(r.n), std::to_string(r.batch),
                      std::to_string(r.params.nb),
                      to_string(r.params.looking),
                      r.params.chunked ? "1" : "0",
                      std::to_string(r.params.chunk_size),
                      to_string(r.params.unroll), to_string(r.params.math),
                      r.params.prefer_shared ? "shared" : "l1",
                      to_string(r.params.exec), to_string(r.params.isa),
                      to_string(r.params.storage),
                      std::to_string(r.params.lookahead),
                      std::to_string(r.seconds), std::to_string(r.gflops),
                      std::to_string(r.attempts), r.failed ? "1" : "0"});
  }
  return t;
}

SweepDataset SweepDataset::from_csv(const CsvTable& table) {
  SweepDataset ds;
  const std::size_t cn = table.column("n");
  const std::size_t cb = table.column("batch");
  const std::size_t cnb = table.column("nb");
  const std::size_t clook = table.column("looking");
  const std::size_t cch = table.column("chunked");
  const std::size_t ccs = table.column("chunk_size");
  const std::size_t cun = table.column("unroll");
  const std::size_t cma = table.column("math");
  const std::size_t cca = table.column("cache");
  const std::size_t cs = table.column("seconds");
  const std::size_t cg = table.column("gflops");
  // Datasets persisted before the specialized executor existed have no
  // "exec" column; default those records to the specialized mode.
  const auto cex_it = std::find(table.header.begin(), table.header.end(),
                                std::string("exec"));
  const bool has_exec = cex_it != table.header.end();
  const std::size_t cex =
      static_cast<std::size_t>(cex_it - table.header.begin());
  // And datasets persisted before the vectorized executor have no "isa"
  // column; ISA selection only matters to kVectorized, so kAuto is a
  // faithful default for those records.
  const auto cisa_it = std::find(table.header.begin(), table.header.end(),
                                 std::string("isa"));
  const bool has_isa = cisa_it != table.header.end();
  const std::size_t cisa =
      static_cast<std::size_t>(cisa_it - table.header.begin());
  // Datasets persisted before the reduced-precision storage lanes have no
  // "storage" column; every such record measured the fp32 path.
  const auto cst_it = std::find(table.header.begin(), table.header.end(),
                                std::string("storage"));
  const bool has_storage = cst_it != table.header.end();
  const std::size_t cst =
      static_cast<std::size_t>(cst_it - table.header.begin());
  // Datasets persisted before the tiled large-N lane have no "lookahead"
  // column; only the tiled executor reads it, so the default is faithful.
  const auto cla_it = std::find(table.header.begin(), table.header.end(),
                                std::string("lookahead"));
  const bool has_lookahead = cla_it != table.header.end();
  const std::size_t cla =
      static_cast<std::size_t>(cla_it - table.header.begin());
  // Likewise, datasets persisted before the resilient sweep existed have no
  // attempts/failed columns; those records were single-attempt successes.
  const auto cat_it = std::find(table.header.begin(), table.header.end(),
                                std::string("attempts"));
  const bool has_attempts = cat_it != table.header.end();
  const std::size_t cat =
      static_cast<std::size_t>(cat_it - table.header.begin());
  const auto cfl_it = std::find(table.header.begin(), table.header.end(),
                                std::string("failed"));
  const bool has_failed = cfl_it != table.header.end();
  const std::size_t cfl =
      static_cast<std::size_t>(cfl_it - table.header.begin());
  for (const auto& row : table.rows) {
    SweepRecord r;
    r.n = std::stoi(row[cn]);
    r.batch = std::stoll(row[cb]);
    r.params.nb = std::stoi(row[cnb]);
    r.params.looking = looking_from_string(row[clook]);
    r.params.chunked = row[cch] == "1";
    r.params.chunk_size = std::stoi(row[ccs]);
    r.params.unroll = unroll_from_string(row[cun]);
    r.params.math = math_from_string(row[cma]);
    r.params.prefer_shared = row[cca] == "shared";
    r.params.exec =
        has_exec ? cpu_exec_from_string(row[cex]) : CpuExec::kSpecialized;
    r.params.isa = has_isa ? simd_isa_from_string(row[cisa]) : SimdIsa::kAuto;
    r.params.storage = has_storage ? storage_prec_from_string(row[cst])
                                   : StoragePrec::kFp32;
    if (has_lookahead) r.params.lookahead = std::stoi(row[cla]);
    r.seconds = std::stod(row[cs]);
    r.gflops = std::stod(row[cg]);
    r.attempts = has_attempts ? std::stoi(row[cat]) : 1;
    r.failed = has_failed && row[cfl] == "1";
    ds.add(std::move(r));
  }
  return ds;
}

}  // namespace ibchol
