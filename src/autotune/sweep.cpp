#include "autotune/sweep.hpp"

#include <omp.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "autotune/journal.hpp"
#include "kernels/counts.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace ibchol {

namespace {

// Journal-matching identity of a sweep point. Params are compared through
// their tuning key, which round-trips the journal exactly.
std::string point_identity(int n, std::int64_t batch,
                           const TuningParams& params) {
  return std::to_string(n) + "|" + std::to_string(batch) + "|" + params.key();
}

}  // namespace

SweepDataset run_sweep(Evaluator& evaluator, const SweepOptions& options) {
  IBCHOL_CHECK(!options.sizes.empty(), "sweep needs at least one size");
  IBCHOL_CHECK(options.batch > 0, "batch must be positive");
  IBCHOL_CHECK(options.max_retries >= 0, "max_retries must be >= 0");

  // Materialize the full point list first: the parallel driver needs an
  // index space, and the dataset must come out in enumeration order no
  // matter which thread finishes which point.
  struct Point {
    int n;
    TuningParams params;
  };
  std::vector<Point> points;
  for (const int n : options.sizes) {
    for (const TuningParams& params : enumerate_space(n, options.space)) {
      points.push_back({n, params});
    }
  }
  const std::size_t total = points.size();
  std::vector<SweepRecord> records(total);

  // Resume: satisfy points from the journal of the interrupted run. Each
  // journal entry is consumed at most once; entries matching no enumerated
  // point (a stale or foreign journal) are ignored.
  std::vector<char> have(total, 0);
  std::size_t resumed = 0;
  if (!options.resume_from.empty()) {
    std::unordered_multimap<std::string, SweepRecord> journal;
    for (SweepRecord& r : read_journal(options.resume_from)) {
      journal.emplace(point_identity(r.n, r.batch, r.params), std::move(r));
    }
    for (std::size_t i = 0; i < total; ++i) {
      const auto it = journal.find(
          point_identity(points[i].n, options.batch, points[i].params));
      if (it == journal.end()) continue;
      records[i] = std::move(it->second);
      journal.erase(it);
      have[i] = 1;
      ++resumed;
    }
  }

  std::unique_ptr<JournalWriter> journal_out;
  if (!options.journal_path.empty()) {
    journal_out = std::make_unique<JournalWriter>(options.journal_path);
  }

  const int threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();
  const bool parallel = evaluator.parallel_safe() && threads > 1 && total > 1;

  std::size_t done = resumed;
  std::mutex progress_mu;

#pragma omp parallel for schedule(dynamic) num_threads(threads) \
    if (parallel)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(total); ++i) {
    if (have[static_cast<std::size_t>(i)]) continue;
    const Point& pt = points[static_cast<std::size_t>(i)];
    SweepRecord r;
    r.n = pt.n;
    r.batch = options.batch;
    r.params = pt.params;

    // A throwing or over-deadline evaluation is a failed attempt; after
    // max_retries further attempts the point is recorded as failed rather
    // than aborting the sweep (no exception may cross the omp region).
    // The span covers every attempt of the point — the same wall time the
    // journal's record describes — so an exported trace lines up with the
    // journal one to one.
    IBCHOL_TRACE_SPAN("sweep_point", "autotune", i);
    int attempt = 0;
    for (;;) {
      ++attempt;
      bool ok = false;
      double secs = 0.0;
      try {
        const auto t0 = std::chrono::steady_clock::now();
        IBCHOL_TRACE_SPAN("evaluate", "autotune", attempt);
        secs = evaluator.seconds(pt.n, options.batch, pt.params);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        ok = !(options.deadline_seconds > 0.0 &&
               wall > options.deadline_seconds);
      } catch (const std::exception&) {
        ok = false;
      }
      if (ok) {
        r.seconds = secs;
        break;
      }
      if (attempt > options.max_retries) {
        r.failed = true;
        break;
      }
      if (options.retry_backoff_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options.retry_backoff_seconds * attempt));
      }
    }
    r.attempts = attempt;
    IBCHOL_COUNT("autotune.sweep_points", 1);
    if (attempt > 1) IBCHOL_COUNT("autotune.sweep_retries", attempt - 1);
    if (r.failed) {
      r.seconds = std::nan("");
      r.gflops = std::nan("");
    } else {
      r.gflops = r.seconds <= 0.0
                     ? 0.0
                     : static_cast<double>(options.batch) *
                           nominal_flops_per_matrix(pt.n) / r.seconds / 1e9;
    }
    records[static_cast<std::size_t>(i)] = r;
    if (journal_out) journal_out->append(r);
    if (options.progress) {
      // Serialized, strictly monotone `done` counts (see SweepOptions).
      const std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, total);
    }
  }

  SweepDataset dataset;
  for (SweepRecord& r : records) dataset.add(std::move(r));
  return dataset;
}

std::map<int, TuningParams> select_winners(const SweepDataset& dataset) {
  std::map<int, TuningParams> winners;
  for (const auto& [n, record] : dataset.best_by_n()) {
    winners[n] = record.params;
  }
  return winners;
}

}  // namespace ibchol
