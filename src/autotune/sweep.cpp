#include "autotune/sweep.hpp"

#include "kernels/counts.hpp"

namespace ibchol {

SweepDataset run_sweep(Evaluator& evaluator, const SweepOptions& options) {
  IBCHOL_CHECK(!options.sizes.empty(), "sweep needs at least one size");
  IBCHOL_CHECK(options.batch > 0, "batch must be positive");

  // Count total points for progress reporting.
  std::size_t total = 0;
  for (const int n : options.sizes) {
    total += enumerate_space(n, options.space).size();
  }

  SweepDataset dataset;
  std::size_t done = 0;
  for (const int n : options.sizes) {
    for (const TuningParams& params : enumerate_space(n, options.space)) {
      SweepRecord r;
      r.n = n;
      r.batch = options.batch;
      r.params = params;
      r.seconds = evaluator.seconds(n, options.batch, params);
      r.gflops = r.seconds <= 0.0
                     ? 0.0
                     : static_cast<double>(options.batch) *
                           nominal_flops_per_matrix(n) / r.seconds / 1e9;
      dataset.add(std::move(r));
      ++done;
      if (options.progress) options.progress(done, total);
    }
  }
  return dataset;
}

std::map<int, TuningParams> select_winners(const SweepDataset& dataset) {
  std::map<int, TuningParams> winners;
  for (const auto& [n, record] : dataset.best_by_n()) {
    winners[n] = record.params;
  }
  return winners;
}

}  // namespace ibchol
