#include "autotune/sweep.hpp"

#include <omp.h>

#include <mutex>

#include "kernels/counts.hpp"

namespace ibchol {

SweepDataset run_sweep(Evaluator& evaluator, const SweepOptions& options) {
  IBCHOL_CHECK(!options.sizes.empty(), "sweep needs at least one size");
  IBCHOL_CHECK(options.batch > 0, "batch must be positive");

  // Materialize the full point list first: the parallel driver needs an
  // index space, and the dataset must come out in enumeration order no
  // matter which thread finishes which point.
  struct Point {
    int n;
    TuningParams params;
  };
  std::vector<Point> points;
  for (const int n : options.sizes) {
    for (const TuningParams& params : enumerate_space(n, options.space)) {
      points.push_back({n, params});
    }
  }
  const std::size_t total = points.size();
  std::vector<SweepRecord> records(total);

  const int threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();
  const bool parallel = evaluator.parallel_safe() && threads > 1 && total > 1;

  std::size_t done = 0;
  std::mutex progress_mu;

#pragma omp parallel for schedule(dynamic) num_threads(threads) \
    if (parallel)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(total); ++i) {
    const Point& pt = points[static_cast<std::size_t>(i)];
    SweepRecord r;
    r.n = pt.n;
    r.batch = options.batch;
    r.params = pt.params;
    r.seconds = evaluator.seconds(pt.n, options.batch, pt.params);
    r.gflops = r.seconds <= 0.0
                   ? 0.0
                   : static_cast<double>(options.batch) *
                         nominal_flops_per_matrix(pt.n) / r.seconds / 1e9;
    records[static_cast<std::size_t>(i)] = std::move(r);
    if (options.progress) {
      // Serialized, strictly monotone `done` counts (see SweepOptions).
      const std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, total);
    }
  }

  SweepDataset dataset;
  for (SweepRecord& r : records) dataset.add(std::move(r));
  return dataset;
}

std::map<int, TuningParams> select_winners(const SweepDataset& dataset) {
  std::map<int, TuningParams> winners;
  for (const auto& [n, record] : dataset.best_by_n()) {
    winners[n] = record.params;
  }
  return winners;
}

}  // namespace ibchol
