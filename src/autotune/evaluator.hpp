// Evaluation backends for the autotuner.
//
// An Evaluator maps (n, batch, tuning point) to a kernel time. Two backends
// implement the substitution described in DESIGN.md §2:
//  * ModelEvaluator — the P100 SIMT cost model (fast, exhaustive sweeps);
//  * CpuMeasuredEvaluator — real wall-clock measurement of the CPU-SIMD
//    substrate (slower; used to validate the model's orderings on real
//    hardware).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kernels/variant.hpp"
#include "simt/kernel_model.hpp"
#include "util/aligned_buffer.hpp"

namespace ibchol {

/// Interface: kernel time for one tuning point.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Kernel time in seconds for factoring `batch` n×n matrices.
  virtual double seconds(int n, std::int64_t batch,
                         const TuningParams& params) = 0;

  /// Whether seconds() may be called concurrently from several threads
  /// (the parallel sweep driver checks this). Analytical backends are;
  /// wall-clock backends are not — a measurement sharing cores with other
  /// evaluations is not a measurement.
  [[nodiscard]] virtual bool parallel_safe() const { return false; }

  /// Backend name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// GFLOP/s with the paper's (1/3)n³ convention.
  double gflops(int n, std::int64_t batch, const TuningParams& params);
};

/// Analytical SIMT model backend.
///
/// `noise_sigma` adds deterministic, per-point multiplicative jitter
/// (seeded by the tuning point itself) imitating run-to-run measurement
/// noise — the paper's dataset is measured, so its §IV analysis sees a
/// noise floor; a perfectly deterministic model would make the random
/// forest look unrealistically exact. Set to 0 for pure model output.
class ModelEvaluator final : public Evaluator {
 public:
  explicit ModelEvaluator(KernelModel model, double noise_sigma = 0.0)
      : model_(std::move(model)), noise_sigma_(noise_sigma) {}

  double seconds(int n, std::int64_t batch,
                 const TuningParams& params) override;
  /// The model is pure; the memo cache below is mutex-protected.
  [[nodiscard]] bool parallel_safe() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const KernelModel& model() const { return model_; }

  /// Memoization statistics (hits include concurrent lookups).
  [[nodiscard]] std::size_t cache_hits() const { return hits_; }
  [[nodiscard]] std::size_t cache_size() const { return memo_.size(); }

 private:
  KernelModel model_;
  double noise_sigma_ = 0.0;
  // Memo cache keyed on (n, batch, params): figure benches sweep heavily
  // overlapping grids, and the model is deterministic (including the
  // seeded jitter), so repeated evaluations are free. Guarded by a mutex
  // so the parallel sweep driver can share one evaluator.
  std::mutex memo_mu_;
  std::unordered_map<std::string, double> memo_;
  std::size_t hits_ = 0;
};

/// Measured CPU-substrate backend. Caches one pristine SPD batch per
/// (n, layout) and measures best-of-k factorization time.
class CpuMeasuredEvaluator final : public Evaluator {
 public:
  struct Options {
    int warmup = 1;
    int reps = 3;
    std::uint64_t seed = 42;
  };

  CpuMeasuredEvaluator() = default;
  explicit CpuMeasuredEvaluator(Options options) : options_(options) {}

  double seconds(int n, std::int64_t batch,
                 const TuningParams& params) override;
  /// Never parallel: wall-clock measurements must own the machine, and the
  /// factorization under measurement is itself OpenMP-parallel.
  [[nodiscard]] bool parallel_safe() const override { return false; }
  [[nodiscard]] std::string name() const override { return "cpu-measured"; }

 private:
  struct CachedBatch {
    AlignedBuffer<float> pristine;
    AlignedBuffer<float> work;
    /// Reduced-precision points: the same pristine batch pre-narrowed to
    /// the point's 16-bit storage format, plus a u16 work buffer, so the
    /// measured loop is memcpy + factor exactly like the fp32 one (the
    /// narrowing conversion is input preparation, not measured time).
    AlignedBuffer<std::uint16_t> pristine_u16;
    AlignedBuffer<std::uint16_t> work_u16;
  };

  CachedBatch& batch_for(int n, std::int64_t batch, const TuningParams& p);

  Options options_;
  std::map<std::string, std::unique_ptr<CachedBatch>> cache_;
};

}  // namespace ibchol
