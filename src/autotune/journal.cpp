#include "autotune/journal.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace ibchol {

namespace {

// %.17g: shortest decimal that round-trips any IEEE double exactly, so a
// resumed sweep reproduces bit-identical records. NaN has no JSON literal;
// null stands in.
std::string json_double(double v) {
  if (std::isnan(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Minimal scanners for the fixed journal schema. Each returns false on a
// malformed or truncated line so the reader can skip it.
bool find_value(const std::string& line, const std::string& key,
                std::size_t& pos) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  pos = at + needle.size();
  return true;
}

bool scan_string(const std::string& line, const std::string& key,
                 std::string& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const std::size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool scan_double(const std::string& line, const std::string& key,
                 double& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (line.compare(pos, 4, "null") == 0) {
    out = std::nan("");
    return true;
  }
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

bool scan_int64(const std::string& line, const std::string& key,
                std::int64_t& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  out = std::strtoll(start, &end, 10);
  return end != start;
}

bool scan_int(const std::string& line, const std::string& key, int& out) {
  std::int64_t v = 0;
  if (!scan_int64(line, key, v)) return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

std::string journal_line(const SweepRecord& r) {
  std::string out = "{";
  out += "\"n\":" + std::to_string(r.n);
  out += ",\"batch\":" + std::to_string(r.batch);
  out += ",\"nb\":" + std::to_string(r.params.nb);
  out += ",\"looking\":\"" + to_string(r.params.looking) + "\"";
  out += ",\"chunked\":" + std::string(r.params.chunked ? "1" : "0");
  out += ",\"chunk_size\":" + std::to_string(r.params.chunk_size);
  out += ",\"unroll\":\"" + to_string(r.params.unroll) + "\"";
  out += ",\"math\":\"" + to_string(r.params.math) + "\"";
  out += ",\"cache\":\"" + std::string(r.params.prefer_shared ? "shared" : "l1") +
         "\"";
  out += ",\"exec\":\"" + to_string(r.params.exec) + "\"";
  out += ",\"isa\":\"" + to_string(r.params.isa) + "\"";
  out += ",\"storage\":\"" + to_string(r.params.storage) + "\"";
  out += ",\"lookahead\":" + std::to_string(r.params.lookahead);
  out += ",\"seconds\":" + json_double(r.seconds);
  out += ",\"gflops\":" + json_double(r.gflops);
  out += ",\"attempts\":" + std::to_string(r.attempts);
  out += ",\"failed\":" + std::string(r.failed ? "1" : "0");
  out += "}";
  return out;
}

std::optional<SweepRecord> parse_journal_line(const std::string& raw) {
  std::string line = raw;
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  SweepRecord r;
  std::string looking, unroll, math, cache, exec;
  int chunked = 0, failed = 0;
  if (!scan_int(line, "n", r.n) || !scan_int64(line, "batch", r.batch) ||
      !scan_int(line, "nb", r.params.nb) ||
      !scan_string(line, "looking", looking) ||
      !scan_int(line, "chunked", chunked) ||
      !scan_int(line, "chunk_size", r.params.chunk_size) ||
      !scan_string(line, "unroll", unroll) ||
      !scan_string(line, "math", math) ||
      !scan_string(line, "cache", cache) ||
      !scan_string(line, "exec", exec) ||
      !scan_double(line, "seconds", r.seconds) ||
      !scan_double(line, "gflops", r.gflops) ||
      !scan_int(line, "attempts", r.attempts) ||
      !scan_int(line, "failed", failed)) {
    return std::nullopt;
  }
  // Journals written before the vectorized executor carry no "isa" field;
  // treat it as optional and default to kAuto (faithful: ISA only matters
  // to kVectorized, which those journals never recorded).
  std::string isa;
  const bool has_isa = scan_string(line, "isa", isa);
  // Likewise journals written before the reduced-precision lanes carry no
  // "storage" field; every such record measured fp32 storage.
  std::string storage;
  const bool has_storage = scan_string(line, "storage", storage);
  // And journals written before the tiled large-N lane carry no
  // "lookahead" field; only the tiled executor reads it, so the default
  // is faithful for every such record.
  int lookahead = 0;
  if (scan_int(line, "lookahead", lookahead)) {
    r.params.lookahead = lookahead;
  }
  try {
    r.params.looking = looking_from_string(looking);
    r.params.unroll = unroll_from_string(unroll);
    r.params.math = math_from_string(math);
    r.params.exec = cpu_exec_from_string(exec);
    r.params.isa = has_isa ? simd_isa_from_string(isa) : SimdIsa::kAuto;
    r.params.storage = has_storage ? storage_prec_from_string(storage)
                                   : StoragePrec::kFp32;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  r.params.chunked = chunked != 0;
  r.params.prefer_shared = cache == "shared";
  r.failed = failed != 0;
  return r;
}

std::vector<SweepRecord> read_journal(const std::string& path) {
  std::vector<SweepRecord> records;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    if (auto r = parse_journal_line(line)) records.push_back(std::move(*r));
  }
  return records;
}

JournalWriter::JournalWriter(const std::string& path)
    : out_(path, std::ios::app) {
  IBCHOL_CHECK(static_cast<bool>(out_),
               "cannot open sweep journal for append: " + path);
  // A crash can tear the final line mid-write. Appending directly after the
  // torn fragment would glue the next record onto it, yielding one line
  // whose key scans read the fragment's (truncated) values — so start on a
  // fresh line whenever the file does not already end in one.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (in && in.tellg() > 0) {
    in.seekg(-1, std::ios::end);
    char last = '\n';
    if (in.get(last) && last != '\n') out_ << '\n';
  }
}

void JournalWriter::append(const SweepRecord& record) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << journal_line(record) << '\n';
  out_.flush();
}

}  // namespace ibchol
