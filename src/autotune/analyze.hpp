// Postmortem analysis of the autotuning dataset (paper §IV).
//
// Converts the sweep database into a feature matrix (the seven variables of
// Table I), fits the random-forest regressor, and computes each variable's
// predictive power as the permutation increase in out-of-bag MSE — the
// paper's "predictive power of various tuning parameters on performance in
// terms of mean square error".
#pragma once

#include <string>
#include <vector>

#include "autotune/records.hpp"
#include "forest/forest.hpp"

namespace ibchol {

/// The Table I feature columns, in order.
[[nodiscard]] const std::vector<std::string>& analysis_feature_names();

/// Builds the feature matrix + target (GFLOP/s) from a sweep dataset.
struct AnalysisData {
  FeatureMatrix features;
  std::vector<double> target;
};
[[nodiscard]] AnalysisData build_analysis_data(const SweepDataset& dataset);

/// One Table I row.
struct PredictivePower {
  std::string parameter;
  double inc_mse = 0.0;     ///< permutation increase in OOB MSE
  std::string type;         ///< integer / ternary / binary
  std::string explanation;
};

/// Full analysis result (Table I + Fig 21 inputs).
struct AnalysisResult {
  std::vector<PredictivePower> table;  ///< per-variable predictive power
  std::vector<double> observed;        ///< measured GFLOP/s per record
  std::vector<double> predicted;       ///< OOB predictions per record
  double oob_mse = 0.0;
  double correlation = 0.0;            ///< Pearson(observed, predicted)
  double r_squared = 0.0;
  int num_trees = 0;
  double average_depth = 0.0;
};

/// Fits the forest and produces the analysis. `options` defaults follow the
/// paper (500 trees).
[[nodiscard]] AnalysisResult analyze_dataset(const SweepDataset& dataset,
                                             const ForestOptions& options = {});

}  // namespace ibchol
