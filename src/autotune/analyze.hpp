// Postmortem analysis of the autotuning dataset (paper §IV).
//
// Converts the sweep database into a feature matrix (the seven variables of
// Table I), fits the random-forest regressor, and computes each variable's
// predictive power as the permutation increase in out-of-bag MSE — the
// paper's "predictive power of various tuning parameters on performance in
// terms of mean square error".
#pragma once

#include <string>
#include <vector>

#include "autotune/records.hpp"
#include "forest/forest.hpp"

namespace ibchol {

/// One column of the analysis feature schema: name, Table I type tag, and
/// the explanation column. The schema (analysis_feature_schema) is THE
/// single source of truth for the feature set — names, count, encoding
/// order, and Table I metadata all derive from it, so adding a feature is
/// one table row plus one encoder line in analysis_features_for, and the
/// two can never disagree on the count.
struct FeatureSpec {
  const char* name;
  const char* type;         ///< integer / binary / ternary / ordinal
  const char* explanation;  ///< Table I wording
};

/// The full schema, in column order.
[[nodiscard]] const std::vector<FeatureSpec>& analysis_feature_schema();

/// The Table I feature columns, in order (derived from the schema).
[[nodiscard]] const std::vector<std::string>& analysis_feature_names();

/// Encodes one tuning point as an analysis feature row. The row length
/// always equals analysis_feature_schema().size(); both the dataset
/// builder below and the tune layer's forest ranking use this encoder, so
/// train- and predict-time encodings cannot drift apart.
[[nodiscard]] std::vector<double> analysis_features_for(
    int n, const TuningParams& params);

/// Builds the feature matrix + target (GFLOP/s) from a sweep dataset.
struct AnalysisData {
  FeatureMatrix features;
  std::vector<double> target;
};
[[nodiscard]] AnalysisData build_analysis_data(const SweepDataset& dataset);

/// One Table I row.
struct PredictivePower {
  std::string parameter;
  double inc_mse = 0.0;     ///< permutation increase in OOB MSE
  std::string type;         ///< integer / ternary / binary
  std::string explanation;
};

/// Full analysis result (Table I + Fig 21 inputs).
struct AnalysisResult {
  std::vector<PredictivePower> table;  ///< per-variable predictive power
  std::vector<double> observed;        ///< measured GFLOP/s per record
  std::vector<double> predicted;       ///< OOB predictions per record
  double oob_mse = 0.0;
  double correlation = 0.0;            ///< Pearson(observed, predicted)
  double r_squared = 0.0;
  int num_trees = 0;
  double average_depth = 0.0;
};

/// Fits the forest and produces the analysis. `options` defaults follow the
/// paper (500 trees).
[[nodiscard]] AnalysisResult analyze_dataset(const SweepDataset& dataset,
                                             const ForestOptions& options = {});

}  // namespace ibchol
