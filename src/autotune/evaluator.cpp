#include "autotune/evaluator.hpp"

#include <cmath>
#include <cstring>

#include "core/batch_cholesky.hpp"
#include "cpu/simd/convert.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ibchol {

double Evaluator::gflops(int n, std::int64_t batch,
                         const TuningParams& params) {
  const double s = seconds(n, batch, params);
  return s <= 0.0 ? 0.0
                  : static_cast<double>(batch) * nominal_flops_per_matrix(n) /
                        s / 1e9;
}

double ModelEvaluator::seconds(int n, std::int64_t batch,
                               const TuningParams& params) {
  const std::string memo_key = std::to_string(n) + '|' +
                               std::to_string(batch) + '|' + params.key();
  {
    const std::lock_guard<std::mutex> lock(memo_mu_);
    const auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Evaluate outside the lock — the model is pure, and the parallel sweep
  // driver must not serialize on it. A concurrent duplicate evaluation of
  // the same point produces the same value, so last-write-wins is fine.
  double s = model_.evaluate(n, batch, params).seconds;
  if (noise_sigma_ > 0.0) {
    // Deterministic per-point jitter: hash the configuration into an RNG
    // seed so repeated sweeps reproduce bit-identical datasets.
    std::uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<std::uint64_t>(n);
    for (const char c : params.key()) {
      h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
    }
    Xoshiro256 rng(h);
    s *= std::max(0.5, 1.0 + noise_sigma_ * rng.normal());
  }
  const std::lock_guard<std::mutex> lock(memo_mu_);
  memo_.emplace(memo_key, s);
  return s;
}

std::string ModelEvaluator::name() const {
  return "simt-model(" + model_.gpu().name + ")";
}

CpuMeasuredEvaluator::CachedBatch& CpuMeasuredEvaluator::batch_for(
    int n, std::int64_t batch, const TuningParams& p) {
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, p);
  // Storage precision is part of the cache identity: reduced-precision
  // points carry the pristine batch pre-narrowed to their format.
  const std::string key = layout.to_string() + '|' + to_string(p.storage);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto cached = std::make_unique<CachedBatch>();
    cached->pristine.resize(layout.size_elems());
    SpdOptions gen;
    gen.seed = options_.seed;
    generate_spd_batch<float>(layout, cached->pristine.span(), gen);
    if (p.storage == StoragePrec::kFp32) {
      cached->work.resize(layout.size_elems());
    } else {
      cached->pristine_u16.resize(layout.size_elems());
      cached->work_u16.resize(layout.size_elems());
      // Padding identities narrow exactly (1.0 / 0.0 are representable),
      // so the u16 batch keeps the pipeline's padding invariant.
      narrow_row(resolve_convert_isa(), p.storage, cached->pristine.data(),
                 cached->pristine_u16.data(),
                 static_cast<std::int64_t>(layout.size_elems()),
                 /*nt_stores=*/false);
    }
    it = cache_.emplace(key, std::move(cached)).first;
  }
  return *it->second;
}

double CpuMeasuredEvaluator::seconds(int n, std::int64_t batch,
                                     const TuningParams& params) {
  const BatchLayout layout = BatchCholesky::make_layout(n, batch, params);
  const BatchCholesky chol(layout, params);
  CachedBatch& data = batch_for(n, batch, params);

  double best = 1e300;
  if (params.storage != StoragePrec::kFp32) {
    const std::size_t bytes = layout.size_elems() * sizeof(std::uint16_t);
    for (int rep = 0; rep < options_.warmup + options_.reps; ++rep) {
      std::memcpy(data.work_u16.data(), data.pristine_u16.data(), bytes);
      Timer t;
      (void)chol.factorize_mixed(data.work_u16.span());
      const double s = t.seconds();
      if (rep >= options_.warmup && s < best) best = s;
    }
    return best;
  }
  const std::size_t bytes = layout.size_elems() * sizeof(float);
  for (int rep = 0; rep < options_.warmup + options_.reps; ++rep) {
    std::memcpy(data.work.data(), data.pristine.data(), bytes);
    Timer t;
    (void)chol.factorize<float>(data.work.span());
    const double s = t.seconds();
    if (rep >= options_.warmup && s < best) best = s;
  }
  return best;
}

}  // namespace ibchol
