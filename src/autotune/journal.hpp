// Crash-safe JSONL journal of completed sweep points.
//
// A ~14,000-point sweep that dies at point 13,999 (crash, Ctrl-C, node
// preemption) must not forfeit the finished work. The driver appends one
// self-contained JSON object per completed record — flushed per line, so
// the file is valid up to the last whole line no matter when the process
// dies — and a resumed sweep replays the journal to skip finished points.
//
// Line format (one object per line, fixed key order):
//   {"n":24,"batch":16384,"nb":8,"looking":"top","chunked":1,
//    "chunk_size":64,"unroll":"partial","math":"ieee","cache":"l1",
//    "exec":"spec","seconds":1.234e-05,"gflops":56.7,"attempts":1,
//    "failed":0}
//
// Doubles are printed with %.17g so a journaled record parses back to the
// bit-identical value — resuming from a journal reproduces the exact
// dataset an uninterrupted run would have produced. NaN (a failed point's
// time) is serialized as JSON null. The reader is tolerant: a truncated or
// malformed trailing line — the signature of a crash mid-write — is
// skipped, not fatal.
#pragma once

#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "autotune/records.hpp"

namespace ibchol {

/// Serializes one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string journal_line(const SweepRecord& record);

/// Parses one journal line; nullopt for malformed/truncated lines.
[[nodiscard]] std::optional<SweepRecord> parse_journal_line(
    const std::string& line);

/// Reads every parseable record from a journal file. A missing file yields
/// an empty vector (a fresh sweep resuming from nothing is not an error);
/// malformed lines are skipped.
[[nodiscard]] std::vector<SweepRecord> read_journal(const std::string& path);

/// Appends records to a journal file, one flushed line per record.
/// Thread-safe: the sweep driver journals from worker threads.
class JournalWriter {
 public:
  /// Opens `path` for appending (creating it if absent); throws on failure.
  explicit JournalWriter(const std::string& path);

  void append(const SweepRecord& record);

 private:
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace ibchol
