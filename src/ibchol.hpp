// Umbrella header: the full public API of the ibchol library.
//
//   #include "ibchol.hpp"
//
// Groups (see README.md for the architecture overview):
//   layouts     — BatchLayout / BatchVectorLayout / BatchRectLayout,
//                 conversions, SPD batch generators
//   core        — BatchCholesky facade, TuningParams, recommended_params
//   batch BLAS  — batch_potrs / batch_trsm / batch_syrk / batch_gemm,
//                 mixed-precision iterative refinement
//   kernels     — tile programs, operation counts, CUDA source generation
//   model       — the P100/K40 SIMT performance model and occupancy math
//   autotune    — exhaustive sweeps, guided search, the results database,
//                 and the random-forest analysis of §IV
//   obs         — per-stage trace spans, named counters, hardware
//                 counters, Chrome-trace/JSONL exporters
//   apps        — the ALS recommender built on the batch API
#pragma once

#include "als/als.hpp"
#include "als/ratings.hpp"
#include "autotune/analyze.hpp"
#include "autotune/dispatch.hpp"
#include "autotune/evaluator.hpp"
#include "autotune/journal.hpp"
#include "autotune/records.hpp"
#include "autotune/search.hpp"
#include "autotune/space.hpp"
#include "autotune/sweep.hpp"
#include "baseline/traditional_model.hpp"
#include "core/batch_cholesky.hpp"
#include "core/vbatch.hpp"
#include "cpu/batch_blas.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/recover.hpp"
#include "cpu/reference.hpp"
#include "cpu/refine.hpp"
#include "forest/forest.hpp"
#include "kernels/counts.hpp"
#include "kernels/cuda_codegen.hpp"
#include "kernels/tile_program.hpp"
#include "kernels/variant.hpp"
#include "layout/convert.hpp"
#include "layout/generate.hpp"
#include "layout/layout.hpp"
#include "layout/rect_layout.hpp"
#include "layout/vector_layout.hpp"
#include "obs/counters.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "simt/coalescing.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/kernel_model.hpp"
#include "simt/cache_model.hpp"
#include "simt/occupancy.hpp"
#include "simt/trace_sim.hpp"
#include "util/aligned_buffer.hpp"
#include "util/csv.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
