// Performance model of the traditional batched Cholesky (the MAGMA 2.2.0
// comparator of paper Figures 13–14).
//
// The traditional design assigns one thread block per matrix on the
// canonical (contiguous column-major) layout: the block stages its matrix
// in shared memory, the factorization's diagonal recurrence serializes on a
// single thread, and column updates parallelize across the block. For very
// small matrices this structure wastes the machine — partially filled
// warps, serialized square roots, block-granularity scheduling — which is
// exactly the gap the interleaved kernels exploit. For larger matrices its
// shared-memory data reuse pays off and it overtakes the interleaved code
// (paper §III, final remark).
//
// The measured CPU counterpart of this baseline is factor_batch_cpu on a
// canonical layout (one matrix per task, no cross-matrix SIMD).
#pragma once

#include <cstdint>

#include "simt/gpu_spec.hpp"
#include "simt/occupancy.hpp"

namespace ibchol {

/// Calibration constants of the traditional-kernel model.
struct TraditionalCalibration {
  double special_latency = 150.0;  ///< serialized sqrt/div sequence (cycles)
  double barrier_latency = 65.0;   ///< __syncthreads per factorization step
  int barriers_per_step = 3;       ///< sync points per column step
  int regs_per_thread = 40;
  double smem_latency_factor = 1.15;  ///< shared-memory compute overhead
  /// Practical cap on concurrently executing blocks per SM for this kernel
  /// family (launch-bounds / scheduling limits in the library kernels).
  int max_resident_blocks = 8;
  double launch_overhead_s = 4e-6;
};

/// Model output for the traditional kernel.
struct TraditionalResult {
  double seconds = 0.0;
  double gflops = 0.0;
  double compute_s = 0.0;
  double memory_s = 0.0;
  double dram_bytes = 0.0;
  double write_efficiency = 0.0;  ///< coalescing efficiency of the writes
  Occupancy occ;
  int threads_per_block = 0;
};

/// Analytical model of the traditional batched Cholesky.
class TraditionalModel {
 public:
  explicit TraditionalModel(GpuSpec gpu, TraditionalCalibration cal = {})
      : gpu_(std::move(gpu)), cal_(cal) {}

  [[nodiscard]] TraditionalResult evaluate(int n, std::int64_t batch) const;

  [[nodiscard]] const GpuSpec& gpu() const { return gpu_; }

 private:
  GpuSpec gpu_;
  TraditionalCalibration cal_;
};

}  // namespace ibchol
