#include "baseline/traditional_model.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/counts.hpp"
#include "simt/coalescing.hpp"
#include "util/error.hpp"

namespace ibchol {

namespace {

constexpr double kElemBytes = 4.0;

/// Coalescing efficiency of writing the lower triangle of a column-major
/// matrix: column j is a run of (n-j) consecutive floats, each costing
/// whole 32-byte sectors.
double triangle_write_efficiency(int n) {
  std::int64_t useful = 0;
  std::int64_t sectors = 0;
  for (int j = 0; j < n; ++j) {
    const int run = n - j;
    useful += run * 4;
    sectors += (run * 4 + 31) / 32 + ((run * 4) % 32 != 0 ? 0 : 0);
  }
  return static_cast<double>(useful) / (static_cast<double>(sectors) * 32.0);
}

}  // namespace

TraditionalResult TraditionalModel::evaluate(int n, std::int64_t batch) const {
  IBCHOL_CHECK(n >= 1 && batch > 0, "invalid problem shape");
  TraditionalResult r;

  // One block per matrix; thread count rounds the dimension up to a warp.
  r.threads_per_block = std::max(32, (n + 31) / 32 * 32);

  KernelResources res;
  res.threads_per_block = r.threads_per_block;
  res.regs_per_thread = cal_.regs_per_thread;
  res.smem_per_block_bytes = n * n * static_cast<int>(kElemBytes);
  r.occ = compute_occupancy(gpu_, res);
  const int resident =
      std::max(1, std::min(r.occ.blocks_per_sm, cal_.max_resident_blocks));

  // --- memory ---------------------------------------------------------
  // Read the full matrix (contiguous, fully coalesced), write back the
  // lower triangle (per-column runs, partially coalesced for small n).
  r.write_efficiency = triangle_write_efficiency(n);
  const double read_bytes = static_cast<double>(n) * n * kElemBytes;
  const double write_useful =
      static_cast<double>(n) * (n + 1) / 2.0 * kElemBytes;
  const double write_bytes = write_useful / r.write_efficiency;
  r.dram_bytes = static_cast<double>(batch) * (read_bytes + write_bytes);
  r.memory_s = r.dram_bytes / gpu_.dram_bw_bytes;

  // --- compute ----------------------------------------------------------
  // Per-block critical path: each of the n steps serializes a sqrt and a
  // reciprocal on one thread plus block-wide barriers; the O(n³) update
  // work spreads across the block's lanes.
  const double clock_hz = gpu_.clock_ghz * 1e9;
  const double serial_cycles =
      static_cast<double>(n) * (2.0 * cal_.special_latency +
                                cal_.barriers_per_step * cal_.barrier_latency);
  const double lanes = static_cast<double>(r.threads_per_block);
  const double fma_work = static_cast<double>(n) * n * n / 6.0;
  const double parallel_cycles =
      fma_work / lanes * cal_.smem_latency_factor * gpu_.warp_size /
      gpu_.issue_slots_per_sm_cycle();
  const double block_cycles = serial_cycles + parallel_cycles;

  const double waves = std::ceil(
      static_cast<double>(batch) /
      (static_cast<double>(gpu_.sms) * static_cast<double>(resident)));
  r.compute_s = waves * block_cycles / clock_hz;

  const double tmax = std::max(r.compute_s, r.memory_s);
  const double tmin = std::min(r.compute_s, r.memory_s);
  r.seconds = tmax + 0.25 * tmin + cal_.launch_overhead_s;
  r.gflops = static_cast<double>(batch) * nominal_flops_per_matrix(n) /
             r.seconds / 1e9;
  return r;
}

}  // namespace ibchol
