#include "kernels/counts.hpp"

#include <array>
#include <set>

namespace ibchol {

OpCounts count_op(const TileOp& op) {
  OpCounts c;
  const std::int64_t r = op.rows;
  const std::int64_t cc = op.cols;
  const std::int64_t k = op.kdim;
  switch (op.kind) {
    case TileOp::Kind::kLoadFull:
      c.load_elems = r * cc;
      break;
    case TileOp::Kind::kLoadLower:
      c.load_elems = r * (r + 1) / 2;
      break;
    case TileOp::Kind::kStoreFull:
      c.store_elems = r * cc;
      break;
    case TileOp::Kind::kStoreLower:
      c.store_elems = r * (r + 1) / 2;
      break;
    case TileOp::Kind::kPotrf:
      // Mirrors spotrf_tile (paper Fig 9): per step kk — one sqrt, one
      // reciprocal, (r-1-kk) multiplies by the reciprocal, then the rank-1
      // update of the remaining lower triangle.
      for (std::int64_t kk = 0; kk < r; ++kk) {
        c.sqrt += 1;
        c.div += 1;
        c.mul += r - 1 - kk;
        for (std::int64_t nn = kk + 1; nn < r; ++nn) c.fma += r - nn;
      }
      break;
    case TileOp::Kind::kTrsm:
      // Mirrors strsm_tile: per row m and column kk — one division, then
      // (cols-1-kk) fused updates.
      c.div = r * cc;
      c.fma = r * cc * (cc - 1) / 2;
      break;
    case TileOp::Kind::kSyrk:
      c.fma = k * r * (r + 1) / 2;
      break;
    case TileOp::Kind::kGemm:
      c.fma = r * cc * k;
      break;
  }
  return c;
}

OpCounts count_program(const TileProgram& program) {
  OpCounts total;
  for (const auto& op : program.ops) total += count_op(op);
  return total;
}

namespace {

// Instruction estimate for one op body when fully unrolled: arithmetic
// instructions plus one memory instruction per element (addresses are
// immediate offsets, folded into the instruction).
std::int64_t body_instructions_full(const TileOp& op, MathMode math) {
  const OpCounts c = count_op(op);
  return c.issue_slots(math) + c.load_elems + c.store_elems;
}

// Instruction estimate for one syntactic site when the outer loops stay
// rolled: the site's unrolled body for an nb×nb tile appears once; each
// memory element additionally needs pointer arithmetic (the dAp updates of
// paper Fig 10), and each site gains loop-control overhead.
std::int64_t site_instructions_partial(const TileOp& op, MathMode math) {
  const OpCounts c = count_op(op);
  constexpr std::int64_t kAddressIncPerElem = 1;  // dAp += stride
  constexpr std::int64_t kLoopOverhead = 6;       // index update + branch etc.
  return c.issue_slots(math) +
         (c.load_elems + c.store_elems) * (1 + kAddressIncPerElem) +
         kLoopOverhead;
}

}  // namespace

CodeSize estimate_code_size(const TileProgram& program, Unroll unroll,
                            MathMode math) {
  CodeSize size;
  if (unroll == Unroll::kFull) {
    for (const auto& op : program.ops) {
      size.instructions += body_instructions_full(op, math);
      // Full unrolling still pays the address-increment chain on memory ops
      // unless the compiler folds it; assume folded (constant offsets).
    }
    size.instructions += 32;  // prologue/epilogue
    return size;
  }
  // Partial unrolling: each distinct (kind, rows, cols, kdim) shape appears
  // once in the instruction stream (one code site per loop body). Corner
  // tiles add their own sites, exactly as the paper's corner-case kernels do.
  std::set<std::array<std::int16_t, 4>> sites;
  for (const auto& op : program.ops) {
    const std::array<std::int16_t, 4> key{static_cast<std::int16_t>(op.kind),
                                          op.rows, op.cols, op.kdim};
    if (!sites.insert(key).second) continue;
    size.instructions += site_instructions_partial(op, math);
  }
  size.instructions += 64;  // outer-loop control + prologue/epilogue
  return size;
}

double nominal_flops_per_matrix(int n) {
  return static_cast<double>(n) * n * n / 3.0;
}

}  // namespace ibchol
