#include "kernels/cuda_codegen.hpp"

#include <sstream>

namespace ibchol {

namespace {

std::string reg_name(int reg) {
  switch (reg) {
    case 0: return "rA1";
    case 1: return "rA2";
    case 2: return "rA3";
    default: return "rA" + std::to_string(reg + 1);
  }
}

std::string elem(const std::string& reg, int m, int n) {
  return reg + "_" + std::to_string(m) + std::to_string(n);
}

/// Emits the spotrf_tile body (paper Fig 9) for an r×r tile held in `reg`.
void emit_potrf(std::ostream& os, const std::string& ind,
                const std::string& reg, int r, const std::string& cont) {
  for (int k = 0; k < r; ++k) {
    os << ind << elem(reg, k, k) << " = sqrtf(" << elem(reg, k, k) << ");"
       << cont;
    os << ind << "inv = 1.0f/" << elem(reg, k, k) << ";" << cont;
    for (int m = k + 1; m < r; ++m) {
      os << ind << elem(reg, m, k) << " *= inv;" << cont;
    }
    for (int n = k + 1; n < r; ++n) {
      for (int m = n; m < r; ++m) {
        os << ind << elem(reg, m, n) << " -= " << elem(reg, n, k) << "*"
           << elem(reg, m, k) << ";" << cont;
      }
    }
  }
}

/// Emits the strsm_tile body: rB (r×c) <- rB · tril(rL)^{-T}.
void emit_trsm(std::ostream& os, const std::string& ind,
               const std::string& rl, const std::string& rb, int r, int c,
               const std::string& cont) {
  for (int m = 0; m < r; ++m) {
    for (int k = 0; k < c; ++k) {
      os << ind << elem(rb, m, k) << " /= " << elem(rl, k, k) << ";" << cont;
      for (int n = k + 1; n < c; ++n) {
        os << ind << elem(rb, m, n) << " -= (" << elem(rb, m, k) << "*"
           << elem(rl, n, k) << ");" << cont;
      }
    }
  }
}

/// Emits the ssyrk_tile body: rC (r×r lower) -= rA·rAᵀ with depth k.
void emit_syrk(std::ostream& os, const std::string& ind,
               const std::string& ra, const std::string& rc, int r, int kd,
               const std::string& cont) {
  for (int m = 0; m < r; ++m) {
    for (int n = 0; n <= m; ++n) {
      for (int k = 0; k < kd; ++k) {
        os << ind << elem(rc, m, n) << " -= " << elem(ra, m, k) << "*"
           << elem(ra, n, k) << ";" << cont;
      }
    }
  }
}

/// Emits the sgemm_tile body: rC (r×c) -= rA·rBᵀ with depth k.
void emit_gemm(std::ostream& os, const std::string& ind,
               const std::string& ra, const std::string& rb,
               const std::string& rc, int r, int c, int kd,
               const std::string& cont) {
  for (int m = 0; m < r; ++m) {
    for (int n = 0; n < c; ++n) {
      for (int k = 0; k < kd; ++k) {
        os << ind << elem(rc, m, n) << " -= " << elem(ra, m, k) << "*"
           << elem(rb, n, k) << ";" << cont;
      }
    }
  }
}

/// Full-unroll load/store with constant offsets: element (i, j) of this
/// matrix lives at dA[(j*N + i)*C] after the per-thread base adjustment.
void emit_move_full_const(std::ostream& os, const std::string& ind,
                          const std::string& reg, int row0, int col0, int r,
                          int c, int n, int chunk, bool store) {
  for (int j = 0; j < c; ++j) {
    for (int i = 0; i < r; ++i) {
      const long off = (static_cast<long>(col0 + j) * n + (row0 + i)) * chunk;
      if (store) {
        os << ind << "dA[" << off << "] = " << elem(reg, i, j) << ";\n";
      } else {
        os << ind << elem(reg, i, j) << " = dA[" << off << "];\n";
      }
    }
  }
}

void emit_move_lower_const(std::ostream& os, const std::string& ind,
                           const std::string& reg, int row0, int r, int n,
                           int chunk, bool store) {
  for (int j = 0; j < r; ++j) {
    for (int i = j; i < r; ++i) {
      const long off = (static_cast<long>(row0 + j) * n + (row0 + i)) * chunk;
      if (store) {
        os << ind << "dA[" << off << "] = " << elem(reg, i, j) << ";\n";
      } else {
        os << ind << elem(reg, i, j) << " = dA[" << off << "];\n";
      }
    }
  }
}

void emit_register_decls(std::ostream& os, int num_regs, int nb) {
  os << "    float inv;\n";
  for (int r = 0; r < num_regs; ++r) {
    os << "    float";
    bool first = true;
    for (int j = 0; j < nb; ++j) {
      for (int i = 0; i < nb; ++i) {
        os << (first ? " " : ", ") << elem(reg_name(r), i, j);
        first = false;
      }
    }
    os << ";\n";
  }
}

/// Macro definitions for the partial-unroll variant (paper Figures 9–10
/// after pyexpander expansion of the inner $for loops).
void emit_macros(std::ostream& os, int nb) {
  const std::string cont = " \\\n";

  os << "#define load_full(_m, _n, rA)" << cont
     << "    dAp = dA + (_m)*NB*C + (_n)*NB*N*C;" << cont;
  for (int j = 0; j < nb; ++j) {
    for (int i = 0; i < nb; ++i) {
      os << "    rA##_" << i << j << " = *dAp; dAp += C;" << cont;
    }
    os << "    dAp += (N-NB)*C;" << cont;
  }
  os << "    (void)0\n\n";

  os << "#define store_full(_m, _n, rA)" << cont
     << "    dAp = dA + (_m)*NB*C + (_n)*NB*N*C;" << cont;
  for (int j = 0; j < nb; ++j) {
    for (int i = 0; i < nb; ++i) {
      os << "    *dAp = rA##_" << i << j << "; dAp += C;" << cont;
    }
    os << "    dAp += (N-NB)*C;" << cont;
  }
  os << "    (void)0\n\n";

  os << "#define load_lower(_m, _n, rA)" << cont
     << "    dAp = dA + (_m)*NB*C + (_n)*NB*N*C;" << cont;
  for (int j = 0; j < nb; ++j) {
    for (int i = j; i < nb; ++i) {
      os << "    rA##_" << i << j << " = *dAp; dAp += C;" << cont;
    }
    os << "    dAp += (N-NB+" << (j + 1) << ")*C;" << cont;
  }
  os << "    (void)0\n\n";

  os << "#define store_lower(_m, _n, rA)" << cont
     << "    dAp = dA + (_m)*NB*C + (_n)*NB*N*C;" << cont;
  for (int j = 0; j < nb; ++j) {
    for (int i = j; i < nb; ++i) {
      os << "    *dAp = rA##_" << i << j << "; dAp += C;" << cont;
    }
    os << "    dAp += (N-NB+" << (j + 1) << ")*C;" << cont;
  }
  os << "    (void)0\n\n";

  os << "#define spotrf_tile(rA)" << cont;
  {
    std::ostringstream body;
    emit_potrf(body, "    ", "rA##", nb, cont);
    os << body.str();
  }
  os << "    (void)0\n\n";

  os << "#define strsm_tile(rA1_, rA2_)" << cont;
  {
    std::ostringstream body;
    emit_trsm(body, "    ", "rA1_##", "rA2_##", nb, nb, cont);
    os << body.str();
  }
  os << "    (void)0\n\n";

  os << "#define ssyrk_tile(rA1_, rA2_)" << cont;
  {
    std::ostringstream body;
    emit_syrk(body, "    ", "rA1_##", "rA2_##", nb, nb, cont);
    os << body.str();
  }
  os << "    (void)0\n\n";

  os << "#define sgemm_tile(rA1_, rA2_, rA3_)" << cont;
  {
    std::ostringstream body;
    emit_gemm(body, "    ", "rA1_##", "rA2_##", "rA3_##", nb, nb, nb, cont);
    os << body.str();
  }
  os << "    (void)0\n\n";
}

/// Rolled tile-loop driver matching build_tile_program's op order
/// (paper Fig 11 shows the top-looking one).
void emit_driver(std::ostream& os, Looking looking) {
  switch (looking) {
    case Looking::kTop:
      os << "    for (int kk = 0; kk < T; kk++) {\n"
         << "        for (int nn = 0; nn < kk; nn++) {\n"
         << "            load_full(kk, nn, rA3);\n"
         << "            for (int mm = 0; mm < nn; mm++) {\n"
         << "                load_full(kk, mm, rA1);\n"
         << "                load_full(nn, mm, rA2);\n"
         << "                sgemm_tile(rA1, rA2, rA3);\n"
         << "            }\n"
         << "            load_lower(nn, nn, rA1);\n"
         << "            strsm_tile(rA1, rA3);\n"
         << "            store_full(kk, nn, rA3);\n"
         << "        }\n"
         << "        load_lower(kk, kk, rA1);\n"
         << "        for (int nn = 0; nn < kk; nn++) {\n"
         << "            load_full(kk, nn, rA2);\n"
         << "            ssyrk_tile(rA2, rA1);\n"
         << "        }\n"
         << "        spotrf_tile(rA1);\n"
         << "        store_lower(kk, kk, rA1);\n"
         << "    }\n";
      break;
    case Looking::kLeft:
      os << "    for (int kk = 0; kk < T; kk++) {\n"
         << "        if (kk > 0) {\n"
         << "            load_lower(kk, kk, rA1);\n"
         << "            for (int mm = 0; mm < kk; mm++) {\n"
         << "                load_full(kk, mm, rA2);\n"
         << "                ssyrk_tile(rA2, rA1);\n"
         << "            }\n"
         << "            store_lower(kk, kk, rA1);\n"
         << "            for (int ii = kk+1; ii < T; ii++) {\n"
         << "                load_full(ii, kk, rA3);\n"
         << "                for (int mm = 0; mm < kk; mm++) {\n"
         << "                    load_full(ii, mm, rA1);\n"
         << "                    load_full(kk, mm, rA2);\n"
         << "                    sgemm_tile(rA1, rA2, rA3);\n"
         << "                }\n"
         << "                store_full(ii, kk, rA3);\n"
         << "            }\n"
         << "        }\n"
         << "        load_lower(kk, kk, rA1);\n"
         << "        spotrf_tile(rA1);\n"
         << "        store_lower(kk, kk, rA1);\n"
         << "        for (int ii = kk+1; ii < T; ii++) {\n"
         << "            load_full(ii, kk, rA3);\n"
         << "            strsm_tile(rA1, rA3);\n"
         << "            store_full(ii, kk, rA3);\n"
         << "        }\n"
         << "    }\n";
      break;
    case Looking::kRight:
      os << "    for (int kk = 0; kk < T; kk++) {\n"
         << "        load_lower(kk, kk, rA1);\n"
         << "        spotrf_tile(rA1);\n"
         << "        store_lower(kk, kk, rA1);\n"
         << "        for (int ii = kk+1; ii < T; ii++) {\n"
         << "            load_full(ii, kk, rA3);\n"
         << "            strsm_tile(rA1, rA3);\n"
         << "            store_full(ii, kk, rA3);\n"
         << "        }\n"
         << "        for (int jj = kk+1; jj < T; jj++) {\n"
         << "            load_lower(jj, jj, rA1);\n"
         << "            load_full(jj, kk, rA2);\n"
         << "            ssyrk_tile(rA2, rA1);\n"
         << "            store_lower(jj, jj, rA1);\n"
         << "            for (int ii = jj+1; ii < T; ii++) {\n"
         << "                load_full(ii, jj, rA3);\n"
         << "                load_full(ii, kk, rA1);\n"
         << "                load_full(jj, kk, rA2);\n"
         << "                sgemm_tile(rA1, rA2, rA3);\n"
         << "                store_full(ii, jj, rA3);\n"
         << "            }\n"
         << "        }\n"
         << "    }\n";
      break;
  }
}

}  // namespace

std::string kernel_name(const CodegenConfig& config) {
  std::ostringstream os;
  os << "spotrf_batch_n" << config.n << "_nb" << config.nb << '_'
     << to_string(config.looking) << '_' << to_string(config.unroll) << "_c"
     << config.chunk;
  return os.str();
}

std::string generate_cuda_kernel(const CodegenConfig& config) {
  IBCHOL_CHECK(config.n >= 1 && config.nb >= 1 && config.nb <= config.n,
               "invalid codegen dimensions");
  // Fully unrolled code handles corner tiles naturally (every offset is a
  // constant); the macro-based partial-unroll driver assumes uniform NB×NB
  // tiles, so non-divisible dimensions use dedicated kernels there — the
  // paper's corner-case arrangement.
  IBCHOL_CHECK(config.unroll == Unroll::kFull || config.n % config.nb == 0,
               "partially unrolled source generation covers dimensions "
               "divisible by the tile size; corner cases use dedicated "
               "kernels");
  IBCHOL_CHECK(config.chunk > 0 && config.chunk % 32 == 0,
               "chunk must be a positive multiple of the warp size");

  const TileProgram program =
      build_tile_program(config.n, config.nb, config.looking);
  const std::string name = kernel_name(config);

  std::ostringstream os;
  os << "// Auto-generated by ibchol cuda_codegen — do not edit.\n"
     << "// Batch Cholesky factorization, interleaved chunked layout.\n"
     << "// n=" << config.n << " nb=" << config.nb << " looking="
     << to_string(config.looking) << " unroll=" << to_string(config.unroll)
     << " chunk=" << config.chunk << " math=" << to_string(config.math)
     << "\n";
  if (config.math == MathMode::kFastMath) {
    os << "// Compile with: nvcc --use_fast_math\n";
  }
  os << "\n#define N " << config.n << "\n#define NB " << config.nb
     << "\n#define T " << (config.n / config.nb) << "\n#define C "
     << config.chunk << "\n\n";

  if (config.unroll == Unroll::kPartial) emit_macros(os, config.nb);

  os << "extern \"C\" __global__ void\n" << name
     << "(float* __restrict__ dA)\n{\n"
     << "    // One thread block factors one chunk of C matrices; each\n"
     << "    // thread owns the lane of one matrix within the chunk.\n"
     << "    dA += (long)blockIdx.x * N*N*C + threadIdx.x;\n";

  if (config.unroll == Unroll::kPartial) {
    emit_register_decls(os, program.num_register_tiles(), config.nb);
    os << "    float* dAp;\n\n";
    emit_driver(os, config.looking);
  } else {
    emit_register_decls(os, program.num_register_tiles(), config.nb);
    os << '\n';
    for (const auto& op : program.ops) {
      os << "    // " << to_string(op) << '\n';
      const std::string r1 = reg_name(op.r1);
      const std::string r2 = reg_name(op.r2);
      const std::string r3 = reg_name(op.r3);
      switch (op.kind) {
        case TileOp::Kind::kLoadFull:
          emit_move_full_const(os, "    ", r1, op.row0, op.col0, op.rows,
                               op.cols, config.n, config.chunk, false);
          break;
        case TileOp::Kind::kStoreFull:
          emit_move_full_const(os, "    ", r1, op.row0, op.col0, op.rows,
                               op.cols, config.n, config.chunk, true);
          break;
        case TileOp::Kind::kLoadLower:
          emit_move_lower_const(os, "    ", r1, op.row0, op.rows, config.n,
                                config.chunk, false);
          break;
        case TileOp::Kind::kStoreLower:
          emit_move_lower_const(os, "    ", r1, op.row0, op.rows, config.n,
                                config.chunk, true);
          break;
        case TileOp::Kind::kPotrf:
          emit_potrf(os, "    ", r1, op.rows, "\n");
          break;
        case TileOp::Kind::kTrsm:
          emit_trsm(os, "    ", r1, r2, op.rows, op.cols, "\n");
          break;
        case TileOp::Kind::kSyrk:
          emit_syrk(os, "    ", r1, r2, op.rows, op.kdim, "\n");
          break;
        case TileOp::Kind::kGemm:
          emit_gemm(os, "    ", r1, r2, r3, op.rows, op.cols, op.kdim, "\n");
          break;
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ibchol
