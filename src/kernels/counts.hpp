// Exact operation counting for tile programs.
//
// The SIMT cost model is driven by exact per-matrix counts of memory
// elements moved and arithmetic instructions executed, derived from the
// same TileProgram the CPU substrate executes. Counting loops mirror the
// paper's microkernels (Fig 9) statement for statement, so the counts are
// exact, not asymptotic.
#pragma once

#include <cstdint>

#include "kernels/options.hpp"
#include "kernels/tile_program.hpp"

namespace ibchol {

/// Element-granular memory and instruction counts for one matrix.
struct OpCounts {
  std::int64_t load_elems = 0;   ///< elements read from memory
  std::int64_t store_elems = 0;  ///< elements written to memory
  std::int64_t fma = 0;          ///< fused multiply-adds
  std::int64_t mul = 0;          ///< plain multiplies
  std::int64_t div = 0;          ///< divisions / reciprocals
  std::int64_t sqrt = 0;         ///< square roots

  OpCounts& operator+=(const OpCounts& o) {
    load_elems += o.load_elems;
    store_elems += o.store_elems;
    fma += o.fma;
    mul += o.mul;
    div += o.div;
    sqrt += o.sqrt;
    return *this;
  }

  /// Floating point operations with the usual convention (fma = 2 flops;
  /// div and sqrt = 1 each).
  [[nodiscard]] std::int64_t flops() const {
    return 2 * fma + mul + div + sqrt;
  }

  /// Issue-slot estimate of the arithmetic work: divisions and square roots
  /// expand to multi-instruction sequences. IEEE-compliant single precision
  /// division/sqrt cost ~20 SASS instructions; --use_fast_math reduces them
  /// to ~4 (approximate reciprocal / rsqrt plus a fixup).
  [[nodiscard]] std::int64_t issue_slots(MathMode math) const {
    const std::int64_t special = math == MathMode::kFastMath ? 4 : 20;
    return fma + mul + special * (div + sqrt);
  }

  [[nodiscard]] bool operator==(const OpCounts&) const = default;
};

/// Counts for a single tile operation.
[[nodiscard]] OpCounts count_op(const TileOp& op);

/// Aggregate counts over a whole program.
[[nodiscard]] OpCounts count_program(const TileProgram& program);

/// Static code size (instruction estimate) of a generated kernel.
struct CodeSize {
  std::int64_t instructions = 0;  ///< estimated SASS instructions
  [[nodiscard]] std::int64_t bytes() const { return instructions * 8; }
};

/// Estimates the generated kernel's static code size for the given unroll
/// mode. With full unrolling every tile op's body appears in the
/// instruction stream once per op; with partial unrolling each syntactic
/// site (paper Fig 11: one gemm site, one trsm site, one syrk site, one
/// potrf site, and their load/store companions) appears once, plus loop
/// control overhead.
[[nodiscard]] CodeSize estimate_code_size(const TileProgram& program,
                                          Unroll unroll, MathMode math);

/// The paper's reporting convention: GFLOP rate always uses (1/3)·n³ flops
/// per matrix regardless of what the kernel actually executes.
[[nodiscard]] double nominal_flops_per_matrix(int n);

}  // namespace ibchol
