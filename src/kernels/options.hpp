// Enumerations for the paper's categorical tuning parameters.
#pragma once

#include <cstdint>
#include <string>

namespace ibchol {

/// Order of evaluation of the tile operations (paper §II.A / parameter 2).
/// Right-looking is aggressive evaluation, left-looking is lazy, and
/// top-looking is the "laziest" — it minimizes writes to memory.
enum class Looking : std::uint8_t { kRight, kLeft, kTop };

/// Whether the outer (tile-level) loops are unrolled in addition to the
/// always-unrolled tile microkernels (paper parameter 5).
enum class Unroll : std::uint8_t { kPartial, kFull };

/// IEEE-compliant arithmetic vs the CUDA --use_fast_math mode, which
/// relaxes square root and division and flushes denormals (paper §III).
enum class MathMode : std::uint8_t { kIeee, kFastMath };

/// Which triangle of the symmetric input is referenced and which factor is
/// produced: kLower gives A = L·Lᵀ (the paper's choice), kUpper gives
/// A = Uᵀ·U ("upper triangular matrices can be supported in the same
/// manner", paper §II.C) — implemented by running the lower schedule over
/// the transposed index map.
enum class Triangle : std::uint8_t { kLower, kUpper };

/// How the CPU substrate executes a tile program. The interpreter walks the
/// op list with runtime trip counts (a switch per op); the specialized
/// executor binds each op to a template instantiation with compile-time
/// tile dimensions — the CPU analog of the paper's generated, fully
/// unrolled pyexpander kernels; the vectorized executor runs explicit SIMD
/// intrinsic lane-block bodies selected by runtime ISA dispatch (see
/// cpu/simd/). All produce identical schedules; the interpreter is kept as
/// the correctness oracle. kAuto consults the measured per-(n, isa)
/// dispatch table (cpu/chunk_pipeline.hpp) and resolves to the executor
/// that wins at that size on the detected SIMD tier.
enum class CpuExec : std::uint8_t {
  kInterpreter,
  kSpecialized,
  kVectorized,
  kAuto
};

/// Instruction-set tier of the vectorized executor. kAuto resolves to the
/// widest tier the executing CPU supports at runtime (cpuid dispatch); the
/// explicit tiers force a narrower body — the scalar tier is compiled
/// unconditionally, so the same binary runs on hosts without AVX. Requests
/// above the detected tier are clamped, never faulted.
enum class SimdIsa : std::uint8_t { kAuto, kScalar, kAvx2, kAvx512 };

/// Element width of the matrices as *stored* in the interleaved layout.
/// kFp32 is the classic path (storage == compute). kBf16/kFp16 hold the
/// batch as 16-bit words and widen to fp32 on the way into the chunk
/// pipeline's pack scratch, so every tile-op accumulates in full fp32
/// registers and only the memory traffic halves. Reduced storage rounds
/// the input once on ingest and the factor once on write-back; iterative
/// refinement (cpu/refine.*) recovers solve accuracy against an
/// fp32-held right-hand side.
enum class StoragePrec : std::uint8_t { kFp32, kBf16, kFp16 };

[[nodiscard]] std::string to_string(Looking looking);
[[nodiscard]] std::string to_string(Unroll unroll);
[[nodiscard]] std::string to_string(MathMode math);
[[nodiscard]] std::string to_string(Triangle triangle);
[[nodiscard]] std::string to_string(CpuExec exec);
[[nodiscard]] std::string to_string(SimdIsa isa);
[[nodiscard]] std::string to_string(StoragePrec prec);

/// Parse helpers (accept the to_string spellings); throw ibchol::Error on
/// unknown values.
[[nodiscard]] Looking looking_from_string(const std::string& s);
[[nodiscard]] Unroll unroll_from_string(const std::string& s);
[[nodiscard]] MathMode math_from_string(const std::string& s);
[[nodiscard]] CpuExec cpu_exec_from_string(const std::string& s);
[[nodiscard]] SimdIsa simd_isa_from_string(const std::string& s);
[[nodiscard]] StoragePrec storage_prec_from_string(const std::string& s);

}  // namespace ibchol
