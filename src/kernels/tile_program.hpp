// Tile-program intermediate representation.
//
// The paper generates CUDA kernels with the pyexpander preprocessor: a
// blocked Cholesky factorization is expressed as a sequence of operations on
// n_b×n_b register tiles — load/store tiles, and the four microkernels
// spotrf_tile / strsm_tile / ssyrk_tile / sgemm_tile (paper Figures 9–12).
//
// This module reifies that generated code as data: a TileProgram is the
// exact op sequence one matrix undergoes. The same program is
//   (1) executed by the CPU substrate across the interleaved batch
//       (src/cpu/interleaved_exec.*) — real numerics;
//   (2) costed by the SIMT model (src/simt/cost_model.*) — exact per-matrix
//       load/store/flop counts drive the performance model;
//   (3) rendered back to CUDA C text (cuda_codegen.*) for inspection.
//
// Tile coordinates are element offsets (row0, col0) with explicit tile
// dimensions, so matrices whose dimension is not divisible by n_b are
// handled with smaller edge tiles (the paper's "corner cases").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/options.hpp"
#include "util/error.hpp"

namespace ibchol {

/// One operation on register tiles. Register ids index a small register-tile
/// file; the paper's generated kernels use three (rA1, rA2, rA3).
struct TileOp {
  enum class Kind : std::uint8_t {
    kLoadFull,    ///< reg[r1] <- full rows×cols tile at (row0, col0)
    kLoadLower,   ///< reg[r1] <- lower-triangular rows×rows tile at (row0, col0)
    kStoreFull,   ///< full tile reg[r1] -> memory at (row0, col0)
    kStoreLower,  ///< lower tile reg[r1] -> memory at (row0, col0)
    kPotrf,       ///< reg[r1] <- chol(reg[r1]), rows×rows lower
    kTrsm,        ///< reg[r2] <- reg[r2] · tril(reg[r1])^{-T}; r2 is rows×cols
    kSyrk,        ///< reg[r2] (rows×rows lower) -= reg[r1]·reg[r1]ᵀ, k = kdim
    kGemm,        ///< reg[r3] (rows×cols) -= reg[r1]·reg[r2]ᵀ, k = kdim
  };

  Kind kind;
  std::int8_t r1 = 0;   ///< first register tile operand
  std::int8_t r2 = 0;   ///< second operand (kTrsm dst, kSyrk dst, kGemm B)
  std::int8_t r3 = 0;   ///< third operand (kGemm dst)
  std::int16_t row0 = 0;  ///< element row of the tile's top-left (loads/stores)
  std::int16_t col0 = 0;  ///< element column of the tile's top-left
  std::int16_t rows = 0;  ///< tile rows (dst tile rows for compute ops)
  std::int16_t cols = 0;  ///< tile cols
  std::int16_t kdim = 0;  ///< contraction depth for kSyrk/kGemm

  [[nodiscard]] bool operator==(const TileOp&) const = default;
};

[[nodiscard]] std::string to_string(TileOp::Kind kind);
[[nodiscard]] std::string to_string(const TileOp& op);

/// A complete single-matrix factorization expressed as tile operations.
struct TileProgram {
  int n = 0;            ///< matrix dimension
  int nb = 0;           ///< tile size
  Looking looking = Looking::kTop;
  std::vector<TileOp> ops;

  /// Number of register tiles the program uses (max register id + 1).
  [[nodiscard]] int num_register_tiles() const;

  /// Number of tile rows/columns: ceil(n / nb).
  [[nodiscard]] int grid() const { return (n + nb - 1) / nb; }

  [[nodiscard]] std::string to_string() const;
};

/// Builds the tile program for an n×n lower Cholesky factorization with tile
/// size nb and the given evaluation order. Requires 1 <= nb and 1 <= n.
/// Edge tiles are emitted when n % nb != 0.
[[nodiscard]] TileProgram build_tile_program(int n, int nb, Looking looking);

/// Validates structural invariants of a program: in-bounds tiles, operands
/// loaded before use, every stored tile previously computed. Throws
/// ibchol::Error with a diagnostic if an invariant is violated.
/// Returns the number of ops checked.
std::size_t validate_program(const TileProgram& program);

}  // namespace ibchol
