#include "kernels/variant.hpp"

#include <sstream>

#include "layout/layout.hpp"
#include "util/error.hpp"

namespace ibchol {

void TuningParams::validate(int n) const {
  IBCHOL_CHECK(n >= 1, "matrix dimension must be positive");
  IBCHOL_CHECK(nb >= 1, "tile size must be positive");
  IBCHOL_CHECK(!chunked || (chunk_size > 0 && chunk_size % kWarpSize == 0),
               "chunk size must be a positive multiple of the warp size");
  // Non-chunked layouts still honor chunk_size as the CPU pipeline's
  // pack-scratch size (0 = automatic sizing rule).
  IBCHOL_CHECK(chunked || chunk_size == 0 || chunk_size % kWarpSize == 0,
               "pack-scratch chunk size must be 0 (auto) or a multiple of "
               "the warp size");
  IBCHOL_CHECK(lookahead >= 1, "tiled lookahead must be at least 1");
}

std::string TuningParams::to_string() const {
  std::ostringstream os;
  os << "TuningParams(nb=" << nb << ", looking=" << ibchol::to_string(looking)
     << ", " << (chunked ? "chunked(" + std::to_string(chunk_size) + ")"
                         : "non-chunked")
     << ", unroll=" << ibchol::to_string(unroll)
     << ", math=" << ibchol::to_string(math)
     << ", cache=" << (prefer_shared ? "shared" : "L1")
     << ", exec=" << ibchol::to_string(exec);
  if (exec == CpuExec::kVectorized) os << ", isa=" << ibchol::to_string(isa);
  if (storage != StoragePrec::kFp32) {
    os << ", storage=" << ibchol::to_string(storage);
  }
  if (lookahead != 2) os << ", lookahead=" << lookahead;
  os << ")";
  return os.str();
}

std::string TuningParams::key() const {
  std::ostringstream os;
  os << "nb" << nb << '_' << ibchol::to_string(looking) << '_'
     // A non-chunked point with a nonzero chunk_size is a distinct CPU
     // tuning point (pack-scratch size); plain "nc" keeps historical keys.
     << (chunked ? "c" + std::to_string(chunk_size)
                 : chunk_size > 0 ? "nc" + std::to_string(chunk_size) : "nc")
     << '_'
     << ibchol::to_string(unroll) << '_' << ibchol::to_string(math) << '_'
     << (prefer_shared ? "sh" : "l1");
  // The executor mode (and, for the vectorized executor, its ISA tier) is
  // appended only when it deviates from the default so existing
  // datasets/caches keyed on the historical spelling stay valid.
  if (exec == CpuExec::kInterpreter) os << "_interp";
  if (exec == CpuExec::kAuto) os << "_auto";
  if (exec == CpuExec::kVectorized) {
    os << "_vec";
    if (isa != SimdIsa::kAuto) os << '_' << ibchol::to_string(isa);
  }
  // Storage precision, the seventh axis, follows the same deviation-only
  // rule: fp32 points keep their historical keys.
  if (storage != StoragePrec::kFp32) os << '_' << ibchol::to_string(storage);
  // Tiled lookahead, the eighth axis: deviation-only again, so every
  // small-n point (which never reads it) keeps its historical key.
  if (lookahead != 2) os << "_la" << lookahead;
  return os.str();
}

const std::vector<int>& standard_chunk_sizes() {
  static const std::vector<int> sizes{32, 64, 128, 256, 512};
  return sizes;
}

const std::vector<int>& standard_tile_sizes() {
  static const std::vector<int> sizes{1, 2, 3, 4, 5, 6, 7, 8};
  return sizes;
}

}  // namespace ibchol
