#include "kernels/tile_program.hpp"

#include <algorithm>
#include <sstream>

namespace ibchol {

std::string to_string(Looking looking) {
  switch (looking) {
    case Looking::kRight: return "right";
    case Looking::kLeft: return "left";
    case Looking::kTop: return "top";
  }
  return "?";
}

std::string to_string(Unroll unroll) {
  return unroll == Unroll::kFull ? "full" : "partial";
}

std::string to_string(MathMode math) {
  return math == MathMode::kFastMath ? "fast" : "ieee";
}

std::string to_string(Triangle triangle) {
  return triangle == Triangle::kUpper ? "upper" : "lower";
}

std::string to_string(CpuExec exec) {
  switch (exec) {
    case CpuExec::kInterpreter: return "interp";
    case CpuExec::kSpecialized: return "spec";
    case CpuExec::kVectorized: return "vectorized";
    case CpuExec::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto: return "auto";
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kAvx512: return "avx512";
  }
  return "?";
}

Looking looking_from_string(const std::string& s) {
  if (s == "right") return Looking::kRight;
  if (s == "left") return Looking::kLeft;
  if (s == "top") return Looking::kTop;
  throw Error("unknown looking order: " + s);
}

Unroll unroll_from_string(const std::string& s) {
  if (s == "full") return Unroll::kFull;
  if (s == "partial") return Unroll::kPartial;
  throw Error("unknown unroll mode: " + s);
}

MathMode math_from_string(const std::string& s) {
  if (s == "ieee") return MathMode::kIeee;
  if (s == "fast") return MathMode::kFastMath;
  throw Error("unknown math mode: " + s);
}

CpuExec cpu_exec_from_string(const std::string& s) {
  if (s == "interp") return CpuExec::kInterpreter;
  if (s == "spec") return CpuExec::kSpecialized;
  if (s == "vectorized") return CpuExec::kVectorized;
  if (s == "auto") return CpuExec::kAuto;
  throw Error("unknown cpu exec mode: " + s);
}

SimdIsa simd_isa_from_string(const std::string& s) {
  if (s == "auto") return SimdIsa::kAuto;
  if (s == "scalar") return SimdIsa::kScalar;
  if (s == "avx2") return SimdIsa::kAvx2;
  if (s == "avx512") return SimdIsa::kAvx512;
  throw Error("unknown simd isa tier: " + s);
}

std::string to_string(StoragePrec prec) {
  switch (prec) {
    case StoragePrec::kFp32: return "fp32";
    case StoragePrec::kBf16: return "bf16";
    case StoragePrec::kFp16: return "fp16";
  }
  return "?";
}

StoragePrec storage_prec_from_string(const std::string& s) {
  if (s == "fp32") return StoragePrec::kFp32;
  if (s == "bf16") return StoragePrec::kBf16;
  if (s == "fp16") return StoragePrec::kFp16;
  throw Error("unknown storage precision: " + s);
}

std::string to_string(TileOp::Kind kind) {
  switch (kind) {
    case TileOp::Kind::kLoadFull: return "load_full";
    case TileOp::Kind::kLoadLower: return "load_lower";
    case TileOp::Kind::kStoreFull: return "store_full";
    case TileOp::Kind::kStoreLower: return "store_lower";
    case TileOp::Kind::kPotrf: return "potrf_tile";
    case TileOp::Kind::kTrsm: return "trsm_tile";
    case TileOp::Kind::kSyrk: return "syrk_tile";
    case TileOp::Kind::kGemm: return "gemm_tile";
  }
  return "?";
}

std::string to_string(const TileOp& op) {
  std::ostringstream os;
  os << to_string(op.kind) << "(r" << int(op.r1);
  switch (op.kind) {
    case TileOp::Kind::kTrsm:
    case TileOp::Kind::kSyrk:
      os << ", r" << int(op.r2);
      break;
    case TileOp::Kind::kGemm:
      os << ", r" << int(op.r2) << ", r" << int(op.r3);
      break;
    default:
      break;
  }
  os << "; at(" << op.row0 << ',' << op.col0 << "), " << op.rows << 'x'
     << op.cols;
  if (op.kdim != 0) os << ", k=" << op.kdim;
  os << ')';
  return os.str();
}

int TileProgram::num_register_tiles() const {
  int max_reg = -1;
  for (const auto& op : ops) {
    max_reg = std::max({max_reg, int(op.r1), int(op.r2), int(op.r3)});
  }
  return max_reg + 1;
}

std::string TileProgram::to_string() const {
  std::ostringstream os;
  os << "tile_program(n=" << n << ", nb=" << nb << ", "
     << ibchol::to_string(looking) << ", " << ops.size() << " ops)";
  return os.str();
}

namespace {

// The paper's generated kernels use three register tiles rA1, rA2, rA3.
constexpr std::int8_t kRA1 = 0;
constexpr std::int8_t kRA2 = 1;
constexpr std::int8_t kRA3 = 2;

/// Emits tile programs for one (n, nb) pair. Tile t spans element rows
/// [t*nb, t*nb + dim(t)), dim(t) = min(nb, n - t*nb).
class Builder {
 public:
  Builder(int n, int nb) : n_(n), nb_(nb), grid_((n + nb - 1) / nb) {}

  [[nodiscard]] int grid() const { return grid_; }

  [[nodiscard]] std::int16_t dim(int t) const {
    return static_cast<std::int16_t>(std::min(nb_, n_ - t * nb_));
  }

  [[nodiscard]] std::int16_t at(int t) const {
    return static_cast<std::int16_t>(t * nb_);
  }

  void load_full(int tm, int tn, std::int8_t reg) {
    ops_.push_back({TileOp::Kind::kLoadFull, reg, 0, 0, at(tm), at(tn),
                    dim(tm), dim(tn), 0});
  }

  void load_lower(int t, std::int8_t reg) {
    ops_.push_back({TileOp::Kind::kLoadLower, reg, 0, 0, at(t), at(t), dim(t),
                    dim(t), 0});
  }

  void store_full(int tm, int tn, std::int8_t reg) {
    ops_.push_back({TileOp::Kind::kStoreFull, reg, 0, 0, at(tm), at(tn),
                    dim(tm), dim(tn), 0});
  }

  void store_lower(int t, std::int8_t reg) {
    ops_.push_back({TileOp::Kind::kStoreLower, reg, 0, 0, at(t), at(t), dim(t),
                    dim(t), 0});
  }

  void potrf(int t, std::int8_t reg) {
    // row0/col0 carry the tile's global diagonal position so executors can
    // report the failing column of a non-SPD matrix.
    ops_.push_back({TileOp::Kind::kPotrf, reg, 0, 0, at(t), at(t), dim(t),
                    dim(t), 0});
  }

  // dst (tm × tn tile) <- dst · tril(diag tile tn)^{-T}
  void trsm(int tm, int tn, std::int8_t tri, std::int8_t dst) {
    ops_.push_back({TileOp::Kind::kTrsm, tri, dst, 0, 0, 0, dim(tm), dim(tn),
                    0});
  }

  // dst (diag tile t, lower) -= a·aᵀ where a is dim(t)×dim(tk)
  void syrk(int t, int tk, std::int8_t a, std::int8_t dst) {
    ops_.push_back({TileOp::Kind::kSyrk, a, dst, 0, 0, 0, dim(t), dim(t),
                    dim(tk)});
  }

  // dst (tm × tn tile) -= a·bᵀ with contraction depth dim(tk)
  void gemm(int tm, int tn, int tk, std::int8_t a, std::int8_t b,
            std::int8_t dst) {
    ops_.push_back({TileOp::Kind::kGemm, a, b, dst, 0, 0, dim(tm), dim(tn),
                    dim(tk)});
  }

  [[nodiscard]] std::vector<TileOp> take() { return std::move(ops_); }

 private:
  int n_;
  int nb_;
  int grid_;
  std::vector<TileOp> ops_;
};

// Top-looking order (paper Fig 11): for each block row kk, bring the stripe
// to the left of the diagonal up to date (gemm + trsm, one store per tile),
// then update and factor the diagonal tile. Fewest memory writes.
std::vector<TileOp> build_top(Builder& b) {
  const int T = b.grid();
  for (int kk = 0; kk < T; ++kk) {
    for (int nn = 0; nn < kk; ++nn) {
      b.load_full(kk, nn, kRA3);
      for (int mm = 0; mm < nn; ++mm) {
        b.load_full(kk, mm, kRA1);
        b.load_full(nn, mm, kRA2);
        b.gemm(kk, nn, mm, kRA1, kRA2, kRA3);
      }
      b.load_lower(nn, kRA1);
      b.trsm(kk, nn, kRA1, kRA3);
      b.store_full(kk, nn, kRA3);
    }
    b.load_lower(kk, kRA1);
    for (int nn = 0; nn < kk; ++nn) {
      b.load_full(kk, nn, kRA2);
      b.syrk(kk, nn, kRA2, kRA1);
    }
    b.potrf(kk, kRA1);
    b.store_lower(kk, kRA1);
  }
  return b.take();
}

// Left-looking order (the LAPACK structure): for each block column kk,
// first apply all pending updates from the left to the whole panel and
// write it back, then factor the panel (potrf + trsm) in a second pass.
// The panel is therefore written twice per step.
std::vector<TileOp> build_left(Builder& b) {
  const int T = b.grid();
  for (int kk = 0; kk < T; ++kk) {
    // Pass 1: deferred updates to block column kk.
    if (kk > 0) {
      b.load_lower(kk, kRA1);
      for (int mm = 0; mm < kk; ++mm) {
        b.load_full(kk, mm, kRA2);
        b.syrk(kk, mm, kRA2, kRA1);
      }
      b.store_lower(kk, kRA1);
      for (int ii = kk + 1; ii < T; ++ii) {
        b.load_full(ii, kk, kRA3);
        for (int mm = 0; mm < kk; ++mm) {
          b.load_full(ii, mm, kRA1);
          b.load_full(kk, mm, kRA2);
          b.gemm(ii, kk, mm, kRA1, kRA2, kRA3);
        }
        b.store_full(ii, kk, kRA3);
      }
    }
    // Pass 2: factor the panel. The factored diagonal stays in rA1 for the
    // triangular solves below it.
    b.load_lower(kk, kRA1);
    b.potrf(kk, kRA1);
    b.store_lower(kk, kRA1);
    for (int ii = kk + 1; ii < T; ++ii) {
      b.load_full(ii, kk, kRA3);
      b.trsm(ii, kk, kRA1, kRA3);
      b.store_full(ii, kk, kRA3);
    }
  }
  return b.take();
}

// Right-looking order (aggressive evaluation): factor the panel, then
// immediately update the entire trailing submatrix — every trailing tile is
// read and written once per step, which maximizes memory writes.
std::vector<TileOp> build_right(Builder& b) {
  const int T = b.grid();
  for (int kk = 0; kk < T; ++kk) {
    b.load_lower(kk, kRA1);
    b.potrf(kk, kRA1);
    b.store_lower(kk, kRA1);
    for (int ii = kk + 1; ii < T; ++ii) {
      b.load_full(ii, kk, kRA3);
      b.trsm(ii, kk, kRA1, kRA3);
      b.store_full(ii, kk, kRA3);
    }
    for (int jj = kk + 1; jj < T; ++jj) {
      b.load_lower(jj, kRA1);
      b.load_full(jj, kk, kRA2);
      b.syrk(jj, kk, kRA2, kRA1);
      b.store_lower(jj, kRA1);
      for (int ii = jj + 1; ii < T; ++ii) {
        b.load_full(ii, jj, kRA3);
        b.load_full(ii, kk, kRA1);
        b.load_full(jj, kk, kRA2);
        b.gemm(ii, jj, kk, kRA1, kRA2, kRA3);
        b.store_full(ii, jj, kRA3);
      }
    }
  }
  return b.take();
}

}  // namespace

TileProgram build_tile_program(int n, int nb, Looking looking) {
  IBCHOL_CHECK(n >= 1, "matrix dimension must be >= 1");
  IBCHOL_CHECK(nb >= 1, "tile size must be >= 1");
  IBCHOL_CHECK(nb <= n, "tile size must not exceed the matrix dimension");
  TileProgram program;
  program.n = n;
  program.nb = nb;
  program.looking = looking;
  Builder b(n, nb);
  switch (looking) {
    case Looking::kTop: program.ops = build_top(b); break;
    case Looking::kLeft: program.ops = build_left(b); break;
    case Looking::kRight: program.ops = build_right(b); break;
  }
  return program;
}

std::size_t validate_program(const TileProgram& program) {
  struct RegState {
    bool valid = false;
    std::int16_t rows = 0;
    std::int16_t cols = 0;
    bool lower = false;
  };
  RegState regs[8];
  IBCHOL_CHECK(program.num_register_tiles() <= 8,
               "program uses too many register tiles");

  auto require = [&](bool cond, std::size_t idx, const TileOp& op,
                     const char* what) {
    if (!cond) {
      throw Error("tile program invariant violated at op " +
                  std::to_string(idx) + " (" + to_string(op) + "): " + what);
    }
  };

  for (std::size_t idx = 0; idx < program.ops.size(); ++idx) {
    const TileOp& op = program.ops[idx];
    switch (op.kind) {
      case TileOp::Kind::kLoadFull:
      case TileOp::Kind::kLoadLower: {
        require(op.row0 >= 0 && op.col0 >= 0 &&
                    op.row0 + op.rows <= program.n &&
                    op.col0 + op.cols <= program.n,
                idx, op, "tile out of bounds");
        const bool lower = op.kind == TileOp::Kind::kLoadLower;
        if (lower) {
          require(op.rows == op.cols && op.row0 == op.col0, idx, op,
                  "lower tile must be diagonal and square");
        }
        regs[op.r1] = {true, op.rows, op.cols, lower};
        break;
      }
      case TileOp::Kind::kStoreFull:
      case TileOp::Kind::kStoreLower: {
        require(regs[op.r1].valid, idx, op, "storing an unloaded register");
        require(regs[op.r1].rows == op.rows && regs[op.r1].cols == op.cols,
                idx, op, "stored tile dims differ from register contents");
        break;
      }
      case TileOp::Kind::kPotrf: {
        require(regs[op.r1].valid, idx, op, "potrf on unloaded register");
        require(regs[op.r1].rows == op.rows && op.rows == op.cols, idx, op,
                "potrf tile must be square");
        break;
      }
      case TileOp::Kind::kTrsm: {
        require(regs[op.r1].valid && regs[op.r2].valid, idx, op,
                "trsm on unloaded registers");
        require(regs[op.r1].rows == op.cols && regs[op.r1].cols == op.cols,
                idx, op, "trsm triangle dims mismatch");
        require(regs[op.r2].rows == op.rows && regs[op.r2].cols == op.cols,
                idx, op, "trsm target dims mismatch");
        break;
      }
      case TileOp::Kind::kSyrk: {
        require(regs[op.r1].valid && regs[op.r2].valid, idx, op,
                "syrk on unloaded registers");
        require(regs[op.r1].rows == op.rows && regs[op.r1].cols == op.kdim,
                idx, op, "syrk A dims mismatch");
        require(regs[op.r2].rows == op.rows && regs[op.r2].cols == op.rows,
                idx, op, "syrk C dims mismatch");
        break;
      }
      case TileOp::Kind::kGemm: {
        require(regs[op.r1].valid && regs[op.r2].valid && regs[op.r3].valid,
                idx, op, "gemm on unloaded registers");
        require(regs[op.r1].rows == op.rows && regs[op.r1].cols == op.kdim,
                idx, op, "gemm A dims mismatch");
        require(regs[op.r2].rows == op.cols && regs[op.r2].cols == op.kdim,
                idx, op, "gemm B dims mismatch");
        require(regs[op.r3].rows == op.rows && regs[op.r3].cols == op.cols,
                idx, op, "gemm C dims mismatch");
        break;
      }
    }
  }
  return program.ops.size();
}

}  // namespace ibchol
