// The paper's five-dimensional tuning space (plus the compile-mode and
// cache-carveout switches that appear in the evaluation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/options.hpp"

namespace ibchol {

/// One point of the kernel tuning space (paper §II.D):
///  1. tile size n_b,
///  2. looking order (right / left / top),
///  3. chunking (simple interleaved vs chunked interleaved layout),
///  4. chunk size (also the thread-block size; multiples of 32),
///  5. unrolling (tile ops only vs the whole factorization),
/// plus the IEEE/--use_fast_math switch and the L1-vs-shared carveout
/// (a Table I variable with next to no effect on these kernels — they use
/// no shared memory).
struct TuningParams {
  int nb = 8;
  Looking looking = Looking::kTop;
  bool chunked = true;
  int chunk_size = 64;
  Unroll unroll = Unroll::kPartial;
  MathMode math = MathMode::kIeee;
  bool prefer_shared = false;  ///< carveout: false = prefer L1
  /// CPU-substrate execution mode (not a paper tuning axis): specialized
  /// compile-time kernels (default), explicit-SIMD vectorized kernels, or
  /// the op-by-op interpreter kept as the correctness oracle. Model
  /// evaluators ignore it; measured evaluators honor it.
  CpuExec exec = CpuExec::kSpecialized;
  /// ISA tier of the vectorized executor (the sweep's sixth parameter —
  /// vector width). kAuto picks the widest tier the host supports via
  /// runtime cpuid dispatch; explicit tiers force a narrower body (clamped
  /// to what the host offers). Ignored unless exec == kVectorized.
  SimdIsa isa = SimdIsa::kAuto;
  /// Storage precision of the batch (the seventh parameter): fp32 is the
  /// classic path; kBf16/kFp16 hold matrices as 16-bit words and stage
  /// units through fp32 pack scratch (factor_batch_cpu_mixed), halving
  /// memory traffic at the cost of rounded storage. Only interleaved
  /// layouts support the reduced precisions.
  StoragePrec storage = StoragePrec::kFp32;
  /// Panel-lookahead depth of the tiled large-N path (the eighth
  /// parameter): how many steps the trailing update wavefront may run
  /// ahead of the last factored panel. Only the tiled DAG executor reads
  /// it (n > 64 routed through svc::BatchService::factor_tiled); it is
  /// order-preserving there, so a perf-only axis. The small-n executors
  /// ignore it.
  int lookahead = 2;

  /// Validates against a matrix dimension; throws ibchol::Error.
  void validate(int n) const;

  /// Effective tile size for dimension n (nb clamped to n).
  [[nodiscard]] int effective_nb(int n) const { return nb < n ? nb : n; }

  /// Thread-block size implied by the layout: the chunk size for chunked
  /// kernels (paper: "this parameter also defines the number of threads in
  /// a thread block"); simple interleaved kernels use a fixed 128-thread
  /// block.
  [[nodiscard]] int threads_per_block() const {
    return chunked ? chunk_size : 128;
  }

  [[nodiscard]] std::string to_string() const;

  /// Compact key such as "nb4_top_c64_full_ieee_l1" (stable, CSV-safe).
  [[nodiscard]] std::string key() const;

  [[nodiscard]] bool operator==(const TuningParams&) const = default;
};

/// The chunk sizes the paper sweeps (Fig 18).
[[nodiscard]] const std::vector<int>& standard_chunk_sizes();

/// The tile sizes the paper sweeps (Fig 15: n_b = 1…8).
[[nodiscard]] const std::vector<int>& standard_tile_sizes();

}  // namespace ibchol
