#include "als/als.hpp"

#include <cmath>

#include "core/batch_cholesky.hpp"
#include "layout/vector_layout.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ibchol {

AlsRecommender::AlsRecommender(const RatingsDataset& data, AlsOptions options)
    : data_(data), options_(std::move(options)) {
  IBCHOL_CHECK(options_.rank >= 1, "rank must be positive");
  IBCHOL_CHECK(options_.iterations >= 0, "iterations must be non-negative");
  options_.tuning.validate(options_.rank);
  Xoshiro256 rng(options_.seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(options_.rank));
  user_factors_.resize(static_cast<std::size_t>(data_.num_users) *
                       options_.rank);
  item_factors_.resize(static_cast<std::size_t>(data_.num_items) *
                       options_.rank);
  for (auto& x : user_factors_) x = static_cast<float>(rng.normal() * scale);
  for (auto& x : item_factors_) x = static_cast<float>(rng.normal() * scale);
}

double AlsRecommender::update_side(
    const std::vector<std::vector<std::int32_t>>& adjacency,
    const std::vector<float>& fixed, std::vector<float>& factors) const {
  const int f = options_.rank;
  const std::int64_t batch = static_cast<std::int64_t>(adjacency.size());
  const BatchLayout layout =
      BatchCholesky::make_layout(f, batch, options_.tuning);
  const BatchVectorLayout vlayout = BatchVectorLayout::matching(layout);

  AlignedBuffer<float> mats(layout.size_elems());
  AlignedBuffer<float> rhs(vlayout.size_elems());

  // Assemble the normal equations A_b = Σ v vᵀ + λ|Ω|I, b_b = Σ r·v,
  // writing straight into the interleaved layout.
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t b = 0; b < batch; ++b) {
    const auto& obs = adjacency[b];
    const double reg =
        options_.lambda * static_cast<double>(std::max<std::size_t>(
                              obs.size(), 1));
    // Lower triangle of the Gram matrix.
    for (int j = 0; j < f; ++j) {
      for (int i = j; i < f; ++i) {
        double acc = (i == j) ? reg : 0.0;
        for (const std::int32_t ridx : obs) {
          const Rating& r = data_.train[ridx];
          const std::int32_t other =
              (&adjacency == &data_.by_user) ? r.item : r.user;
          const float* vrow = fixed.data() + static_cast<std::size_t>(other) * f;
          acc += static_cast<double>(vrow[i]) * vrow[j];
        }
        mats[layout.index(b, i, j)] = static_cast<float>(acc);
        mats[layout.index(b, j, i)] = static_cast<float>(acc);
      }
    }
    for (int i = 0; i < f; ++i) {
      double acc = 0.0;
      for (const std::int32_t ridx : obs) {
        const Rating& r = data_.train[ridx];
        const std::int32_t other =
            (&adjacency == &data_.by_user) ? r.item : r.user;
        acc += static_cast<double>(r.value) *
               fixed[static_cast<std::size_t>(other) * f + i];
      }
      rhs[vlayout.index(b, i)] = static_cast<float>(acc);
    }
  }

  // Factor and solve the whole side as one batch.
  Timer timer;
  const BatchCholesky chol(layout, options_.tuning);
  const FactorResult result = chol.factorize<float>(mats.span());
  IBCHOL_CHECK(result.ok(),
               "ALS normal equations must be SPD (regularized Gram)");
  chol.solve<float>(std::span<const float>(mats.data(), mats.size()), vlayout,
                    rhs.span());
  const double seconds = timer.seconds();

  // Scatter solutions back to the factor matrix.
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int i = 0; i < f; ++i) {
      factors[static_cast<std::size_t>(b) * f + i] = rhs[vlayout.index(b, i)];
    }
  }
  return seconds;
}

std::vector<AlsIteration> AlsRecommender::run() {
  std::vector<AlsIteration> history;
  for (int it = 0; it < options_.iterations; ++it) {
    AlsIteration rec;
    rec.iteration = it + 1;
    rec.factor_seconds =
        update_side(data_.by_user, item_factors_, user_factors_);
    rec.factor_seconds +=
        update_side(data_.by_item, user_factors_, item_factors_);
    rec.train_rmse = train_rmse();
    rec.test_rmse = test_rmse();
    history.push_back(rec);
  }
  return history;
}

float AlsRecommender::predict(int user, int item) const {
  const int f = options_.rank;
  double acc = 0.0;
  for (int d = 0; d < f; ++d) {
    acc += static_cast<double>(
               user_factors_[static_cast<std::size_t>(user) * f + d]) *
           item_factors_[static_cast<std::size_t>(item) * f + d];
  }
  return static_cast<float>(acc);
}

double AlsRecommender::rmse(const std::vector<Rating>& ratings) const {
  if (ratings.empty()) return 0.0;
  double acc = 0.0;
  for (const Rating& r : ratings) {
    const double d = static_cast<double>(r.value) - predict(r.user, r.item);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(ratings.size()));
}

double AlsRecommender::train_rmse() const { return rmse(data_.train); }
double AlsRecommender::test_rmse() const { return rmse(data_.test); }

}  // namespace ibchol
