// Synthetic ratings generator for the ALS recommender.
//
// The paper's direct motivation is the Alternating Least Squares algorithm
// for recommender systems [10], where every user and item update solves a
// small SPD system — a batch Cholesky workload. Real rating datasets are
// not shipped with this repository, so this module synthesizes one with the
// statistics that matter for the solver: a planted low-rank structure plus
// noise (so ALS has something to recover and RMSE is checkable) and a
// Zipf-like item popularity (so per-user problem assembly has realistic
// skew).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ibchol {

/// One observed (user, item, rating) triple.
struct Rating {
  std::int32_t user = 0;
  std::int32_t item = 0;
  float value = 0.0f;
};

/// Generator options.
struct RatingsOptions {
  int num_users = 2000;
  int num_items = 1000;
  int planted_rank = 8;          ///< rank of the planted factor model
  double ratings_per_user = 30;  ///< mean observations per user
  double noise = 0.1;            ///< observation noise stddev
  double zipf_s = 1.1;           ///< item popularity exponent
  double test_fraction = 0.1;    ///< held-out fraction
  std::uint64_t seed = 1234;
};

/// A split ratings dataset with per-user and per-item adjacency.
struct RatingsDataset {
  int num_users = 0;
  int num_items = 0;
  std::vector<Rating> train;
  std::vector<Rating> test;
  /// Training ratings grouped by user / by item (indices into `train`).
  std::vector<std::vector<std::int32_t>> by_user;
  std::vector<std::vector<std::int32_t>> by_item;

  [[nodiscard]] std::size_t train_size() const { return train.size(); }
};

/// Generates a dataset; deterministic in the seed.
[[nodiscard]] RatingsDataset generate_ratings(const RatingsOptions& options);

}  // namespace ibchol
