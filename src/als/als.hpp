// Alternating Least Squares on top of the batch Cholesky API.
//
// Each half-iteration fixes one factor matrix and solves, for every user
// (or item), the f×f regularized normal-equation system
//     (Σ_{i∈Ω} v_i v_iᵀ + λ·|Ω|·I) x = Σ_{i∈Ω} r_i v_i.
// All systems of a half-iteration are assembled into one interleaved
// chunked batch and factored/solved by the library — precisely the batch
// workload that motivated the paper (reference [10]).
#pragma once

#include <cstdint>
#include <vector>

#include "als/ratings.hpp"
#include "kernels/variant.hpp"

namespace ibchol {

/// ALS configuration.
struct AlsOptions {
  int rank = 16;            ///< latent dimension f == batch matrix size
  double lambda = 0.05;     ///< ridge regularization (scaled by |Ω|)
  int iterations = 10;
  TuningParams tuning;      ///< batch Cholesky tuning for the solves
  std::uint64_t seed = 99;
};

/// Per-iteration convergence record.
struct AlsIteration {
  int iteration = 0;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double factor_seconds = 0.0;  ///< time spent in batched factor+solve
};

/// ALS trainer. Holds the factor matrices; run() performs the iterations.
class AlsRecommender {
 public:
  AlsRecommender(const RatingsDataset& data, AlsOptions options);

  /// Runs options.iterations alternating updates; returns the history.
  std::vector<AlsIteration> run();

  /// Predicted rating for (user, item).
  [[nodiscard]] float predict(int user, int item) const;

  [[nodiscard]] double train_rmse() const;
  [[nodiscard]] double test_rmse() const;

  [[nodiscard]] const std::vector<float>& user_factors() const {
    return user_factors_;
  }
  [[nodiscard]] const std::vector<float>& item_factors() const {
    return item_factors_;
  }
  [[nodiscard]] const AlsOptions& options() const { return options_; }

 private:
  /// One half-iteration: updates `factors` (users or items) from the fixed
  /// side. Returns seconds spent inside batched factor+solve.
  double update_side(const std::vector<std::vector<std::int32_t>>& adjacency,
                     const std::vector<float>& fixed,
                     std::vector<float>& factors) const;

  [[nodiscard]] double rmse(const std::vector<Rating>& ratings) const;

  const RatingsDataset& data_;
  AlsOptions options_;
  std::vector<float> user_factors_;  ///< num_users × rank, row-major
  std::vector<float> item_factors_;  ///< num_items × rank, row-major
};

}  // namespace ibchol
