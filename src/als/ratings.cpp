#include "als/ratings.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ibchol {

RatingsDataset generate_ratings(const RatingsOptions& options) {
  IBCHOL_CHECK(options.num_users > 0 && options.num_items > 0,
               "dataset must have users and items");
  IBCHOL_CHECK(options.planted_rank > 0, "planted rank must be positive");
  Xoshiro256 rng(options.seed);

  // Planted factors with entries ~ N(0, 1/sqrt(rank)) so ratings are O(1).
  const int f = options.planted_rank;
  const double scale = 1.0 / std::sqrt(static_cast<double>(f));
  std::vector<double> u(static_cast<std::size_t>(options.num_users) * f);
  std::vector<double> v(static_cast<std::size_t>(options.num_items) * f);
  for (auto& x : u) x = rng.normal() * scale;
  for (auto& x : v) x = rng.normal() * scale;

  // Zipf item-popularity CDF.
  std::vector<double> cdf(options.num_items);
  double acc = 0.0;
  for (int i = 0; i < options.num_items; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), options.zipf_s);
    cdf[i] = acc;
  }
  for (auto& c : cdf) c /= acc;

  auto sample_item = [&]() {
    const double r = rng.uniform();
    return static_cast<std::int32_t>(
        std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
  };

  RatingsDataset ds;
  ds.num_users = options.num_users;
  ds.num_items = options.num_items;
  ds.by_user.resize(options.num_users);
  ds.by_item.resize(options.num_items);

  std::vector<char> seen(options.num_items);
  for (int user = 0; user < options.num_users; ++user) {
    // Poisson-ish count via rounding a positive normal around the mean.
    int count = static_cast<int>(std::lround(
        std::max(1.0, rng.normal(options.ratings_per_user,
                                 std::sqrt(options.ratings_per_user)))));
    count = std::min(count, options.num_items);
    std::fill(seen.begin(), seen.end(), 0);
    for (int k = 0; k < count; ++k) {
      std::int32_t item = sample_item();
      // Resolve popularity collisions by linear probing (keeps the draw
      // cheap and deterministic).
      int guard = 0;
      while (seen[item] && guard++ < options.num_items) {
        item = (item + 1) % options.num_items;
      }
      if (seen[item]) break;
      seen[item] = 1;

      double dot = 0.0;
      for (int d = 0; d < f; ++d) {
        dot += u[static_cast<std::size_t>(user) * f + d] *
               v[static_cast<std::size_t>(item) * f + d];
      }
      Rating r;
      r.user = user;
      r.item = item;
      r.value = static_cast<float>(dot + rng.normal() * options.noise);

      if (rng.uniform() < options.test_fraction) {
        ds.test.push_back(r);
      } else {
        const auto idx = static_cast<std::int32_t>(ds.train.size());
        ds.train.push_back(r);
        ds.by_user[user].push_back(idx);
        ds.by_item[item].push_back(idx);
      }
    }
  }
  return ds;
}

}  // namespace ibchol
