// Variable-size batched Cholesky (vbatch).
//
// Real batch workloads rarely have perfectly uniform dimensions (MAGMA
// ships *_vbatched routines for this reason). VBatchCholesky accepts a
// per-matrix size vector, bins the matrices by dimension into per-size
// interleaved chunked sub-batches, and runs the tuned uniform kernels on
// each group. Matrix indices, data offsets, and per-matrix status all stay
// in the caller's original order.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/batch_cholesky.hpp"

namespace ibchol {

/// Batched Cholesky over matrices of heterogeneous sizes.
class VBatchCholesky {
 public:
  /// `sizes[b]` is the dimension of matrix b (1 ≤ size). `base` supplies
  /// the layout/math choices (chunking, chunk size, math mode); the
  /// per-group tile size and unrolling follow recommended_params for each
  /// distinct dimension.
  VBatchCholesky(std::vector<int> sizes, const TuningParams& base = {});

  [[nodiscard]] std::int64_t batch() const {
    return static_cast<std::int64_t>(sizes_.size());
  }
  [[nodiscard]] int size_of(std::int64_t b) const { return sizes_[b]; }
  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }

  /// Total element count of the backing buffer (all groups, padded).
  [[nodiscard]] std::size_t size_elems() const { return total_elems_; }

  /// Total element count of the right-hand-side buffer.
  [[nodiscard]] std::size_t rhs_size_elems() const { return total_rhs_elems_; }

  /// Linear offset of element (i, j) of matrix b within the data buffer.
  [[nodiscard]] std::size_t index(std::int64_t b, int i, int j) const {
    const Slot& s = slots_[b];
    const Group& g = groups_[s.group];
    return g.data_base + g.layout.index(s.pos, i, j);
  }

  /// Linear offset of element i of right-hand side b.
  [[nodiscard]] std::size_t rhs_index(std::int64_t b, int i) const {
    const Slot& s = slots_[b];
    const Group& g = groups_[s.group];
    return g.rhs_base + g.vlayout.index(s.pos, i);
  }

  /// Factors every matrix in place (lower triangles become L).
  /// `info` (optional, batch() entries) uses the LAPACK convention in the
  /// caller's original matrix order.
  template <typename T>
  FactorResult factorize(std::span<T> data,
                         std::span<std::int32_t> info = {}) const;

  /// Solves L·Lᵀ x = b for every matrix after factorize(); `rhs` (indexed
  /// via rhs_index) is overwritten with the solutions.
  template <typename T>
  void solve(std::span<const T> factored, std::span<T> rhs) const;

 private:
  struct Group {
    int n = 0;
    BatchLayout layout = BatchLayout::canonical(1, 1);
    BatchVectorLayout vlayout = BatchVectorLayout::canonical(1, 1);
    TuningParams params;
    std::size_t data_base = 0;
    std::size_t rhs_base = 0;
    std::vector<std::int64_t> members;  ///< original indices, group order
  };

  struct Slot {
    std::int32_t group = 0;
    std::int64_t pos = 0;  ///< position within the group
  };

  std::vector<int> sizes_;
  std::vector<Group> groups_;
  std::vector<Slot> slots_;
  std::size_t total_elems_ = 0;
  std::size_t total_rhs_elems_ = 0;
};

}  // namespace ibchol
