// Hot-swappable tuned-dispatch hooks consulted by the facade.
//
// The instant-tuning subsystem (src/tune/) lives *above* core in the
// dependency order — it drives evaluators, the analytical model, and the
// persistent cache. But its winners must take effect inside
// recommended_params() and the facade's factorize path, which live here.
// These hooks break the cycle: core owns two atomically swappable tables
// (a size → TuningParams override map and a factorization-time observer)
// and consults them when installed; the tune layer installs and replaces
// them. Tables are immutable snapshots behind shared_ptr, so readers are
// wait-free and an installer never mutates state a concurrent factorize
// call is reading.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "kernels/variant.hpp"

namespace ibchol {

/// Installs (or, with nullptr, clears) the recommended-params override
/// table. recommended_params(n) returns table entries verbatim before
/// falling back to the paper defaults.
void set_recommended_overrides(
    std::shared_ptr<const std::map<int, TuningParams>> table);

/// The override for size n, if one is installed (counts
/// "tune.override_hit").
[[nodiscard]] std::optional<TuningParams> lookup_recommended_override(int n);

/// Observer of facade factorization times: (n, batch, wall seconds) per
/// BatchCholesky::factorize call. The instant tuner's drift detector feeds
/// on this.
using FactorObserver =
    std::function<void(int n, std::int64_t batch, double seconds)>;

/// Installs (or, with nullptr, clears) the factor observer.
void set_factor_observer(std::shared_ptr<const FactorObserver> observer);

/// Cheap guard: true when an observer is installed (the facade only times
/// itself when someone is listening).
[[nodiscard]] bool factor_observer_installed();

/// Delivers one timing to the installed observer (no-op when cleared
/// between the guard and the call).
void note_factor_seconds(int n, std::int64_t batch, double seconds);

}  // namespace ibchol
