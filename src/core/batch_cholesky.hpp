// Public API: batched Cholesky factorization with interleaved layouts.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto layout = BatchLayout::interleaved_chunked(n, batch, 64);
//   AlignedBuffer<float> data(layout.size_elems());
//   ... fill `data` via layout.index(b, i, j) or convert_layout(...) ...
//   BatchCholesky chol(layout, recommended_params(n));
//   auto result = chol.factorize<float>(data.span());   // A -> L in place
//   chol.solve<float>(data.span(), vlayout, rhs.span()); // L·Lᵀx = b
//
// The factorization overwrites each matrix's lower triangle with its
// Cholesky factor. Non-SPD matrices are reported per matrix (LAPACK info
// convention) without disturbing the rest of the batch.
#pragma once

#include <optional>
#include <span>

#include "cpu/batch_blas.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/batch_solve.hpp"
#include "cpu/recover.hpp"
#include "kernels/tile_program.hpp"
#include "kernels/variant.hpp"
#include "layout/layout.hpp"
#include "layout/vector_layout.hpp"

namespace ibchol {

/// Tuning defaults following the paper's conclusions (§III): full unrolling
/// while the matrix fits in registers (n ≲ 20), then the top-looking tiled
/// kernel with n_b = 8; chunked layout with chunk 64 throughout.
[[nodiscard]] TuningParams recommended_params(int n);

/// Batched Cholesky factorization engine bound to one layout + tuning
/// configuration. Thread-safe for concurrent factorize calls on disjoint
/// data.
class BatchCholesky {
 public:
  /// Validates the configuration against the layout. The layout's chunk
  /// size must match the tuning parameters' chunking choice; use
  /// make_layout() to derive a consistent layout from the parameters.
  /// `triangle` selects A = L·Lᵀ (default) or A = Uᵀ·U.
  BatchCholesky(BatchLayout layout, TuningParams params,
                Triangle triangle = Triangle::kLower);

  /// Derives the layout implied by tuning parameters for a given shape:
  /// chunked -> interleaved_chunked(chunk_size), else simple interleaved.
  [[nodiscard]] static BatchLayout make_layout(int n, std::int64_t batch,
                                               const TuningParams& params);

  /// Factors every matrix in place. `info` (optional) receives per-matrix
  /// status, 0 or the 1-based failing column.
  template <typename T>
  FactorResult factorize(std::span<T> data,
                         std::span<std::int32_t> info = {}) const;

  /// Resilient factorization: like factorize(), then recovers failed
  /// matrices. NaN/Inf inputs are screened out (info = kInfoNonFinite,
  /// contents returned untouched) and non-SPD members are refactored in a
  /// compact sub-batch under escalating diagonal shifts until they succeed
  /// or `recovery.max_attempts` is exhausted; healthy matrices come out
  /// bit-identical to factorize(). See src/cpu/recover.hpp.
  template <typename T>
  RecoveryReport factorize_recover(std::span<T> data,
                                   const RecoveryOptions& recovery = {},
                                   std::span<std::int32_t> info = {}) const;

  /// factorize() for a reduced-precision batch: `data` holds the matrices
  /// as 16-bit words in params().storage format (which must be kBf16 or
  /// kFp16), arithmetic accumulates in fp32 (factor_batch_cpu_mixed).
  /// Routed through the persistent service when IBCHOL_SERVICE=1, like
  /// factorize().
  FactorResult factorize_mixed(std::span<std::uint16_t> data,
                               std::span<std::int32_t> info = {}) const;

  /// factorize_recover() for a reduced-precision batch: widen → fp32
  /// screen/factor/shifted-retry → narrow (factor_batch_recover_mixed).
  RecoveryReport factorize_recover_mixed(
      std::span<std::uint16_t> data, const RecoveryOptions& recovery = {},
      std::span<std::int32_t> info = {}) const;

  /// Solves L·Lᵀ x = b for every matrix after factorize(); `rhs` is
  /// overwritten with the solutions. The vector layout must match
  /// (BatchVectorLayout::matching(layout())).
  ///
  /// `info`, when non-empty, must be the per-matrix status from
  /// factorize()/factorize_recover(): matrices with info != 0 are skipped —
  /// their rhs entries are left exactly as supplied instead of being
  /// overwritten with the NaN garbage a failed factor back-substitutes.
  template <typename T>
  void solve(std::span<const T> factored, const BatchVectorLayout& vlayout,
             std::span<T> rhs,
             std::span<const std::int32_t> info = {}) const;

  /// Multi-right-hand-side solve: `rhs` is an n×nrhs block per matrix in a
  /// compatible rectangular layout (BatchRectLayout::matching(layout(),
  /// n, nrhs)). Overwritten with the solutions. `info` skips failed
  /// matrices exactly as in solve().
  template <typename T>
  void solve_multi(std::span<const T> factored,
                   const BatchRectLayout& rlayout, std::span<T> rhs,
                   std::span<const std::int32_t> info = {}) const;

  [[nodiscard]] const BatchLayout& layout() const { return layout_; }
  [[nodiscard]] const TuningParams& params() const { return params_; }
  [[nodiscard]] Triangle triangle() const { return triangle_; }

  /// The tile program this configuration executes (empty for full
  /// unrolling, which uses the whole-matrix registerized path, and for
  /// configurations routed to the tiled large-N path).
  [[nodiscard]] const std::optional<TileProgram>& program() const {
    return program_;
  }

  /// True when factorize() routes through the tiled task-parallel DAG
  /// executor (n > 64, exec = kAuto, lower triangle, fp32 storage): the
  /// small-n executors stop at n = 64, so past it the facade hands whole
  /// matrices to svc::BatchService::factor_tiled instead of silently
  /// falling back to the interpreter's scalar path.
  [[nodiscard]] bool uses_tiled() const { return use_tiled_; }

 private:
  /// factorize() minus the observer timing wrapper: the tiled/service/
  /// synchronous routing itself.
  template <typename T>
  FactorResult factorize_dispatch(std::span<T> data,
                                  std::span<std::int32_t> info) const;

  BatchLayout layout_;
  TuningParams params_;
  Triangle triangle_ = Triangle::kLower;
  std::optional<TileProgram> program_;
  bool use_tiled_ = false;
};

/// One-shot convenience: derive the layout from the params, factor `data`.
template <typename T>
FactorResult factorize_batch(int n, std::int64_t batch,
                             const TuningParams& params, std::span<T> data,
                             std::span<std::int32_t> info = {});

}  // namespace ibchol
