#include "core/tuned_overrides.hpp"

#include <atomic>

#include "obs/counters.hpp"

namespace ibchol {

namespace {

// Atomic shared_ptr slots: lock-free for readers on the facade's hot path,
// and the snapshot a reader obtained stays alive across the whole call even
// if an installer swaps mid-flight.
std::atomic<std::shared_ptr<const std::map<int, TuningParams>>>&
override_slot() {
  static std::atomic<std::shared_ptr<const std::map<int, TuningParams>>> slot;
  return slot;
}

std::atomic<std::shared_ptr<const FactorObserver>>& observer_slot() {
  static std::atomic<std::shared_ptr<const FactorObserver>> slot;
  return slot;
}

}  // namespace

void set_recommended_overrides(
    std::shared_ptr<const std::map<int, TuningParams>> table) {
  override_slot().store(std::move(table));
}

std::optional<TuningParams> lookup_recommended_override(int n) {
  const auto table = override_slot().load();
  if (table == nullptr) return std::nullopt;
  const auto it = table->find(n);
  if (it == table->end()) return std::nullopt;
  IBCHOL_COUNT("tune.override_hit", 1);
  return it->second;
}

void set_factor_observer(std::shared_ptr<const FactorObserver> observer) {
  observer_slot().store(std::move(observer));
}

bool factor_observer_installed() {
  return observer_slot().load() != nullptr;
}

void note_factor_seconds(int n, std::int64_t batch, double seconds) {
  const auto observer = observer_slot().load();
  if (observer != nullptr && *observer) (*observer)(n, batch, seconds);
}

}  // namespace ibchol
