#include "core/batch_cholesky.hpp"

#include <cstdlib>

#include "core/tuned_overrides.hpp"
#include "cpu/simd/vec_exec.hpp"
#include "obs/counters.hpp"
#include "svc/batch_service.hpp"
#include "util/timer.hpp"

namespace ibchol {

namespace {

// Opt-in routing of the facade through the persistent service
// (svc::BatchService::global()): set IBCHOL_SERVICE=1 in the environment.
// Results are bit-identical to the synchronous path (units are
// schedule-agnostic); what changes is the execution substrate — a
// long-lived work-stealing pool instead of a per-call OpenMP team.
bool use_service() {
  static const bool enabled = [] {
    const char* v = std::getenv("IBCHOL_SERVICE");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return enabled;
}

}  // namespace

TuningParams recommended_params(int n) {
  // An installed instant-tuning table (src/tune/instant.hpp) wins over the
  // paper defaults: its entries are measured winners for this very host.
  if (auto tuned = lookup_recommended_override(n)) return *tuned;
  TuningParams p;
  p.chunked = true;
  p.chunk_size = 64;
  p.math = MathMode::kIeee;
  // kAuto consults the measured per-(n, isa) dispatch table in the chunk
  // pipeline: the vectorized fused/blocked bodies where they win, the
  // specialized executor (the CPU analog of the paper's generated
  // pyexpander kernels) elsewhere. The interpreter exists as a correctness
  // oracle, not a production path.
  p.exec = CpuExec::kAuto;
  if (n <= 20) {
    // Small matrices: full unrolling keeps the whole factorization in
    // registers; tile size and looking order are then irrelevant.
    p.unroll = Unroll::kFull;
    p.nb = n;
    p.looking = Looking::kLeft;
  } else {
    // Larger matrices: partial unrolling, the laziest (fewest-writes)
    // evaluation order, and the largest tile size.
    p.unroll = Unroll::kPartial;
    p.nb = 8;
    p.looking = Looking::kTop;
  }
  return p;
}

BatchLayout BatchCholesky::make_layout(int n, std::int64_t batch,
                                       const TuningParams& params) {
  params.validate(n);
  return params.chunked
             ? BatchLayout::interleaved_chunked(n, batch, params.chunk_size)
             : BatchLayout::interleaved(n, batch);
}

BatchCholesky::BatchCholesky(BatchLayout layout, TuningParams params,
                             Triangle triangle)
    : layout_(layout), params_(params), triangle_(triangle) {
  params_.validate(layout_.n());
  IBCHOL_CHECK(layout_.kind() != LayoutKind::kCanonical ||
                   !params_.chunked,
               "canonical layouts are factored by the traditional path; "
               "chunking does not apply");
  if (params_.chunked) {
    IBCHOL_CHECK(layout_.kind() == LayoutKind::kInterleavedChunked &&
                     layout_.chunk() == params_.chunk_size,
                 "layout chunk size does not match tuning parameters");
  } else {
    IBCHOL_CHECK(layout_.kind() != LayoutKind::kInterleavedChunked,
                 "tuning parameters request no chunking but the layout is "
                 "chunked");
  }
  // Past the small-n executors' ceiling, kAuto routes whole matrices to
  // the tiled task-parallel path (lower triangle, fp32 storage only —
  // upper/mixed configurations keep the traditional executors). The tile
  // program is skipped for routed configurations: at n = 1024 it would
  // enumerate millions of ops the tiled path never interprets.
  use_tiled_ = layout_.n() > kMaxVecWholeDim &&
               params_.exec == CpuExec::kAuto &&
               triangle_ == Triangle::kLower &&
               params_.storage == StoragePrec::kFp32;
  if (!use_tiled_ && layout_.kind() != LayoutKind::kCanonical &&
      params_.unroll == Unroll::kPartial) {
    program_ = build_tile_program(layout_.n(),
                                  params_.effective_nb(layout_.n()),
                                  params_.looking);
  }
}

namespace {

CpuFactorOptions to_cpu_options(const TuningParams& p, int n,
                                Triangle triangle) {
  CpuFactorOptions o;
  o.nb = p.effective_nb(n);
  o.looking = p.looking;
  o.unroll = p.unroll;
  o.math = p.math;
  o.triangle = triangle;
  o.exec = p.exec;
  o.isa = p.isa;
  // For chunked layouts the layout's own chunk is already resident and the
  // pipeline ignores this; for simple interleaved it sizes the pack
  // scratch (0 = the chunk_scratch_lanes sizing rule).
  o.chunk_size = p.chunked ? 0 : p.chunk_size;
  return o;
}

}  // namespace

template <typename T>
FactorResult BatchCholesky::factorize(std::span<T> data,
                                      std::span<std::int32_t> info) const {
  // The drift detector of the instant tuner listens here; the clock only
  // runs when an observer is actually installed.
  if (factor_observer_installed()) {
    Timer t;
    const FactorResult r = factorize_dispatch<T>(data, info);
    note_factor_seconds(layout_.n(), layout_.batch(), t.seconds());
    return r;
  }
  return factorize_dispatch<T>(data, info);
}

template <typename T>
FactorResult BatchCholesky::factorize_dispatch(
    std::span<T> data, std::span<std::int32_t> info) const {
  if (use_tiled_) {
    IBCHOL_COUNT("tiled.routed", 1);
    svc::TiledOptions topts;
    // The paper-era small-n tile sizes (nb ≤ 8) are meaningless at DAG
    // granularity; honor an explicit large tile size, otherwise let the
    // cache-fit rule pick.
    topts.nb = params_.nb >= 16 ? params_.nb : 0;
    topts.lookahead = params_.lookahead;
    return svc::BatchService::global().factor_tiled<T>(layout_, data, topts,
                                                       info);
  }
  const CpuFactorOptions opts = to_cpu_options(params_, layout_.n(), triangle_);
  if (use_service()) {
    return svc::BatchService::global().factor<T>(
        layout_, data, opts, info,
        program_.has_value() ? &*program_ : nullptr);
  }
  if (program_.has_value()) {
    return factor_batch_cpu_with_program<T>(layout_, data, *program_, opts,
                                            info);
  }
  return factor_batch_cpu<T>(layout_, data, opts, info);
}

template <typename T>
RecoveryReport BatchCholesky::factorize_recover(
    std::span<T> data, const RecoveryOptions& recovery,
    std::span<std::int32_t> info) const {
  const CpuFactorOptions opts = to_cpu_options(params_, layout_.n(), triangle_);
  if (use_service()) {
    return svc::BatchService::global().recover<T>(
        layout_, data, opts, recovery, info,
        program_.has_value() ? &*program_ : nullptr);
  }
  return factor_batch_recover<T>(layout_, data, opts, recovery, info,
                                 program_.has_value() ? &*program_ : nullptr);
}

FactorResult BatchCholesky::factorize_mixed(std::span<std::uint16_t> data,
                                            std::span<std::int32_t> info) const {
  IBCHOL_CHECK(params_.storage != StoragePrec::kFp32,
               "factorize_mixed needs TuningParams::storage = kBf16 or kFp16");
  const CpuFactorOptions opts = to_cpu_options(params_, layout_.n(), triangle_);
  if (use_service()) {
    svc::SubmitOptions sopts;
    sopts.storage = params_.storage;
    return svc::BatchService::global().factor_mixed(
        layout_, data, opts, info,
        program_.has_value() ? &*program_ : nullptr, sopts);
  }
  if (program_.has_value()) {
    return factor_batch_cpu_mixed_with_program(layout_, data, params_.storage,
                                               *program_, opts, info);
  }
  return factor_batch_cpu_mixed(layout_, data, params_.storage, opts, info);
}

RecoveryReport BatchCholesky::factorize_recover_mixed(
    std::span<std::uint16_t> data, const RecoveryOptions& recovery,
    std::span<std::int32_t> info) const {
  IBCHOL_CHECK(params_.storage != StoragePrec::kFp32,
               "factorize_recover_mixed needs TuningParams::storage = kBf16 "
               "or kFp16");
  const CpuFactorOptions opts = to_cpu_options(params_, layout_.n(), triangle_);
  if (use_service()) {
    return svc::BatchService::global().recover_mixed(
        layout_, data, params_.storage, opts, recovery, info,
        program_.has_value() ? &*program_ : nullptr);
  }
  return factor_batch_recover_mixed(layout_, data, params_.storage, opts,
                                    recovery, info,
                                    program_.has_value() ? &*program_ : nullptr);
}

namespace {

// rhs elements of matrices whose factorization failed, saved around a solve
// so the back-substitution's NaNs never reach the caller.
template <typename T, typename IndexFn>
std::vector<std::pair<std::size_t, T>> save_failed_rhs(
    std::span<const std::int32_t> info, std::int64_t batch, int elems_per_mat,
    std::span<const T> rhs, IndexFn&& index) {
  std::vector<std::pair<std::size_t, T>> saved;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (info[b] == 0) continue;
    for (int e = 0; e < elems_per_mat; ++e) {
      const std::size_t at = index(b, e);
      saved.emplace_back(at, rhs[at]);
    }
  }
  return saved;
}

}  // namespace

template <typename T>
void BatchCholesky::solve(std::span<const T> factored,
                          const BatchVectorLayout& vlayout,
                          std::span<T> rhs,
                          std::span<const std::int32_t> info) const {
  std::vector<std::pair<std::size_t, T>> saved;
  if (!info.empty()) {
    IBCHOL_CHECK(info.size() >= static_cast<std::size_t>(layout_.batch()),
                 "info span too small for batch");
    saved = save_failed_rhs<T>(
        info, layout_.batch(), layout_.n(), rhs,
        [&](std::int64_t b, int e) { return vlayout.index(b, e); });
  }
  solve_batch_cpu<T>(layout_, factored, vlayout, rhs, params_.math,
                     /*num_threads=*/0, triangle_);
  for (const auto& [at, v] : saved) rhs[at] = v;
}

template <typename T>
void BatchCholesky::solve_multi(std::span<const T> factored,
                                const BatchRectLayout& rlayout,
                                std::span<T> rhs,
                                std::span<const std::int32_t> info) const {
  std::vector<std::pair<std::size_t, T>> saved;
  if (!info.empty()) {
    IBCHOL_CHECK(info.size() >= static_cast<std::size_t>(layout_.batch()),
                 "info span too small for batch");
    const int per_mat = rlayout.rows() * rlayout.cols();
    saved = save_failed_rhs<T>(
        info, layout_.batch(), per_mat, rhs,
        [&](std::int64_t b, int e) {
          return rlayout.index(b, e % rlayout.rows(), e / rlayout.rows());
        });
  }
  batch_potrs<T>(layout_, factored, rlayout, rhs, params_.math,
                 /*num_threads=*/0, triangle_);
  for (const auto& [at, v] : saved) rhs[at] = v;
}

template <typename T>
FactorResult factorize_batch(int n, std::int64_t batch,
                             const TuningParams& params, std::span<T> data,
                             std::span<std::int32_t> info) {
  const BatchCholesky chol(BatchCholesky::make_layout(n, batch, params),
                           params);
  return chol.factorize<T>(data, info);
}

template FactorResult BatchCholesky::factorize<float>(
    std::span<float>, std::span<std::int32_t>) const;
template FactorResult BatchCholesky::factorize<double>(
    std::span<double>, std::span<std::int32_t>) const;
template RecoveryReport BatchCholesky::factorize_recover<float>(
    std::span<float>, const RecoveryOptions&, std::span<std::int32_t>) const;
template RecoveryReport BatchCholesky::factorize_recover<double>(
    std::span<double>, const RecoveryOptions&, std::span<std::int32_t>) const;
template void BatchCholesky::solve<float>(
    std::span<const float>, const BatchVectorLayout&, std::span<float>,
    std::span<const std::int32_t>) const;
template void BatchCholesky::solve<double>(
    std::span<const double>, const BatchVectorLayout&, std::span<double>,
    std::span<const std::int32_t>) const;
template void BatchCholesky::solve_multi<float>(
    std::span<const float>, const BatchRectLayout&, std::span<float>,
    std::span<const std::int32_t>) const;
template void BatchCholesky::solve_multi<double>(
    std::span<const double>, const BatchRectLayout&, std::span<double>,
    std::span<const std::int32_t>) const;
template FactorResult factorize_batch<float>(int, std::int64_t,
                                             const TuningParams&,
                                             std::span<float>,
                                             std::span<std::int32_t>);
template FactorResult factorize_batch<double>(int, std::int64_t,
                                              const TuningParams&,
                                              std::span<double>,
                                              std::span<std::int32_t>);

}  // namespace ibchol
