#include "core/vbatch.hpp"

#include <algorithm>

namespace ibchol {

VBatchCholesky::VBatchCholesky(std::vector<int> sizes,
                               const TuningParams& base)
    : sizes_(std::move(sizes)) {
  IBCHOL_CHECK(!sizes_.empty(), "vbatch needs at least one matrix");
  std::map<int, std::vector<std::int64_t>> by_size;
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(sizes_.size()); ++b) {
    IBCHOL_CHECK(sizes_[b] >= 1, "matrix sizes must be positive");
    by_size[sizes_[b]].push_back(b);
  }

  slots_.resize(sizes_.size());
  groups_.reserve(by_size.size());
  for (auto& [n, members] : by_size) {
    Group g;
    g.n = n;
    // Tile size / unrolling per dimension; layout scheme from `base`.
    g.params = recommended_params(n);
    g.params.chunked = base.chunked;
    g.params.chunk_size = base.chunk_size;
    g.params.math = base.math;
    g.params.validate(n);
    g.layout = BatchCholesky::make_layout(
        n, static_cast<std::int64_t>(members.size()), g.params);
    g.vlayout = BatchVectorLayout::matching(g.layout);
    g.data_base = total_elems_;
    g.rhs_base = total_rhs_elems_;
    total_elems_ += g.layout.size_elems();
    total_rhs_elems_ += g.vlayout.size_elems();
    g.members = std::move(members);
    const auto group_id = static_cast<std::int32_t>(groups_.size());
    for (std::int64_t pos = 0;
         pos < static_cast<std::int64_t>(g.members.size()); ++pos) {
      slots_[g.members[pos]] = {group_id, pos};
    }
    groups_.push_back(std::move(g));
  }
}

template <typename T>
FactorResult VBatchCholesky::factorize(std::span<T> data,
                                       std::span<std::int32_t> info) const {
  IBCHOL_CHECK(data.size() >= total_elems_, "data span too small");
  IBCHOL_CHECK(info.empty() || info.size() >= sizes_.size(),
               "info span too small");
  FactorResult total;
  total.first_failed = -1;
  std::vector<std::int32_t> group_info;
  for (const Group& g : groups_) {
    const BatchCholesky chol(g.layout, g.params);
    std::span<T> slice = data.subspan(g.data_base, g.layout.size_elems());
    FactorResult r;
    if (info.empty()) {
      r = chol.factorize<T>(slice);
    } else {
      group_info.assign(g.members.size(), 0);
      r = chol.factorize<T>(slice, group_info);
      for (std::size_t pos = 0; pos < g.members.size(); ++pos) {
        info[g.members[pos]] = group_info[pos];
      }
    }
    total.failed_count += r.failed_count;
    if (r.first_failed >= 0) {
      const std::int64_t original = g.members[r.first_failed];
      if (total.first_failed < 0 || original < total.first_failed) {
        total.first_failed = original;
      }
    }
  }
  return total;
}

template <typename T>
void VBatchCholesky::solve(std::span<const T> factored,
                           std::span<T> rhs) const {
  IBCHOL_CHECK(factored.size() >= total_elems_, "factor span too small");
  IBCHOL_CHECK(rhs.size() >= total_rhs_elems_, "rhs span too small");
  for (const Group& g : groups_) {
    const BatchCholesky chol(g.layout, g.params);
    chol.solve<T>(factored.subspan(g.data_base, g.layout.size_elems()),
                  g.vlayout,
                  rhs.subspan(g.rhs_base, g.vlayout.size_elems()));
  }
}

template FactorResult VBatchCholesky::factorize<float>(
    std::span<float>, std::span<std::int32_t>) const;
template FactorResult VBatchCholesky::factorize<double>(
    std::span<double>, std::span<std::int32_t>) const;
template void VBatchCholesky::solve<float>(std::span<const float>,
                                           std::span<float>) const;
template void VBatchCholesky::solve<double>(std::span<const double>,
                                            std::span<double>) const;

}  // namespace ibchol
