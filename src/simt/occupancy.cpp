#include "simt/occupancy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ibchol {

Occupancy compute_occupancy(const GpuSpec& gpu, const KernelResources& res) {
  IBCHOL_CHECK(res.threads_per_block > 0, "block must have threads");
  IBCHOL_CHECK(res.regs_per_thread >= 0 && res.smem_per_block_bytes >= 0,
               "negative resource request");
  Occupancy occ;

  const int warps_per_block =
      (res.threads_per_block + gpu.warp_size - 1) / gpu.warp_size;

  // Register allocation granularity: warp-level, rounded to 256 registers
  // per warp (Pascal allocation granule).
  const int regs_per_warp_raw = res.regs_per_thread * gpu.warp_size;
  const int regs_per_warp = (regs_per_warp_raw + 255) / 256 * 256;
  const int regs_per_block = regs_per_warp * warps_per_block;

  int by_threads = gpu.max_threads_per_sm / res.threads_per_block;
  int by_blocks = gpu.max_blocks_per_sm;
  int by_regs = regs_per_block == 0 ? gpu.max_blocks_per_sm
                                    : gpu.regs_per_sm / regs_per_block;
  int by_smem = res.smem_per_block_bytes == 0
                    ? gpu.max_blocks_per_sm
                    : gpu.smem_per_sm_bytes / res.smem_per_block_bytes;

  const int blocks =
      std::min(std::min(by_threads, by_blocks), std::min(by_regs, by_smem));
  occ.blocks_per_sm = std::max(blocks, 0);
  occ.warps_per_sm =
      std::min(occ.blocks_per_sm * warps_per_block, gpu.max_warps_per_sm);
  occ.occupancy = gpu.max_warps_per_sm == 0
                      ? 0.0
                      : static_cast<double>(occ.warps_per_sm) /
                            gpu.max_warps_per_sm;

  if (blocks == by_threads) occ.limiter = "threads";
  if (blocks == by_smem) occ.limiter = "smem";
  if (blocks == by_regs) occ.limiter = "registers";
  if (blocks == by_blocks) occ.limiter = "blocks";
  return occ;
}

}  // namespace ibchol
