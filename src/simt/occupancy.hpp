// CUDA occupancy calculation.
//
// Given a kernel's per-thread register count, block size, and shared-memory
// use, computes how many blocks are resident per SM — the minimum over the
// thread, block, register, and shared-memory limits — and the resulting
// warp occupancy. This is the standard calculation of NVIDIA's occupancy
// calculator, reproduced exactly so tests can check known configurations.
#pragma once

#include "simt/gpu_spec.hpp"

namespace ibchol {

/// Kernel resource requirements.
struct KernelResources {
  int threads_per_block = 0;
  int regs_per_thread = 0;
  int smem_per_block_bytes = 0;
};

/// Occupancy result for one kernel on one GPU.
struct Occupancy {
  int blocks_per_sm = 0;     ///< resident blocks
  int warps_per_sm = 0;      ///< resident warps
  double occupancy = 0.0;    ///< warps / max_warps
  const char* limiter = "";  ///< which resource bound first
};

/// Computes occupancy; returns blocks_per_sm = 0 if the block cannot launch
/// at all (e.g. register demand of a single block exceeds the SM).
[[nodiscard]] Occupancy compute_occupancy(const GpuSpec& gpu,
                                          const KernelResources& res);

}  // namespace ibchol
