#include "simt/cache_model.hpp"

#include <bit>

namespace ibchol {

CacheModel::CacheModel(std::int64_t size_bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  IBCHOL_CHECK(size_bytes > 0 && line_bytes > 0 && ways > 0,
               "cache parameters must be positive");
  IBCHOL_CHECK(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)),
               "line size must be a power of two");
  const std::int64_t lines = size_bytes / line_bytes;
  IBCHOL_CHECK(lines >= ways && lines % ways == 0,
               "cache size must hold a whole number of sets");
  num_sets_ = static_cast<std::size_t>(lines / ways);
  sets_.assign(num_sets_ * ways_, {});
}

bool CacheModel::access(std::uint64_t addr, bool write) {
  ++stats_.accesses;
  ++clock_;
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::uint64_t tag = line / num_sets_;
  Way* base = &sets_[set * ways_];

  // Hit path.
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      ++stats_.hits;
      base[w].lru = clock_;
      base[w].dirty = base[w].dirty || write;
      return true;
    }
  }

  // Miss: allocate, evicting the LRU way if the set is full.
  ++stats_.misses;
  Way* victim = nullptr;
  for (int w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (int w = 1; w < ways_; ++w) {
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  victim->dirty = write;
  return false;
}

std::int64_t CacheModel::flush_dirty() {
  std::int64_t count = 0;
  for (auto& way : sets_) {
    if (way.valid && way.dirty) {
      ++count;
      way.dirty = false;
    }
  }
  return count;
}

void CacheModel::reset() {
  for (auto& way : sets_) way = {};
  clock_ = 0;
  stats_ = {};
}

}  // namespace ibchol
