#include "simt/gpu_spec.hpp"

namespace ibchol {

GpuSpec GpuSpec::p100() {
  GpuSpec s;
  s.name = "P100-SXM2";
  s.sms = 56;
  s.cores_per_sm = 64;
  s.clock_ghz = 1.48;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.max_warps_per_sm = 64;
  s.regs_per_sm = 65536;
  s.max_regs_per_thread = 255;
  s.smem_per_sm_bytes = 64 * 1024;
  s.dram_bw_bytes = 732e9;
  s.l2_bw_bytes = 1800e9;
  s.l2_bytes = 4 * 1024 * 1024;
  s.dram_latency_cycles = 450;
  // Pascal's L1.5 instruction cache is ~32 KiB but shared with other
  // streams; the paper's full-unroll cliff implies a smaller effective
  // window for straight-line kernels.
  s.icache_bytes = 12 * 1024;
  s.launch_overhead_s = 4e-6;
  return s;
}

GpuSpec GpuSpec::k40() {
  GpuSpec s;
  s.name = "K40";
  s.sms = 15;
  s.cores_per_sm = 192;
  s.clock_ghz = 0.875;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 16;
  s.max_warps_per_sm = 64;
  s.regs_per_sm = 65536;
  s.max_regs_per_thread = 255;
  s.smem_per_sm_bytes = 48 * 1024;
  s.dram_bw_bytes = 288e9;
  s.l2_bw_bytes = 700e9;
  s.l2_bytes = 1536 * 1024;
  s.dram_latency_cycles = 600;
  s.icache_bytes = 8 * 1024;
  s.launch_overhead_s = 6e-6;
  return s;
}

}  // namespace ibchol
