// Memory-coalescing analysis.
//
// A warp issues one memory request for 32 lanes; the memory system splits
// it into 32-byte sectors (four per 128-byte line). The number of distinct
// sectors touched is the traffic the request actually costs. Interleaved
// layouts put the 32 lanes of element (i,j) at consecutive addresses — one
// line, four sectors, "perfect coalescing" (paper §I.D / §II.B). The
// canonical layout strides lanes n²·sizeof(T) apart, touching up to 32
// distinct sectors per request.
#pragma once

#include <cstdint>

#include "layout/layout.hpp"

namespace ibchol {

/// Result of analyzing one warp-wide access.
struct WarpAccess {
  int sectors = 0;       ///< distinct 32-byte sectors touched
  int lines = 0;         ///< distinct 128-byte lines touched
  int useful_bytes = 0;  ///< bytes actually consumed by the warp

  /// Fraction of transferred bytes that are useful (1.0 = perfect).
  [[nodiscard]] double efficiency(int sector_bytes = 32) const {
    const int transferred = sectors * sector_bytes;
    return transferred == 0 ? 0.0
                            : static_cast<double>(useful_bytes) / transferred;
  }
};

/// Analyzes one warp access where lane l reads `elem_bytes` at byte address
/// base + l*stride_bytes (base 128-byte aligned). Exact sector/line count.
[[nodiscard]] WarpAccess analyze_strided_access(std::int64_t stride_bytes,
                                                int elem_bytes,
                                                int lanes = kWarpSize);

/// Analyzes a warp access of element (i,j) across 32 consecutive matrices
/// of the given layout (starting at a lane-block boundary). For interleaved
/// layouts the stride is sizeof(T); for canonical it is n²·sizeof(T).
[[nodiscard]] WarpAccess analyze_layout_access(const BatchLayout& layout,
                                               int elem_bytes);

}  // namespace ibchol
