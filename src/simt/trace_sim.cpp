#include "simt/trace_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/counts.hpp"
#include "layout/layout.hpp"
#include "simt/occupancy.hpp"

namespace ibchol {

namespace {

constexpr std::int64_t kElemBytes = 4;
constexpr int kL2Ways = 16;
constexpr int kLineBytes = 128;

/// Deterministic per-element hash in [0,1): selects which elements count as
/// register-promoted when the promotion is partial.
double element_hash(int i, int j) {
  std::uint64_t h = (static_cast<std::uint64_t>(i) << 32) ^
                    static_cast<std::uint64_t>(j) ^ 0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// One sampled warp's replay state.
struct WarpState {
  std::int64_t lane0 = 0;      ///< batch index of the warp's first matrix
  std::size_t op = 0;          ///< next op to replay
  int elem = 0;                ///< next element within the op
  double stall_cycles = 0.0;
  std::int64_t mem_instrs = 0;
  // Per-element first-touch flags for promotion elision (triangle only).
  std::vector<char> loaded;
  std::vector<char> stored;
};

/// Element coordinates of the k-th transferred element of a load/store op.
struct ElemCoord {
  int i;
  int j;
};

ElemCoord op_element(const TileOp& op, int k) {
  const bool lower = op.kind == TileOp::Kind::kLoadLower ||
                     op.kind == TileOp::Kind::kStoreLower;
  if (!lower) {
    const int j = k / op.rows;
    const int i = k % op.rows;
    return {op.row0 + i, op.col0 + j};
  }
  // Column-major walk of the lower triangle.
  int j = 0;
  int remaining = k;
  while (remaining >= op.rows - j) {
    remaining -= op.rows - j;
    ++j;
  }
  return {op.row0 + j + remaining, op.col0 + j};
}

int op_elem_count(const TileOp& op) {
  switch (op.kind) {
    case TileOp::Kind::kLoadFull:
    case TileOp::Kind::kStoreFull:
      return op.rows * op.cols;
    case TileOp::Kind::kLoadLower:
    case TileOp::Kind::kStoreLower:
      return op.rows * (op.rows + 1) / 2;
    default:
      return 0;
  }
}

bool is_load(const TileOp& op) {
  return op.kind == TileOp::Kind::kLoadFull ||
         op.kind == TileOp::Kind::kLoadLower;
}

bool is_store(const TileOp& op) {
  return op.kind == TileOp::Kind::kStoreFull ||
         op.kind == TileOp::Kind::kStoreLower;
}

double dram_efficiency_from(const ModelCalibration& cal,
                            double stride_bytes) {
  const double lo = std::log2(cal.dram_eff_best_stride);
  const double hi = std::log2(cal.dram_eff_worst_stride);
  const double x = std::clamp(std::log2(std::max(stride_bytes, 1.0)), lo, hi);
  const double t = (x - lo) / (hi - lo);
  return cal.dram_eff_best + t * (cal.dram_eff_worst - cal.dram_eff_best);
}

}  // namespace

TraceSimResult TraceSimulator::simulate(int n, std::int64_t batch,
                                        const TuningParams& params) const {
  params.validate(n);
  IBCHOL_CHECK(batch > 0, "batch must be positive");

  const int nb = params.effective_nb(n);
  const TileProgram program = build_tile_program(n, nb, params.looking);
  const BatchLayout layout =
      params.chunked
          ? BatchLayout::interleaved_chunked(n, batch, params.chunk_size)
          : BatchLayout::interleaved(n, batch);
  const int tpb = params.threads_per_block();
  const int warps_per_block = tpb / gpu_.warp_size;
  const std::int64_t padded = round_up(layout.padded_batch(), tpb);
  const std::int64_t warps_total = padded / gpu_.warp_size;

  TraceSimResult r;
  r.blocks = padded / tpb;

  // Registers / occupancy via the analytical components.
  const KernelModel helper(gpu_, config_.calibration);
  const RegisterEstimate regs =
      helper.estimate_registers(program, params.unroll, tpb);
  const Occupancy occ = compute_occupancy(
      gpu_, {tpb, regs.regs_per_thread, 0});
  r.resident_blocks_per_sm = std::max(occ.blocks_per_sm, 1);
  const double esms = std::min<double>(static_cast<double>(r.blocks),
                                       static_cast<double>(gpu_.sms));
  const std::int64_t resident_total =
      std::min<std::int64_t>(r.blocks,
                             gpu_.sms * static_cast<std::int64_t>(
                                            r.resident_blocks_per_sm));
  const double resident_warps_per_sm = std::min<double>(
      occ.warps_per_sm, static_cast<double>(warps_total) / esms);

  // --- sampled L2 ---------------------------------------------------------
  const int sample_blocks = static_cast<int>(
      std::min<std::int64_t>(config_.sample_blocks, r.blocks));
  const int sampled_warps = sample_blocks * warps_per_block;
  std::int64_t l2_share =
      static_cast<std::int64_t>(gpu_.l2_bytes) * sample_blocks /
      std::max<std::int64_t>(resident_total, sample_blocks);
  const std::int64_t granule = static_cast<std::int64_t>(kLineBytes) * kL2Ways;
  l2_share = std::max<std::int64_t>(l2_share / granule, 1) * granule;
  CacheModel l2(l2_share, kLineBytes, kL2Ways);

  // --- replay -------------------------------------------------------------
  const double hiding =
      std::max(1.0, std::min(resident_warps_per_sm,
                             config_.latency_hiding_warps));
  const double hit_stall = config_.l2_latency_cycles / hiding;
  const double miss_stall = gpu_.dram_latency_cycles / hiding;
  const bool full_unroll = params.unroll == Unroll::kFull;

  std::vector<WarpState> warps(sampled_warps);
  const std::size_t tri_slots = static_cast<std::size_t>(n) * n;
  for (int w = 0; w < sampled_warps; ++w) {
    const int blk = w / warps_per_block;
    const int wi = w % warps_per_block;
    warps[w].lane0 = static_cast<std::int64_t>(blk) * tpb +
                     static_cast<std::int64_t>(wi) * gpu_.warp_size;
    if (full_unroll) {
      warps[w].loaded.assign(tri_slots, 0);
      warps[w].stored.assign(tri_slots, 0);
    }
  }

  std::int64_t read_line_misses = 0;

  // Round-robin over warps, one op element per turn, modelling concurrent
  // execution of the resident warps' access streams.
  bool active = true;
  while (active) {
    active = false;
    for (auto& ws : warps) {
      if (ws.op >= program.ops.size()) continue;
      active = true;
      const TileOp& op = program.ops[ws.op];
      const int count = op_elem_count(op);
      if (count == 0) {  // compute op: no memory traffic
        ++ws.op;
        ws.elem = 0;
        continue;
      }
      const ElemCoord e = op_element(op, ws.elem);
      bool emit = true;
      if (full_unroll) {
        // Register promotion: a promoted element is loaded at most once and
        // stored at most once; which elements are promoted is a
        // deterministic fraction of the triangle.
        const bool promoted =
            element_hash(e.i, e.j) < regs.promoted_fraction;
        const std::size_t slot =
            static_cast<std::size_t>(e.i) * n + static_cast<std::size_t>(e.j);
        if (promoted && is_load(op)) {
          if (ws.loaded[slot]) emit = false;
          ws.loaded[slot] = 1;
        } else if (promoted && is_store(op)) {
          if (ws.stored[slot]) emit = false;
          ws.stored[slot] = 1;
        }
      }
      if (emit) {
        // The 32 lanes of element (i,j) occupy one contiguous 128-byte line
        // in an interleaved layout.
        const std::uint64_t addr =
            static_cast<std::uint64_t>(layout.index(ws.lane0, e.i, e.j)) *
            kElemBytes;
        const bool write = is_store(op);
        const bool hit = l2.access(addr, write);
        // A store writes the complete 128-byte line (32 lanes x 4 bytes),
        // so a write miss allocates without fetching; only read misses
        // cost DRAM read traffic.
        if (!hit && !write) ++read_line_misses;
        ws.stall_cycles += hit ? hit_stall : miss_stall;
        ++ws.mem_instrs;
      }
      if (++ws.elem >= count) {
        ++ws.op;
        ws.elem = 0;
      }
    }
  }

  const std::int64_t write_lines = l2.stats().writebacks + l2.flush_dirty();
  r.l2_accesses = l2.stats().accesses;
  r.l2_hit_rate = l2.stats().hit_rate();

  // --- extrapolate traffic -------------------------------------------------
  const double scale =
      static_cast<double>(warps_total) / std::max(sampled_warps, 1);
  r.dram_read_bytes =
      static_cast<double>(read_line_misses) * kLineBytes * scale;
  r.dram_write_bytes =
      static_cast<double>(write_lines) * kLineBytes * scale;

  // --- timing -------------------------------------------------------------
  const OpCounts counts = count_program(program);
  double issue_slots = static_cast<double>(counts.issue_slots(params.math));
  double mem_instrs = 0.0, stall = 0.0;
  for (const auto& ws : warps) {
    mem_instrs += static_cast<double>(ws.mem_instrs);
    stall += ws.stall_cycles;
  }
  mem_instrs /= std::max(sampled_warps, 1);
  stall /= std::max(sampled_warps, 1);
  const double warp_cycles = issue_slots + mem_instrs + stall;

  const double clock_hz = gpu_.clock_ghz * 1e9;
  const double issue_rate = gpu_.issue_slots_per_sm_cycle() / gpu_.warp_size;
  const double throughput_s = static_cast<double>(warps_total) *
                              (issue_slots + mem_instrs) /
                              (issue_rate * esms * clock_hz);
  const double waves = std::ceil(
      static_cast<double>(r.blocks) /
      (esms * static_cast<double>(r.resident_blocks_per_sm)));
  const double latency_s = waves * warp_cycles / clock_hz;
  r.compute_s = std::max(throughput_s, latency_s);
  r.cycles_per_block = warp_cycles;

  const double stride_bytes = static_cast<double>(layout.chunk()) * 4.0;
  const double bw =
      gpu_.dram_bw_bytes * dram_efficiency_from(config_.calibration,
                                                stride_bytes);
  r.memory_s = (r.dram_read_bytes + r.dram_write_bytes) / bw;

  const double tmax = std::max(r.compute_s, r.memory_s);
  const double tmin = std::min(r.compute_s, r.memory_s);
  r.seconds = tmax + 0.25 * tmin + gpu_.launch_overhead_s;
  r.gflops = static_cast<double>(batch) * nominal_flops_per_matrix(n) /
             r.seconds / 1e9;
  return r;
}

}  // namespace ibchol
