// Trace-driven SIMT kernel simulation.
//
// The second, independent performance substrate: instead of closed-form
// traffic formulas (KernelModel), the trace simulator *executes* the tile
// program at warp granularity over the kernel's real address stream:
//
//   * every load/store element of every sampled warp becomes one 128-byte
//     line access at the address the BatchLayout actually assigns (one line
//     per warp access — the interleaved layouts are perfectly coalesced);
//   * the access stream of concurrently resident warps is interleaved
//     round-robin and replayed through a set-associative LRU L2 model with
//     a capacity share proportional to the sampled fraction of residency;
//   * warp timing charges issue slots per instruction plus latency-hiding-
//     discounted stalls for L2 hits and DRAM misses; device time combines
//     wave count and the DRAM bandwidth floor (with the layout's row/TLB
//     efficiency).
//
// Because the L2 hit rate is *derived* rather than assumed, the simulator
// provides an independent check of the analytical model's chunking story —
// see bench/ablation_model_vs_sim and the trace_sim tests.
#pragma once

#include <cstdint>

#include "kernels/variant.hpp"
#include "simt/cache_model.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/kernel_model.hpp"

namespace ibchol {

/// Trace-simulation controls.
struct TraceSimConfig {
  /// Thread blocks whose warps are traced; the rest of the device is
  /// extrapolated. More blocks = a bigger L2 sample.
  int sample_blocks = 4;
  /// L2 access latency in cycles (hit service time).
  double l2_latency_cycles = 220.0;
  /// Latency-hiding divisor: a warp's stall is shared across the other
  /// resident warps. Effective stall = latency / min(resident, this).
  double latency_hiding_warps = 12.0;
  /// Reuse the analytical calibration for the DRAM row/TLB efficiency.
  ModelCalibration calibration;
};

/// Simulation result (whole batch, extrapolated from the sample).
struct TraceSimResult {
  double seconds = 0.0;
  double gflops = 0.0;

  // Derived memory behaviour.
  std::int64_t l2_accesses = 0;   ///< sampled line accesses
  double l2_hit_rate = 0.0;       ///< measured on the sampled stream
  double dram_read_bytes = 0.0;   ///< extrapolated to the whole batch
  double dram_write_bytes = 0.0;

  // Timing breakdown.
  double cycles_per_block = 0.0;
  double compute_s = 0.0;         ///< issue-limited component
  double memory_s = 0.0;          ///< bandwidth floor
  std::int64_t blocks = 0;
  int resident_blocks_per_sm = 0;
};

/// The simulator. Deterministic; ~milliseconds per evaluation.
class TraceSimulator {
 public:
  explicit TraceSimulator(GpuSpec gpu, TraceSimConfig config = {})
      : gpu_(std::move(gpu)), config_(config) {}

  /// Simulates factoring `batch` n×n matrices with the given variant.
  [[nodiscard]] TraceSimResult simulate(int n, std::int64_t batch,
                                        const TuningParams& params) const;

  [[nodiscard]] const GpuSpec& gpu() const { return gpu_; }

 private:
  GpuSpec gpu_;
  TraceSimConfig config_;
};

}  // namespace ibchol
