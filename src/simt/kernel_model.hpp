// Analytical SIMT performance model for the interleaved batch Cholesky
// kernels.
//
// Substitute for the paper's P100 measurements (see DESIGN.md §2): for a
// kernel variant the model derives, from the exact tile program,
//   * memory traffic (compulsory + re-access, with L2 filtering and the
//     layout's DRAM-locality efficiency),
//   * arithmetic issue work (IEEE vs fast-math special-function sequences),
//   * per-thread register demand (including whole-matrix register promotion
//     for fully unrolled small kernels, and spilling when a block's
//     registers exceed the SM file),
//   * static code size and an instruction-cache penalty,
//   * occupancy and a latency-hiding utilization factor,
// and combines them into a kernel time and GFLOP/s rate (the paper's
// convention: (1/3)n³ flops per matrix).
//
// All tunable constants live in ModelCalibration with documented meanings;
// the defaults are calibrated so the model reproduces the *shape* of every
// figure in the paper (regimes, crossovers, orderings), not the absolute
// numbers of the authors' testbed.
#pragma once

#include <cstdint>

#include "kernels/counts.hpp"
#include "kernels/tile_program.hpp"
#include "kernels/variant.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/occupancy.hpp"

namespace ibchol {

/// Per-thread register estimate for one kernel variant.
struct RegisterEstimate {
  int regs_per_thread = 0;
  /// Fraction of the matrix promoted to registers (full unrolling only):
  /// 1.0 below the promotion threshold (~n = 21), decaying as the triangle
  /// outgrows the register file. Promoted elements skip re-loads/re-stores.
  double promoted_fraction = 0.0;
  int spilled_regs = 0;  ///< registers spilled to local memory per thread
};

/// Tunable model constants (calibrated, see header comment).
struct ModelCalibration {
  /// Registers not holding matrix data (addresses, temporaries).
  int overhead_regs = 14;

  /// Achieved fraction of peak DRAM bandwidth for chunked layouts with
  /// small element strides (≤ dram_eff_best_stride: successive accesses of
  /// a warp stay within a DRAM row / TLB page). Batched small-matrix
  /// kernels do not reach STREAM-class efficiency — short bursts, many
  /// independent streams.
  double dram_eff_best = 0.60;

  /// Efficiency floor for the simple interleaved layout at batch 16k
  /// (64 KiB element stride: every access opens a new DRAM row/TLB page).
  double dram_eff_worst = 0.38;

  /// Element stride (bytes) below which efficiency stays at dram_eff_best.
  double dram_eff_best_stride = 512.0;

  /// Element stride (bytes) at which efficiency bottoms out.
  double dram_eff_worst_stride = 65536.0;

  /// Probability a re-accessed element hits in L2 for chunked layouts.
  /// Small — the paper observes that for these kernels "caches only serve
  /// the purpose of streaming buffers" — but nonzero thanks to the compact
  /// chunk working sets.
  double l2_hit_chunked = 0.12;

  /// Same for the simple interleaved layout: reuse windows span the whole
  /// dataset, evicting before reuse.
  double l2_hit_nonchunked = 0.02;

  /// Memory-level parallelism: outstanding 128-byte lines per warp, used in
  /// the Little's-law achievable-bandwidth bound.
  double mlp_lines_per_warp = 4.0;

  /// Resident warps per SM needed to saturate instruction issue.
  double warps_to_saturate = 16.0;

  /// Latency (cycles) of one dependent special-function sequence
  /// (sqrt or division) — IEEE-compliant vs fast-math.
  double special_latency_ieee = 60.0;
  double special_latency_fast = 16.0;

  /// Latency (cycles) of a dependent FMA.
  double fma_latency = 6.0;

  /// Each spilled register costs this many local-memory round trips per
  /// kernel (store + reload amplification).
  double spill_reuse = 3.0;

  /// Instruction-cache miss penalty: compute time multiplier grows by this
  /// factor per doubling of code size beyond the I-cache capacity.
  double icache_penalty_per_doubling = 0.55;
};

/// Full model output for one (n, batch, variant) evaluation.
struct ModelResult {
  double seconds = 0.0;
  double gflops = 0.0;

  // Component times (seconds).
  double compute_s = 0.0;
  double memory_s = 0.0;
  double latency_s = 0.0;
  double overhead_s = 0.0;

  // Memory accounting (bytes moved for the whole batch).
  double dram_read_bytes = 0.0;
  double dram_write_bytes = 0.0;
  double l2_bytes = 0.0;
  double dram_efficiency = 0.0;
  double l2_hit_rate = 0.0;

  // Kernel shape.
  RegisterEstimate regs;
  Occupancy occ;
  std::int64_t code_bytes = 0;
  double icache_penalty = 1.0;
  std::int64_t blocks = 0;
  int threads_per_block = 0;
  OpCounts counts;  ///< per-matrix tile-program counts
};

/// The analytical model. Immutable and cheap to evaluate (~µs per call),
/// so exhaustive autotuning sweeps are practical.
class KernelModel {
 public:
  explicit KernelModel(GpuSpec gpu, ModelCalibration cal = {})
      : gpu_(std::move(gpu)), cal_(cal) {}

  /// Evaluates one kernel variant for a batch of n×n matrices.
  [[nodiscard]] ModelResult evaluate(int n, std::int64_t batch,
                                     const TuningParams& params) const;

  /// Register estimate for a variant (exposed for tests and reports).
  [[nodiscard]] RegisterEstimate estimate_registers(
      const TileProgram& program, Unroll unroll, int threads_per_block) const;

  [[nodiscard]] const GpuSpec& gpu() const { return gpu_; }
  [[nodiscard]] const ModelCalibration& calibration() const { return cal_; }

 private:
  GpuSpec gpu_;
  ModelCalibration cal_;
};

}  // namespace ibchol
