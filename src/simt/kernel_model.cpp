#include "simt/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "layout/layout.hpp"
#include "util/error.hpp"

namespace ibchol {

namespace {

constexpr double kElemBytes = 4.0;  // the paper's kernels are single precision

std::int64_t lower_triangle_elems(int n) {
  return static_cast<std::int64_t>(n) * (n + 1) / 2;
}

/// Log-linear interpolation of DRAM efficiency between the best (small
/// element stride — consecutive accesses stay in a DRAM row / TLB page) and
/// worst (stride of the whole batch — every access opens a new row/page).
double dram_efficiency(const ModelCalibration& cal, double stride_bytes) {
  const double lo = std::log2(cal.dram_eff_best_stride);
  const double hi = std::log2(cal.dram_eff_worst_stride);
  const double x = std::clamp(std::log2(std::max(stride_bytes, 1.0)), lo, hi);
  const double t = (x - lo) / (hi - lo);
  return cal.dram_eff_best + t * (cal.dram_eff_worst - cal.dram_eff_best);
}

}  // namespace

RegisterEstimate KernelModel::estimate_registers(const TileProgram& program,
                                                 Unroll unroll,
                                                 int threads_per_block) const {
  RegisterEstimate est;
  const int tri = static_cast<int>(lower_triangle_elems(program.n));
  const int tile_regs =
      program.num_register_tiles() * program.nb * program.nb;

  if (unroll == Unroll::kFull) {
    // Straight-line code lets the compiler promote the matrix itself into
    // registers; the promotion degrades gracefully once the triangle
    // outgrows the register file (observed on the P100 between n = 20 and
    // n = 40, paper §III).
    const int avail = gpu_.max_regs_per_thread - cal_.overhead_regs;
    est.promoted_fraction =
        std::min(1.0, static_cast<double>(avail) / static_cast<double>(tri));
    est.regs_per_thread =
        std::min(tri + cal_.overhead_regs, gpu_.max_regs_per_thread);
  } else {
    est.promoted_fraction = 0.0;
    est.regs_per_thread =
        std::min(tile_regs + cal_.overhead_regs, gpu_.max_regs_per_thread);
  }

  // A block's registers must fit in the SM file; otherwise the compiler is
  // forced (as with __launch_bounds__) to cap the allocation and spill the
  // excess to local memory.
  const int cap = gpu_.regs_per_sm / std::max(threads_per_block, 1);
  if (est.regs_per_thread > cap) {
    est.spilled_regs = est.regs_per_thread - cap;
    est.regs_per_thread = cap;
    // Spilled matrix state also cancels the promotion benefit.
    est.promoted_fraction = std::min(
        est.promoted_fraction,
        static_cast<double>(cap) / static_cast<double>(tri + 1));
  }
  return est;
}

ModelResult KernelModel::evaluate(int n, std::int64_t batch,
                                  const TuningParams& params) const {
  params.validate(n);
  IBCHOL_CHECK(batch > 0, "batch must be positive");

  ModelResult r;
  const int nb = params.effective_nb(n);
  const TileProgram program = build_tile_program(n, nb, params.looking);
  r.counts = count_program(program);
  r.threads_per_block = params.threads_per_block();

  const std::int64_t padded = round_up(batch, r.threads_per_block);
  const std::int64_t warps_total = padded / gpu_.warp_size;
  r.blocks = padded / r.threads_per_block;

  // --- registers, occupancy -------------------------------------------
  r.regs = estimate_registers(program, params.unroll, r.threads_per_block);
  KernelResources res;
  res.threads_per_block = r.threads_per_block;
  res.regs_per_thread = r.regs.regs_per_thread;
  res.smem_per_block_bytes = 0;
  r.occ = compute_occupancy(gpu_, res);

  const double esms = std::min<double>(static_cast<double>(r.blocks),
                                       static_cast<double>(gpu_.sms));
  const double warps_per_block =
      static_cast<double>(r.threads_per_block) / gpu_.warp_size;
  const double resident_warps =
      std::min<double>(r.occ.warps_per_sm,
                       static_cast<double>(warps_total) / esms);
  const double issue_util =
      std::min(1.0, resident_warps / cal_.warps_to_saturate);

  // --- code size, i-cache ----------------------------------------------
  const CodeSize code = estimate_code_size(program, params.unroll, params.math);
  r.code_bytes = code.bytes();
  r.icache_penalty = 1.0;
  if (r.code_bytes > gpu_.icache_bytes) {
    r.icache_penalty += cal_.icache_penalty_per_doubling *
                        std::log2(static_cast<double>(r.code_bytes) /
                                  gpu_.icache_bytes);
  }

  // --- memory traffic ----------------------------------------------------
  // Unique footprint: the factorization reads and writes exactly the lower
  // triangle. Everything beyond that is re-access traffic, which register
  // promotion (full unrolling, small n) removes and L2 partially absorbs.
  const double unique = static_cast<double>(lower_triangle_elems(n));
  const double re_loads =
      std::max(0.0, static_cast<double>(r.counts.load_elems) - unique) *
      (1.0 - r.regs.promoted_fraction);
  const double re_stores =
      std::max(0.0, static_cast<double>(r.counts.store_elems) - unique) *
      (1.0 - r.regs.promoted_fraction);

  r.l2_hit_rate = params.chunked ? cal_.l2_hit_chunked : cal_.l2_hit_nonchunked;

  // Spills go to thread-local memory; it is L2-cached but large spill
  // working sets (one slot per thread) mostly stream to DRAM.
  const double spill_elems = static_cast<double>(r.regs.spilled_regs) *
                             cal_.spill_reuse;

  const double dram_read_per_matrix =
      unique + re_loads * (1.0 - r.l2_hit_rate) + spill_elems;
  const double dram_write_per_matrix =
      unique + re_stores * (1.0 - r.l2_hit_rate) + spill_elems;
  r.dram_read_bytes = static_cast<double>(batch) * dram_read_per_matrix *
                      kElemBytes;
  r.dram_write_bytes = static_cast<double>(batch) * dram_write_per_matrix *
                       kElemBytes;
  // L2 serves the re-accesses that hit.
  r.l2_bytes = static_cast<double>(batch) *
               (re_loads + re_stores) * r.l2_hit_rate * kElemBytes;

  // Element stride across the batch dimension: chunk·4 bytes for chunked
  // layouts, padded-batch·4 bytes for the simple interleaved layout.
  const double stride_bytes =
      (params.chunked ? static_cast<double>(params.chunk_size)
                      : static_cast<double>(round_up(batch, kWarpSize))) *
      kElemBytes;
  r.dram_efficiency = dram_efficiency(cal_, stride_bytes);

  const double lat_s = gpu_.dram_latency_cycles / (gpu_.clock_ghz * 1e9);
  const double bw_littles =
      esms * resident_warps * cal_.mlp_lines_per_warp * gpu_.line_bytes /
      lat_s;
  const double bw =
      std::min(gpu_.dram_bw_bytes * r.dram_efficiency, bw_littles);
  r.memory_s = (r.dram_read_bytes + r.dram_write_bytes) / bw +
               r.l2_bytes / gpu_.l2_bw_bytes;

  // --- instruction issue ---------------------------------------------------
  // One warp factors 32 matrices in lockstep, so warp instruction count ==
  // per-matrix slot count. Memory instructions issue once per element
  // access that survived promotion.
  const double mem_instrs =
      2.0 * unique + re_loads + re_stores + 2.0 * spill_elems;
  const double slots =
      static_cast<double>(r.counts.issue_slots(params.math)) + mem_instrs;
  const double issue_per_sm_cycle =
      gpu_.issue_slots_per_sm_cycle() / gpu_.warp_size;  // warp-instr/cycle
  const double clock_hz = gpu_.clock_ghz * 1e9;
  const double throughput_s = static_cast<double>(warps_total) * slots /
                              (issue_per_sm_cycle * esms * clock_hz);
  // Granularity tail: the last block runs alone on one SM.
  const double tail_s =
      warps_per_block * slots / (issue_per_sm_cycle * clock_hz);
  r.compute_s = (throughput_s / issue_util + tail_s) * r.icache_penalty;

  // --- dependent-chain latency floor --------------------------------------
  // The diagonal recurrence (sqrt -> reciprocal -> column scale) serializes
  // n special-function sequences per matrix.
  const double special_lat = params.math == MathMode::kFastMath
                                 ? cal_.special_latency_fast
                                 : cal_.special_latency_ieee;
  const double crit_cycles =
      static_cast<double>(n) * (2.0 * special_lat + cal_.fma_latency);
  const double waves = std::max(
      1.0, static_cast<double>(warps_total) / (esms * resident_warps));
  r.latency_s = waves * crit_cycles / clock_hz;

  // --- combine -------------------------------------------------------------
  r.overhead_s = gpu_.launch_overhead_s;
  const double tmax = std::max({r.compute_s, r.memory_s, r.latency_s});
  const double minor = r.compute_s + r.memory_s + r.latency_s - tmax;
  r.seconds = tmax + 0.25 * minor + r.overhead_s;
  r.gflops = static_cast<double>(batch) * nominal_flops_per_matrix(n) /
             r.seconds / 1e9;
  return r;
}

}  // namespace ibchol
