#include "simt/coalescing.hpp"

#include <set>

namespace ibchol {

WarpAccess analyze_strided_access(std::int64_t stride_bytes, int elem_bytes,
                                  int lanes) {
  constexpr std::int64_t kSector = 32;
  constexpr std::int64_t kLine = 128;
  std::set<std::int64_t> sectors;
  std::set<std::int64_t> lines;
  for (int l = 0; l < lanes; ++l) {
    const std::int64_t first = l * stride_bytes;
    const std::int64_t last = first + elem_bytes - 1;
    for (std::int64_t s = first / kSector; s <= last / kSector; ++s) {
      sectors.insert(s);
    }
    for (std::int64_t ln = first / kLine; ln <= last / kLine; ++ln) {
      lines.insert(ln);
    }
  }
  WarpAccess a;
  a.sectors = static_cast<int>(sectors.size());
  a.lines = static_cast<int>(lines.size());
  a.useful_bytes = lanes * elem_bytes;
  return a;
}

WarpAccess analyze_layout_access(const BatchLayout& layout, int elem_bytes) {
  const std::int64_t stride =
      layout.batch_stride_within_chunk() * elem_bytes;
  return analyze_strided_access(stride, elem_bytes);
}

}  // namespace ibchol
