// Set-associative cache model (LRU, write-back, write-allocate).
//
// Used by the trace-driven simulator as the device L2: the analytical
// KernelModel *assumes* an L2 hit probability per layout; the trace
// simulator *derives* it by replaying the kernel's real address stream
// through this model, grounding the paper's "spatial locality principle"
// explanation of chunking (Fig 17) in an actual cache.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace ibchol {

/// A classic W-way set-associative cache with true-LRU replacement.
class CacheModel {
 public:
  struct Stats {
    std::int64_t accesses = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t writebacks = 0;  ///< dirty lines evicted

    [[nodiscard]] double hit_rate() const {
      return accesses == 0 ? 0.0
                           : static_cast<double>(hits) / accesses;
    }
  };

  /// size_bytes and line_bytes must be powers of two; ways must divide the
  /// line count.
  CacheModel(std::int64_t size_bytes, int line_bytes, int ways);

  /// Accesses the line containing `addr`; returns true on hit. A write
  /// marks the line dirty (write-allocate on miss).
  bool access(std::uint64_t addr, bool write);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::int64_t size_bytes() const {
    return static_cast<std::int64_t>(sets_.size() / ways_) * ways_ *
           line_bytes_;
  }

  /// Writes back all dirty lines (marking them clean) and returns how many
  /// there were — the end-of-kernel flush traffic.
  std::int64_t flush_dirty();

  /// Clears contents and statistics.
  void reset();

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint32_t lru = 0;   ///< smaller = older
    bool valid = false;
    bool dirty = false;
  };

  int line_bytes_;
  int ways_;
  std::size_t num_sets_;
  std::vector<Way> sets_;  ///< num_sets_ * ways_, row-major by set
  std::uint32_t clock_ = 0;
  Stats stats_;
};

}  // namespace ibchol
