// GPU machine descriptions for the SIMT performance model.
//
// The paper's testbed is an NVIDIA P100 (Pascal, CUDA 8.0). The model is
// parameterized by a GpuSpec so the same analysis can target other
// machines; a Kepler-class K40 spec is included for model unit tests and
// cross-architecture sanity checks.
#pragma once

#include <string>

namespace ibchol {

/// Architectural parameters consumed by the cost model. All bandwidths are
/// bytes/second, latencies in clock cycles.
struct GpuSpec {
  std::string name;

  // Compute.
  int sms = 0;                    ///< streaming multiprocessors
  int cores_per_sm = 0;           ///< FP32 CUDA cores per SM
  double clock_ghz = 0.0;         ///< sustained SM clock
  int warp_size = 32;

  // Occupancy limits.
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 0;
  int max_warps_per_sm = 0;
  int regs_per_sm = 0;            ///< 32-bit registers per SM
  int max_regs_per_thread = 0;
  int smem_per_sm_bytes = 0;

  // Memory system.
  double dram_bw_bytes = 0.0;     ///< peak DRAM bandwidth
  double l2_bw_bytes = 0.0;       ///< aggregate L2 bandwidth
  int l2_bytes = 0;
  int line_bytes = 128;           ///< cache line / max transaction
  int sector_bytes = 32;          ///< DRAM sector granularity
  double dram_latency_cycles = 0; ///< average DRAM access latency

  // Instruction supply.
  int icache_bytes = 0;           ///< effective per-SM instruction cache

  // Fixed kernel launch overhead (seconds).
  double launch_overhead_s = 0.0;

  /// Peak FP32 rate in flops/s (counting FMA as two).
  [[nodiscard]] double peak_fp32_flops() const {
    return static_cast<double>(sms) * cores_per_sm * 2.0 * clock_ghz * 1e9;
  }

  /// Issue slots per SM per cycle (one FMA-class instruction per core).
  [[nodiscard]] double issue_slots_per_sm_cycle() const {
    return static_cast<double>(cores_per_sm);
  }

  /// NVIDIA P100 (SXM2): 56 SMs × 64 cores, 1.48 GHz, 732 GB/s HBM2.
  static GpuSpec p100();

  /// NVIDIA K40 (Kepler): used for model tests on a second architecture.
  static GpuSpec k40();
};

}  // namespace ibchol
