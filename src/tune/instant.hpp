// The instant tuner: cache-hit → answer in microseconds; cache-miss →
// model-guided probing instead of an exhaustive sweep; drift → re-tune.
//
// Lifecycle per (host, n, batch, layout domain, tier, storage) key:
//
//          ┌────────── cold start (no entry / bad line / version bump)
//          v
//   [MISS] plan_probes (model top-K) → run_probe_plan (K evaluator
//          probes) → winner appended to the cache file → installed
//          v
//   [WARM] params_for(n) answers from memory — zero evaluator probes —
//          and recommended_params(n)/resolve_cpu_exec consult the
//          installed override tables (tune.override_hit / tune.exec_
//          override counters)
//          v
//   [DRIFT] the facade observer feeds per-call times into observe(); when
//          the running mean deviates from the cached winner's expectation
//          by more than drift_threshold (default 25%) over at least
//          min_drift_samples calls, the key is marked drifted
//          (tune.drift_detected) and poll_drift() re-probes it
//          (tune.retune), appending a fresh cache line and re-installing.
//
// Install/uninstall swap immutable snapshots (core/tuned_overrides,
// cpu set_cpu_exec_overrides); the observer holds the tuner's accumulator
// state via shared_ptr, so a facade call racing the tuner's destruction
// never touches freed memory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/space.hpp"
#include "simt/kernel_model.hpp"
#include "tune/cache.hpp"
#include "tune/host_probe.hpp"
#include "tune/probe_plan.hpp"

namespace ibchol::tune {

/// The search domain instant tuning covers by default: both interleaved
/// layouts, the two production executors (the interpreter is a correctness
/// oracle, not a candidate), the host's best tier.
[[nodiscard]] SpaceOptions default_instant_space();

struct InstantOptions {
  /// Cache file; "" takes IBCHOL_TUNE_CACHE (default_tune_cache_path), and
  /// an empty result disables persistence (in-memory only).
  std::string cache_path;
  std::int64_t batch = 16384;
  int top_k = 8;
  SpaceOptions space = default_instant_space();
  StoragePrec storage = StoragePrec::kFp32;
  /// Install winners into recommended_params / resolve_cpu_exec as they
  /// are found or loaded.
  bool install_overrides = true;
  /// Relative deviation of observed per-matrix time from the cached
  /// expectation that marks a key drifted.
  double drift_threshold = 0.25;
  /// Observations required before drift can trigger (smooths cold caches
  /// and scheduler noise).
  int min_drift_samples = 8;
};

class InstantTuner {
 public:
  /// `eval` must outlive the tuner (it runs the probes; cache hits never
  /// touch it). `profile` defaults to the process-wide calibration.
  explicit InstantTuner(Evaluator& eval, InstantOptions options = {},
                        HostProfile profile = cached_host_profile());
  ~InstantTuner();

  InstantTuner(const InstantTuner&) = delete;
  InstantTuner& operator=(const InstantTuner&) = delete;

  /// The tuned parameters for size n: warm keys answer from memory
  /// ("tune.cache_hit", zero probes), cold keys run the model-guided probe
  /// path ("tune.cache_miss" + K × "tune.probe") and persist the winner.
  [[nodiscard]] TuningParams params_for(int n);

  /// Feeds one observed factorization (per-batch wall seconds) into the
  /// drift detector. The installed facade observer calls this; tests may
  /// call it directly.
  void observe(int n, std::int64_t batch, double seconds);

  /// Sizes currently marked drifted (expectation missed by more than
  /// drift_threshold over ≥ min_drift_samples observations).
  [[nodiscard]] std::vector<int> drifted() const;

  /// Re-tunes every drifted size now (synchronously, on this thread):
  /// fresh probes, fresh cache line, tables re-installed. Returns the
  /// number of sizes re-tuned.
  int poll_drift();

  /// (Re)installs the override tables and the facade observer from the
  /// current in-memory winners.
  void install();

  /// Clears every global hook this subsystem installs (override table,
  /// exec table, observer) — back to paper defaults. Static: safe to call
  /// without a live tuner, e.g. from test teardown.
  static void uninstall();

  [[nodiscard]] const KernelModel& model() const { return model_; }
  [[nodiscard]] const HostProfile& profile() const { return profile_; }
  [[nodiscard]] const InstantOptions& options() const { return options_; }
  /// The cache key params_for(n) uses (exposed for tests).
  [[nodiscard]] TuneKey key_for(int n) const;

 private:
  struct ObsState;  // per-size running mean vs expectation; shared with
                    // the installed observer

  TuningParams tune_now(int n);  ///< probe path; mu_ must be held

  Evaluator& eval_;
  InstantOptions options_;
  HostProfile profile_;
  KernelModel model_;
  std::string layout_domain_;

  mutable std::mutex mu_;
  std::map<int, SweepRecord> winners_;  ///< by n, under mu_
  std::unique_ptr<TuneCacheWriter> writer_;
  std::shared_ptr<ObsState> obs_;
};

}  // namespace ibchol::tune
