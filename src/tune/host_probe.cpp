#include "tune/host_probe.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cpu/simd/isa.hpp"
#include "obs/counters.hpp"
#include "tune/hash.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

namespace ibchol::tune {

namespace {

// One sysfs read, trimmed; "" when the file is absent (non-Linux, or a
// container that masks /sys).
std::string read_sysfs(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  char buf[128] = {};
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string s(buf, got);
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

// Cache sizes are reported like "32K" / "8M"; unsuffixed values are bytes
// (same convention as detect_llc_bytes in the chunk pipeline).
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  std::size_t bytes = static_cast<std::size_t>(v);
  if (end != nullptr && (*end == 'K' || *end == 'k')) bytes <<= 10;
  if (end != nullptr && (*end == 'M' || *end == 'm')) bytes <<= 20;
  return bytes;
}

void read_cache_hierarchy(HostProfile& p) {
  for (int i = 0; i < 8; ++i) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(i) + "/";
    const std::string type = read_sysfs(base + "type");
    if (type.empty()) continue;
    const std::size_t bytes = parse_cache_size(read_sysfs(base + "size"));
    if (bytes == 0) continue;
    const int level =
        static_cast<int>(std::strtol(read_sysfs(base + "level").c_str(),
                                     nullptr, 10));
    if (type == "Instruction") continue;
    if (level == 1) p.l1d_bytes = std::max(p.l1d_bytes, bytes);
    if (level == 2) p.l2_bytes = std::max(p.l2_bytes, bytes);
    p.llc_bytes = std::max(p.llc_bytes, bytes);
    const std::string line = read_sysfs(base + "coherency_line_size");
    if (!line.empty()) {
      const int lb = static_cast<int>(std::strtol(line.c_str(), nullptr, 10));
      if (lb > 0) p.line_bytes = lb;
    }
  }
}

std::string read_cpu_name() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "";
  char line[512];
  std::string name;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    name = colon + 1;
    while (!name.empty() && (name.front() == ' ' || name.front() == '\t')) {
      name.erase(name.begin());
    }
    while (!name.empty() && (name.back() == '\n' || name.back() == ' ')) {
      name.pop_back();
    }
    break;
  }
  std::fclose(f);
  return name;
}

// Streaming-copy bandwidth: best-of-5 memcpy over buffers several times the
// typical LLC so the probe measures memory, not cache. Counts both the read
// and the write stream (what the pipeline's pack/unpack stages move).
double probe_copy_bandwidth() {
  constexpr std::size_t kElems = (8u << 20) / sizeof(float);  // 8 MiB each
  AlignedBuffer<float> src(kElems);
  AlignedBuffer<float> dst(kElems);
  std::memset(src.data(), 1, kElems * sizeof(float));
  std::memcpy(dst.data(), src.data(), kElems * sizeof(float));  // warm pages
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    Timer t;
    std::memcpy(dst.data(), src.data(), kElems * sizeof(float));
    best = std::min(best, t.seconds());
  }
  if (best <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(kElems * sizeof(float)) / best;
}

// Vector FMA throughput, single thread: eight independent accumulators over
// an L1-resident array, autovectorized by the build's own -march flags (the
// same flags the specialized executor's kernels compile under). Counting an
// FMA as two flops.
double probe_fma_throughput() {
  constexpr int kElems = 4096;
  constexpr int kPasses = 2048;
  std::vector<float> x(kElems, 1.0000001f);
  float acc[8] = {1, 1, 1, 1, 1, 1, 1, 1};
  // One untimed pass warms the array and the frequency governor.
  for (int i = 0; i < kElems; i += 8) {
    for (int a = 0; a < 8; ++a) acc[a] = acc[a] * x[i + a] + 0.25f;
  }
  Timer t;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (int i = 0; i < kElems; i += 8) {
      for (int a = 0; a < 8; ++a) acc[a] = acc[a] * x[i + a] + 0.25f;
    }
  }
  const double s = t.seconds();
  // Keep the accumulators observable so the loop cannot be elided.
  double sink = 0.0;
  for (const float a : acc) sink += a;
  if (s <= 0.0 || sink == -1.0) return 0.0;
  const double fmas = static_cast<double>(kPasses) * kElems;
  return 2.0 * fmas / s / 1e9;
}

}  // namespace

std::string HostProfile::fingerprint() const {
  std::string id = cpu_name;
  id += '|' + std::to_string(logical_cores);
  id += '|' + ibchol::to_string(isa);
  id += '|' + std::to_string(l1d_bytes);
  id += '|' + std::to_string(l2_bytes);
  id += '|' + std::to_string(llc_bytes);
  id += '|' + std::to_string(line_bytes);
  return to_hex16(fnv1a64(id));
}

HostProfile detect_host_profile(bool run_microprobes) {
  HostProfile p;
  p.cpu_name = read_cpu_name();
  const unsigned hc = std::thread::hardware_concurrency();
  p.logical_cores = hc == 0 ? 1 : static_cast<int>(hc);
  p.isa = resolve_simd_isa(SimdIsa::kAuto);
  read_cache_hierarchy(p);
  if (run_microprobes) {
    p.copy_bw_bytes = probe_copy_bandwidth();
    p.fma_gflops = probe_fma_throughput();
    IBCHOL_COUNT("tune.host_probe", 1);
  }
  return p;
}

const HostProfile& cached_host_profile() {
  static const HostProfile profile = detect_host_profile(true);
  return profile;
}

GpuSpec cpu_spec_from_profile(const HostProfile& profile) {
  GpuSpec s;
  s.name = "cpu:" + (profile.cpu_name.empty() ? std::string("unknown")
                                              : profile.cpu_name);
  s.sms = std::max(1, profile.logical_cores);
  // "Cores per SM" = fp32 SIMD lanes of the resolved tier: the model's
  // issue-rate terms then scale with vector width exactly as the
  // vectorized executor's throughput does.
  switch (profile.isa) {
    case SimdIsa::kAvx512: s.cores_per_sm = 16; break;
    case SimdIsa::kAvx2: s.cores_per_sm = 8; break;
    default: s.cores_per_sm = 1; break;
  }
  // Clock from the measured FMA rate (per-lane flops = 2·lanes·clock); a
  // failed probe falls back to a nominal 2 GHz server clock.
  s.clock_ghz = profile.fma_gflops > 0.0
                    ? profile.fma_gflops / (2.0 * s.cores_per_sm)
                    : 2.0;
  // Occupancy ceilings generous enough never to bind (see header).
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.max_warps_per_sm = 64;
  s.regs_per_sm = 65536;
  s.max_regs_per_thread = 255;
  s.smem_per_sm_bytes = 64 * 1024;
  s.dram_bw_bytes = profile.copy_bw_bytes > 0.0 ? profile.copy_bw_bytes : 8e9;
  s.l2_bw_bytes = 4.0 * s.dram_bw_bytes;
  const std::size_t llc =
      profile.llc_bytes > 0 ? profile.llc_bytes : (8u << 20);
  s.l2_bytes = static_cast<int>(
      std::min<std::size_t>(llc, 1u << 30));
  s.line_bytes = profile.line_bytes > 0 ? profile.line_bytes : 64;
  s.sector_bytes = s.line_bytes / 2 > 0 ? s.line_bytes / 2 : 32;
  s.dram_latency_cycles = 300;
  s.icache_bytes = 32 * 1024;
  // Per-call dispatch overhead of the CPU substrate (an OpenMP team or a
  // service submit), far below a CUDA launch.
  s.launch_overhead_s = 5e-7;
  return s;
}

KernelModel calibrated_kernel_model(const HostProfile& profile) {
  return KernelModel(cpu_spec_from_profile(profile), ModelCalibration{});
}

}  // namespace ibchol::tune
