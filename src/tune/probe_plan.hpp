// Model-guided probe planning: shrink the exhaustive sweep to the
// calibrated model's top-K candidates.
//
// The paper sweeps every point of the tuning space ("our goal is not the
// minimal search time"); ROADMAP item 4 inverts that for production use:
// the host-calibrated analytical model (src/tune/host_probe.hpp) ranks the
// whole space in microseconds, and only the K most promising candidates are
// measured with a real Evaluator. The model deliberately ignores the
// CPU-substrate executor axes (exec/isa/storage), so candidates differing
// only there tie exactly — the stable sort keeps them in enumeration order,
// which clusters the executor variants of the strongest paper-axis
// configurations at the top, exactly the set worth measuring.
//
// A fitted random forest (src/forest/) can rank the same candidate set via
// rank_with_forest, giving the model-vs-learned comparison the analysis
// benches plot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/records.hpp"
#include "autotune/space.hpp"
#include "forest/forest.hpp"
#include "simt/kernel_model.hpp"

namespace ibchol::tune {

/// One model-ranked candidate.
struct RankedCandidate {
  TuningParams params;
  double model_seconds = 0.0;
  double model_gflops = 0.0;
};

/// The shrunken sweep: the model's top-K candidates for one (n, batch).
struct ProbePlan {
  int n = 0;
  std::int64_t batch = 0;
  std::size_t space_points = 0;  ///< size of the full enumeration
  std::vector<RankedCandidate> candidates;  ///< best model time first
};

/// Ranks enumerate_space(n, space) with the model and keeps `top_k`
/// candidates (all of them when the space is smaller). Ties break by
/// enumeration order (stable sort — see header comment). Selection is
/// stratified across the axis whose model cost transfers worst to the CPU
/// substrate (unrolling): each stratum's model-best candidates fill the K
/// slots round-robin, so a cross-stratum model bias (the GPU-only
/// full-unroll occupancy penalty) can cost ranking quality but can never
/// exclude a whole stratum from measurement.
[[nodiscard]] ProbePlan plan_probes(const KernelModel& model, int n,
                                    std::int64_t batch,
                                    const SpaceOptions& space = {},
                                    int top_k = 8);

/// Outcome of measuring a plan's candidates.
struct ProbeResult {
  SweepRecord winner;                 ///< best measured time
  std::vector<SweepRecord> measured;  ///< every probed point, plan order
  int evaluations = 0;                ///< evaluator probes actually run
};

/// Measures every candidate of the plan with `eval` (the probes; counted
/// as "tune.probe"), optionally appending each record to a sweep journal
/// (autotune/journal format) at `journal_path`. Throws ibchol::Error when
/// the plan is empty or every probe failed.
[[nodiscard]] ProbeResult run_probe_plan(Evaluator& eval,
                                         const ProbePlan& plan,
                                         const std::string& journal_path = "");

/// Ranks `space` for size n with a fitted forest (features via
/// analysis_features_for, so the encoding is pinned to the analysis
/// schema). Returns the predicted-GFLOP/s top-K, best first;
/// model_seconds is left 0 (the forest predicts a rate, not a time).
[[nodiscard]] std::vector<RankedCandidate> rank_with_forest(
    const RandomForest& forest, int n,
    const std::vector<TuningParams>& space, int top_k = 8);

}  // namespace ibchol::tune
