// FNV-1a hashing shared by the instant-tuning subsystem.
//
// Two consumers: the host fingerprint (host_probe) and the per-line
// checksum of the persistent tuning cache (cache). FNV-1a is not
// cryptographic — both uses only need a stable, dependency-free digest
// that flags torn or bit-flipped lines and distinguishes hosts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ibchol::tune {

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

/// Fixed-width (16 hex digits) lowercase rendering, stable across hosts.
[[nodiscard]] inline std::string to_hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace ibchol::tune
