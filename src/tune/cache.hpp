// Persistent tuning cache: winners survive process restarts.
//
// JSONL like the sweep journal (autotune/journal.hpp), one entry per line:
//
//   {"v":1,"crc":"<fnv1a64 hex>","entry":{"host":"<fingerprint>",
//    "layout":"any","tier":"avx2","prec":"fp32","rec":{<journal record>}}}
//
// The "entry" object is the checksummed payload — `crc` is FNV-1a-64 over
// its exact byte serialization, so a torn tail, a bit flip, or a hand edit
// fails closed: the line is skipped (cold start for that key), never half
// applied. `v` is the format version; any mismatch skips the line the same
// way, so a downgrade reading a future cache degrades to re-tuning instead
// of misparsing. The inner "rec" reuses journal_line/parse_journal_line
// verbatim (including the %.17g doubles that make round-trips
// byte-identical).
//
// Entries are keyed per (host fingerprint, n, batch, layout domain, SIMD
// tier, storage precision) — everything that changes which winner is valid.
// Readers take the *last* entry per key, so a re-tune simply appends.
// The cache path comes from IBCHOL_TUNE_CACHE (default_tune_cache_path);
// an empty path disables persistence.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "autotune/records.hpp"

namespace ibchol::tune {

/// Format version of a cache line. Bump on any schema change: old readers
/// skip newer lines (and vice versa) instead of misparsing them.
inline constexpr int kTuneCacheVersion = 1;

/// Everything that selects which cached winner applies.
struct TuneKey {
  std::string host;    ///< HostProfile::fingerprint()
  int n = 0;
  std::int64_t batch = 0;
  /// Layout domain the winner was searched over: "any" (both layouts
  /// enumerated), "chunked", or "simple".
  std::string layout = "any";
  SimdIsa tier = SimdIsa::kScalar;  ///< resolved host tier
  StoragePrec storage = StoragePrec::kFp32;

  /// Canonical map key, e.g. "1a2b…|n16|b16384|any|avx2|fp32".
  [[nodiscard]] std::string to_string() const;
};

/// One cached winner.
struct TuneCacheEntry {
  TuneKey key;
  SweepRecord record;  ///< the measured winner (params + time + rate)
};

/// Serializes one entry as a cache line (no trailing newline).
[[nodiscard]] std::string tune_cache_line(const TuneCacheEntry& entry);

/// Parses one line; nullopt for anything malformed, torn, checksum-bad, or
/// version-mismatched (counted as "tune.cache_bad_line", version skips
/// additionally as "tune.cache_version_skip"). Never throws.
[[nodiscard]] std::optional<TuneCacheEntry> parse_tune_cache_line(
    const std::string& line);

/// An in-memory snapshot of a cache file, last entry per key winning.
class TuneCache {
 public:
  /// Loads `path`; a missing or unreadable file is an empty cache (cold
  /// start), never an error.
  [[nodiscard]] static TuneCache load(const std::string& path);

  [[nodiscard]] const TuneCacheEntry* find(const TuneKey& key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<std::string, TuneCacheEntry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, TuneCacheEntry> entries_;  ///< by TuneKey::to_string
};

/// Append-only cache writer: every entry is flushed on its own line, and a
/// torn final line (a crash mid-write) is healed by starting on a fresh
/// line — the same contract as autotune's JournalWriter.
class TuneCacheWriter {
 public:
  explicit TuneCacheWriter(const std::string& path);
  void append(const TuneCacheEntry& entry);

 private:
  std::mutex mu_;
  std::ofstream out_;
};

/// The IBCHOL_TUNE_CACHE environment path, or "" (persistence disabled).
[[nodiscard]] std::string default_tune_cache_path();

}  // namespace ibchol::tune
