// Host calibration for the instant-tuning subsystem (ROADMAP item 4).
//
// The paper tunes by exhaustively measuring every kernel variant on the
// target GPU. Instant tuning instead parameterizes the analytical SIMT
// model (src/simt/kernel_model.hpp) with the *actual host*: cache geometry
// read from sysfs, the SIMD tier from cpuid, and two micro-probes — a
// streaming-copy bandwidth run (standing in for DRAM bandwidth, which is
// what the pack/unpack stages of the chunk pipeline see) and a vector FMA
// throughput loop (standing in for peak issue rate). The calibrated model
// then ranks TuningParams candidates analytically in microseconds, and only
// the model's top-K candidates are ever measured (src/tune/probe_plan.hpp).
//
// The host *fingerprint* keys the persistent tuning cache
// (src/tune/cache.hpp). It hashes only the stable identity fields — CPU
// name, core count, resolved SIMD tier, cache sizes, line size — never the
// micro-probe measurements, which jitter run to run and would spuriously
// invalidate every cached winner. A forced tier (IBCHOL_SIMD_ISA=scalar)
// flows through resolve_simd_isa into the fingerprint by design: a
// scalar-clamped process must not reuse winners tuned for the AVX tiers.
#pragma once

#include <cstddef>
#include <string>

#include "kernels/options.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/kernel_model.hpp"

namespace ibchol::tune {

/// Everything the calibration measured or read about the executing host.
struct HostProfile {
  // Stable identity (hashed into fingerprint()).
  std::string cpu_name;        ///< /proc/cpuinfo "model name", "" if unknown
  int logical_cores = 1;       ///< std::thread::hardware_concurrency
  SimdIsa isa = SimdIsa::kScalar;  ///< resolved tier (env override included)
  std::size_t l1d_bytes = 0;   ///< per-core L1 data cache, 0 if undetected
  std::size_t l2_bytes = 0;    ///< per-core L2, 0 if undetected
  std::size_t llc_bytes = 0;   ///< last-level cache, 0 if undetected
  int line_bytes = 64;         ///< coherency line size

  // Micro-probe measurements (0.0 when the probes were skipped or failed;
  // consumers fall back to conservative defaults). NOT fingerprinted.
  double copy_bw_bytes = 0.0;  ///< streaming memcpy bandwidth, bytes/s
  double fma_gflops = 0.0;     ///< single-thread vector FMA rate, GF/s

  /// FNV-1a-64 hex digest over the stable identity fields only.
  [[nodiscard]] std::string fingerprint() const;
};

/// Reads sysfs/cpuid identity and (optionally) runs the micro-probes.
/// Never throws: undetectable fields keep their zero defaults.
[[nodiscard]] HostProfile detect_host_profile(bool run_microprobes = true);

/// The process-wide profile, detected (with micro-probes) exactly once.
[[nodiscard]] const HostProfile& cached_host_profile();

/// Maps the CPU onto the model's GpuSpec vocabulary: one "SM" per logical
/// core, "cores per SM" = SIMD lanes of the resolved tier, clock derived
/// from the measured FMA rate, DRAM bandwidth from the copy probe, L2 from
/// the LLC. Occupancy ceilings stay at GPU-like values so they never bind —
/// on the CPU substrate parallelism is the core count, not warp residency.
[[nodiscard]] GpuSpec cpu_spec_from_profile(const HostProfile& profile);

/// A KernelModel calibrated to this host (cpu_spec_from_profile + the
/// default ModelCalibration, whose layout/locality shape terms carry over).
[[nodiscard]] KernelModel calibrated_kernel_model(const HostProfile& profile);

}  // namespace ibchol::tune
