#include "tune/instant.hpp"

#include <cmath>
#include <utility>

#include "core/tuned_overrides.hpp"
#include "cpu/chunk_pipeline.hpp"
#include "cpu/simd/isa.hpp"
#include "obs/counters.hpp"

namespace ibchol::tune {

SpaceOptions default_instant_space() {
  SpaceOptions space;
  // Both production executors; the interpreter is a correctness oracle and
  // never a candidate worth probing.
  space.execs = {CpuExec::kSpecialized, CpuExec::kVectorized};
  space.isas = {SimdIsa::kAuto};
  return space;
}

// Per-size drift accounting, shared (via shared_ptr) with the installed
// facade observer so a factorize call racing the tuner's destruction only
// ever touches this state, never the tuner.
struct InstantTuner::ObsState {
  struct PerN {
    double expected = 0.0;  ///< cached winner's per-matrix seconds
    double sum = 0.0;       ///< accumulated observed per-matrix seconds
    std::int64_t count = 0;
    bool drifted = false;
  };

  std::mutex mu;
  std::map<int, PerN> by_n;
  double threshold = 0.25;
  int min_samples = 8;

  void set_expectation(int n, double per_matrix_seconds) {
    const std::lock_guard<std::mutex> lock(mu);
    PerN& s = by_n[n];
    s.expected = per_matrix_seconds;
    s.sum = 0.0;
    s.count = 0;
    s.drifted = false;
  }

  void note(int n, std::int64_t batch, double seconds) {
    if (batch <= 0 || !(seconds > 0.0)) return;
    const double per_matrix = seconds / static_cast<double>(batch);
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = by_n.find(n);
    if (it == by_n.end()) return;  // size never tuned: nothing to compare
    PerN& s = it->second;
    s.sum += per_matrix;
    ++s.count;
    if (s.drifted || s.expected <= 0.0 || s.count < min_samples) return;
    const double mean = s.sum / static_cast<double>(s.count);
    if (std::abs(mean - s.expected) > threshold * s.expected) {
      s.drifted = true;
      IBCHOL_COUNT("tune.drift_detected", 1);
    }
  }
};

namespace {

// Layout domain the space actually searches — part of the cache key, so a
// chunked-only tuner never reuses a winner searched over both layouts.
std::string layout_domain_of(const SpaceOptions& space) {
  const bool chunked = !space.chunk_sizes.empty();
  if (space.include_non_chunked && chunked) return "any";
  return chunked ? "chunked" : "simple";
}

}  // namespace

InstantTuner::InstantTuner(Evaluator& eval, InstantOptions options,
                           HostProfile profile)
    : eval_(eval),
      options_(std::move(options)),
      profile_(std::move(profile)),
      model_(calibrated_kernel_model(profile_)),
      layout_domain_(layout_domain_of(options_.space)),
      obs_(std::make_shared<ObsState>()) {
  obs_->threshold = options_.drift_threshold;
  obs_->min_samples = options_.min_drift_samples;
  // The probe space measures exactly the storage lane the key names.
  options_.space.storage_precs = {options_.storage};
  if (options_.cache_path.empty()) {
    options_.cache_path = default_tune_cache_path();
  }
  if (!options_.cache_path.empty()) {
    const TuneCache cache = TuneCache::load(options_.cache_path);
    for (const auto& [_, entry] : cache.entries()) {
      // Adopt only entries for this exact key shape; a corrupt or foreign
      // line was already skipped by the loader (fail-closed cold start).
      if (entry.key.to_string() == key_for(entry.key.n).to_string()) {
        winners_[entry.key.n] = entry.record;
        obs_->set_expectation(
            entry.key.n,
            entry.record.seconds / static_cast<double>(options_.batch));
      }
    }
    writer_ = std::make_unique<TuneCacheWriter>(options_.cache_path);
  }
  if (options_.install_overrides) install();
}

InstantTuner::~InstantTuner() {
  // The observer would keep feeding a tuner-less ObsState (safe but
  // useless); drop it. The override tables stay: they are immutable value
  // snapshots and remain this host's best-known answers.
  set_factor_observer(nullptr);
}

TuneKey InstantTuner::key_for(int n) const {
  TuneKey key;
  key.host = profile_.fingerprint();
  key.n = n;
  key.batch = options_.batch;
  key.layout = layout_domain_;
  key.tier = profile_.isa;
  key.storage = options_.storage;
  return key;
}

TuningParams InstantTuner::tune_now(int n) {
  const ProbePlan plan =
      plan_probes(model_, n, options_.batch, options_.space, options_.top_k);
  const ProbeResult result = run_probe_plan(eval_, plan);
  winners_[n] = result.winner;
  obs_->set_expectation(
      n, result.winner.seconds / static_cast<double>(options_.batch));
  if (writer_) {
    TuneCacheEntry entry;
    entry.key = key_for(n);
    entry.record = result.winner;
    writer_->append(entry);
  }
  return result.winner.params;
}

TuningParams InstantTuner::params_for(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = winners_.find(n);
  if (it != winners_.end()) {
    IBCHOL_COUNT("tune.cache_hit", 1);
    return it->second.params;
  }
  IBCHOL_COUNT("tune.cache_miss", 1);
  const TuningParams params = tune_now(n);
  if (options_.install_overrides) install();
  return params;
}

void InstantTuner::observe(int n, std::int64_t batch, double seconds) {
  obs_->note(n, batch, seconds);
}

std::vector<int> InstantTuner::drifted() const {
  std::vector<int> sizes;
  const std::lock_guard<std::mutex> lock(obs_->mu);
  for (const auto& [n, s] : obs_->by_n) {
    if (s.drifted) sizes.push_back(n);
  }
  return sizes;
}

int InstantTuner::poll_drift() {
  const std::vector<int> sizes = drifted();
  if (sizes.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const int n : sizes) {
    winners_.erase(n);
    IBCHOL_COUNT("tune.retune", 1);
    (void)tune_now(n);  // resets the drift state via set_expectation
  }
  if (options_.install_overrides) install();
  return static_cast<int>(sizes.size());
}

void InstantTuner::install() {
  auto table = std::make_shared<std::map<int, TuningParams>>();
  auto execs =
      std::make_shared<std::map<std::pair<int, SimdIsa>, CpuExec>>();
  for (const auto& [n, rec] : winners_) {
    (*table)[n] = rec.params;
    // kAuto winners (the tiled lane) keep the pipeline's own dispatch.
    if (rec.params.exec != CpuExec::kAuto) {
      (*execs)[{n, resolve_simd_isa(rec.params.isa)}] = rec.params.exec;
    }
  }
  set_recommended_overrides(std::move(table));
  set_cpu_exec_overrides(std::move(execs));
  // The observer captures the shared state only — never `this`.
  std::shared_ptr<ObsState> obs = obs_;
  set_factor_observer(std::make_shared<const FactorObserver>(
      [obs](int n, std::int64_t batch, double seconds) {
        obs->note(n, batch, seconds);
      }));
}

void InstantTuner::uninstall() {
  set_recommended_overrides(nullptr);
  set_cpu_exec_overrides(nullptr);
  set_factor_observer(nullptr);
}

}  // namespace ibchol::tune
