#include "tune/cache.hpp"

#include <cstdlib>

#include "autotune/journal.hpp"
#include "obs/counters.hpp"
#include "tune/hash.hpp"
#include "util/error.hpp"

namespace ibchol::tune {

namespace {

// Local key scanners, mirroring the journal's tolerant style: a missing or
// malformed field fails the whole line, which the loader then skips.
bool scan_string(const std::string& line, const std::string& key,
                 std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

bool scan_int(const std::string& line, const std::string& key, long long& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtoll(start, &end, 10);
  return end != start;
}

}  // namespace

std::string TuneKey::to_string() const {
  return host + "|n" + std::to_string(n) + "|b" + std::to_string(batch) +
         '|' + layout + '|' + ibchol::to_string(tier) + '|' +
         ibchol::to_string(storage);
}

std::string tune_cache_line(const TuneCacheEntry& entry) {
  // The checksummed payload: a complete JSON object whose exact bytes the
  // crc covers. The inner record reuses the journal serialization (which
  // already carries n and batch).
  std::string payload = "{\"host\":\"" + entry.key.host + "\"";
  payload += ",\"layout\":\"" + entry.key.layout + "\"";
  payload += ",\"tier\":\"" + ibchol::to_string(entry.key.tier) + "\"";
  payload += ",\"prec\":\"" + ibchol::to_string(entry.key.storage) + "\"";
  payload += ",\"rec\":" + journal_line(entry.record);
  payload += "}";
  return "{\"v\":" + std::to_string(kTuneCacheVersion) + ",\"crc\":\"" +
         to_hex16(fnv1a64(payload)) + "\",\"entry\":" + payload + "}";
}

std::optional<TuneCacheEntry> parse_tune_cache_line(const std::string& raw) {
  std::string line = raw;
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\n')) {
    line.pop_back();
  }
  if (line.empty()) return std::nullopt;
  auto bad = [&]() -> std::optional<TuneCacheEntry> {
    IBCHOL_COUNT("tune.cache_bad_line", 1);
    return std::nullopt;
  };
  if (line.front() != '{' || line.back() != '}') return bad();
  long long version = 0;
  if (!scan_int(line, "v", version)) return bad();
  if (version != kTuneCacheVersion) {
    IBCHOL_COUNT("tune.cache_version_skip", 1);
    return bad();
  }
  std::string crc;
  if (!scan_string(line, "crc", crc)) return bad();
  const std::string marker = "\"entry\":";
  const std::size_t at = line.find(marker);
  if (at == std::string::npos) return bad();
  const std::size_t start = at + marker.size();
  // The payload runs to the character before the outer object's closing
  // brace (the line's last byte).
  if (start >= line.size() - 1) return bad();
  const std::string payload = line.substr(start, line.size() - 1 - start);
  if (payload.empty() || payload.front() != '{' || payload.back() != '}') {
    return bad();
  }
  if (to_hex16(fnv1a64(payload)) != crc) return bad();
  TuneCacheEntry entry;
  std::string tier, prec;
  if (!scan_string(payload, "host", entry.key.host) ||
      !scan_string(payload, "layout", entry.key.layout) ||
      !scan_string(payload, "tier", tier) ||
      !scan_string(payload, "prec", prec)) {
    return bad();
  }
  const std::string rec_marker = "\"rec\":";
  const std::size_t rec_at = payload.find(rec_marker);
  if (rec_at == std::string::npos) return bad();
  const std::size_t rec_start = rec_at + rec_marker.size();
  if (rec_start >= payload.size() - 1) return bad();
  // The record object ends where the payload does (payload's last byte is
  // its own closing brace).
  const auto rec = parse_journal_line(
      payload.substr(rec_start, payload.size() - 1 - rec_start));
  if (!rec.has_value()) return bad();
  entry.record = *rec;
  entry.key.n = rec->n;
  entry.key.batch = rec->batch;
  try {
    entry.key.tier = simd_isa_from_string(tier);
    entry.key.storage = storage_prec_from_string(prec);
  } catch (const std::exception&) {
    return bad();
  }
  return entry;
}

TuneCache TuneCache::load(const std::string& path) {
  TuneCache cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto entry = parse_tune_cache_line(line)) {
      // Last entry per key wins: a re-tune appends rather than rewriting.
      cache.entries_[entry->key.to_string()] = std::move(*entry);
    }
  }
  IBCHOL_COUNT("tune.cache_load", 1);
  return cache;
}

const TuneCacheEntry* TuneCache::find(const TuneKey& key) const {
  const auto it = entries_.find(key.to_string());
  return it == entries_.end() ? nullptr : &it->second;
}

TuneCacheWriter::TuneCacheWriter(const std::string& path)
    : out_(path, std::ios::app) {
  IBCHOL_CHECK(static_cast<bool>(out_),
               "cannot open tuning cache for append: " + path);
  // Heal a torn final line exactly like JournalWriter: appending onto the
  // fragment would corrupt the next entry too; starting a fresh line
  // sacrifices only the already-lost one (its crc fails closed).
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (in && in.tellg() > 0) {
    in.seekg(-1, std::ios::end);
    char last = '\n';
    if (in.get(last) && last != '\n') out_ << '\n';
  }
}

void TuneCacheWriter::append(const TuneCacheEntry& entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << tune_cache_line(entry) << '\n';
  out_.flush();
  IBCHOL_COUNT("tune.cache_append", 1);
}

std::string default_tune_cache_path() {
  const char* v = std::getenv("IBCHOL_TUNE_CACHE");
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace ibchol::tune
