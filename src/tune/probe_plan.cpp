#include "tune/probe_plan.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "autotune/analyze.hpp"
#include "autotune/journal.hpp"
#include "kernels/counts.hpp"
#include "obs/counters.hpp"
#include "util/error.hpp"

namespace ibchol::tune {

namespace {

double to_gflops(int n, std::int64_t batch, double seconds) {
  return seconds <= 0.0 ? 0.0
                        : static_cast<double>(batch) *
                              nominal_flops_per_matrix(n) / seconds / 1e9;
}

}  // namespace

ProbePlan plan_probes(const KernelModel& model, int n, std::int64_t batch,
                      const SpaceOptions& space, int top_k) {
  IBCHOL_CHECK(top_k > 0, "plan_probes needs top_k >= 1");
  const std::vector<TuningParams> points = enumerate_space(n, space);
  IBCHOL_CHECK(!points.empty(),
               "plan_probes: the tuning space is empty for n = " +
                   std::to_string(n));
  ProbePlan plan;
  plan.n = n;
  plan.batch = batch;
  plan.space_points = points.size();
  plan.candidates.reserve(points.size());
  for (const TuningParams& p : points) {
    const ModelResult r = model.evaluate(n, batch, p);
    plan.candidates.push_back({p, r.seconds, r.gflops});
  }
  // Stable: candidates the model cannot distinguish (the executor axes it
  // ignores) keep enumeration order, clustering the executor variants of
  // the strongest configurations inside the top-K.
  std::stable_sort(plan.candidates.begin(), plan.candidates.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.model_seconds < b.model_seconds;
                   });
  if (plan.candidates.size() > static_cast<std::size_t>(top_k)) {
    // Stratified selection rather than a plain head-K: the SIMT model's
    // *within*-stratum ordering (tile size, looking, chunk size) tracks the
    // CPU substrate well, but its cross-stratum penalty on the unrolling
    // axis is a GPU artifact — full unrolling costs a GPU occupancy but
    // costs a CPU nothing, and a plain head-K would then never probe a
    // full-unroll point at all. Hedge exactly that bias: bucket by unroll,
    // keep each bucket model-ordered, and fill the K slots round-robin
    // across buckets (best bucket first). Every stratum's strongest
    // candidates get measured, and the real evaluator — not the model —
    // settles the cross-stratum question.
    std::vector<std::pair<int, std::vector<RankedCandidate>>> strata;
    for (const RankedCandidate& c : plan.candidates) {
      const int key = c.params.unroll == Unroll::kFull ? 1 : 0;
      auto it = std::find_if(strata.begin(), strata.end(),
                             [&](const auto& s) { return s.first == key; });
      if (it == strata.end()) {
        strata.push_back({key, {}});
        it = std::prev(strata.end());
      }
      it->second.push_back(c);
    }
    // Strata are discovered in model order, so strata[0] starts with the
    // model's global best candidate.
    std::vector<RankedCandidate> picked;
    picked.reserve(static_cast<std::size_t>(top_k));
    for (std::size_t round = 0;
         picked.size() < static_cast<std::size_t>(top_k); ++round) {
      bool any = false;
      for (auto& [key, bucket] : strata) {
        if (round >= bucket.size()) continue;
        any = true;
        picked.push_back(bucket[round]);
        if (picked.size() == static_cast<std::size_t>(top_k)) break;
      }
      if (!any) break;
    }
    // Present the plan best-model-time-first regardless of which round a
    // candidate was picked in.
    std::stable_sort(picked.begin(), picked.end(),
                     [](const RankedCandidate& a, const RankedCandidate& b) {
                       return a.model_seconds < b.model_seconds;
                     });
    plan.candidates = std::move(picked);
  }
  IBCHOL_COUNT("tune.plan", 1);
  IBCHOL_COUNT("tune.plan_points",
               static_cast<std::int64_t>(plan.space_points));
  return plan;
}

ProbeResult run_probe_plan(Evaluator& eval, const ProbePlan& plan,
                           const std::string& journal_path) {
  IBCHOL_CHECK(!plan.candidates.empty(), "run_probe_plan: empty plan");
  std::unique_ptr<JournalWriter> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<JournalWriter>(journal_path);
  }
  ProbeResult result;
  result.measured.reserve(plan.candidates.size());
  const SweepRecord* best = nullptr;
  for (const RankedCandidate& c : plan.candidates) {
    SweepRecord r;
    r.n = plan.n;
    r.batch = plan.batch;
    r.params = c.params;
    r.seconds = eval.seconds(plan.n, plan.batch, c.params);
    // gflops straight from the measured time: Evaluator::gflops would call
    // seconds() again, which re-measures on wall-clock backends.
    r.gflops = to_gflops(plan.n, plan.batch, r.seconds);
    r.failed = !std::isfinite(r.seconds) || r.seconds <= 0.0;
    ++result.evaluations;
    IBCHOL_COUNT("tune.probe", 1);
    if (journal) journal->append(r);
    result.measured.push_back(std::move(r));
    const SweepRecord& added = result.measured.back();
    if (!added.failed && (best == nullptr || added.seconds < best->seconds)) {
      best = &added;
    }
  }
  IBCHOL_CHECK(best != nullptr,
               "run_probe_plan: every probe failed for n = " +
                   std::to_string(plan.n));
  result.winner = *best;
  return result;
}

std::vector<RankedCandidate> rank_with_forest(
    const RandomForest& forest, int n, const std::vector<TuningParams>& space,
    int top_k) {
  std::vector<RankedCandidate> ranked;
  ranked.reserve(space.size());
  for (const TuningParams& p : space) {
    const std::vector<double> row = analysis_features_for(n, p);
    RankedCandidate c;
    c.params = p;
    c.model_gflops = forest.predict(row);
    ranked.push_back(std::move(c));
  }
  // Descending predicted rate; stable for the same tie-order contract as
  // plan_probes.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.model_gflops > b.model_gflops;
                   });
  if (top_k > 0 && ranked.size() > static_cast<std::size_t>(top_k)) {
    ranked.resize(static_cast<std::size_t>(top_k));
  }
  return ranked;
}

}  // namespace ibchol::tune
