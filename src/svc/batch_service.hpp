// Long-lived batch-factorization service: persistent work-stealing
// executor over the chunk pipeline's unit API.
//
// The synchronous drivers (factor_batch_cpu) spawn an OpenMP team, carve
// the batch into pipeline units, join, and tear everything down — per
// call. For the throughput regime the paper targets (millions of small
// factorizations per second arriving continuously) that per-call team
// spawn, scratch allocation, and join barrier dominate: no worker can
// start the next request's units while any worker still finishes the
// current one. BatchService keeps the execution machinery alive across
// requests:
//
//  * submission — a bounded lock-free MPMC queue (MpmcQueue) of pooled
//    request slots; submit() is wait-free apart from the slot pop and
//    returns a FactorFuture. What a full pool means is the admission
//    policy's call (ServicePolicy): backpressure (block), immediate load
//    shedding (kOverloaded), shedding of already-expired queued requests,
//    or a bounded wait. High-priority submissions (SubmitOptions::
//    priority) are claimed before normal ones.
//  * deadlines — SubmitOptions::timeout_ns stamps a request with an
//    absolute deadline; a worker that claims an expired request completes
//    its future with kDeadlineExceeded without touching the batch (the
//    info span is marked kInfoNotExecuted), so a backlogged service
//    spends its cycles only on work whose answer somebody still wants.
//  * execution — a persistent pool of workers, each owning a Chase-Lev
//    deque (WorkDeque) of unit-range tasks. A claimed request enters as
//    one root task; workers split ranges lazily (halving, down to
//    ServiceOptions::steal_grain units) so division only happens when a
//    thief is actually idle. Units are independent and schedule-agnostic
//    (see ChunkExecPlan), so service results are bit-identical to the
//    synchronous path — under IEEE math, to the last ulp.
//  * watchdog — an optional monitor thread (ServiceOptions::watchdog)
//    samples per-worker heartbeat counters; a worker that stays busy
//    without a heartbeat past the stall threshold is marked suspect and a
//    replacement worker is spawned from a preallocated worker slot, so
//    one stuck request cannot idle the whole pool. Thieves keep draining
//    a suspect's deque (its queued units are not lost); the suspect
//    retires once it comes back. Interventions are visible as
//    svc.watchdog.* counters and "watchdog_respawn" trace spans.
//  * poison isolation — SubmitOptions::screen runs the cpu/recover
//    NaN/Inf screen when a request is claimed; a batch carrying
//    non-finite matrices is quarantined to a single-worker, single-buffer
//    slow path (it cannot occupy the double-buffered scratch or fan out
//    across the pool), completes with kPoisoned, and surfaces a
//    per-request RecoveryReport through FactorFuture::recovery_report().
//  * memory — all scratch (pack, whole-matrix, double buffers) comes from
//    a size-classed ScratchArena; request slots, queue cells, and deque
//    cells are preallocated. After warm-up, steady-state operation
//    performs zero heap allocations (ScratchArena::stats().upstream_allocs
//    is the test hook for that claim). If an arena upstream allocation
//    fails mid-request (real OOM or the chaos harness), the affected unit
//    range is marked kInfoNotExecuted and the request completes with
//    kResourceExhausted instead of crashing a worker.
//  * observability — per-request "request"/"queue_wait" spans (category
//    "svc"), the "svc.request_ns"/"svc.queue_ns"/"svc.slack_ns" latency
//    histograms, and the svc.shed / svc.deadline_miss / svc.quarantined /
//    svc.watchdog.* overload counters (docs/OBSERVABILITY.md).
//
// Thread-count and steal-granularity are live tuning axes
// (ServiceOptions::num_threads / steal_grain); bench/load_service sweeps
// them and drives overload phases against the admission policies. DESIGN
// §10 documents the architecture, §11 the overload & fault semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "cpu/batch_factor.hpp"
#include "cpu/recover.hpp"
#include "kernels/tile_program.hpp"
#include "layout/layout.hpp"
#include "svc/arena.hpp"

namespace ibchol::svc {

namespace detail {
struct ServiceShared;
}

/// Per-matrix `info` code for matrices the service never executed: the
/// request was shed at admission, expired before a worker claimed it, or
/// lost its scratch to an allocation failure. Distinct from 0 (success),
/// positive failing-pivot columns, and kInfoNonFinite (-1).
inline constexpr std::int32_t kInfoNotExecuted = -2;

/// What submit() does when every request slot is in flight.
enum class AdmitPolicy : int {
  /// Wait (yielding) until a completion recycles a slot — backpressure,
  /// the pre-overload default. Latency is unbounded but nothing is lost.
  kBlock = 0,
  /// Complete the new request immediately with kOverloaded; the service
  /// never touches its data (info is marked kInfoNotExecuted). Bounds
  /// both queue occupancy and admitted-request latency.
  kReject = 1,
  /// Scan the normal-priority submission queue once, completing queued
  /// requests already past their deadline with kDeadlineExceeded (their
  /// answer is worthless anyway), then retry admission; reject with
  /// kOverloaded when nothing reclaimable remains. Unexpired requests
  /// are re-enqueued at the tail, so FIFO order within the normal class
  /// is traded for bounded occupancy. High-priority requests are never
  /// shed.
  kShedOldest = 2,
  /// kBlock for at most ServicePolicy::max_wait_ns, then kReject.
  kBoundedWait = 3,
};

/// Overload-response configuration (see AdmitPolicy).
struct ServicePolicy {
  AdmitPolicy admit = AdmitPolicy::kBlock;
  /// Admission-wait budget for AdmitPolicy::kBoundedWait.
  std::int64_t max_wait_ns = 1'000'000;
};

/// Worker-stall monitor configuration. Disabled by default: detection
/// keys off "busy but no heartbeat for stall_threshold_ns", and on an
/// oversubscribed host the OS can legitimately park a busy worker that
/// long — a false respawn would add threads exactly when the machine has
/// none to give. Enable it where stalls mean wedged code or injected
/// faults, not scheduler pressure, and size the threshold generously.
struct WatchdogOptions {
  bool enabled = false;
  /// Sampling period of the monitor thread.
  std::int64_t check_interval_ns = 10'000'000;
  /// A busy worker whose heartbeat is flat this long is declared stalled.
  std::int64_t stall_threshold_ns = 250'000'000;
  /// Replacement workers that may ever be spawned (preallocated worker
  /// slots). Once exhausted, stalled workers are left alone.
  int max_respawns = 4;
};

struct ServiceOptions {
  /// Worker threads; 0 = the cached process default
  /// (cached_default_threads()), resolved once for the service lifetime.
  int num_threads = 0;
  /// Smallest unit-range a task is split down to. 1 = maximal stealing
  /// parallelism; larger grains cut steal traffic for tiny units. A live
  /// tuning axis.
  int steal_grain = 1;
  /// Request slots preallocated for in-flight requests (also the
  /// submission-queue capacity). A slot stays busy until its request
  /// completed AND its FactorFuture was released (the future reads the
  /// result out of the slot), so this must cover futures the client
  /// holds, not just requests the pool is working on; a full pool is
  /// handled per `policy`. Clamped to the packed-task slot limit
  /// (kMaxSlots).
  std::size_t max_inflight = 256;
  /// Overload response at admission.
  ServicePolicy policy;
  /// Worker-stall monitoring (off by default; see WatchdogOptions).
  WatchdogOptions watchdog;
};

/// Knobs of the tiled large-N path (submit_tiled): one task DAG per
/// matrix over an nb×nb tile grid, executed on the same worker pool (see
/// src/tiled/dag.hpp and DESIGN §13).
struct TiledOptions {
  /// Tile size; 0 = tiled::recommended_nb for the element type (the
  /// I/O-lower-bound cache-fit rule).
  int nb = 0;
  /// Panel-lookahead throttle: how many steps ahead of the last factored
  /// panel the trailing updates may run. Clamped to [1, nt]; values >= nt
  /// disable the throttle. Order-preserving, so a perf-only axis.
  int lookahead = 2;
};

/// Per-request submission knobs (all optional; defaults reproduce the
/// plain submit semantics).
struct SubmitOptions {
  /// Relative deadline: the request expires timeout_ns after submission.
  /// 0 = never. An expired request still queued when a worker reaches it
  /// completes with kDeadlineExceeded and untouched data.
  std::int64_t timeout_ns = 0;
  /// > 0: high priority — claimed before every queued normal-priority
  /// request (two FIFO classes, not a full priority order).
  int priority = 0;
  /// Screen the batch for NaN/Inf on claim and quarantine poisoned
  /// requests to the single-worker slow path (status kPoisoned, report
  /// via FactorFuture::recovery_report()). Off by default: screening
  /// reads the whole batch once before factoring. For reduced-precision
  /// requests the screen is a bit-level test on the 16-bit words.
  bool screen = false;
  /// Storage precision of the request's batch data, so mixed fleets share
  /// one pool. kFp32 is the plain submit<T> path; the reduced precisions
  /// (kBf16/kFp16, 16-bit words + fp32 accumulate) go through
  /// submit_mixed, which requires a non-fp32 value here.
  StoragePrec storage = StoragePrec::kFp32;
};

/// Lifecycle of one submitted request. Terminal states are kDone,
/// kCancelled, kDeadlineExceeded, kOverloaded, kResourceExhausted, and
/// kPoisoned; DESIGN §11 tabulates what each means for the batch data.
enum class RequestStatus : int {
  kQueued = 0,    ///< accepted, no worker has claimed it yet
  kRunning = 1,   ///< workers are factoring units
  kDone = 2,      ///< complete; result valid, data/info fully written
  kCancelled = 3, ///< cancelled before any work started; data untouched
  kDeadlineExceeded = 4,  ///< expired before any work started; data
                          ///< untouched, info = kInfoNotExecuted
  kOverloaded = 5,        ///< shed at admission; data untouched, info =
                          ///< kInfoNotExecuted, no slot was consumed
  kResourceExhausted = 6, ///< scratch allocation failed mid-flight; the
                          ///< affected matrices carry kInfoNotExecuted
  kPoisoned = 7,          ///< completed via quarantine: the batch carried
                          ///< non-finite matrices (info kInfoNonFinite)
};

/// Completion handle for one submitted batch. Move-only; dropping it
/// without wait() is allowed (the service completes the request and
/// recycles the slot once both sides are done). Futures may outlive the
/// service — they share ownership of the slot pool.
class FactorFuture {
 public:
  FactorFuture() = default;
  FactorFuture(FactorFuture&& other) noexcept { swap(other); }
  FactorFuture& operator=(FactorFuture&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  FactorFuture(const FactorFuture&) = delete;
  FactorFuture& operator=(const FactorFuture&) = delete;
  ~FactorFuture() { release(); }

  [[nodiscard]] bool valid() const noexcept {
    return shared_ != nullptr || overloaded_;
  }

  /// Blocks until the request reaches a terminal state and returns the
  /// result. Requests that never executed (cancelled, expired, shed)
  /// report zero failures and untouched data — distinguish them via
  /// status(). Idempotent.
  FactorResult wait();

  /// Attempts to cancel: succeeds only while no worker has started the
  /// request (kQueued). On success the batch data is untouched and wait()
  /// returns immediately. A request already running cannot be cancelled —
  /// wait for it instead (partial factors are never exposed).
  bool try_cancel();

  [[nodiscard]] RequestStatus status() const;

  /// Blocks like wait() and returns the quarantine report: empty unless
  /// the request completed kPoisoned (screening found non-finite
  /// matrices; report.matrices lists them).
  RecoveryReport recovery_report();

 private:
  friend class BatchService;
  FactorFuture(std::shared_ptr<detail::ServiceShared> shared,
               std::uint32_t slot) noexcept
      : shared_(std::move(shared)), slot_(slot) {}

  /// An admission-shed future: already terminal (kOverloaded), owns no
  /// slot — rejection must not consume the resource being protected.
  static FactorFuture overloaded() noexcept {
    FactorFuture f;
    f.overloaded_ = true;
    return f;
  }

  void swap(FactorFuture& other) noexcept {
    std::swap(shared_, other.shared_);
    std::swap(slot_, other.slot_);
    std::swap(overloaded_, other.overloaded_);
  }
  void release() noexcept;

  std::shared_ptr<detail::ServiceShared> shared_;
  std::uint32_t slot_ = 0;
  bool overloaded_ = false;
};

/// The persistent batch-factorization service. Thread-safe: any thread may
/// submit concurrently. Destruction drains — every accepted request is
/// completed (or was cancelled) before the workers join, and outstanding
/// futures remain valid afterwards.
class BatchService {
 public:
  explicit BatchService(const ServiceOptions& options = {});
  ~BatchService();
  BatchService(const BatchService&) = delete;
  BatchService& operator=(const BatchService&) = delete;

  /// Submits a batch for asynchronous factorization. Identical semantics
  /// and (for IEEE math) bit-identical results to factor_batch_cpu with
  /// the same arguments; `options.num_threads` is ignored (the pool is
  /// fixed). `data`, `info`, and `*program` must stay alive and untouched
  /// by the caller until the returned future completes. A full slot pool
  /// is handled per ServicePolicy (block, reject, shed, bounded wait);
  /// `sopts` adds the per-request deadline/priority/screen knobs.
  template <typename T>
  [[nodiscard]] FactorFuture submit(const BatchLayout& layout,
                                    std::span<T> data,
                                    const CpuFactorOptions& options,
                                    std::span<std::int32_t> info = {},
                                    const TileProgram* program = nullptr,
                                    const SubmitOptions& sopts = {});

  /// The synchronous API on top of the service: submit + wait.
  template <typename T>
  FactorResult factor(const BatchLayout& layout, std::span<T> data,
                      const CpuFactorOptions& options,
                      std::span<std::int32_t> info = {},
                      const TileProgram* program = nullptr);

  /// Recovery-retry factorization whose factorization passes (first pass
  /// and every shifted retry sub-batch) run on the service instead of
  /// spawning OpenMP teams; semantics of factor_batch_recover.
  template <typename T>
  RecoveryReport recover(const BatchLayout& layout, std::span<T> data,
                         const CpuFactorOptions& options,
                         const RecoveryOptions& recovery,
                         std::span<std::int32_t> info = {},
                         const TileProgram* program = nullptr);

  /// submit for a reduced-precision batch: `data` holds 16-bit words in
  /// `sopts.storage` format (which must be kBf16 or kFp16), arithmetic
  /// accumulates in fp32 exactly as factor_batch_cpu_mixed, and results
  /// are bit-identical to that synchronous path. Interleaved layouts
  /// only. Mixed and fp32/fp64 requests share the same pool, slots, and
  /// admission policy; SubmitOptions::screen runs a bit-level NaN/Inf
  /// test on the 16-bit words.
  [[nodiscard]] FactorFuture submit_mixed(const BatchLayout& layout,
                                          std::span<std::uint16_t> data,
                                          const CpuFactorOptions& options,
                                          std::span<std::int32_t> info = {},
                                          const TileProgram* program = nullptr,
                                          const SubmitOptions& sopts = {});

  /// The synchronous reduced-precision API: submit_mixed + wait.
  FactorResult factor_mixed(const BatchLayout& layout,
                            std::span<std::uint16_t> data,
                            const CpuFactorOptions& options,
                            std::span<std::int32_t> info = {},
                            const TileProgram* program = nullptr,
                            const SubmitOptions& sopts = {});

  /// Submits a batch of *large* matrices (any layout, lower triangle)
  /// through the tiled task-parallel path: each matrix becomes one
  /// POTRF/TRSM/SYRK/GEMM task DAG over an nb×nb tile grid, all DAGs
  /// share the pool concurrently, and per-tile update chains make the
  /// result bit-identical to tiled::potrf_tiled_reference under any
  /// stealing schedule. info reports the 1-based global column of the
  /// first non-positive pivot per matrix. Deadlines, priorities, and
  /// admission policies apply as in submit; screening does not (the
  /// request is rejected if sopts.screen is set — large single matrices
  /// are not the poison-fleet regime).
  template <typename T>
  [[nodiscard]] FactorFuture submit_tiled(const BatchLayout& layout,
                                          std::span<T> data,
                                          const TiledOptions& topts = {},
                                          std::span<std::int32_t> info = {},
                                          const SubmitOptions& sopts = {});

  /// The synchronous tiled API: submit_tiled + wait.
  template <typename T>
  FactorResult factor_tiled(const BatchLayout& layout, std::span<T> data,
                            const TiledOptions& topts = {},
                            std::span<std::int32_t> info = {});

  /// factor_batch_recover_mixed with the fp32 passes pooled: the batch is
  /// widened once, screened/factored/shift-retried through the service,
  /// and narrowed back to `storage`.
  RecoveryReport recover_mixed(const BatchLayout& layout,
                               std::span<std::uint16_t> data,
                               StoragePrec storage,
                               const CpuFactorOptions& options,
                               const RecoveryOptions& recovery,
                               std::span<std::int32_t> info = {},
                               const TileProgram* program = nullptr);

  /// Resolved initial worker count (fixed for the service lifetime).
  [[nodiscard]] int threads() const noexcept;

  /// Worker threads ever started, including watchdog respawns — equals
  /// threads() until the watchdog intervenes (test/telemetry hook).
  [[nodiscard]] int workers_started() const noexcept;

  /// Scratch-pool counters — the zero-steady-state-allocation test hook.
  [[nodiscard]] ArenaStats arena_stats() const;

  /// Lazily started process-wide service with default options, shared by
  /// callers that opt in via IBCHOL_SERVICE=1 (see BatchCholesky) and by
  /// anything else content with one shared pool. Never torn down before
  /// process exit.
  static BatchService& global();

 private:
  std::shared_ptr<detail::ServiceShared> shared_;
};

}  // namespace ibchol::svc
