// Long-lived batch-factorization service: persistent work-stealing
// executor over the chunk pipeline's unit API.
//
// The synchronous drivers (factor_batch_cpu) spawn an OpenMP team, carve
// the batch into pipeline units, join, and tear everything down — per
// call. For the throughput regime the paper targets (millions of small
// factorizations per second arriving continuously) that per-call team
// spawn, scratch allocation, and join barrier dominate: no worker can
// start the next request's units while any worker still finishes the
// current one. BatchService keeps the execution machinery alive across
// requests:
//
//  * submission — a bounded lock-free MPMC queue (MpmcQueue) of pooled
//    request slots; submit() is wait-free apart from the slot pop and
//    returns a FactorFuture. A full pool is backpressure, not an error.
//  * execution — a persistent pool of workers, each owning a Chase-Lev
//    deque (WorkDeque) of unit-range tasks. A claimed request enters as
//    one root task; workers split ranges lazily (halving, down to
//    ServiceOptions::steal_grain units) so division only happens when a
//    thief is actually idle. Units are independent and schedule-agnostic
//    (see ChunkExecPlan), so service results are bit-identical to the
//    synchronous path — under IEEE math, to the last ulp.
//  * double buffering — within a packed-plan task the worker packs unit
//    k+1 between factor(k) and writeback(k) on a second scratch buffer,
//    so the next chunk's loads overlap the previous chunk's streaming
//    write-back instead of serializing behind it.
//  * memory — all scratch (pack, whole-matrix, double buffers) comes from
//    a size-classed ScratchArena; request slots, queue cells, and deque
//    cells are preallocated. After warm-up, steady-state operation
//    performs zero heap allocations (ScratchArena::stats().upstream_allocs
//    is the test hook for that claim).
//  * observability — per-request "request"/"queue_wait" spans (category
//    "svc") and the "svc.request_ns"/"svc.queue_ns" latency histograms
//    (p50/p95/p99) via src/obs/histogram.hpp.
//
// Thread-count and steal-granularity are live tuning axes
// (ServiceOptions::num_threads / steal_grain); bench/load_service sweeps
// them. DESIGN §10 documents the architecture.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "cpu/batch_factor.hpp"
#include "cpu/recover.hpp"
#include "kernels/tile_program.hpp"
#include "layout/layout.hpp"
#include "svc/arena.hpp"

namespace ibchol::svc {

namespace detail {
struct ServiceShared;
}

struct ServiceOptions {
  /// Worker threads; 0 = the cached process default
  /// (cached_default_threads()), resolved once for the service lifetime.
  int num_threads = 0;
  /// Smallest unit-range a task is split down to. 1 = maximal stealing
  /// parallelism; larger grains cut steal traffic for tiny units. A live
  /// tuning axis.
  int steal_grain = 1;
  /// Request slots preallocated for in-flight requests (also the
  /// submission-queue capacity). A slot stays busy until its request
  /// completed AND its FactorFuture was released (the future reads the
  /// result out of the slot), so this must cover futures the client
  /// holds, not just requests the pool is working on; submit() blocks
  /// (backpressure) when all slots are busy. Clamped to the packed-task
  /// slot limit (kMaxSlots).
  std::size_t max_inflight = 256;
};

/// Lifecycle of one submitted request.
enum class RequestStatus : int {
  kQueued = 0,    ///< accepted, no worker has claimed it yet
  kRunning = 1,   ///< workers are factoring units
  kDone = 2,      ///< complete; result valid, data/info fully written
  kCancelled = 3  ///< cancelled before any work started; data untouched
};

/// Completion handle for one submitted batch. Move-only; dropping it
/// without wait() is allowed (the service completes the request and
/// recycles the slot once both sides are done). Futures may outlive the
/// service — they share ownership of the slot pool.
class FactorFuture {
 public:
  FactorFuture() = default;
  FactorFuture(FactorFuture&& other) noexcept { swap(other); }
  FactorFuture& operator=(FactorFuture&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  FactorFuture(const FactorFuture&) = delete;
  FactorFuture& operator=(const FactorFuture&) = delete;
  ~FactorFuture() { release(); }

  [[nodiscard]] bool valid() const noexcept { return shared_ != nullptr; }

  /// Blocks until the request is done (or cancelled) and returns the
  /// result; a cancelled request reports zero failures and untouched
  /// data. Idempotent.
  FactorResult wait();

  /// Attempts to cancel: succeeds only while no worker has started the
  /// request (kQueued). On success the batch data is untouched and wait()
  /// returns immediately. A request already running cannot be cancelled —
  /// wait for it instead (partial factors are never exposed).
  bool try_cancel();

  [[nodiscard]] RequestStatus status() const;

 private:
  friend class BatchService;
  FactorFuture(std::shared_ptr<detail::ServiceShared> shared,
               std::uint32_t slot) noexcept
      : shared_(std::move(shared)), slot_(slot) {}

  void swap(FactorFuture& other) noexcept {
    std::swap(shared_, other.shared_);
    std::swap(slot_, other.slot_);
  }
  void release() noexcept;

  std::shared_ptr<detail::ServiceShared> shared_;
  std::uint32_t slot_ = 0;
};

/// The persistent batch-factorization service. Thread-safe: any thread may
/// submit concurrently. Destruction drains — every accepted request is
/// completed (or was cancelled) before the workers join, and outstanding
/// futures remain valid afterwards.
class BatchService {
 public:
  explicit BatchService(const ServiceOptions& options = {});
  ~BatchService();
  BatchService(const BatchService&) = delete;
  BatchService& operator=(const BatchService&) = delete;

  /// Submits a batch for asynchronous factorization. Identical semantics
  /// and (for IEEE math) bit-identical results to factor_batch_cpu with
  /// the same arguments; `options.num_threads` is ignored (the pool is
  /// fixed). `data`, `info`, and `*program` must stay alive and untouched
  /// by the caller until the returned future completes. Blocks briefly
  /// only when all request slots are in flight (backpressure).
  template <typename T>
  [[nodiscard]] FactorFuture submit(const BatchLayout& layout,
                                    std::span<T> data,
                                    const CpuFactorOptions& options,
                                    std::span<std::int32_t> info = {},
                                    const TileProgram* program = nullptr);

  /// The synchronous API on top of the service: submit + wait.
  template <typename T>
  FactorResult factor(const BatchLayout& layout, std::span<T> data,
                      const CpuFactorOptions& options,
                      std::span<std::int32_t> info = {},
                      const TileProgram* program = nullptr);

  /// Recovery-retry factorization whose factorization passes (first pass
  /// and every shifted retry sub-batch) run on the service instead of
  /// spawning OpenMP teams; semantics of factor_batch_recover.
  template <typename T>
  RecoveryReport recover(const BatchLayout& layout, std::span<T> data,
                         const CpuFactorOptions& options,
                         const RecoveryOptions& recovery,
                         std::span<std::int32_t> info = {},
                         const TileProgram* program = nullptr);

  /// Resolved worker count (fixed for the service lifetime).
  [[nodiscard]] int threads() const noexcept;

  /// Scratch-pool counters — the zero-steady-state-allocation test hook.
  [[nodiscard]] ArenaStats arena_stats() const;

  /// Lazily started process-wide service with default options, shared by
  /// callers that opt in via IBCHOL_SERVICE=1 (see BatchCholesky) and by
  /// anything else content with one shared pool. Never torn down before
  /// process exit.
  static BatchService& global();

 private:
  std::shared_ptr<detail::ServiceShared> shared_;
};

}  // namespace ibchol::svc
