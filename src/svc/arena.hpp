// Size-classed pooled allocator for the service's scratch buffers.
//
// Steady-state service operation must perform zero heap allocations: every
// request needs L2-sized pack scratch (ChunkExecPlan::pack_scratch_elems),
// whole-matrix fallback scratch, and (for recovery) gather buffers, and
// malloc/free per request would both cost latency and defeat the
// cache-residency the chunk pipeline exists for — a recycled block returns
// still-warm lines. The arena hands out kBatchAlignment-aligned blocks in
// power-of-two size classes and recycles them on release; the upstream
// allocator is touched only when a class's free list is empty, so after
// warm-up the hit rate is 1 and the allocation counters go flat.
//
// The counters double as the allocation-counting test hook: the zero-alloc
// acceptance test snapshots stats().upstream_allocs, drives the service in
// steady state, and asserts the count did not move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ibchol::svc {

class ScratchArena;

/// RAII lease of one pooled block. Movable; returns the block to the arena
/// on destruction. The block's usable size is the size class's, i.e. at
/// least what was requested.
class ArenaLease {
 public:
  ArenaLease() = default;
  ArenaLease(ArenaLease&& other) noexcept { swap(other); }
  ArenaLease& operator=(ArenaLease&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease() { reset(); }

  /// Returns the block to the arena early (idempotent).
  void reset();

  [[nodiscard]] void* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }

  template <typename T>
  [[nodiscard]] T* as() const noexcept {
    return static_cast<T*>(data_);
  }

 private:
  friend class ScratchArena;
  ArenaLease(ScratchArena* arena, void* data, std::size_t bytes, int cls)
      : arena_(arena), data_(data), bytes_(bytes), cls_(cls) {}

  void swap(ArenaLease& other) noexcept {
    std::swap(arena_, other.arena_);
    std::swap(data_, other.data_);
    std::swap(bytes_, other.bytes_);
    std::swap(cls_, other.cls_);
  }

  ScratchArena* arena_ = nullptr;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  int cls_ = -1;
};

/// Allocation-flow counters; `upstream_allocs` flat across a window means
/// the window ran entirely from the pool.
struct ArenaStats {
  std::uint64_t upstream_allocs = 0;  ///< aligned_alloc calls (pool misses)
  std::uint64_t upstream_bytes = 0;   ///< bytes fetched from the upstream
  std::uint64_t acquires = 0;         ///< total acquire() calls
  std::uint64_t reuses = 0;           ///< acquires served from a free list
  std::uint64_t failed_allocs = 0;    ///< upstream failures (throw, no lease)
  std::uint64_t live_leases = 0;      ///< blocks currently leased out
  std::uint64_t cached_blocks = 0;    ///< blocks parked on free lists
  std::uint64_t cached_bytes = 0;     ///< bytes parked on free lists
};

/// Thread-safe pool of kBatchAlignment-aligned scratch blocks in
/// power-of-two size classes (kMinBlockBytes << class). Blocks live until
/// the arena is destroyed; there is no trimming — the working set is
/// bounded by the high-water mark of concurrent leases per class, which the
/// service bounds by its slot count.
class ScratchArena {
 public:
  /// Smallest block handed out; sub-4KiB requests round up to it.
  static constexpr std::size_t kMinBlockBytes = 4096;

  ScratchArena() = default;
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Leases a block of at least `bytes` bytes (zero-filled only on the
  /// first, upstream-backed acquisition — reused blocks carry stale
  /// contents, which every pipeline stage overwrites anyway).
  ///
  /// Throws std::bad_alloc when the class's free list is empty and the
  /// upstream allocation fails (including chaos-forced failures). A failed
  /// acquire leaves the arena unchanged except for `acquires` and
  /// `failed_allocs`: no lease is counted live and no upstream stats move,
  /// so callers can retry and tests can assert exact accounting.
  [[nodiscard]] ArenaLease acquire(std::size_t bytes);

  [[nodiscard]] ArenaStats stats() const;

 private:
  friend class ArenaLease;
  void release(void* data, int cls);

  // 4KiB << 31 = 8TiB: every representable request has a class.
  static constexpr int kNumClasses = 32;

  mutable std::mutex mu_;
  std::vector<void*> free_lists_[kNumClasses];
  ArenaStats stats_;
};

}  // namespace ibchol::svc
