#include "svc/batch_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "cpu/chunk_pipeline.hpp"
#include "cpu/reference.hpp"
#include "cpu/thread_util.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "svc/mpmc_queue.hpp"
#include "svc/work_deque.hpp"
#include "util/error.hpp"

namespace ibchol::svc {

namespace detail {

namespace {

constexpr std::int64_t kNotSeen = std::numeric_limits<std::int64_t>::max();

/// Matrices per canonical-layout unit: small enough that a handful of big
/// matrices still spreads across workers, large enough that tiny ones are
/// not all scheduling overhead (the interleaved lane block, by analogy).
constexpr std::int64_t kCanonicalUnit = 32;

}  // namespace

/// One pooled request. Everything before the atomics is written by
/// submit() and published to workers through the submission queue's
/// release/acquire edge (and onward to thieves through the deque's).
struct alignas(64) Slot {
  enum class Mode : std::uint8_t {
    kChunkF32,
    kChunkF64,
    kCanonF32,
    kCanonF64
  };

  // Immutable while in flight.
  Mode mode = Mode::kChunkF32;
  ChunkExecPlan<float> plan_f;
  ChunkExecPlan<double> plan_d;
  BatchLayout layout = BatchLayout::interleaved(1, 1);  // canonical path
  int nb = 8;
  Triangle triangle = Triangle::kLower;
  void* data = nullptr;
  std::int32_t* info = nullptr;
  std::size_t info_size = 0;
  std::int64_t num_units = 0;
  std::uint64_t submit_ns = 0;
  std::int64_t seq = 0;  ///< submission sequence (span payload)

  // Progress.
  std::atomic<int> status{static_cast<int>(RequestStatus::kQueued)};
  std::atomic<std::int64_t> remaining{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> first_failed{kNotSeen};
  std::atomic<int> refs{0};  ///< execution side + future side

  // Completion (mu guards result/completed; cv wakes waiters).
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  FactorResult result;
};

struct ServiceShared {
  ServiceOptions opts;
  int threads = 1;
  int grain = 1;

  std::vector<std::unique_ptr<Slot>> slots;
  std::unique_ptr<MpmcQueue<std::uint32_t>> free_slots;
  std::unique_ptr<MpmcQueue<std::uint32_t>> submissions;
  std::vector<std::unique_ptr<WorkDeque>> deques;
  std::vector<std::thread> workers;
  ScratchArena arena;

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> inflight{0};
  std::atomic<std::int64_t> seq{0};

  // Idle protocol: workers spin briefly, then sleep on the cv; the epoch
  // closes the check-then-sleep race (a publisher bumping it between a
  // sleeper's last look and its wait makes the wait a no-op), and the
  // bounded wait_for bounds the cost of a lost wakeup anyway.
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  std::atomic<std::uint64_t> work_epoch{0};
  std::atomic<int> sleepers{0};

  // Program/specialization caches: built once per configuration, reused
  // by every later request (the steady-state zero-allocation path).
  std::mutex cache_mu;
  std::map<std::tuple<int, int, int>, std::unique_ptr<TileProgram>> programs;
  std::map<std::tuple<const TileProgram*, int>,
           std::unique_ptr<SpecializedProgram<float>>>
      specs_f;
  std::map<std::tuple<const TileProgram*, int>,
           std::unique_ptr<SpecializedProgram<double>>>
      specs_d;
};

namespace {

void notify_work(ServiceShared& s) {
  s.work_epoch.fetch_add(1, std::memory_order_release);
  if (s.sleepers.load(std::memory_order_acquire) > 0) {
    // The lock pairs with the sleeper's epoch check; notify outside it.
    { std::lock_guard<std::mutex> lock(s.idle_mu); }
    s.idle_cv.notify_all();
  }
}

void release_slot(ServiceShared& s, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  if (slot.refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    while (!s.free_slots->try_push(idx)) {
    }  // capacity == slot count: succeeds immediately
  }
}

void complete_request(ServiceShared& s, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  const FactorResult result = finalize_factor_result(
      slot.failed.load(std::memory_order_relaxed),
      slot.first_failed.load(std::memory_order_relaxed));
  slot.status.store(static_cast<int>(RequestStatus::kDone),
                    std::memory_order_release);
  const std::uint64_t now = obs::now_ns();
  IBCHOL_HIST("svc.request_ns", now - slot.submit_ns);
  if constexpr (obs::kEnabled) {
    if (obs::tracing_active()) {
      obs::record_span("request", "svc", slot.seq, slot.submit_ns,
                       now - slot.submit_ns);
    }
  }
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.result = result;
    slot.completed = true;
  }
  slot.cv.notify_all();
  s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  release_slot(s, idx);
  // A drain-waiting destructor (or an exit-checking worker) may be
  // sleeping on the idle cv.
  notify_work(s);
}

void finish_units(ServiceShared& s, std::uint32_t idx, std::int64_t units,
                  std::int64_t failed, std::int64_t first_failed) {
  Slot& slot = *s.slots[idx];
  if (failed > 0) {
    slot.failed.fetch_add(failed, std::memory_order_relaxed);
    std::int64_t cur = slot.first_failed.load(std::memory_order_relaxed);
    while (first_failed < cur &&
           !slot.first_failed.compare_exchange_weak(
               cur, first_failed, std::memory_order_relaxed)) {
    }
  }
  // acq_rel: releases this worker's info[] writes to whoever completes,
  // and the completer acquires every other worker's.
  if (slot.remaining.fetch_sub(units, std::memory_order_acq_rel) == units) {
    complete_request(s, idx);
  }
}

// Offers the tail of the running range to thieves when the worker's deque
// has run dry. `floor_` is the first unit the worker may still give away.
// Returns the new (possibly shrunk) end.
std::int64_t maybe_split(ServiceShared& s, WorkDeque& deque,
                         std::uint32_t idx, std::int64_t floor_,
                         std::int64_t end) {
  if (end - floor_ > s.grain && deque.empty_approx()) {
    const std::int64_t mid = floor_ + (end - floor_) / 2;
    if (deque.push({idx, mid, end})) {
      notify_work(s);
      return mid;
    }
  }
  return end;
}

template <typename T>
void run_chunk_range(ServiceShared& s, WorkDeque& deque, std::uint32_t idx,
                     const ChunkExecPlan<T>& plan, UnitTask t) {
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<T*>(slot.data);
  const std::span<std::int32_t> info(slot.info, slot.info_size);
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  ChunkUnitCounters counters;

  ArenaLease wm_lease;
  T* wm = nullptr;
  if (plan.wm_scratch_elems > 0) {
    wm_lease = s.arena.acquire(plan.wm_scratch_elems * sizeof(T));
    wm = wm_lease.as<T>();
  }

  if (plan.pack_lanes > 0) {
    // Double-buffered schedule: pack(k+1) runs between factor(k) and
    // writeback(k), so the next chunk's loads are in flight while the
    // previous chunk's streaming stores drain — the write-back never
    // serializes the pipeline. Two scratch buffers swap roles per unit.
    ArenaLease lease_a =
        s.arena.acquire(plan.pack_scratch_elems * sizeof(T));
    ArenaLease lease_b;
    T* cur = lease_a.as<T>();
    T* nxt = nullptr;
    t.end = maybe_split(s, deque, idx, t.begin + 1, t.end);
    if (t.size() > 1) {
      lease_b = s.arena.acquire(plan.pack_scratch_elems * sizeof(T));
      nxt = lease_b.as<T>();
    }
    pack_unit(plan, data, t.begin, cur);
    for (std::int64_t u = t.begin; u < t.end; ++u) {
      factor_unit(plan, data, u, cur, wm, info, failed, first, counters);
      if (u + 1 < t.end) pack_unit(plan, data, u + 1, nxt);
      writeback_unit(plan, cur, data, u, counters);
      std::swap(cur, nxt);
      // Unit u+1 is already packed into `cur`; only [u+2, end) may move.
      t.end = maybe_split(s, deque, idx, u + 2, t.end);
    }
  } else {
    for (std::int64_t u = t.begin; u < t.end; ++u) {
      factor_unit(plan, data, u, static_cast<T*>(nullptr), wm, info, failed,
                  first, counters);
      t.end = maybe_split(s, deque, idx, u + 1, t.end);
    }
  }
  fold_unit_counters(counters);
  finish_units(s, idx, t.size(), failed, first);
}

template <typename T>
void run_canonical_range(ServiceShared& s, WorkDeque& deque,
                         std::uint32_t idx, UnitTask t) {
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<T*>(slot.data);
  const BatchLayout& layout = slot.layout;
  const int n = layout.n();
  const int nb = std::min(slot.nb, n);
  const std::int64_t batch = layout.batch();
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  for (std::int64_t u = t.begin; u < t.end; ++u) {
    const std::int64_t b0 = u * kCanonicalUnit;
    const std::int64_t b1 = std::min(batch, b0 + kCanonicalUnit);
    for (std::int64_t b = b0; b < b1; ++b) {
      T* a = data + layout.index(b, 0, 0);
      const int st = slot.triangle == Triangle::kUpper
                         ? potrf_unblocked_upper(n, a, n)
                         : potrf_blocked(n, nb, a, n);
      if (slot.info != nullptr) slot.info[b] = st;
      if (st != 0) {
        ++failed;
        first = std::min(first, b);
      }
    }
    t.end = maybe_split(s, deque, idx, u + 1, t.end);
  }
  finish_units(s, idx, t.size(), failed, first);
}

void run_range(ServiceShared& s, int wid, UnitTask t) {
  WorkDeque& deque = *s.deques[wid];
  Slot& slot = *s.slots[t.slot];
  switch (slot.mode) {
    case Slot::Mode::kChunkF32:
      run_chunk_range<float>(s, deque, t.slot, slot.plan_f, t);
      break;
    case Slot::Mode::kChunkF64:
      run_chunk_range<double>(s, deque, t.slot, slot.plan_d, t);
      break;
    case Slot::Mode::kCanonF32:
      run_canonical_range<float>(s, deque, t.slot, t);
      break;
    case Slot::Mode::kCanonF64:
      run_canonical_range<double>(s, deque, t.slot, t);
      break;
  }
}

void claim_request(ServiceShared& s, int wid, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  int expected = static_cast<int>(RequestStatus::kQueued);
  if (!slot.status.compare_exchange_strong(
          expected, static_cast<int>(RequestStatus::kRunning),
          std::memory_order_acq_rel)) {
    // Cancelled while queued; the canceller already completed the future
    // and dropped it from the inflight count — just drop the exec ref.
    release_slot(s, idx);
    return;
  }
  const std::uint64_t now = obs::now_ns();
  IBCHOL_HIST("svc.queue_ns", now - slot.submit_ns);
  if constexpr (obs::kEnabled) {
    if (obs::tracing_active()) {
      obs::record_span("queue_wait", "svc", slot.seq, slot.submit_ns,
                       now - slot.submit_ns);
    }
  }
  run_range(s, wid, {idx, 0, slot.num_units});
}

bool find_and_run(ServiceShared& s, int wid) {
  UnitTask t;
  if (s.deques[wid]->pop(t)) {
    run_range(s, wid, t);
    return true;
  }
  std::uint32_t idx;
  if (s.submissions->try_pop(idx)) {
    claim_request(s, wid, idx);
    return true;
  }
  for (int i = 1; i < s.threads; ++i) {
    const int victim = (wid + i) % s.threads;
    if (s.deques[victim]->steal(t)) {
      IBCHOL_COUNT("svc.steals", 1);
      run_range(s, wid, t);
      return true;
    }
  }
  return false;
}

bool drained(ServiceShared& s) {
  return s.stop.load(std::memory_order_acquire) &&
         s.inflight.load(std::memory_order_acquire) == 0;
}

void worker_loop(ServiceShared& s, int wid) {
  int idle_spins = 0;
  for (;;) {
    if (find_and_run(s, wid)) {
      idle_spins = 0;
      continue;
    }
    if (drained(s)) return;
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t epoch =
        s.work_epoch.load(std::memory_order_acquire);
    // One more look after snapshotting the epoch, so work published just
    // before the snapshot cannot be slept through.
    if (find_and_run(s, wid)) {
      idle_spins = 0;
      continue;
    }
    if (drained(s)) return;
    {
      std::unique_lock<std::mutex> lock(s.idle_mu);
      if (s.work_epoch.load(std::memory_order_relaxed) == epoch) {
        s.sleepers.fetch_add(1, std::memory_order_release);
        s.idle_cv.wait_for(lock, std::chrono::milliseconds(1));
        s.sleepers.fetch_sub(1, std::memory_order_release);
      }
    }
    idle_spins = 0;
  }
}

}  // namespace

}  // namespace detail

using detail::ServiceShared;
using detail::Slot;

// ------------------------------------------------------- FactorFuture ----

FactorResult FactorFuture::wait() {
  IBCHOL_CHECK(valid(), "wait() on an empty future");
  Slot& slot = *shared_->slots[slot_];
  std::unique_lock<std::mutex> lock(slot.mu);
  slot.cv.wait(lock, [&] { return slot.completed; });
  return slot.result;
}

bool FactorFuture::try_cancel() {
  IBCHOL_CHECK(valid(), "try_cancel() on an empty future");
  Slot& slot = *shared_->slots[slot_];
  int expected = static_cast<int>(RequestStatus::kQueued);
  if (!slot.status.compare_exchange_strong(
          expected, static_cast<int>(RequestStatus::kCancelled),
          std::memory_order_acq_rel)) {
    return false;
  }
  IBCHOL_COUNT("svc.cancelled", 1);
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.result = FactorResult{};
    slot.completed = true;
  }
  slot.cv.notify_all();
  shared_->inflight.fetch_sub(1, std::memory_order_acq_rel);
  detail::notify_work(*shared_);  // a drain-waiter may be parked
  return true;
}

RequestStatus FactorFuture::status() const {
  IBCHOL_CHECK(valid(), "status() on an empty future");
  return static_cast<RequestStatus>(
      shared_->slots[slot_]->status.load(std::memory_order_acquire));
}

void FactorFuture::release() noexcept {
  if (shared_ != nullptr) {
    detail::release_slot(*shared_, slot_);
    shared_.reset();
  }
}

// -------------------------------------------------------- BatchService ----

BatchService::BatchService(const ServiceOptions& options)
    : shared_(std::make_shared<ServiceShared>()) {
  ServiceShared& s = *shared_;
  s.opts = options;
  // Thread count is resolved once here and frozen for the service
  // lifetime — no per-call libgomp queries, no per-call team spawn.
  s.threads = options.num_threads > 0 ? options.num_threads
                                      : cached_default_threads();
  IBCHOL_CHECK(s.threads >= 1, "service needs at least one worker");
  s.grain = std::max(1, options.steal_grain);
  const std::size_t nslots = std::min<std::size_t>(
      std::max<std::size_t>(1, options.max_inflight), kMaxSlots);
  s.slots.reserve(nslots);
  for (std::size_t i = 0; i < nslots; ++i) {
    s.slots.push_back(std::make_unique<Slot>());
  }
  s.free_slots = std::make_unique<MpmcQueue<std::uint32_t>>(nslots);
  s.submissions = std::make_unique<MpmcQueue<std::uint32_t>>(nslots);
  for (std::uint32_t i = 0; i < nslots; ++i) {
    (void)s.free_slots->try_push(i);
  }
  s.deques.reserve(static_cast<std::size_t>(s.threads));
  for (int i = 0; i < s.threads; ++i) {
    s.deques.push_back(std::make_unique<WorkDeque>());
  }
  s.workers.reserve(static_cast<std::size_t>(s.threads));
  for (int i = 0; i < s.threads; ++i) {
    s.workers.emplace_back([shared = shared_, i] {
      detail::worker_loop(*shared, i);
    });
  }
}

BatchService::~BatchService() {
  ServiceShared& s = *shared_;
  s.stop.store(true, std::memory_order_release);
  detail::notify_work(s);
  for (std::thread& t : s.workers) t.join();
  // Slots of requests cancelled at the shutdown edge may still sit in the
  // submission queue holding their execution-side reference.
  std::uint32_t idx;
  while (s.submissions->try_pop(idx)) detail::release_slot(s, idx);
}

int BatchService::threads() const noexcept { return shared_->threads; }

ArenaStats BatchService::arena_stats() const {
  return shared_->arena.stats();
}

BatchService& BatchService::global() {
  // Leaked: the global service must outlive every static-destruction-time
  // caller, like the obs registries.
  static BatchService* service = new BatchService;
  return *service;
}

namespace {

const TileProgram* cached_program(ServiceShared& s, int n, int nb,
                                  Looking looking) {
  const std::tuple<int, int, int> key{n, nb, static_cast<int>(looking)};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.programs.find(key);
  if (it == s.programs.end()) {
    it = s.programs
             .emplace(key, std::make_unique<TileProgram>(
                               build_tile_program(n, nb, looking)))
             .first;
  }
  return it->second.get();
}

template <typename T>
const SpecializedProgram<T>* cached_spec(ServiceShared& s,
                                         const TileProgram* program,
                                         MathMode math);

template <>
const SpecializedProgram<float>* cached_spec<float>(ServiceShared& s,
                                                    const TileProgram* program,
                                                    MathMode math) {
  const std::tuple<const TileProgram*, int> key{program,
                                                static_cast<int>(math)};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.specs_f.find(key);
  if (it == s.specs_f.end()) {
    it = s.specs_f
             .emplace(key, std::make_unique<SpecializedProgram<float>>(
                               *program, math))
             .first;
  }
  return it->second.get();
}

template <>
const SpecializedProgram<double>* cached_spec<double>(
    ServiceShared& s, const TileProgram* program, MathMode math) {
  const std::tuple<const TileProgram*, int> key{program,
                                                static_cast<int>(math)};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.specs_d.find(key);
  if (it == s.specs_d.end()) {
    it = s.specs_d
             .emplace(key, std::make_unique<SpecializedProgram<double>>(
                               *program, math))
             .first;
  }
  return it->second.get();
}

template <typename T>
void bind_plan(Slot& slot, const ChunkExecPlan<T>& plan);

template <>
void bind_plan<float>(Slot& slot, const ChunkExecPlan<float>& plan) {
  slot.mode = Slot::Mode::kChunkF32;
  slot.plan_f = plan;
}

template <>
void bind_plan<double>(Slot& slot, const ChunkExecPlan<double>& plan) {
  slot.mode = Slot::Mode::kChunkF64;
  slot.plan_d = plan;
}

}  // namespace

template <typename T>
FactorFuture BatchService::submit(const BatchLayout& layout,
                                  std::span<T> data,
                                  const CpuFactorOptions& options,
                                  std::span<std::int32_t> info,
                                  const TileProgram* program) {
  ServiceShared& s = *shared_;
  IBCHOL_CHECK(!s.stop.load(std::memory_order_acquire),
               "submit() on a service being destroyed");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");

  // Resolve the full execution plan before touching the pool, so every
  // precondition failure surfaces here, on the submitting thread.
  ChunkExecPlan<T> plan;
  std::int64_t num_units;
  const bool canonical = layout.kind() == LayoutKind::kCanonical;
  if (canonical) {
    num_units = (layout.batch() + detail::kCanonicalUnit - 1) /
                detail::kCanonicalUnit;
    IBCHOL_COUNT("cpu.exec.canonical", 1);
  } else {
    const TileProgram* prog = program;
    if (prog == nullptr && options.unroll == Unroll::kPartial) {
      prog = cached_program(s, layout.n(),
                            std::min(options.nb, layout.n()),
                            options.looking);
    }
    plan = plan_chunk_exec<T>(layout, data.data(), prog, options);
    if (plan.needs_spec_program()) {
      plan.spec = cached_spec<T>(s, prog, options.math);
    }
    note_exec_dispatch(plan.exec);
    num_units = plan.num_units;
  }
  IBCHOL_CHECK(num_units < kMaxUnits,
               "batch too large for one request; split it");

  // Backpressure: all slots in flight means the caller is ahead of the
  // pool; yield until a completion recycles one.
  std::uint32_t idx;
  while (!s.free_slots->try_pop(idx)) {
    std::this_thread::yield();
  }
  Slot& slot = *s.slots[idx];
  if (canonical) {
    slot.mode = std::is_same_v<T, float> ? Slot::Mode::kCanonF32
                                         : Slot::Mode::kCanonF64;
    slot.layout = layout;
    slot.nb = options.nb;
    slot.triangle = options.triangle;
  } else {
    bind_plan<T>(slot, plan);
  }
  slot.data = data.data();
  slot.info = info.empty() ? nullptr : info.data();
  slot.info_size = info.empty() ? 0 : info.size();
  slot.num_units = num_units;
  slot.submit_ns = obs::now_ns();
  slot.seq = s.seq.fetch_add(1, std::memory_order_relaxed);
  slot.status.store(static_cast<int>(RequestStatus::kQueued),
                    std::memory_order_relaxed);
  slot.remaining.store(num_units, std::memory_order_relaxed);
  slot.failed.store(0, std::memory_order_relaxed);
  slot.first_failed.store(detail::kNotSeen, std::memory_order_relaxed);
  slot.refs.store(2, std::memory_order_relaxed);  // exec side + future
  slot.completed = false;

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  IBCHOL_COUNT("svc.submitted", 1);
  while (!s.submissions->try_push(idx)) {
    std::this_thread::yield();  // capacity == slots: effectively immediate
  }
  detail::notify_work(s);
  return FactorFuture(shared_, idx);
}

template <typename T>
FactorResult BatchService::factor(const BatchLayout& layout,
                                  std::span<T> data,
                                  const CpuFactorOptions& options,
                                  std::span<std::int32_t> info,
                                  const TileProgram* program) {
  return submit<T>(layout, data, options, info, program).wait();
}

namespace {

template <typename T>
FactorResult service_factor_thunk(void* ctx, const BatchLayout& layout,
                                  std::span<T> data,
                                  const CpuFactorOptions& options,
                                  const TileProgram* program,
                                  std::span<std::int32_t> info) {
  auto* service = static_cast<BatchService*>(ctx);
  const TileProgram* prog =
      (program != nullptr && layout.kind() != LayoutKind::kCanonical &&
       options.unroll == Unroll::kPartial)
          ? program
          : nullptr;
  return service->factor<T>(layout, data, options, info, prog);
}

}  // namespace

template <typename T>
RecoveryReport BatchService::recover(const BatchLayout& layout,
                                     std::span<T> data,
                                     const CpuFactorOptions& options,
                                     const RecoveryOptions& recovery,
                                     std::span<std::int32_t> info,
                                     const TileProgram* program) {
  return factor_batch_recover_via<T>(&service_factor_thunk<T>, this, layout,
                                     data, options, recovery, info, program);
}

template FactorFuture BatchService::submit<float>(const BatchLayout&,
                                                  std::span<float>,
                                                  const CpuFactorOptions&,
                                                  std::span<std::int32_t>,
                                                  const TileProgram*);
template FactorFuture BatchService::submit<double>(const BatchLayout&,
                                                   std::span<double>,
                                                   const CpuFactorOptions&,
                                                   std::span<std::int32_t>,
                                                   const TileProgram*);
template FactorResult BatchService::factor<float>(const BatchLayout&,
                                                  std::span<float>,
                                                  const CpuFactorOptions&,
                                                  std::span<std::int32_t>,
                                                  const TileProgram*);
template FactorResult BatchService::factor<double>(const BatchLayout&,
                                                   std::span<double>,
                                                   const CpuFactorOptions&,
                                                   std::span<std::int32_t>,
                                                   const TileProgram*);
template RecoveryReport BatchService::recover<float>(
    const BatchLayout&, std::span<float>, const CpuFactorOptions&,
    const RecoveryOptions&, std::span<std::int32_t>, const TileProgram*);
template RecoveryReport BatchService::recover<double>(
    const BatchLayout&, std::span<double>, const CpuFactorOptions&,
    const RecoveryOptions&, std::span<std::int32_t>, const TileProgram*);

}  // namespace ibchol::svc
