#include "svc/batch_service.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <tuple>
#include <vector>

#include "cpu/chunk_pipeline.hpp"
#include "cpu/reference.hpp"
#include "cpu/thread_util.hpp"
#include "cpu/tile_exec_spec.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "svc/mpmc_queue.hpp"
#include "svc/work_deque.hpp"
#include "tiled/dag.hpp"
#include "tiled/tile_kernels.hpp"
#include "tiled/tile_layout.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"

namespace ibchol::svc {

namespace detail {

namespace {

constexpr std::int64_t kNotSeen = std::numeric_limits<std::int64_t>::max();

/// Matrices per canonical-layout unit: small enough that a handful of big
/// matrices still spreads across workers, large enough that tiny ones are
/// not all scheduling overhead (the interleaved lane block, by analogy).
constexpr std::int64_t kCanonicalUnit = 32;

/// Watchdog view of one worker slot.
enum WorkerPhase : int {
  kUnborn = 0,   ///< slot reserved for a future respawn
  kActive = 1,   ///< running worker_loop
  kSuspect = 2,  ///< declared stalled; a replacement is already running
  kRetired = 3,  ///< exited (suspect that came back, or joined at teardown)
};

}  // namespace

/// Per-worker liveness state, sampled by the watchdog. The atomics are the
/// worker-to-watchdog channel (relaxed: the watchdog is a heuristic
/// sampler, phase transitions carry the only ordering); the plain fields
/// are the watchdog's private sampling memory.
struct alignas(64) WorkerState {
  std::atomic<std::uint64_t> heartbeat{0};  ///< bumped per loop + per unit
  std::atomic<bool> busy{false};            ///< inside find_and_run
  std::atomic<int> phase{kUnborn};

  // Watchdog-private (single-threaded: only the monitor touches them).
  std::uint64_t last_beat = 0;
  std::uint64_t last_change_ns = 0;
};

/// One pooled request. Everything before the atomics is written by
/// submit() and published to workers through the submission queue's
/// release/acquire edge (and onward to thieves through the deque's).
struct alignas(64) Slot {
  enum class Mode : std::uint8_t {
    kChunkF32,
    kChunkF64,
    kCanonF32,
    kCanonF64,
    /// Reduced-precision storage (bf16/fp16 words, fp32 accumulate):
    /// plan_f is a mixed plan (plan_chunk_exec_mixed) whose `storage`
    /// field names the element format; data points at std::uint16_t.
    kChunkMixed,
    /// Large-N tiled task DAG (see tiled/dag.hpp): units are individual
    /// tile tasks gated by per-tile in-degree counters in tiled_state,
    /// operating on tile-major scratch in tiled_tiles. `dag` points at the
    /// shared immutable spec cached in ServiceShared.
    kTiledF32,
    kTiledF64
  };

  // Immutable while in flight.
  Mode mode = Mode::kChunkF32;
  ChunkExecPlan<float> plan_f;
  ChunkExecPlan<double> plan_d;
  BatchLayout layout = BatchLayout::interleaved(1, 1);
  int nb = 8;
  Triangle triangle = Triangle::kLower;
  void* data = nullptr;
  std::int32_t* info = nullptr;
  std::size_t info_size = 0;
  std::int64_t num_units = 0;
  std::uint64_t submit_ns = 0;
  std::uint64_t deadline_ns = 0;  ///< absolute now_ns() expiry; 0 = none
  bool screen = false;
  std::int64_t seq = 0;  ///< submission sequence (span payload)

  // Tiled-mode request state, acquired at claim time and returned by
  // complete_request. tiled_tiles holds batch × TileLayout::size_elems()
  // tile-major elements; tiled_state holds, as int32 words accessed
  // through std::atomic_ref: [batch × rest_per_matrix in-degrees]
  // [batch fail-min columns][batch per-matrix task countdowns].
  const tiled::DagSpec* dag = nullptr;
  ArenaLease tiled_tiles;
  ArenaLease tiled_state;

  // Progress.
  std::atomic<int> status{static_cast<int>(RequestStatus::kQueued)};
  std::atomic<std::int64_t> remaining{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> first_failed{kNotSeen};
  std::atomic<int> refs{0};  ///< execution side + future side
  std::atomic<bool> aborted{false};     ///< scratch allocation failed
  std::atomic<bool> quarantined{false}; ///< poison slow path ran

  // Completion (mu guards result/recovery/completed; cv wakes waiters).
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  FactorResult result;
  RecoveryReport recovery;
};

struct ServiceShared {
  ServiceOptions opts;
  int threads = 1;      ///< initial worker count
  int max_workers = 1;  ///< threads + watchdog respawn budget
  int grain = 1;

  std::vector<std::unique_ptr<Slot>> slots;
  std::unique_ptr<MpmcQueue<std::uint32_t>> free_slots;
  std::unique_ptr<MpmcQueue<std::uint32_t>> submissions;
  std::unique_ptr<MpmcQueue<std::uint32_t>> submissions_hi;
  std::vector<std::unique_ptr<WorkDeque>> deques;     ///< max_workers
  std::vector<std::unique_ptr<WorkerState>> wstates;  ///< max_workers
  /// Mutated by the constructor and then only by the watchdog thread; the
  /// destructor reads it after joining the watchdog.
  std::vector<std::thread> workers;
  std::thread watchdog;
  ScratchArena arena;

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> inflight{0};
  std::atomic<std::int64_t> seq{0};
  std::atomic<int> num_workers{0};  ///< worker slots in use (grows only)

  // Idle protocol: workers spin briefly, then sleep on the cv; the epoch
  // closes the check-then-sleep race (a publisher bumping it between a
  // sleeper's last look and its wait makes the wait a no-op), and the
  // bounded wait_for bounds the cost of a lost wakeup anyway.
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  std::atomic<std::uint64_t> work_epoch{0};
  std::atomic<int> sleepers{0};

  // Watchdog sleep/shutdown channel.
  std::mutex wd_mu;
  std::condition_variable wd_cv;

  // Program/specialization caches: built once per configuration, reused
  // by every later request (the steady-state zero-allocation path).
  std::mutex cache_mu;
  std::map<std::tuple<int, int, int>, std::unique_ptr<TileProgram>> programs;
  std::map<std::tuple<const TileProgram*, int>,
           std::unique_ptr<SpecializedProgram<float>>>
      specs_f;
  std::map<std::tuple<const TileProgram*, int>,
           std::unique_ptr<SpecializedProgram<double>>>
      specs_d;
  /// Tiled DAG specs keyed (n, nb, clamped lookahead); immutable once
  /// built, so slots can hold bare pointers across requests.
  std::map<std::tuple<int, int, int>, std::unique_ptr<tiled::DagSpec>> dags;
};

namespace {

void notify_work(ServiceShared& s) {
  s.work_epoch.fetch_add(1, std::memory_order_release);
  if (s.sleepers.load(std::memory_order_acquire) > 0) {
    // The lock pairs with the sleeper's epoch check; notify outside it.
    { std::lock_guard<std::mutex> lock(s.idle_mu); }
    s.idle_cv.notify_all();
  }
}

void release_slot(ServiceShared& s, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  if (slot.refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    while (!s.free_slots->try_push(idx)) {
    }  // capacity == slot count: succeeds immediately
  }
}

void complete_request(ServiceShared& s, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  // Tiled scratch goes back to the arena before the future wakes: by the
  // time remaining hit zero every task body had finished (each body
  // precedes its own finish_units), so nothing touches the leases now.
  slot.tiled_tiles.reset();
  slot.tiled_state.reset();
  const FactorResult result = finalize_factor_result(
      slot.failed.load(std::memory_order_relaxed),
      slot.first_failed.load(std::memory_order_relaxed));
  RequestStatus final_status = RequestStatus::kDone;
  if (slot.aborted.load(std::memory_order_relaxed)) {
    final_status = RequestStatus::kResourceExhausted;
    IBCHOL_COUNT("svc.aborted", 1);
  } else if (slot.quarantined.load(std::memory_order_relaxed)) {
    final_status = RequestStatus::kPoisoned;
  }
  slot.status.store(static_cast<int>(final_status),
                    std::memory_order_release);
  const std::uint64_t now = obs::now_ns();
  IBCHOL_HIST("svc.request_ns", now - slot.submit_ns);
  if constexpr (obs::kEnabled) {
    // Per-precision latency lane: load_service reports p50/p95/p99 per
    // storage format from these. Runtime-named, so no macro cache — one
    // registry lookup per completed request, noise next to a factorization.
    const char* lane =
        slot.mode == Slot::Mode::kChunkMixed
            ? (slot.plan_f.storage == StoragePrec::kBf16
                   ? "svc.request_ns.bf16"
                   : "svc.request_ns.fp16")
        : (slot.mode == Slot::Mode::kChunkF64 ||
           slot.mode == Slot::Mode::kCanonF64 ||
           slot.mode == Slot::Mode::kTiledF64)
            ? "svc.request_ns.fp64"
            : "svc.request_ns.fp32";
    obs::histogram(lane).record(now - slot.submit_ns);
    if (obs::tracing_active()) {
      obs::record_span("request", "svc", slot.seq, slot.submit_ns,
                       now - slot.submit_ns);
    }
  }
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.result = result;
    slot.completed = true;
  }
  slot.cv.notify_all();
  s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  release_slot(s, idx);
  // A drain-waiting destructor (or an exit-checking worker) may be
  // sleeping on the idle cv.
  notify_work(s);
}

/// Completes a request that never executed (expired or shed while
/// queued). The caller already moved `status` to the terminal state via
/// its CAS; the batch data is untouched, and the info span records that
/// with kInfoNotExecuted.
void complete_unrun(ServiceShared& s, std::uint32_t idx,
                    const char* span_name) {
  Slot& slot = *s.slots[idx];
  if (slot.info != nullptr) {
    const std::int64_t count = std::min<std::int64_t>(
        slot.layout.batch(), static_cast<std::int64_t>(slot.info_size));
    std::fill_n(slot.info, count, kInfoNotExecuted);
  }
  if constexpr (obs::kEnabled) {
    if (obs::tracing_active()) {
      const std::uint64_t now = obs::now_ns();
      obs::record_span(span_name, "svc", slot.seq, slot.submit_ns,
                       now - slot.submit_ns);
    }
  }
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.result = FactorResult{};
    slot.completed = true;
  }
  slot.cv.notify_all();
  s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  release_slot(s, idx);
  notify_work(s);
}

void finish_units(ServiceShared& s, std::uint32_t idx, std::int64_t units,
                  std::int64_t failed, std::int64_t first_failed) {
  Slot& slot = *s.slots[idx];
  if (failed > 0) {
    slot.failed.fetch_add(failed, std::memory_order_relaxed);
    std::int64_t cur = slot.first_failed.load(std::memory_order_relaxed);
    while (first_failed < cur &&
           !slot.first_failed.compare_exchange_weak(
               cur, first_failed, std::memory_order_relaxed)) {
    }
  }
  // acq_rel: releases this worker's info[] writes to whoever completes,
  // and the completer acquires every other worker's.
  if (slot.remaining.fetch_sub(units, std::memory_order_acq_rel) == units) {
    complete_request(s, idx);
  }
}

/// Marks one unit range as not executed after a scratch allocation
/// failure: the matrices keep their input contents, their info entries
/// say so, and the request will complete kResourceExhausted. Routing the
/// abort through finish_units keeps the `remaining` accounting identical
/// to a successful range, so concurrent ranges of the same request are
/// unaffected.
template <typename T>
void abort_units(ServiceShared& s, std::uint32_t idx,
                 const ChunkExecPlan<T>& plan, UnitTask t) {
  Slot& slot = *s.slots[idx];
  slot.aborted.store(true, std::memory_order_relaxed);
  IBCHOL_COUNT("svc.aborted_units", t.size());
  const std::int64_t batch = plan.layout.batch();
  const std::int64_t b0 = std::min(batch, plan.first_lane(t.begin));
  const std::int64_t b1 = std::min(batch, plan.first_lane(t.end));
  if (slot.info != nullptr && b1 > b0) {
    std::fill(slot.info + b0, slot.info + b1, kInfoNotExecuted);
  }
  const std::int64_t failed = b1 - b0;
  finish_units(s, idx, t.size(), failed, failed > 0 ? b0 : kNotSeen);
}

/// abort_units for a whole request whose screening/quarantine path lost
/// its scratch before any unit ran.
void abort_whole(ServiceShared& s, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  slot.aborted.store(true, std::memory_order_relaxed);
  IBCHOL_COUNT("svc.aborted_units", slot.num_units);
  const std::int64_t batch = slot.layout.batch();
  if (slot.info != nullptr) {
    const std::int64_t count = std::min<std::int64_t>(
        batch, static_cast<std::int64_t>(slot.info_size));
    std::fill_n(slot.info, count, kInfoNotExecuted);
  }
  finish_units(s, idx, slot.num_units, batch, batch > 0 ? 0 : kNotSeen);
}

// Offers the tail of the running range to thieves when the worker's deque
// has run dry. `floor_` is the first unit the worker may still give away.
// Returns the new (possibly shrunk) end.
std::int64_t maybe_split(ServiceShared& s, WorkDeque& deque,
                         std::uint32_t idx, std::int64_t floor_,
                         std::int64_t end) {
  if (end - floor_ > s.grain && deque.empty_approx()) {
    const std::int64_t mid = floor_ + (end - floor_) / 2;
    if (deque.push({idx, mid, end})) {
      notify_work(s);
      return mid;
    }
  }
  return end;
}

template <typename T>
void run_chunk_range(ServiceShared& s, int wid, std::uint32_t idx,
                     const ChunkExecPlan<T>& plan, UnitTask t) {
  WorkDeque& deque = *s.deques[wid];
  WorkerState& me = *s.wstates[wid];
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<T*>(slot.data);
  const std::span<std::int32_t> info(slot.info, slot.info_size);
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  ChunkUnitCounters counters;

  // All scratch is leased up front; the unit loops below never allocate.
  // A failed lease (real OOM or chaos) aborts just this range.
  ArenaLease wm_lease;
  ArenaLease lease_a;
  ArenaLease lease_b;
  T* wm = nullptr;
  T* cur = nullptr;
  T* nxt = nullptr;
  try {
    if (plan.wm_scratch_elems > 0) {
      wm_lease = s.arena.acquire(plan.wm_scratch_elems * sizeof(T));
      wm = wm_lease.as<T>();
    }
    if (plan.pack_lanes > 0) {
      lease_a = s.arena.acquire(plan.pack_scratch_elems * sizeof(T));
      cur = lease_a.as<T>();
      t.end = maybe_split(s, deque, idx, t.begin + 1, t.end);
      if (t.size() > 1) {
        lease_b = s.arena.acquire(plan.pack_scratch_elems * sizeof(T));
        nxt = lease_b.as<T>();
      }
    }
  } catch (const std::bad_alloc&) {
    lease_b.reset();
    lease_a.reset();
    wm_lease.reset();
    abort_units(s, idx, plan, t);
    return;
  }

  if (plan.pack_lanes > 0) {
    // Double-buffered schedule: pack(k+1) runs between factor(k) and
    // writeback(k), so the next chunk's loads are in flight while the
    // previous chunk's streaming stores drain — the write-back never
    // serializes the pipeline. Two scratch buffers swap roles per unit.
    pack_unit(plan, data, t.begin, cur);
    for (std::int64_t u = t.begin; u < t.end; ++u) {
      chaos::chaos_stall_unit();
      factor_unit(plan, data, u, cur, wm, info, failed, first, counters);
      if (u + 1 < t.end) pack_unit(plan, data, u + 1, nxt);
      chaos::chaos_delay_writeback();
      writeback_unit(plan, cur, data, u, counters);
      std::swap(cur, nxt);
      me.heartbeat.fetch_add(1, std::memory_order_relaxed);
      // Unit u+1 is already packed into `cur`; only [u+2, end) may move.
      t.end = maybe_split(s, deque, idx, u + 2, t.end);
    }
  } else {
    for (std::int64_t u = t.begin; u < t.end; ++u) {
      chaos::chaos_stall_unit();
      factor_unit(plan, data, u, static_cast<T*>(nullptr), wm, info, failed,
                  first, counters);
      me.heartbeat.fetch_add(1, std::memory_order_relaxed);
      t.end = maybe_split(s, deque, idx, u + 1, t.end);
    }
  }
  fold_unit_counters(counters);
  // Return scratch before completing: a waiter that observes the done
  // request must also observe live_leases back at its resting level.
  lease_b.reset();
  lease_a.reset();
  wm_lease.reset();
  finish_units(s, idx, t.size(), failed, first);
}

/// run_chunk_range for a reduced-precision request: same double-buffered
/// pack/factor/writeback schedule and steal protocol, with the pack stage
/// widening 16-bit lanes into fp32 scratch and the write-back narrowing
/// them again. Mixed plans always pack, so there is no in-place branch;
/// the fp32 factor_unit never touches the u16 batch (nullptr data).
void run_chunk_range_mixed(ServiceShared& s, int wid, std::uint32_t idx,
                           const ChunkExecPlan<float>& plan, UnitTask t) {
  WorkDeque& deque = *s.deques[wid];
  WorkerState& me = *s.wstates[wid];
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<std::uint16_t*>(slot.data);
  const std::span<std::int32_t> info(slot.info, slot.info_size);
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  ChunkUnitCounters counters;

  ArenaLease wm_lease;
  ArenaLease lease_a;
  ArenaLease lease_b;
  float* wm = nullptr;
  float* cur = nullptr;
  float* nxt = nullptr;
  try {
    if (plan.wm_scratch_elems > 0) {
      wm_lease = s.arena.acquire(plan.wm_scratch_elems * sizeof(float));
      wm = wm_lease.as<float>();
    }
    lease_a = s.arena.acquire(plan.pack_scratch_elems * sizeof(float));
    cur = lease_a.as<float>();
    t.end = maybe_split(s, deque, idx, t.begin + 1, t.end);
    if (t.size() > 1) {
      lease_b = s.arena.acquire(plan.pack_scratch_elems * sizeof(float));
      nxt = lease_b.as<float>();
    }
  } catch (const std::bad_alloc&) {
    lease_b.reset();
    lease_a.reset();
    wm_lease.reset();
    abort_units(s, idx, plan, t);
    return;
  }

  pack_unit_mixed(plan, data, t.begin, cur);
  for (std::int64_t u = t.begin; u < t.end; ++u) {
    chaos::chaos_stall_unit();
    factor_unit(plan, static_cast<float*>(nullptr), u, cur, wm, info, failed,
                first, counters);
    if (u + 1 < t.end) pack_unit_mixed(plan, data, u + 1, nxt);
    chaos::chaos_delay_writeback();
    writeback_unit_mixed(plan, cur, data, u, counters);
    std::swap(cur, nxt);
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
    t.end = maybe_split(s, deque, idx, u + 2, t.end);
  }
  fold_unit_counters(counters);
  lease_b.reset();
  lease_a.reset();
  wm_lease.reset();
  finish_units(s, idx, t.size(), failed, first);
}

template <typename T>
void run_canonical_range(ServiceShared& s, int wid, std::uint32_t idx,
                         UnitTask t) {
  WorkDeque& deque = *s.deques[wid];
  WorkerState& me = *s.wstates[wid];
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<T*>(slot.data);
  const BatchLayout& layout = slot.layout;
  const int n = layout.n();
  const int nb = std::min(slot.nb, n);
  const std::int64_t batch = layout.batch();
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  for (std::int64_t u = t.begin; u < t.end; ++u) {
    chaos::chaos_stall_unit();
    const std::int64_t b0 = u * kCanonicalUnit;
    const std::int64_t b1 = std::min(batch, b0 + kCanonicalUnit);
    for (std::int64_t b = b0; b < b1; ++b) {
      T* a = data + layout.index(b, 0, 0);
      const int st = slot.triangle == Triangle::kUpper
                         ? potrf_unblocked_upper(n, a, n)
                         : potrf_blocked(n, nb, a, n);
      if (slot.info != nullptr) slot.info[b] = st;
      if (st != 0) {
        ++failed;
        first = std::min(first, b);
      }
    }
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
    t.end = maybe_split(s, deque, idx, u + 1, t.end);
  }
  finish_units(s, idx, t.size(), failed, first);
}

// ------------------------------------------------ tiled large-N path ----

/// Acquires and initializes the per-request tiled state at claim time:
/// tile-major scratch for every matrix plus the in-degree / fail-min /
/// countdown words. Throws std::bad_alloc on arena exhaustion (the caller
/// aborts the whole request). The plain-store initialization here is
/// published to other workers by the seq_cst deque pushes that seed the
/// PACK range afterwards.
void setup_tiled_request(ServiceShared& s, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  const tiled::DagSpec& spec = *slot.dag;
  const tiled::TileLayout tl(spec.n, spec.nb);
  const std::int64_t batch = slot.layout.batch();
  const std::size_t elem =
      slot.mode == Slot::Mode::kTiledF64 ? sizeof(double) : sizeof(float);
  ArenaLease tiles;
  ArenaLease state;
  try {
    tiles = s.arena.acquire(static_cast<std::size_t>(batch) *
                            static_cast<std::size_t>(tl.size_elems()) * elem);
    state = s.arena.acquire(
        static_cast<std::size_t>(batch) *
        static_cast<std::size_t>(spec.rest_per_matrix + 2) *
        sizeof(std::int32_t));
  } catch (...) {
    state.reset();
    tiles.reset();
    throw;
  }
  std::int32_t* words = state.as<std::int32_t>();
  for (std::int64_t b = 0; b < batch; ++b) {
    std::memcpy(words + b * spec.rest_per_matrix, spec.init_indegree.data(),
                static_cast<std::size_t>(spec.rest_per_matrix) *
                    sizeof(std::int32_t));
  }
  std::int32_t* fail_min = words + batch * spec.rest_per_matrix;
  std::int32_t* mat_remaining = fail_min + batch;
  for (std::int64_t b = 0; b < batch; ++b) {
    fail_min[b] = std::numeric_limits<std::int32_t>::max();
    mat_remaining[b] = static_cast<std::int32_t>(spec.tasks_per_matrix);
  }
  slot.tiled_tiles = std::move(tiles);
  slot.tiled_state = std::move(state);
}

/// Executes one tile task: decode, run the body, record the failing
/// column on a non-positive pivot, decrement successors' in-degrees, and
/// push newly ready tasks (ascending ALAP priority so the owner's LIFO
/// pop takes the most critical first). When the deque rejects a push the
/// task id goes to `overflow` and the caller runs it inline — forward
/// progress never depends on deque capacity. Each task finishes exactly
/// one unit; the matrix's last task writes info[b], and the globally last
/// completes the request (inside finish_units).
template <typename T>
void execute_tiled_task(ServiceShared& s, int wid, std::uint32_t idx,
                        std::int64_t unit,
                        std::vector<std::int64_t>& overflow) {
  Slot& slot = *s.slots[idx];
  const tiled::DagSpec& spec = *slot.dag;
  const BatchLayout& layout = slot.layout;
  const tiled::TileLayout tl(spec.n, spec.nb);
  const std::int64_t batch = layout.batch();
  const std::int64_t nt = spec.nt;
  // Global unit id → (matrix, local task id): the PACK tasks of every
  // matrix occupy [0, batch·nt) so the root range seeds all DAGs at once;
  // the gated remainder lives per matrix above that.
  const std::int64_t pack_units = batch * nt;
  std::int64_t b;
  std::int64_t local;
  if (unit < pack_units) {
    b = unit / nt;
    local = unit % nt;
  } else {
    const std::int64_t r = unit - pack_units;
    b = r / spec.rest_per_matrix;
    local = nt + r % spec.rest_per_matrix;
  }
  auto* data = static_cast<T*>(slot.data);
  T* tiles = slot.tiled_tiles.as<T>() + b * tl.size_elems();
  std::int32_t* words = slot.tiled_state.as<std::int32_t>();
  std::int32_t* indegree = words + b * spec.rest_per_matrix;
  std::int32_t* fail_min = words + batch * spec.rest_per_matrix;
  std::int32_t* mat_remaining = fail_min + batch;

  const tiled::TileTask task = spec.decode(local);
  const int nb = tl.nb();
  std::uint64_t t0 = 0;
  if constexpr (obs::kEnabled) t0 = obs::now_ns();
  switch (task.kind) {
    case tiled::TaskKind::kPack:
      tiled::pack_tile_column(tl, task.k, tiles, [&](int gi, int gj) {
        return data[layout.index(b, gi, gj)];
      });
      break;
    case tiled::TaskKind::kPotrf: {
      const int r = tiled::tile_potrf(
          tl.dim(task.k), tiles + tl.tile_offset(task.k, task.k), nb);
      if (r != 0) {
        // First failing global column per matrix, 1-based: the CAS-min
        // makes the report schedule-independent (matches the sequential
        // reference, which sees the smallest k first).
        const std::int32_t col = task.k * nb + r;
        std::atomic_ref<std::int32_t> fm(fail_min[b]);
        std::int32_t cur = fm.load(std::memory_order_relaxed);
        while (col < cur && !fm.compare_exchange_weak(
                                cur, col, std::memory_order_relaxed)) {
        }
      }
      break;
    }
    case tiled::TaskKind::kTrsm:
      tiled::tile_trsm(tl.dim(task.i), tl.dim(task.k),
                       tiles + tl.tile_offset(task.k, task.k), nb,
                       tiles + tl.tile_offset(task.i, task.k), nb);
      break;
    case tiled::TaskKind::kSyrk:
      tiled::tile_syrk_ln(tl.dim(task.i), tl.dim(task.k),
                          tiles + tl.tile_offset(task.i, task.k), nb,
                          tiles + tl.tile_offset(task.i, task.i), nb);
      break;
    case tiled::TaskKind::kGemm:
      tiled::tile_gemm_nt(tl.dim(task.i), tl.dim(task.j), tl.dim(task.k),
                          tiles + tl.tile_offset(task.i, task.k), nb,
                          tiles + tl.tile_offset(task.j, task.k), nb,
                          tiles + tl.tile_offset(task.i, task.j), nb);
      break;
    case tiled::TaskKind::kUnpack:
      tiled::unpack_tile_column(tl, task.k, tiles,
                                [&](int gi, int gj, T v) {
                                  data[layout.index(b, gi, gj)] = v;
                                });
      break;
  }
  if constexpr (obs::kEnabled) {
    const std::uint64_t dur = obs::now_ns() - t0;
    IBCHOL_HIST("tiled.task_ns", dur);
    switch (task.kind) {
      case tiled::TaskKind::kPack: IBCHOL_HIST("tiled.pack_ns", dur); break;
      case tiled::TaskKind::kPotrf: IBCHOL_HIST("tiled.potrf_ns", dur); break;
      case tiled::TaskKind::kTrsm: IBCHOL_HIST("tiled.trsm_ns", dur); break;
      case tiled::TaskKind::kSyrk: IBCHOL_HIST("tiled.syrk_ns", dur); break;
      case tiled::TaskKind::kGemm: IBCHOL_HIST("tiled.gemm_ns", dur); break;
      case tiled::TaskKind::kUnpack:
        IBCHOL_HIST("tiled.unpack_ns", dur);
        break;
    }
  }
  IBCHOL_COUNT("tiled.tasks", 1);

  // Release successors. The acq_rel decrement forms a release sequence on
  // each counter: the worker that takes it to zero has acquired every
  // predecessor's tile writes, and the seq_cst deque push/steal carries
  // them onward to whoever executes the task. At most one task per target
  // tile can become ready here (chains serialize per-tile updates), so
  // the burst is bounded by ~2·nt regardless of throttle fan-out.
  std::array<std::int64_t, 2 * tiled::kMaxNt + 8> ready;
  int nready = 0;
  spec.for_each_successor(local, /*include_throttle=*/true,
                          [&](std::int64_t succ) {
    std::atomic_ref<std::int32_t> deg(
        indegree[succ - nt]);
    if (deg.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ready[static_cast<std::size_t>(nready++)] = succ;
    }
  });
  if (nready > 0) {
    std::sort(ready.begin(), ready.begin() + nready,
              [&](std::int64_t x, std::int64_t y) {
                return spec.priority[static_cast<std::size_t>(x)] <
                       spec.priority[static_cast<std::size_t>(y)];
              });
    WorkDeque& deque = *s.deques[wid];
    const std::int64_t rest_base = pack_units + b * spec.rest_per_matrix - nt;
    bool pushed = false;
    for (int r = 0; r < nready; ++r) {
      const std::int64_t g = rest_base + ready[static_cast<std::size_t>(r)];
      if (deque.push({idx, g, g + 1})) {
        pushed = true;
      } else {
        overflow.push_back(g);
      }
    }
    if (pushed) notify_work(s);
  }

  // Per-matrix completion: the last task of matrix b publishes its info
  // entry (0 or the recorded failing column) and charges the failure to
  // the request-level counters through finish_units.
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  std::atomic_ref<std::int32_t> rem(mat_remaining[b]);
  if (rem.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::atomic_ref<std::int32_t> fm(fail_min[b]);
    const std::int32_t raw = fm.load(std::memory_order_acquire);
    const std::int32_t st =
        raw == std::numeric_limits<std::int32_t>::max() ? 0 : raw;
    if (slot.info != nullptr) slot.info[b] = st;
    if (st != 0) {
      failed = 1;
      first = b;
    }
  }
  finish_units(s, idx, 1, failed, first);
}

/// Executes a range of tiled units, draining any deque-overflow tasks
/// inline (LIFO, so the drain follows the same critical-first order the
/// deque would have). The overflow vector allocates only on the overflow
/// path — the steady state is allocation-free.
template <typename T>
void run_tiled_range(ServiceShared& s, int wid, std::uint32_t idx,
                     UnitTask t) {
  WorkDeque& deque = *s.deques[wid];
  WorkerState& me = *s.wstates[wid];
  std::vector<std::int64_t> overflow;
  for (std::int64_t u = t.begin; u < t.end; ++u) {
    chaos::chaos_stall_unit();
    execute_tiled_task<T>(s, wid, idx, u, overflow);
    while (!overflow.empty()) {
      const std::int64_t g = overflow.back();
      overflow.pop_back();
      execute_tiled_task<T>(s, wid, idx, g, overflow);
    }
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
    t.end = maybe_split(s, deque, idx, u + 1, t.end);
  }
}

void run_range(ServiceShared& s, int wid, UnitTask t) {
  Slot& slot = *s.slots[t.slot];
  switch (slot.mode) {
    case Slot::Mode::kChunkF32:
      run_chunk_range<float>(s, wid, t.slot, slot.plan_f, t);
      break;
    case Slot::Mode::kChunkF64:
      run_chunk_range<double>(s, wid, t.slot, slot.plan_d, t);
      break;
    case Slot::Mode::kCanonF32:
      run_canonical_range<float>(s, wid, t.slot, t);
      break;
    case Slot::Mode::kCanonF64:
      run_canonical_range<double>(s, wid, t.slot, t);
      break;
    case Slot::Mode::kChunkMixed:
      run_chunk_range_mixed(s, wid, t.slot, slot.plan_f, t);
      break;
    case Slot::Mode::kTiledF32:
      run_tiled_range<float>(s, wid, t.slot, t);
      break;
    case Slot::Mode::kTiledF64:
      run_tiled_range<double>(s, wid, t.slot, t);
      break;
  }
}

// ------------------------------------------------ poison quarantine ----

/// Sequential single-buffer execution of a whole quarantined chunk-mode
/// request: no double buffering (one pack buffer, not two) and no splits
/// (the range is never offered to thieves), so a poisoned batch occupies
/// one worker and one scratch buffer, nothing more. Failure counts are
/// recomputed from the info array afterwards, so the locals here are
/// scratch.
template <typename T>
void quarantine_chunk(ServiceShared& s, int wid, Slot& slot,
                      const ChunkExecPlan<T>& plan,
                      std::span<std::int32_t> eff_info) {
  WorkerState& me = *s.wstates[wid];
  auto* data = static_cast<T*>(slot.data);
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  ChunkUnitCounters counters;
  ArenaLease wm_lease;
  T* wm = nullptr;
  if (plan.wm_scratch_elems > 0) {
    wm_lease = s.arena.acquire(plan.wm_scratch_elems * sizeof(T));
    wm = wm_lease.as<T>();
  }
  ArenaLease pack_lease;
  T* buf = nullptr;
  if (plan.pack_lanes > 0) {
    pack_lease = s.arena.acquire(plan.pack_scratch_elems * sizeof(T));
    buf = pack_lease.as<T>();
  }
  for (std::int64_t u = 0; u < plan.num_units; ++u) {
    chaos::chaos_stall_unit();
    if (buf != nullptr) {
      pack_unit(plan, data, u, buf);
      factor_unit(plan, data, u, buf, wm, eff_info, failed, first, counters);
      chaos::chaos_delay_writeback();
      writeback_unit(plan, buf, data, u, counters);
    } else {
      factor_unit(plan, data, u, static_cast<T*>(nullptr), wm, eff_info,
                  failed, first, counters);
    }
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }
  fold_unit_counters(counters);
}

/// Reduced-precision counterpart of quarantine_chunk: single fp32 pack
/// buffer, no splits, widen/factor/narrow per unit.
void quarantine_chunk_mixed(ServiceShared& s, int wid, Slot& slot,
                            const ChunkExecPlan<float>& plan,
                            std::span<std::int32_t> eff_info) {
  WorkerState& me = *s.wstates[wid];
  auto* data = static_cast<std::uint16_t*>(slot.data);
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  ChunkUnitCounters counters;
  ArenaLease wm_lease;
  float* wm = nullptr;
  if (plan.wm_scratch_elems > 0) {
    wm_lease = s.arena.acquire(plan.wm_scratch_elems * sizeof(float));
    wm = wm_lease.as<float>();
  }
  ArenaLease pack_lease =
      s.arena.acquire(plan.pack_scratch_elems * sizeof(float));
  float* buf = pack_lease.as<float>();
  for (std::int64_t u = 0; u < plan.num_units; ++u) {
    chaos::chaos_stall_unit();
    pack_unit_mixed(plan, data, u, buf);
    factor_unit(plan, static_cast<float*>(nullptr), u, buf, wm, eff_info,
                failed, first, counters);
    chaos::chaos_delay_writeback();
    writeback_unit_mixed(plan, buf, data, u, counters);
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }
  fold_unit_counters(counters);
}

/// Canonical-mode counterpart of quarantine_chunk.
template <typename T>
void quarantine_canonical(ServiceShared& s, int wid, Slot& slot,
                          std::span<std::int32_t> eff_info) {
  WorkerState& me = *s.wstates[wid];
  auto* data = static_cast<T*>(slot.data);
  const BatchLayout& layout = slot.layout;
  const int n = layout.n();
  const int nb = std::min(slot.nb, n);
  for (std::int64_t b = 0; b < layout.batch(); ++b) {
    if (b % kCanonicalUnit == 0) {
      chaos::chaos_stall_unit();
      me.heartbeat.fetch_add(1, std::memory_order_relaxed);
    }
    T* a = data + layout.index(b, 0, 0);
    eff_info[static_cast<std::size_t>(b)] =
        slot.triangle == Triangle::kUpper ? potrf_unblocked_upper(n, a, n)
                                          : potrf_blocked(n, nb, a, n);
  }
}

/// Runs the NaN/Inf screen on a claimed request. Clean batch: returns
/// false and the caller proceeds on the normal parallel path (results
/// stay bit-identical to an unscreened submit). Poisoned batch: runs the
/// whole request on this worker's quarantine path, completes it
/// (kPoisoned) with a RecoveryReport, and returns true. May throw
/// std::bad_alloc (scratch for the screen); the caller aborts the request.
template <typename ScreenFn, typename QuarantineFn>
bool screen_quarantine_generic(ServiceShared& s, std::uint32_t idx,
                               ScreenFn&& screen_fn,
                               QuarantineFn&& quarantine_fn) {
  Slot& slot = *s.slots[idx];
  const BatchLayout& layout = slot.layout;
  const std::int64_t batch = layout.batch();

  // The screen writes into scratch, never the caller's info: screened
  // indices must be recoverable without trusting whatever the caller's
  // (possibly uninitialized) span held.
  ArenaLease sinfo_lease =
      s.arena.acquire(static_cast<std::size_t>(batch) * sizeof(std::int32_t));
  const std::span<std::int32_t> sinfo(sinfo_lease.as<std::int32_t>(),
                                      static_cast<std::size_t>(batch));
  std::memset(sinfo.data(), 0, sinfo.size_bytes());
  const std::int64_t nonfinite = screen_fn(sinfo);
  if (nonfinite == 0) return false;

  const std::uint64_t q_start = obs::now_ns();
  slot.quarantined.store(true, std::memory_order_relaxed);
  IBCHOL_COUNT("svc.quarantined", 1);

  std::vector<std::int64_t> screened;  // off the steady-state path
  screened.reserve(static_cast<std::size_t>(nonfinite));
  for (std::int64_t b = 0; b < batch; ++b) {
    if (sinfo[static_cast<std::size_t>(b)] == kInfoNonFinite) {
      screened.push_back(b);
    }
  }

  // The factorization writes every non-padding matrix's status, so the
  // screen scratch can double as the kernel target when the caller gave
  // no info span.
  std::span<std::int32_t> eff_info =
      slot.info != nullptr ? std::span<std::int32_t>(slot.info, slot.info_size)
                           : sinfo;
  if (slot.info == nullptr) {
    std::memset(sinfo.data(), 0, sinfo.size_bytes());
  }
  quarantine_fn(eff_info);

  // Poisoned matrices report kInfoNonFinite regardless of what the
  // factorization made of their garbage (recover.cpp's convention), and
  // the failure counts come from the final info state — deterministic
  // under any kernel behavior on NaN/Inf inputs.
  for (const std::int64_t b : screened) {
    eff_info[static_cast<std::size_t>(b)] = kInfoNonFinite;
  }
  std::int64_t failed = 0;
  std::int64_t first = kNotSeen;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (eff_info[static_cast<std::size_t>(b)] != 0) {
      ++failed;
      first = std::min(first, b);
    }
  }

  RecoveryReport report;
  report.nonfinite = nonfinite;
  report.unrecoverable = nonfinite;
  report.failed = failed - nonfinite;
  report.matrices.reserve(screened.size());
  for (const std::int64_t b : screened) {
    MatrixRecovery m;
    m.index = b;
    m.first_info = kInfoNonFinite;
    report.matrices.push_back(m);
  }
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.recovery = std::move(report);
  }
  if constexpr (obs::kEnabled) {
    if (obs::tracing_active()) {
      obs::record_span("quarantine", "svc", slot.seq, q_start,
                       obs::now_ns() - q_start);
    }
  }
  sinfo_lease.reset();  // before completion, as in run_chunk_range
  finish_units(s, idx, slot.num_units, failed, first);
  return true;
}

template <typename T>
bool screen_quarantine_impl(ServiceShared& s, int wid, std::uint32_t idx,
                            const ChunkExecPlan<T>* plan) {
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<T*>(slot.data);
  return screen_quarantine_generic(
      s, idx,
      [&](std::span<std::int32_t> sinfo) {
        return screen_nonfinite<T>(
            slot.layout,
            std::span<const T>(data, slot.layout.size_elems()),
            slot.triangle, sinfo);
      },
      [&](std::span<std::int32_t> eff_info) {
        if (plan != nullptr) {
          quarantine_chunk<T>(s, wid, slot, *plan, eff_info);
        } else {
          quarantine_canonical<T>(s, wid, slot, eff_info);
        }
      });
}

/// screen_quarantine_impl for reduced-precision requests: the screen is a
/// bit-level test on the 16-bit words (no widening pass), the quarantine
/// run is the mixed single-buffer path.
bool screen_quarantine_mixed(ServiceShared& s, int wid, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  auto* data = static_cast<const std::uint16_t*>(slot.data);
  return screen_quarantine_generic(
      s, idx,
      [&](std::span<std::int32_t> sinfo) {
        return screen_nonfinite_mixed(
            slot.layout,
            std::span<const std::uint16_t>(data, slot.layout.size_elems()),
            slot.plan_f.storage, slot.triangle, sinfo);
      },
      [&](std::span<std::int32_t> eff_info) {
        quarantine_chunk_mixed(s, wid, slot, slot.plan_f, eff_info);
      });
}

bool screen_and_quarantine(ServiceShared& s, int wid, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  switch (slot.mode) {
    case Slot::Mode::kChunkF32:
      return screen_quarantine_impl<float>(s, wid, idx, &slot.plan_f);
    case Slot::Mode::kChunkF64:
      return screen_quarantine_impl<double>(s, wid, idx, &slot.plan_d);
    case Slot::Mode::kCanonF32:
      return screen_quarantine_impl<float>(s, wid, idx, nullptr);
    case Slot::Mode::kCanonF64:
      return screen_quarantine_impl<double>(s, wid, idx, nullptr);
    case Slot::Mode::kChunkMixed:
      return screen_quarantine_mixed(s, wid, idx);
    case Slot::Mode::kTiledF32:
    case Slot::Mode::kTiledF64:
      return false;  // submit_tiled rejects screen; unreachable
  }
  return false;
}

// ------------------------------------------------------ claim & loop ----

void claim_request(ServiceShared& s, int wid, std::uint32_t idx) {
  Slot& slot = *s.slots[idx];
  if (slot.deadline_ns != 0 && obs::now_ns() >= slot.deadline_ns) {
    // Expired while queued: complete without touching the batch. The CAS
    // races cancellation; whoever wins completes the future.
    int expected = static_cast<int>(RequestStatus::kQueued);
    if (slot.status.compare_exchange_strong(
            expected, static_cast<int>(RequestStatus::kDeadlineExceeded),
            std::memory_order_acq_rel)) {
      IBCHOL_COUNT("svc.deadline_miss", 1);
      complete_unrun(s, idx, "expired");
    } else {
      release_slot(s, idx);
    }
    return;
  }
  int expected = static_cast<int>(RequestStatus::kQueued);
  if (!slot.status.compare_exchange_strong(
          expected, static_cast<int>(RequestStatus::kRunning),
          std::memory_order_acq_rel)) {
    // Cancelled while queued; the canceller already completed the future
    // and dropped it from the inflight count — just drop the exec ref.
    release_slot(s, idx);
    return;
  }
  const std::uint64_t now = obs::now_ns();
  IBCHOL_HIST("svc.queue_ns", now - slot.submit_ns);
  if (slot.deadline_ns != 0) {
    IBCHOL_HIST("svc.slack_ns", slot.deadline_ns - now);
  }
  if constexpr (obs::kEnabled) {
    if (obs::tracing_active()) {
      obs::record_span("queue_wait", "svc", slot.seq, slot.submit_ns,
                       now - slot.submit_ns);
    }
  }
  if (slot.screen) {
    bool handled = false;
    try {
      handled = screen_and_quarantine(s, wid, idx);
    } catch (const std::bad_alloc&) {
      abort_whole(s, idx);
      return;
    }
    if (handled) return;
  }
  if (slot.mode == Slot::Mode::kTiledF32 ||
      slot.mode == Slot::Mode::kTiledF64) {
    // Acquire the request's tile scratch and DAG counters, then seed only
    // the PACK region — everything else is gated by in-degrees and enters
    // the deques as tasks become ready.
    try {
      setup_tiled_request(s, idx);
    } catch (const std::bad_alloc&) {
      abort_whole(s, idx);
      return;
    }
    run_range(s, wid, {idx, 0, slot.layout.batch() * slot.dag->nt});
    return;
  }
  run_range(s, wid, {idx, 0, slot.num_units});
}

bool find_and_run(ServiceShared& s, int wid) {
  UnitTask t;
  if (s.deques[wid]->pop(t)) {
    run_range(s, wid, t);
    return true;
  }
  std::uint32_t idx;
  if (s.submissions_hi->try_pop(idx)) {
    claim_request(s, wid, idx);
    return true;
  }
  if (s.submissions->try_pop(idx)) {
    claim_request(s, wid, idx);
    return true;
  }
  // Steal from every worker slot ever started — including suspect and
  // retired workers, whose deques may still hold live ranges.
  const int nw = s.num_workers.load(std::memory_order_acquire);
  for (int i = 1; i < nw; ++i) {
    const int victim = (wid + i) % nw;
    if (s.deques[victim]->steal(t)) {
      IBCHOL_COUNT("svc.steals", 1);
      run_range(s, wid, t);
      return true;
    }
  }
  return false;
}

bool drained(ServiceShared& s) {
  return s.stop.load(std::memory_order_acquire) &&
         s.inflight.load(std::memory_order_acquire) == 0;
}

void worker_loop(ServiceShared& s, int wid) {
  WorkerState& me = *s.wstates[wid];
  int idle_spins = 0;
  for (;;) {
    me.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (me.phase.load(std::memory_order_acquire) == kSuspect) {
      // The watchdog already runs a replacement; retire so the pool's
      // worker count stays constant. Our deque drains via thieves.
      me.busy.store(false, std::memory_order_relaxed);
      me.phase.store(kRetired, std::memory_order_release);
      return;
    }
    me.busy.store(true, std::memory_order_relaxed);
    const bool ran = find_and_run(s, wid);
    me.busy.store(false, std::memory_order_relaxed);
    if (ran) {
      idle_spins = 0;
      continue;
    }
    if (drained(s)) return;
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t epoch =
        s.work_epoch.load(std::memory_order_acquire);
    // One more look after snapshotting the epoch, so work published just
    // before the snapshot cannot be slept through.
    me.busy.store(true, std::memory_order_relaxed);
    const bool ran2 = find_and_run(s, wid);
    me.busy.store(false, std::memory_order_relaxed);
    if (ran2) {
      idle_spins = 0;
      continue;
    }
    if (drained(s)) return;
    {
      std::unique_lock<std::mutex> lock(s.idle_mu);
      if (s.work_epoch.load(std::memory_order_relaxed) == epoch) {
        s.sleepers.fetch_add(1, std::memory_order_release);
        s.idle_cv.wait_for(lock, std::chrono::milliseconds(1));
        s.sleepers.fetch_sub(1, std::memory_order_release);
      }
    }
    idle_spins = 0;
  }
}

// ----------------------------------------------------------- watchdog ----

void watchdog_loop(const std::shared_ptr<ServiceShared>& sp) {
  ServiceShared& s = *sp;
  const WatchdogOptions& wd = s.opts.watchdog;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(s.wd_mu);
      s.wd_cv.wait_for(
          lock, std::chrono::nanoseconds(wd.check_interval_ns),
          [&] { return s.stop.load(std::memory_order_acquire); });
    }
    if (s.stop.load(std::memory_order_acquire)) return;
    IBCHOL_COUNT("svc.watchdog.checks", 1);
    const std::uint64_t now = obs::now_ns();
    const int nw = s.num_workers.load(std::memory_order_acquire);
    for (int wid = 0; wid < nw; ++wid) {
      WorkerState& w = *s.wstates[wid];
      if (w.phase.load(std::memory_order_acquire) != kActive) continue;
      const std::uint64_t hb = w.heartbeat.load(std::memory_order_relaxed);
      if (!w.busy.load(std::memory_order_relaxed) || hb != w.last_beat) {
        w.last_beat = hb;
        w.last_change_ns = now;
        continue;
      }
      if (now - w.last_change_ns <
          static_cast<std::uint64_t>(wd.stall_threshold_ns)) {
        continue;
      }
      // Stalled: busy, heartbeat flat past the threshold. Respawn only
      // while a preallocated worker slot remains — marking a worker
      // suspect retires it, and retiring without a replacement could
      // empty the pool.
      const int next = s.num_workers.load(std::memory_order_relaxed);
      if (next >= s.max_workers) continue;
      w.phase.store(kSuspect, std::memory_order_release);
      IBCHOL_COUNT("svc.watchdog.suspects", 1);
      WorkerState& fresh = *s.wstates[next];
      fresh.last_beat = 0;
      fresh.last_change_ns = now;
      fresh.phase.store(kActive, std::memory_order_release);
      // Publish the new worker count before its thread exists: thieves
      // iterate [0, num_workers) and must see the deque as scannable no
      // later than the worker that owns it.
      s.num_workers.store(next + 1, std::memory_order_release);
      s.workers.emplace_back([sp, next] { worker_loop(*sp, next); });
      IBCHOL_COUNT("svc.watchdog.respawns", 1);
      if constexpr (obs::kEnabled) {
        if (obs::tracing_active()) {
          obs::record_span("watchdog_respawn", "svc", wid, now,
                           obs::now_ns() - now);
        }
      }
      notify_work(s);
    }
  }
}

// ----------------------------------------------------------- admission ----

/// One shed-oldest pass: rotates through the currently-queued
/// normal-priority requests, completing those past their deadline with
/// kDeadlineExceeded. Returns how many were shed. Unexpired requests go
/// back to the tail (documented reordering); cancelled stragglers get
/// their exec ref dropped, exactly as a claiming worker would.
std::int64_t shed_expired_queued(ServiceShared& s) {
  std::int64_t sheds = 0;
  const std::size_t scan = s.submissions->size_approx();
  const std::uint64_t now = obs::now_ns();
  for (std::size_t i = 0; i < scan; ++i) {
    std::uint32_t idx;
    if (!s.submissions->try_pop(idx)) break;
    Slot& slot = *s.slots[idx];
    if (slot.deadline_ns != 0 && now >= slot.deadline_ns) {
      int expected = static_cast<int>(RequestStatus::kQueued);
      if (slot.status.compare_exchange_strong(
              expected, static_cast<int>(RequestStatus::kDeadlineExceeded),
              std::memory_order_acq_rel)) {
        IBCHOL_COUNT("svc.deadline_miss", 1);
        IBCHOL_COUNT("svc.shed", 1);
        complete_unrun(s, idx, "expired");
        ++sheds;
        continue;
      }
    }
    if (slot.status.load(std::memory_order_acquire) ==
        static_cast<int>(RequestStatus::kQueued)) {
      while (!s.submissions->try_push(idx)) {
        std::this_thread::yield();
      }
    } else {
      // Cancelled between pop and here: drop the exec ref.
      release_slot(s, idx);
    }
  }
  return sheds;
}

/// Pops a free request slot per the service's admission policy. Returns
/// false when the request should be shed (kOverloaded).
bool admit_slot(ServiceShared& s, std::uint32_t& idx) {
  if (s.free_slots->try_pop(idx)) return true;
  const AdmitPolicy policy = s.opts.policy.admit;
  const std::uint64_t start =
      policy == AdmitPolicy::kBoundedWait ? obs::now_ns() : 0;
  for (;;) {
    if (s.free_slots->try_pop(idx)) return true;
    switch (policy) {
      case AdmitPolicy::kBlock:
        std::this_thread::yield();
        break;
      case AdmitPolicy::kReject:
        return false;
      case AdmitPolicy::kShedOldest:
        // Shedding frees exec refs; a slot recycles only if its future
        // was also released, so retry the pop and reject when a pass
        // reclaims nothing.
        if (shed_expired_queued(s) == 0) return false;
        break;
      case AdmitPolicy::kBoundedWait:
        if (obs::now_ns() - start >=
            static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, s.opts.policy.max_wait_ns))) {
          return false;
        }
        std::this_thread::yield();
        break;
    }
  }
}

}  // namespace

}  // namespace detail

using detail::ServiceShared;
using detail::Slot;

// ------------------------------------------------------- FactorFuture ----

FactorResult FactorFuture::wait() {
  IBCHOL_CHECK(valid(), "wait() on an empty future");
  if (overloaded_) return FactorResult{};
  Slot& slot = *shared_->slots[slot_];
  std::unique_lock<std::mutex> lock(slot.mu);
  slot.cv.wait(lock, [&] { return slot.completed; });
  return slot.result;
}

bool FactorFuture::try_cancel() {
  IBCHOL_CHECK(valid(), "try_cancel() on an empty future");
  if (overloaded_) return false;
  Slot& slot = *shared_->slots[slot_];
  int expected = static_cast<int>(RequestStatus::kQueued);
  if (!slot.status.compare_exchange_strong(
          expected, static_cast<int>(RequestStatus::kCancelled),
          std::memory_order_acq_rel)) {
    return false;
  }
  IBCHOL_COUNT("svc.cancelled", 1);
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.result = FactorResult{};
    slot.completed = true;
  }
  slot.cv.notify_all();
  shared_->inflight.fetch_sub(1, std::memory_order_acq_rel);
  detail::notify_work(*shared_);  // a drain-waiter may be parked
  return true;
}

RequestStatus FactorFuture::status() const {
  IBCHOL_CHECK(valid(), "status() on an empty future");
  if (overloaded_) return RequestStatus::kOverloaded;
  return static_cast<RequestStatus>(
      shared_->slots[slot_]->status.load(std::memory_order_acquire));
}

RecoveryReport FactorFuture::recovery_report() {
  IBCHOL_CHECK(valid(), "recovery_report() on an empty future");
  if (overloaded_) return RecoveryReport{};
  Slot& slot = *shared_->slots[slot_];
  std::unique_lock<std::mutex> lock(slot.mu);
  slot.cv.wait(lock, [&] { return slot.completed; });
  return slot.recovery;
}

void FactorFuture::release() noexcept {
  if (shared_ != nullptr) {
    detail::release_slot(*shared_, slot_);
    shared_.reset();
  }
  overloaded_ = false;
}

// -------------------------------------------------------- BatchService ----

BatchService::BatchService(const ServiceOptions& options)
    : shared_(std::make_shared<ServiceShared>()) {
  ServiceShared& s = *shared_;
  s.opts = options;
  // Thread count is resolved once here and frozen for the service
  // lifetime — no per-call libgomp queries, no per-call team spawn.
  s.threads = options.num_threads > 0 ? options.num_threads
                                      : cached_default_threads();
  IBCHOL_CHECK(s.threads >= 1, "service needs at least one worker");
  s.grain = std::max(1, options.steal_grain);
  const WatchdogOptions& wd = options.watchdog;
  if (wd.enabled) {
    IBCHOL_CHECK(wd.check_interval_ns > 0 && wd.stall_threshold_ns > 0,
                 "watchdog intervals must be positive");
  }
  s.max_workers =
      s.threads + (wd.enabled ? std::max(0, wd.max_respawns) : 0);
  const std::size_t nslots = std::min<std::size_t>(
      std::max<std::size_t>(1, options.max_inflight), kMaxSlots);
  s.slots.reserve(nslots);
  for (std::size_t i = 0; i < nslots; ++i) {
    s.slots.push_back(std::make_unique<Slot>());
  }
  s.free_slots = std::make_unique<MpmcQueue<std::uint32_t>>(nslots);
  s.submissions = std::make_unique<MpmcQueue<std::uint32_t>>(nslots);
  s.submissions_hi = std::make_unique<MpmcQueue<std::uint32_t>>(nslots);
  for (std::uint32_t i = 0; i < nslots; ++i) {
    (void)s.free_slots->try_push(i);
  }
  // Deques and worker states for every slot the watchdog may ever fill
  // are preallocated so respawns never resize a vector thieves iterate.
  const auto max_workers = static_cast<std::size_t>(s.max_workers);
  s.deques.reserve(max_workers);
  s.wstates.reserve(max_workers);
  for (std::size_t i = 0; i < max_workers; ++i) {
    // Sized for the tiled path's ready-task bursts (up to ~2·kMaxNt single
    // tasks per completed POTRF) on top of ordinary range splits; overflow
    // is still handled (inline execution), this just keeps it off the
    // steady-state path.
    s.deques.push_back(std::make_unique<WorkDeque>(4096));
    s.wstates.push_back(std::make_unique<detail::WorkerState>());
  }
  const std::uint64_t now = obs::now_ns();
  for (int i = 0; i < s.threads; ++i) {
    s.wstates[static_cast<std::size_t>(i)]->last_change_ns = now;
    s.wstates[static_cast<std::size_t>(i)]->phase.store(
        detail::kActive, std::memory_order_relaxed);
  }
  s.num_workers.store(s.threads, std::memory_order_release);
  s.workers.reserve(max_workers);
  for (int i = 0; i < s.threads; ++i) {
    s.workers.emplace_back([shared = shared_, i] {
      detail::worker_loop(*shared, i);
    });
  }
  if (wd.enabled) {
    s.watchdog = std::thread([shared = shared_] {
      detail::watchdog_loop(shared);
    });
  }
}

BatchService::~BatchService() {
  ServiceShared& s = *shared_;
  s.stop.store(true, std::memory_order_release);
  // Watchdog first: after it joins, the workers vector is frozen and no
  // new worker can appear mid-teardown.
  if (s.watchdog.joinable()) {
    { std::lock_guard<std::mutex> lock(s.wd_mu); }
    s.wd_cv.notify_all();
    s.watchdog.join();
  }
  detail::notify_work(s);
  for (std::thread& t : s.workers) t.join();
  // Slots of requests cancelled at the shutdown edge may still sit in the
  // submission queues holding their execution-side reference.
  std::uint32_t idx;
  while (s.submissions_hi->try_pop(idx)) detail::release_slot(s, idx);
  while (s.submissions->try_pop(idx)) detail::release_slot(s, idx);
}

int BatchService::threads() const noexcept { return shared_->threads; }

int BatchService::workers_started() const noexcept {
  return shared_->num_workers.load(std::memory_order_acquire);
}

ArenaStats BatchService::arena_stats() const {
  return shared_->arena.stats();
}

BatchService& BatchService::global() {
  // Leaked: the global service must outlive every static-destruction-time
  // caller, like the obs registries.
  static BatchService* service = new BatchService;
  return *service;
}

namespace {

const TileProgram* cached_program(ServiceShared& s, int n, int nb,
                                  Looking looking) {
  const std::tuple<int, int, int> key{n, nb, static_cast<int>(looking)};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.programs.find(key);
  if (it == s.programs.end()) {
    it = s.programs
             .emplace(key, std::make_unique<TileProgram>(
                               build_tile_program(n, nb, looking)))
             .first;
  }
  return it->second.get();
}

template <typename T>
const SpecializedProgram<T>* cached_spec(ServiceShared& s,
                                         const TileProgram* program,
                                         MathMode math);

template <>
const SpecializedProgram<float>* cached_spec<float>(ServiceShared& s,
                                                    const TileProgram* program,
                                                    MathMode math) {
  const std::tuple<const TileProgram*, int> key{program,
                                                static_cast<int>(math)};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.specs_f.find(key);
  if (it == s.specs_f.end()) {
    it = s.specs_f
             .emplace(key, std::make_unique<SpecializedProgram<float>>(
                               *program, math))
             .first;
  }
  return it->second.get();
}

template <>
const SpecializedProgram<double>* cached_spec<double>(
    ServiceShared& s, const TileProgram* program, MathMode math) {
  const std::tuple<const TileProgram*, int> key{program,
                                                static_cast<int>(math)};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.specs_d.find(key);
  if (it == s.specs_d.end()) {
    it = s.specs_d
             .emplace(key, std::make_unique<SpecializedProgram<double>>(
                               *program, math))
             .first;
  }
  return it->second.get();
}

template <typename T>
void bind_plan(Slot& slot, const ChunkExecPlan<T>& plan);

template <>
void bind_plan<float>(Slot& slot, const ChunkExecPlan<float>& plan) {
  slot.mode = Slot::Mode::kChunkF32;
  slot.plan_f = plan;
}

template <>
void bind_plan<double>(Slot& slot, const ChunkExecPlan<double>& plan) {
  slot.mode = Slot::Mode::kChunkF64;
  slot.plan_d = plan;
}

}  // namespace

template <typename T>
FactorFuture BatchService::submit(const BatchLayout& layout,
                                  std::span<T> data,
                                  const CpuFactorOptions& options,
                                  std::span<std::int32_t> info,
                                  const TileProgram* program,
                                  const SubmitOptions& sopts) {
  ServiceShared& s = *shared_;
  IBCHOL_CHECK(!s.stop.load(std::memory_order_acquire),
               "submit() on a service being destroyed");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  IBCHOL_CHECK(sopts.timeout_ns >= 0, "negative submit timeout");
  IBCHOL_CHECK(sopts.storage == StoragePrec::kFp32,
               "reduced-precision batches go through submit_mixed");

  // Resolve the full execution plan before touching the pool, so every
  // precondition failure surfaces here, on the submitting thread.
  ChunkExecPlan<T> plan;
  std::int64_t num_units;
  const bool canonical = layout.kind() == LayoutKind::kCanonical;
  if (canonical) {
    num_units = (layout.batch() + detail::kCanonicalUnit - 1) /
                detail::kCanonicalUnit;
    IBCHOL_COUNT("cpu.exec.canonical", 1);
  } else {
    const TileProgram* prog = program;
    if (prog == nullptr && options.unroll == Unroll::kPartial) {
      prog = cached_program(s, layout.n(),
                            std::min(options.nb, layout.n()),
                            options.looking);
    }
    plan = plan_chunk_exec<T>(layout, data.data(), prog, options);
    if (plan.needs_spec_program()) {
      plan.spec = cached_spec<T>(s, prog, options.math);
    }
    note_exec_dispatch(plan.exec);
    num_units = plan.num_units;
  }
  IBCHOL_CHECK(num_units < kMaxUnits,
               "batch too large for one request; split it");

  // Admission: a full pool means the caller is ahead of the pool, and
  // the policy decides between backpressure and load shedding.
  std::uint32_t idx;
  if (!detail::admit_slot(s, idx)) {
    IBCHOL_COUNT("svc.shed", 1);
    if (!info.empty()) {
      std::fill_n(info.data(),
                  std::min<std::size_t>(
                      info.size(),
                      static_cast<std::size_t>(layout.batch())),
                  kInfoNotExecuted);
    }
    return FactorFuture::overloaded();
  }
  Slot& slot = *s.slots[idx];
  if (canonical) {
    slot.mode = std::is_same_v<T, float> ? Slot::Mode::kCanonF32
                                         : Slot::Mode::kCanonF64;
  } else {
    bind_plan<T>(slot, plan);
  }
  slot.layout = layout;
  slot.nb = options.nb;
  slot.triangle = options.triangle;
  slot.data = data.data();
  slot.info = info.empty() ? nullptr : info.data();
  slot.info_size = info.empty() ? 0 : info.size();
  slot.num_units = num_units;
  slot.submit_ns = obs::now_ns();
  slot.deadline_ns =
      sopts.timeout_ns > 0
          ? slot.submit_ns + static_cast<std::uint64_t>(sopts.timeout_ns)
          : 0;
  slot.screen = sopts.screen;
  slot.seq = s.seq.fetch_add(1, std::memory_order_relaxed);
  slot.status.store(static_cast<int>(RequestStatus::kQueued),
                    std::memory_order_relaxed);
  slot.remaining.store(num_units, std::memory_order_relaxed);
  slot.failed.store(0, std::memory_order_relaxed);
  slot.first_failed.store(detail::kNotSeen, std::memory_order_relaxed);
  slot.aborted.store(false, std::memory_order_relaxed);
  slot.quarantined.store(false, std::memory_order_relaxed);
  slot.refs.store(2, std::memory_order_relaxed);  // exec side + future
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.completed = false;
    slot.recovery = RecoveryReport{};
  }

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  IBCHOL_COUNT("svc.submitted", 1);
  auto& queue = sopts.priority > 0 ? *s.submissions_hi : *s.submissions;
  while (!queue.try_push(idx)) {
    std::this_thread::yield();  // capacity == slots: effectively immediate
  }
  detail::notify_work(s);
  return FactorFuture(shared_, idx);
}

template <typename T>
FactorResult BatchService::factor(const BatchLayout& layout,
                                  std::span<T> data,
                                  const CpuFactorOptions& options,
                                  std::span<std::int32_t> info,
                                  const TileProgram* program) {
  return submit<T>(layout, data, options, info, program).wait();
}

namespace {

template <typename T>
FactorResult service_factor_thunk(void* ctx, const BatchLayout& layout,
                                  std::span<T> data,
                                  const CpuFactorOptions& options,
                                  const TileProgram* program,
                                  std::span<std::int32_t> info) {
  auto* service = static_cast<BatchService*>(ctx);
  const TileProgram* prog =
      (program != nullptr && layout.kind() != LayoutKind::kCanonical &&
       options.unroll == Unroll::kPartial)
          ? program
          : nullptr;
  return service->factor<T>(layout, data, options, info, prog);
}

}  // namespace

template <typename T>
RecoveryReport BatchService::recover(const BatchLayout& layout,
                                     std::span<T> data,
                                     const CpuFactorOptions& options,
                                     const RecoveryOptions& recovery,
                                     std::span<std::int32_t> info,
                                     const TileProgram* program) {
  return factor_batch_recover_via<T>(&service_factor_thunk<T>, this, layout,
                                     data, options, recovery, info, program);
}

namespace {

/// Looks up (building on miss) the shared DAG spec for (n, nb, lookahead).
/// The lookahead is clamped before keying so equivalent requests share one
/// spec. Throws ibchol::Error on nt > kMaxNt — on the submitting thread.
const tiled::DagSpec* cached_dag(ServiceShared& s, int n, int nb,
                                 int lookahead) {
  const int nt = (n + nb - 1) / nb;
  const int la = std::clamp(lookahead, 1, nt);
  const std::tuple<int, int, int> key{n, nb, la};
  std::lock_guard<std::mutex> lock(s.cache_mu);
  auto it = s.dags.find(key);
  if (it == s.dags.end()) {
    it = s.dags
             .emplace(key, std::make_unique<tiled::DagSpec>(
                               tiled::build_dag_spec(n, nb, la)))
             .first;
  }
  return it->second.get();
}

}  // namespace

template <typename T>
FactorFuture BatchService::submit_tiled(const BatchLayout& layout,
                                        std::span<T> data,
                                        const TiledOptions& topts,
                                        std::span<std::int32_t> info,
                                        const SubmitOptions& sopts) {
  ServiceShared& s = *shared_;
  IBCHOL_CHECK(!s.stop.load(std::memory_order_acquire),
               "submit_tiled() on a service being destroyed");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  IBCHOL_CHECK(sopts.timeout_ns >= 0, "negative submit timeout");
  IBCHOL_CHECK(!sopts.screen, "tiled requests do not support screening");
  IBCHOL_CHECK(sopts.storage == StoragePrec::kFp32,
               "tiled requests store full-precision elements");
  IBCHOL_CHECK(layout.batch() >= 1, "tiled batch must be non-empty");

  const int n = layout.n();
  const int nb = topts.nb > 0 ? topts.nb
                              : tiled::recommended_nb(n, sizeof(T));
  const tiled::DagSpec* spec = cached_dag(s, n, nb, topts.lookahead);
  const std::int64_t num_units = layout.batch() * spec->tasks_per_matrix;
  IBCHOL_CHECK(num_units < kMaxUnits,
               "tiled batch too large for one request; split it");

  std::uint32_t idx;
  if (!detail::admit_slot(s, idx)) {
    IBCHOL_COUNT("svc.shed", 1);
    if (!info.empty()) {
      std::fill_n(info.data(),
                  std::min<std::size_t>(
                      info.size(),
                      static_cast<std::size_t>(layout.batch())),
                  kInfoNotExecuted);
    }
    return FactorFuture::overloaded();
  }
  Slot& slot = *s.slots[idx];
  slot.mode = std::is_same_v<T, float> ? Slot::Mode::kTiledF32
                                       : Slot::Mode::kTiledF64;
  slot.dag = spec;
  slot.layout = layout;
  slot.nb = spec->nb;
  slot.triangle = Triangle::kLower;
  slot.data = data.data();
  slot.info = info.empty() ? nullptr : info.data();
  slot.info_size = info.empty() ? 0 : info.size();
  slot.num_units = num_units;
  slot.submit_ns = obs::now_ns();
  slot.deadline_ns =
      sopts.timeout_ns > 0
          ? slot.submit_ns + static_cast<std::uint64_t>(sopts.timeout_ns)
          : 0;
  slot.screen = false;
  slot.seq = s.seq.fetch_add(1, std::memory_order_relaxed);
  slot.status.store(static_cast<int>(RequestStatus::kQueued),
                    std::memory_order_relaxed);
  slot.remaining.store(num_units, std::memory_order_relaxed);
  slot.failed.store(0, std::memory_order_relaxed);
  slot.first_failed.store(detail::kNotSeen, std::memory_order_relaxed);
  slot.aborted.store(false, std::memory_order_relaxed);
  slot.quarantined.store(false, std::memory_order_relaxed);
  slot.refs.store(2, std::memory_order_relaxed);  // exec side + future
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.completed = false;
    slot.recovery = RecoveryReport{};
  }

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  IBCHOL_COUNT("svc.submitted", 1);
  IBCHOL_COUNT("tiled.submitted", 1);
  auto& queue = sopts.priority > 0 ? *s.submissions_hi : *s.submissions;
  while (!queue.try_push(idx)) {
    std::this_thread::yield();  // capacity == slots: effectively immediate
  }
  detail::notify_work(s);
  return FactorFuture(shared_, idx);
}

template <typename T>
FactorResult BatchService::factor_tiled(const BatchLayout& layout,
                                        std::span<T> data,
                                        const TiledOptions& topts,
                                        std::span<std::int32_t> info) {
  return submit_tiled<T>(layout, data, topts, info).wait();
}

FactorFuture BatchService::submit_mixed(const BatchLayout& layout,
                                        std::span<std::uint16_t> data,
                                        const CpuFactorOptions& options,
                                        std::span<std::int32_t> info,
                                        const TileProgram* program,
                                        const SubmitOptions& sopts) {
  ServiceShared& s = *shared_;
  IBCHOL_CHECK(!s.stop.load(std::memory_order_acquire),
               "submit_mixed() on a service being destroyed");
  IBCHOL_CHECK(layout.kind() != LayoutKind::kCanonical,
               "reduced-precision storage runs interleaved layouts");
  IBCHOL_CHECK(sopts.storage != StoragePrec::kFp32,
               "submit_mixed needs SubmitOptions::storage = kBf16 or kFp16");
  IBCHOL_CHECK(data.size() >= layout.size_elems(),
               "data span too small for layout " + layout.to_string());
  IBCHOL_CHECK(info.empty() ||
                   info.size() >= static_cast<std::size_t>(layout.batch()),
               "info span too small for batch");
  IBCHOL_CHECK(sopts.timeout_ns >= 0, "negative submit timeout");

  // Plan resolution on the submitting thread, as in submit<T>. The plan
  // is a mixed fp32 plan: conversion tier and storage format travel in it.
  const TileProgram* prog = program;
  if (prog == nullptr && options.unroll == Unroll::kPartial) {
    prog = cached_program(s, layout.n(), std::min(options.nb, layout.n()),
                          options.looking);
  }
  ChunkExecPlan<float> plan =
      plan_chunk_exec_mixed(layout, prog, options, sopts.storage);
  if (plan.needs_spec_program()) {
    plan.spec = cached_spec<float>(s, prog, options.math);
  }
  note_exec_dispatch(plan.exec);
  const std::int64_t num_units = plan.num_units;
  IBCHOL_CHECK(num_units < kMaxUnits,
               "batch too large for one request; split it");

  std::uint32_t idx;
  if (!detail::admit_slot(s, idx)) {
    IBCHOL_COUNT("svc.shed", 1);
    if (!info.empty()) {
      std::fill_n(info.data(),
                  std::min<std::size_t>(
                      info.size(),
                      static_cast<std::size_t>(layout.batch())),
                  kInfoNotExecuted);
    }
    return FactorFuture::overloaded();
  }
  Slot& slot = *s.slots[idx];
  slot.mode = Slot::Mode::kChunkMixed;
  slot.plan_f = plan;
  slot.layout = layout;
  slot.nb = options.nb;
  slot.triangle = options.triangle;
  slot.data = data.data();
  slot.info = info.empty() ? nullptr : info.data();
  slot.info_size = info.empty() ? 0 : info.size();
  slot.num_units = num_units;
  slot.submit_ns = obs::now_ns();
  slot.deadline_ns =
      sopts.timeout_ns > 0
          ? slot.submit_ns + static_cast<std::uint64_t>(sopts.timeout_ns)
          : 0;
  slot.screen = sopts.screen;
  slot.seq = s.seq.fetch_add(1, std::memory_order_relaxed);
  slot.status.store(static_cast<int>(RequestStatus::kQueued),
                    std::memory_order_relaxed);
  slot.remaining.store(num_units, std::memory_order_relaxed);
  slot.failed.store(0, std::memory_order_relaxed);
  slot.first_failed.store(detail::kNotSeen, std::memory_order_relaxed);
  slot.aborted.store(false, std::memory_order_relaxed);
  slot.quarantined.store(false, std::memory_order_relaxed);
  slot.refs.store(2, std::memory_order_relaxed);  // exec side + future
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.completed = false;
    slot.recovery = RecoveryReport{};
  }

  s.inflight.fetch_add(1, std::memory_order_acq_rel);
  IBCHOL_COUNT("svc.submitted", 1);
  auto& queue = sopts.priority > 0 ? *s.submissions_hi : *s.submissions;
  while (!queue.try_push(idx)) {
    std::this_thread::yield();
  }
  detail::notify_work(s);
  return FactorFuture(shared_, idx);
}

FactorResult BatchService::factor_mixed(const BatchLayout& layout,
                                        std::span<std::uint16_t> data,
                                        const CpuFactorOptions& options,
                                        std::span<std::int32_t> info,
                                        const TileProgram* program,
                                        const SubmitOptions& sopts) {
  return submit_mixed(layout, data, options, info, program, sopts).wait();
}

RecoveryReport BatchService::recover_mixed(const BatchLayout& layout,
                                           std::span<std::uint16_t> data,
                                           StoragePrec storage,
                                           const CpuFactorOptions& options,
                                           const RecoveryOptions& recovery,
                                           std::span<std::int32_t> info,
                                           const TileProgram* program) {
  return factor_batch_recover_mixed_via(&service_factor_thunk<float>, this,
                                        layout, data, storage, options,
                                        recovery, info, program);
}

template FactorFuture BatchService::submit<float>(const BatchLayout&,
                                                  std::span<float>,
                                                  const CpuFactorOptions&,
                                                  std::span<std::int32_t>,
                                                  const TileProgram*,
                                                  const SubmitOptions&);
template FactorFuture BatchService::submit<double>(const BatchLayout&,
                                                   std::span<double>,
                                                   const CpuFactorOptions&,
                                                   std::span<std::int32_t>,
                                                   const TileProgram*,
                                                   const SubmitOptions&);
template FactorResult BatchService::factor<float>(const BatchLayout&,
                                                  std::span<float>,
                                                  const CpuFactorOptions&,
                                                  std::span<std::int32_t>,
                                                  const TileProgram*);
template FactorResult BatchService::factor<double>(const BatchLayout&,
                                                   std::span<double>,
                                                   const CpuFactorOptions&,
                                                   std::span<std::int32_t>,
                                                   const TileProgram*);
template RecoveryReport BatchService::recover<float>(
    const BatchLayout&, std::span<float>, const CpuFactorOptions&,
    const RecoveryOptions&, std::span<std::int32_t>, const TileProgram*);
template RecoveryReport BatchService::recover<double>(
    const BatchLayout&, std::span<double>, const CpuFactorOptions&,
    const RecoveryOptions&, std::span<std::int32_t>, const TileProgram*);
template FactorFuture BatchService::submit_tiled<float>(
    const BatchLayout&, std::span<float>, const TiledOptions&,
    std::span<std::int32_t>, const SubmitOptions&);
template FactorFuture BatchService::submit_tiled<double>(
    const BatchLayout&, std::span<double>, const TiledOptions&,
    std::span<std::int32_t>, const SubmitOptions&);
template FactorResult BatchService::factor_tiled<float>(
    const BatchLayout&, std::span<float>, const TiledOptions&,
    std::span<std::int32_t>);
template FactorResult BatchService::factor_tiled<double>(
    const BatchLayout&, std::span<double>, const TiledOptions&,
    std::span<std::int32_t>);

}  // namespace ibchol::svc
