#include "svc/arena.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

#include "util/aligned_buffer.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"

namespace ibchol::svc {

void ArenaLease::reset() {
  if (arena_ != nullptr) arena_->release(data_, cls_);
  arena_ = nullptr;
  data_ = nullptr;
  bytes_ = 0;
  cls_ = -1;
}

ScratchArena::~ScratchArena() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : free_lists_) {
    for (void* p : list) std::free(p);
    list.clear();
  }
}

ArenaLease ScratchArena::acquire(std::size_t bytes) {
  int cls = 0;
  std::size_t cls_bytes = kMinBlockBytes;
  while (cls_bytes < bytes) {
    cls_bytes <<= 1;
    ++cls;
    IBCHOL_CHECK(cls < kNumClasses, "scratch request exceeds the arena");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquires;
    auto& list = free_lists_[cls];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++stats_.reuses;
      ++stats_.live_leases;
      --stats_.cached_blocks;
      stats_.cached_bytes -= cls_bytes;
      return {this, p, cls_bytes, cls};
    }
  }
  // Upstream path outside the lock: aligned_alloc can be slow and a miss
  // is warm-up, not steady state. cls_bytes is a multiple of the
  // alignment by construction (4KiB minimum, power-of-two classes).
  // Stats are committed only after the allocation succeeds, so a failure
  // leaves no phantom live lease behind; the chaos hook fails the upstream
  // exactly where a real OOM would.
  void* p = chaos::chaos_fail_alloc()
                ? nullptr
                : std::aligned_alloc(kBatchAlignment, cls_bytes);
  if (p == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed_allocs;
    throw std::bad_alloc{};
  }
  std::memset(p, 0, cls_bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.upstream_allocs;
    stats_.upstream_bytes += cls_bytes;
    ++stats_.live_leases;
  }
  return {this, p, cls_bytes, cls};
}

void ScratchArena::release(void* data, int cls) {
  const std::size_t cls_bytes = kMinBlockBytes << cls;
  std::lock_guard<std::mutex> lock(mu_);
  free_lists_[cls].push_back(data);
  --stats_.live_leases;
  ++stats_.cached_blocks;
  stats_.cached_bytes += cls_bytes;
}

ArenaStats ScratchArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ibchol::svc
