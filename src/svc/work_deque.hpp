// Fixed-capacity Chase-Lev work-stealing deque over packed unit-range
// tasks.
//
// Each service worker owns one deque. The owner pushes and pops at the
// bottom (LIFO, so the hottest chunk scratch is reused first); idle workers
// steal from the top (FIFO, so thieves take the work the owner will reach
// last — the largest surviving range under lazy splitting). Tasks are
// *ranges of pipeline units* (see ChunkExecPlan): a worker executing a
// range bigger than the steal grain splits it in half, pushes one half back
// for thieves, and recurses on the other — work is divided only when
// someone is actually idle to take it, which keeps the common uncontended
// case one deque push per request.
//
// A task packs (request slot, unit range) into a single 64-bit word so the
// ring cells are plain lock-free atomics: no allocation, no ABA, no
// pointer-reuse hazard, and nothing for ThreadSanitizer to flag. The index
// variables use seq_cst operations instead of the standalone fences of the
// weak-memory formulation — TSAN does not model fences, and the seq_cst
// variant is the form the original algorithm was proved in.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace ibchol::svc {

/// A contiguous range [begin, end) of one request's pipeline units.
/// Packable when slot < 2^16 and end <= 2^24 (kMaxUnits) — the service
/// checks both bounds at submission time.
struct UnitTask {
  std::uint32_t slot = 0;   ///< pooled request slot
  std::int64_t begin = 0;   ///< first unit
  std::int64_t end = 0;     ///< one past the last unit

  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
};

/// Largest unit index a packed task can carry (24 bits each for begin/end).
inline constexpr std::int64_t kMaxUnits = std::int64_t{1} << 24;
/// Largest request-slot index a packed task can carry.
inline constexpr std::uint32_t kMaxSlots = 1u << 16;

[[nodiscard]] inline std::uint64_t pack_task(const UnitTask& t) noexcept {
  return (static_cast<std::uint64_t>(t.slot) << 48) |
         (static_cast<std::uint64_t>(t.begin) << 24) |
         static_cast<std::uint64_t>(t.end);
}

[[nodiscard]] inline UnitTask unpack_task(std::uint64_t v) noexcept {
  UnitTask t;
  t.slot = static_cast<std::uint32_t>(v >> 48);
  t.begin = static_cast<std::int64_t>((v >> 24) & (kMaxUnits - 1));
  t.end = static_cast<std::int64_t>(v & (kMaxUnits - 1));
  return t;
}

/// Single-owner/multi-thief deque of packed tasks. Capacity is fixed; the
/// owner handles a full deque by executing the task inline unsplit (the
/// service never loses work to overflow, it just momentarily stops
/// feeding thieves).
class WorkDeque {
 public:
  explicit WorkDeque(std::size_t min_capacity = 256) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::vector<std::atomic<std::uint64_t>>(cap);
  }

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only: pushes a task at the bottom. False when full.
  bool push(const UnitTask& t) {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    const std::int64_t top = top_.load(std::memory_order_seq_cst);
    if (b - top > static_cast<std::int64_t>(mask_)) return false;
    cells_[static_cast<std::size_t>(b) & mask_].store(
        pack_task(t), std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only: pops the most recently pushed task. False when empty.
  bool pop(UnitTask& out) {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t < b) {
      out = unpack_task(cells_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed));
      return true;
    }
    bool won = false;
    if (t == b) {
      // Last element: race the thieves for it via top.
      won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst);
      if (won) {
        out = unpack_task(cells_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed));
      }
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return won;
  }

  /// Any thief: steals the oldest task. False when empty or when the
  /// steal lost a race (callers just move on to the next victim).
  bool steal(UnitTask& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    // Read the cell before claiming it: after the CAS the owner may
    // legitimately overwrite the slot on a later lap.
    const std::uint64_t v = cells_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
      return false;
    }
    out = unpack_task(v);
    return true;
  }

  /// Racy emptiness check, for idle heuristics only.
  [[nodiscard]] bool empty_approx() const noexcept {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace ibchol::svc
