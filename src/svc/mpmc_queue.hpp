// Bounded lock-free multi-producer/multi-consumer queue (Vyukov).
//
// The service's submission side: any number of client threads push request
// pointers, any number of workers pop them. The queue is a fixed ring of
// cells, each carrying a sequence number that encodes both "which lap of
// the ring this cell is on" and "is it full or empty"; producers and
// consumers claim cells with one relaxed CAS on their position counter and
// then publish/consume the payload with a release/acquire pair on the
// cell's sequence. No element is ever constructed on the queue's hot path
// (payloads are trivially copyable, in practice pooled request pointers),
// and the algorithm uses no standalone memory fences — every ordering is a
// tagged atomic operation, which keeps ThreadSanitizer able to prove the
// queue race-free (fences are the one C++ ordering primitive TSAN does not
// model).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace ibchol::svc {

/// Bounded MPMC FIFO. Capacity is fixed at construction (rounded up to a
/// power of two); try_push fails when full, try_pop when empty — the
/// service maps a full queue to backpressure at submit().
template <typename T>
class MpmcQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "queue payloads must be trivially copyable");

 public:
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
    }
  }

  /// Test-only: starts the position counters at `start_pos` instead of 0,
  /// so a wrap-around (and, with a start near INT64_MAX, a sequence-counter
  /// overflow) is reachable in a handful of operations instead of billions.
  /// The queue begins empty, exactly as if `start_pos` pushes and pops had
  /// already happened.
  MpmcQueue(std::size_t min_capacity, std::int64_t start_pos)
      : MpmcQueue(min_capacity) {
    const auto cap = static_cast<std::int64_t>(mask_ + 1);
    IBCHOL_CHECK(start_pos % cap == 0,
                 "start_pos must be a multiple of the rounded capacity");
    for (std::size_t i = 0; i < static_cast<std::size_t>(cap); ++i) {
      cells_[i].seq.store(start_pos + static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
    }
    head_.store(start_pos, std::memory_order_relaxed);
    tail_.store(start_pos, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Enqueues `v`; returns false when the queue is full.
  bool try_push(const T& v) {
    Cell* cell;
    std::int64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[static_cast<std::size_t>(pos) & mask_];
      const std::int64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif = seq - pos;
      if (dif == 0) {
        // Cell is empty on our lap; claim it.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // a full lap behind: queue is full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = v;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into `out`; returns false when the queue is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::int64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[static_cast<std::size_t>(pos) & mask_];
      const std::int64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif = seq - (pos + 1);
      if (dif == 0) {
        // Cell holds a value from our lap; claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // producer has not filled this cell yet: empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value;
    cell->seq.store(pos + static_cast<std::int64_t>(mask_) + 1,
                    std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (racy by nature; for stats/backoff heuristics).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::int64_t h = head_.load(std::memory_order_relaxed);
    const std::int64_t t = tail_.load(std::memory_order_relaxed);
    return h > t ? static_cast<std::size_t>(h - t) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::int64_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  // Producers and consumers advance independent counters; separate cache
  // lines keep them from false-sharing.
  alignas(64) std::atomic<std::int64_t> head_{0};
  alignas(64) std::atomic<std::int64_t> tail_{0};
};

}  // namespace ibchol::svc
