// Open-loop load generator for the batch-factorization service
// (svc::BatchService): the throughput-regime harness the service layer is
// built for, where requests arrive continuously and tail latency — not
// per-call wall time — is the figure of merit.
//
// Two phases:
//
//  1. **Throughput compare** — N requests factored back-to-back, once
//     through the synchronous OpenMP driver (factor_batch_cpu) and once
//     pipelined through the service (submit all, wait all). Reports both
//     rates and the service/sync speedup; on a multi-core host the service
//     overlaps the per-call team-spawn/join gaps the sync path serializes
//     on. Results are checked bit-identical per matrix size first.
//
//  2. **Open-loop latency** — requests arrive on a fixed schedule
//     (--rate, --duration) regardless of completions (open loop: a slow
//     server makes the backlog grow, it does not slow the generator). The
//     per-request latency distribution comes from the service's own
//     "svc.request_ns"/"svc.queue_ns" histograms (src/obs/histogram.hpp)
//     and is reported as p50/p95/p99.
//
//  3. **Overload sweep** (--rates) — the open-loop generator is driven at
//     several arrival rates spanning the saturation point against a
//     deliberately small slot pool, every request carrying a deadline
//     (--deadline-ms) under a shedding admission policy (--policy). Each
//     rate reports offered vs completed throughput, shed/expired
//     percentages, goodput, and the completed-request p50/p99 — the
//     overload claim is that shedding keeps p99 bounded while goodput
//     plateaus instead of collapsing.
//
// Flags:
//   --rate=R        arrivals per second for the open-loop phase [200]
//   --duration=S    open-loop phase length in seconds [1.0]
//   --mix=SPEC      request mix "n:weight[:prec],..." where prec is
//                   fp32|bf16|fp16 (default fp32); reduced-precision
//                   entries go through submit_mixed and the open-loop
//                   report gains per-precision p50/p95/p99 rows [8:2,16:2]
//   --batch=B       matrices per request [256]
//   --requests=N    requests in the throughput phase [40]
//   --threads=T     service worker threads (0 = hardware default) [0]
//   --grain=G       steal granularity in pipeline units [1]
//   --chunk=C       pack chunk size (lanes) for simple interleaved [64]
//   --rates=A,B,C   overload-sweep arrival rates (empty = skip the sweep)
//   --policy=P      sweep admission policy: block|reject|shed|wait [shed]
//   --deadline-ms=D per-request deadline in the sweep, 0 = none [50]
//   --inflight=S    sweep slot-pool size (small => overload bites) [32]
//   --json=PATH     machine-readable results (BENCH_load_service.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cpu/batch_factor.hpp"
#include "cpu/simd/convert.hpp"
#include "cpu/thread_util.hpp"
#include "layout/generate.hpp"
#include "layout/layout.hpp"
#include "obs/histogram.hpp"
#include "svc/batch_service.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace ibchol::bench {
namespace {

struct MixEntry {
  int n = 0;
  int weight = 1;
  StoragePrec prec = StoragePrec::kFp32;
};

std::vector<MixEntry> parse_mix(const std::string& spec) {
  std::vector<MixEntry> mix;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    std::istringstream fields(item);
    std::string field;
    MixEntry e;
    IBCHOL_CHECK(std::getline(fields, field, ':'),
                 "bad --mix entry: " + item);
    e.n = std::stoi(field);
    if (std::getline(fields, field, ':')) e.weight = std::stoi(field);
    if (std::getline(fields, field, ':')) {
      e.prec = storage_prec_from_string(field);
    }
    IBCHOL_CHECK(e.n >= 1 && e.weight >= 1, "bad --mix entry: " + item);
    mix.push_back(e);
  }
  IBCHOL_CHECK(!mix.empty(), "--mix parsed to nothing");
  return mix;
}

/// The request working set: one reusable workload per mix slot. The
/// generator cycles through kDepth buffers per size so up to kDepth
/// requests of one size can be in flight at once.
struct Workload {
  BatchLayout layout;
  CpuFactorOptions options;
  StoragePrec prec = StoragePrec::kFp32;
  AlignedBuffer<float> data;
  /// Reduced-precision entries carry the same batch narrowed to 16-bit
  /// words; `data` stays as the fp32 master the narrowing regenerates from.
  AlignedBuffer<std::uint16_t> data16;
  std::vector<std::int32_t> info;

  Workload(int n, std::int64_t batch, int chunk,
           StoragePrec p = StoragePrec::kFp32)
      : layout(BatchLayout::interleaved(n, batch)),
        prec(p),
        data(layout.size_elems()),
        info(static_cast<std::size_t>(batch)) {
    options.chunk_size = chunk;
    if (prec != StoragePrec::kFp32) data16.resize(layout.size_elems());
    regenerate();
  }

  void regenerate() {
    generate_spd_batch<float>(layout, data.span(),
                              {SpdKind::kGramPlusDiagonal, 42, 50.0});
    if (prec != StoragePrec::kFp32) {
      narrow_row(resolve_convert_isa(), prec, data.data(), data16.data(),
                 static_cast<std::int64_t>(layout.size_elems()),
                 /*nt_stores=*/false);
    }
  }

  [[nodiscard]] double flops() const {
    const double n = layout.n();
    return static_cast<double>(layout.batch()) * (n * n * n / 3.0);
  }
};

/// Routes a request to the lane its precision requires (submit vs
/// submit_mixed); all phases go through this so the mix's precision column
/// applies everywhere.
svc::FactorFuture submit_workload(svc::BatchService& service, Workload& w,
                                  const svc::SubmitOptions& sopts = {}) {
  if (w.prec != StoragePrec::kFp32) {
    svc::SubmitOptions so = sopts;
    so.storage = w.prec;
    return service.submit_mixed(w.layout, w.data16.span(), w.options, w.info,
                                nullptr, so);
  }
  return service.submit<float>(w.layout, w.data.span(), w.options, w.info,
                               nullptr, sopts);
}

/// The sync counterpart of submit_workload for the throughput compare.
void factor_workload_sync(Workload& w) {
  if (w.prec != StoragePrec::kFp32) {
    (void)factor_batch_cpu_mixed(w.layout, w.data16.span(), w.prec,
                                 w.options, w.info);
    return;
  }
  (void)factor_batch_cpu<float>(w.layout, w.data.span(), w.options, w.info);
}

/// Per-size bit-identity check: the service must reproduce the sync driver
/// exactly (units are schedule-agnostic; IEEE math). Reduced-precision
/// entries compare the 16-bit words of the mixed lane instead.
bool check_bit_identity(svc::BatchService& service, const MixEntry& e,
                        std::int64_t batch, int chunk) {
  Workload sync_w(e.n, batch, chunk, e.prec);
  Workload svc_w(e.n, batch, chunk, e.prec);
  if (e.prec != StoragePrec::kFp32) {
    const FactorResult a = factor_batch_cpu_mixed(
        sync_w.layout, sync_w.data16.span(), e.prec, sync_w.options,
        sync_w.info);
    svc::SubmitOptions so;
    so.storage = e.prec;
    const FactorResult b = service.factor_mixed(
        svc_w.layout, svc_w.data16.span(), svc_w.options, svc_w.info,
        nullptr, so);
    return a.failed_count == b.failed_count && sync_w.info == svc_w.info &&
           std::memcmp(sync_w.data16.span().data(),
                       svc_w.data16.span().data(),
                       sync_w.data16.span().size() *
                           sizeof(std::uint16_t)) == 0;
  }
  const FactorResult a = factor_batch_cpu<float>(
      sync_w.layout, sync_w.data.span(), sync_w.options, sync_w.info);
  const FactorResult b = service.factor<float>(
      svc_w.layout, svc_w.data.span(), svc_w.options, svc_w.info);
  return a.failed_count == b.failed_count && sync_w.info == svc_w.info &&
         std::memcmp(sync_w.data.span().data(), svc_w.data.span().data(),
                     sync_w.data.span().size() * sizeof(float)) == 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct PhaseResult {
  double elapsed_s = 0;
  double reqs_per_s = 0;
  double gflops = 0;
};

PhaseResult run_sync(std::vector<Workload>& pool, int requests) {
  const auto t0 = std::chrono::steady_clock::now();
  double flops = 0;
  for (int i = 0; i < requests; ++i) {
    Workload& w = pool[static_cast<std::size_t>(i) % pool.size()];
    factor_workload_sync(w);
    flops += w.flops();
  }
  PhaseResult r;
  r.elapsed_s = seconds_since(t0);
  r.reqs_per_s = requests / r.elapsed_s;
  r.gflops = flops / r.elapsed_s / 1e9;
  return r;
}

PhaseResult run_service_throughput(svc::BatchService& service,
                                   std::vector<Workload>& pool,
                                   int requests) {
  const auto t0 = std::chrono::steady_clock::now();
  double flops = 0;
  std::vector<svc::FactorFuture> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  // Submission cycles the pool; pool.size() bounds the in-flight depth so
  // a buffer is never resubmitted while a previous request still owns it.
  const std::size_t depth = pool.size();
  for (int i = 0; i < requests; ++i) {
    if (static_cast<std::size_t>(i) >= depth) {
      (void)futures[static_cast<std::size_t>(i) - depth].wait();
    }
    Workload& w = pool[static_cast<std::size_t>(i) % depth];
    futures.push_back(submit_workload(service, w));
    flops += w.flops();
  }
  for (auto& f : futures) (void)f.wait();
  PhaseResult r;
  r.elapsed_s = seconds_since(t0);
  r.reqs_per_s = requests / r.elapsed_s;
  r.gflops = flops / r.elapsed_s / 1e9;
  return r;
}

struct OpenLoopResult {
  std::int64_t submitted = 0;
  std::int64_t late = 0;  ///< arrivals that fired behind schedule
  double elapsed_s = 0;
  obs::HistogramSnapshot request_ns;
  obs::HistogramSnapshot queue_ns;
  /// Per-precision request-latency lanes ("fp32", "bf16", ...) from the
  /// service's svc.request_ns.<prec> histograms, sorted by lane name.
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> prec_request_ns;
};

OpenLoopResult run_open_loop(svc::BatchService& service,
                             std::vector<Workload>& pool, double rate,
                             double duration_s) {
  obs::reset_histograms();
  OpenLoopResult r;
  const auto t0 = std::chrono::steady_clock::now();
  const double interval_s = 1.0 / rate;
  const std::size_t depth = pool.size();
  std::vector<svc::FactorFuture> futures;
  for (std::int64_t i = 0;; ++i) {
    const double target = static_cast<double>(i) * interval_s;
    if (target >= duration_s) break;
    const double now = seconds_since(t0);
    if (now < target) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(target - now));
    } else if (now > target + interval_s) {
      ++r.late;  // open loop: we submit anyway, just record the slip
    }
    if (static_cast<std::size_t>(i) >= depth) {
      // Reclaim the buffer scheduled depth requests ago. Waiting here is
      // buffer recycling, not closed-loop pacing: the arrival schedule
      // above never moves.
      (void)futures[static_cast<std::size_t>(i) - depth].wait();
    }
    Workload& w = pool[static_cast<std::size_t>(i) % depth];
    futures.push_back(submit_workload(service, w));
    ++r.submitted;
  }
  for (auto& f : futures) (void)f.wait();
  r.elapsed_s = seconds_since(t0);
  const std::string prec_prefix = "svc.request_ns.";
  for (const auto& [name, snap] : obs::histograms_snapshot()) {
    if (name == "svc.request_ns") r.request_ns = snap;
    if (name == "svc.queue_ns") r.queue_ns = snap;
    if (name.rfind(prec_prefix, 0) == 0 && snap.count > 0) {
      r.prec_request_ns.emplace_back(name.substr(prec_prefix.size()), snap);
    }
  }
  return r;
}

// ------------------------------------------------------- overload sweep ----

svc::AdmitPolicy parse_policy(const std::string& name) {
  if (name == "block") return svc::AdmitPolicy::kBlock;
  if (name == "reject") return svc::AdmitPolicy::kReject;
  if (name == "shed") return svc::AdmitPolicy::kShedOldest;
  if (name == "wait") return svc::AdmitPolicy::kBoundedWait;
  IBCHOL_CHECK(false, "unknown --policy (block|reject|shed|wait): " + name);
  return svc::AdmitPolicy::kBlock;
}

std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> rates;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    const double r = std::stod(item);
    IBCHOL_CHECK(r > 0.0, "bad --rates entry: " + item);
    rates.push_back(r);
  }
  return rates;
}

struct ServiceConfig {
  int threads = 0;
  int grain = 1;
  int inflight = 32;
  svc::AdmitPolicy policy = svc::AdmitPolicy::kShedOldest;
  double deadline_ms = 50.0;
};

struct OverloadRow {
  double rate = 0;           ///< offered arrivals per second
  std::int64_t submitted = 0;
  std::int64_t done = 0;
  std::int64_t shed = 0;     ///< kOverloaded at admission
  std::int64_t expired = 0;  ///< kDeadlineExceeded in the queue
  std::int64_t other = 0;    ///< anything else terminal (aborts, ...)
  double elapsed_s = 0;
  obs::HistogramSnapshot request_ns;  ///< completed requests only
};

/// One open-loop phase at `rate` against a fresh service configured for
/// overload (small slot pool, shedding policy, per-request deadline).
/// Each service is new so per-rate rows never share queue backlog.
OverloadRow run_overload_rate(std::vector<Workload>& pool, double rate,
                              double duration_s, const ServiceConfig& cfg) {
  svc::ServiceOptions opts;
  opts.num_threads = cfg.threads;
  opts.steal_grain = cfg.grain;
  opts.max_inflight = static_cast<std::size_t>(cfg.inflight);
  opts.policy.admit = cfg.policy;
  svc::BatchService service(opts);
  obs::reset_histograms();

  svc::SubmitOptions sopts;
  sopts.timeout_ns = static_cast<std::int64_t>(cfg.deadline_ms * 1e6);

  OverloadRow row;
  row.rate = rate;
  const auto t0 = std::chrono::steady_clock::now();
  const double interval_s = 1.0 / rate;
  const std::size_t depth = pool.size();
  std::vector<svc::FactorFuture> futures;
  const auto account = [&](svc::FactorFuture& f) {
    (void)f.wait();
    switch (f.status()) {
      case svc::RequestStatus::kDone:
        ++row.done;
        break;
      case svc::RequestStatus::kOverloaded:
        ++row.shed;
        break;
      case svc::RequestStatus::kDeadlineExceeded:
        ++row.expired;
        break;
      default:
        ++row.other;
    }
    f = svc::FactorFuture{};  // release: lets the slot recycle
  };
  for (std::int64_t i = 0;; ++i) {
    const double target = static_cast<double>(i) * interval_s;
    if (target >= duration_s) break;
    const double now = seconds_since(t0);
    if (now < target) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(target - now));
    }
    if (static_cast<std::size_t>(i) >= depth) {
      // Recycles the buffer from depth arrivals ago; under overload that
      // future is usually already terminal (shed or expired), so this
      // wait does not close the loop.
      account(futures[static_cast<std::size_t>(i) - depth]);
    }
    Workload& w = pool[static_cast<std::size_t>(i) % depth];
    futures.push_back(submit_workload(service, w, sopts));
    ++row.submitted;
  }
  for (auto& f : futures) {
    if (f.valid()) account(f);
  }
  row.elapsed_s = seconds_since(t0);
  for (const auto& [name, snap] : obs::histograms_snapshot()) {
    if (name == "svc.request_ns") row.request_ns = snap;
  }
  return row;
}

void print_hist(const char* name, const obs::HistogramSnapshot& s) {
  std::cout << "  " << name << ": count=" << s.count
            << " p50=" << s.p50 / 1e6 << "ms p95=" << s.p95 / 1e6
            << "ms p99=" << s.p99 / 1e6 << "ms max=" << s.max / 1e6
            << "ms\n";
}

void write_json(const std::string& path, int threads, double rate,
                const PhaseResult& sync_r, const PhaseResult& svc_r,
                const OpenLoopResult& ol, bool identical,
                const std::string& policy,
                const std::vector<OverloadRow>& sweep) {
  std::ostringstream os;
  os << "{\"bench\": \"load_service\", \"threads\": " << threads
     << ", \"bit_identical\": " << (identical ? "true" : "false")
     << ", \"sync\": {\"reqs_per_s\": " << sync_r.reqs_per_s
     << ", \"gflops\": " << sync_r.gflops << "}"
     << ", \"service\": {\"reqs_per_s\": " << svc_r.reqs_per_s
     << ", \"gflops\": " << svc_r.gflops << "}"
     << ", \"speedup\": " << svc_r.reqs_per_s / sync_r.reqs_per_s
     << ", \"open_loop\": {\"rate\": " << rate
     << ", \"submitted\": " << ol.submitted << ", \"late\": " << ol.late
     << ", \"request_ns\": {\"p50\": " << ol.request_ns.p50
     << ", \"p95\": " << ol.request_ns.p95
     << ", \"p99\": " << ol.request_ns.p99
     << ", \"max\": " << ol.request_ns.max << "}"
     << ", \"queue_ns\": {\"p50\": " << ol.queue_ns.p50
     << ", \"p95\": " << ol.queue_ns.p95
     << ", \"p99\": " << ol.queue_ns.p99 << "}";
  if (!ol.prec_request_ns.empty()) {
    os << ", \"prec_request_ns\": {";
    for (std::size_t i = 0; i < ol.prec_request_ns.size(); ++i) {
      const auto& [lane, snap] = ol.prec_request_ns[i];
      os << (i > 0 ? ", " : "") << "\"" << lane
         << "\": {\"count\": " << snap.count << ", \"p50\": " << snap.p50
         << ", \"p95\": " << snap.p95 << ", \"p99\": " << snap.p99 << "}";
    }
    os << "}";
  }
  os << "}";
  if (!sweep.empty()) {
    os << ", \"overload\": {\"policy\": \"" << policy << "\", \"rows\": [";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const OverloadRow& r = sweep[i];
      const double shed_pct =
          r.submitted > 0
              ? 100.0 * static_cast<double>(r.shed + r.expired) /
                    static_cast<double>(r.submitted)
              : 0.0;
      os << (i > 0 ? ", " : "") << "{\"rate\": " << r.rate
         << ", \"submitted\": " << r.submitted << ", \"done\": " << r.done
         << ", \"shed\": " << r.shed << ", \"expired\": " << r.expired
         << ", \"other\": " << r.other << ", \"shed_pct\": " << shed_pct
         << ", \"goodput_per_s\": "
         << static_cast<double>(r.done) / r.elapsed_s
         << ", \"request_ns\": {\"p50\": " << r.request_ns.p50
         << ", \"p99\": " << r.request_ns.p99
         << ", \"max\": " << r.request_ns.max << "}}";
    }
    os << "]}";
  }
  os << "}";
  std::ofstream out(path);
  IBCHOL_CHECK(out.good(), "cannot write " + path);
  out << os.str() << "\n";
  std::cout << "wrote " << path << "\n";
}

int run(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 200.0);
  const double duration_s = cli.get_double("duration", 1.0);
  const std::string mix_spec = cli.get("mix", "8:2,16:2");
  const auto batch = static_cast<std::int64_t>(cli.get_int("batch", 256));
  const int requests = static_cast<int>(cli.get_int("requests", 40));
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  const int grain = static_cast<int>(cli.get_int("grain", 1));
  const int chunk = static_cast<int>(cli.get_int("chunk", 64));
  const std::string rates_spec = cli.get("rates", "");
  const std::string policy_name = cli.get("policy", "shed");
  const double deadline_ms = cli.get_double("deadline-ms", 50.0);
  const int inflight = static_cast<int>(cli.get_int("inflight", 32));
  const std::string json_path = cli.get("json", "");

  const std::vector<MixEntry> mix = parse_mix(mix_spec);
  svc::BatchService service(
      {.num_threads = threads, .steal_grain = grain});

  std::cout << "load_service: service threads=" << service.threads()
            << " sync threads=" << cached_default_threads()
            << " mix=" << mix_spec << " batch=" << batch << "\n\n";

  // Phase 0: the service must be bit-identical before its speed means
  // anything.
  bool identical = true;
  for (const MixEntry& e : mix) {
    const bool ok = check_bit_identity(service, e, batch, chunk);
    identical = identical && ok;
    std::cout << "bit-identity n=" << e.n << " prec=" << to_string(e.prec)
              << ": " << (ok ? "ok" : "MISMATCH") << "\n";
  }

  // The request pool realizes the mix by weight; 3 rotating buffers per
  // mix slot bound the async in-flight depth.
  std::vector<Workload> pool;
  for (int rep = 0; rep < 3; ++rep) {
    for (const MixEntry& e : mix) {
      for (int w = 0; w < e.weight; ++w) {
        pool.emplace_back(e.n, batch, chunk, e.prec);
      }
    }
  }

  std::cout << "\nthroughput (" << requests << " requests):\n";
  const PhaseResult sync_r = run_sync(pool, requests);
  std::cout << "  sync:    " << sync_r.reqs_per_s << " req/s ("
            << sync_r.gflops << " GFLOP/s)\n";
  const PhaseResult svc_r = run_service_throughput(service, pool, requests);
  std::cout << "  service: " << svc_r.reqs_per_s << " req/s ("
            << svc_r.gflops << " GFLOP/s)\n";
  std::cout << "  speedup: " << svc_r.reqs_per_s / sync_r.reqs_per_s
            << "x\n";

  std::cout << "\nopen loop (rate=" << rate << "/s for " << duration_s
            << "s):\n";
  const OpenLoopResult ol = run_open_loop(service, pool, rate, duration_s);
  std::cout << "  submitted=" << ol.submitted << " late=" << ol.late
            << " elapsed=" << ol.elapsed_s << "s\n";
  print_hist("request latency", ol.request_ns);
  print_hist("queue wait     ", ol.queue_ns);
  for (const auto& [lane, snap] : ol.prec_request_ns) {
    print_hist(("request latency [" + lane + "]").c_str(), snap);
  }

  std::vector<OverloadRow> sweep;
  if (!rates_spec.empty()) {
    ServiceConfig cfg;
    cfg.threads = threads;
    cfg.grain = grain;
    cfg.inflight = inflight;
    cfg.policy = parse_policy(policy_name);
    cfg.deadline_ms = deadline_ms;
    std::cout << "\noverload sweep (policy=" << policy_name
              << " deadline=" << deadline_ms << "ms inflight=" << inflight
              << " duration=" << duration_s << "s):\n";
    for (const double r : parse_rates(rates_spec)) {
      const OverloadRow row = run_overload_rate(pool, r, duration_s, cfg);
      sweep.push_back(row);
      const double shed_pct =
          row.submitted > 0
              ? 100.0 * static_cast<double>(row.shed + row.expired) /
                    static_cast<double>(row.submitted)
              : 0.0;
      std::cout << "  rate=" << row.rate << "/s submitted=" << row.submitted
                << " done=" << row.done << " shed=" << row.shed
                << " expired=" << row.expired << " (" << shed_pct
                << "% dropped) goodput="
                << static_cast<double>(row.done) / row.elapsed_s
                << " req/s p50=" << row.request_ns.p50 / 1e6
                << "ms p99=" << row.request_ns.p99 / 1e6 << "ms\n";
    }
  }

  if (!json_path.empty()) {
    write_json(json_path, service.threads(), rate, sync_r, svc_r, ol,
               identical, policy_name, sweep);
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace ibchol::bench

int main(int argc, char** argv) {
  try {
    return ibchol::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "load_service: " << e.what() << "\n";
    return 1;
  }
}
