// Supplementary experiment: batch-size scaling.
//
// The paper fixes batch = 16,384 ("when a large set of small linear
// systems is presented simultaneously, using a batch implementation
// exposes significant parallelism"). This supplementary sweep varies the
// batch size to show where that statement kicks in: small batches cannot
// fill the machine (launch overhead + too few blocks), and throughput
// saturates once the batch supplies enough warps per SM. Run through the
// P100 model and, with --measure, the CPU substrate.
#include <cstdio>

#include "bench_common.hpp"
#include "core/batch_cholesky.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Supplementary", "throughput vs batch size (n = 16, 32)",
               cfg);

  const KernelModel model(GpuSpec::p100());
  const std::vector<std::int64_t> batches{256,  512,   1024,  2048, 4096,
                                          8192, 16384, 32768, 65536};

  std::vector<NamedSeries> series;
  for (const int n : {16, 32}) {
    NamedSeries s{"n=" + std::to_string(n), {}};
    const TuningParams params = recommended_params(n);
    for (const std::int64_t b : batches) {
      s.gflops_by_n[static_cast<int>(b / 256)] =
          model.evaluate(n, b, params).gflops;
    }
    series.push_back(std::move(s));
  }
  std::printf("(x axis: batch / 256)\n");
  print_series_table(series);
  print_series_chart(series, "Supplementary: GFLOP/s vs batch (x = batch/256)");

  // Claims: saturation behaviour.
  auto at = [&](int idx, std::int64_t b) {
    return series[idx].gflops_by_n.at(static_cast<int>(b / 256));
  };
  std::printf("\nclaims:\n");
  check(at(0, 16384) > 2.0 * at(0, 256),
        "small batches cannot fill the machine (16k batch > 2x 256 batch at "
        "n=16)");
  check(at(0, 65536) < 1.15 * at(0, 16384),
        "throughput saturates by the paper's batch of 16,384 (65k within "
        "15% of 16k)");
  check(at(1, 65536) < 1.15 * at(1, 16384), "same at n=32");

  if (cfg.measure) {
    std::printf("\nCPU-substrate validation (measured):\n");
    TextTable table({"batch", "n=16 GF/s"});
    const int n = 16;
    const TuningParams params = recommended_params(n);
    for (const std::int64_t b : {std::int64_t{64}, std::int64_t{1024},
                                 std::int64_t{8192}}) {
      const BatchLayout layout = BatchCholesky::make_layout(n, b, params);
      const BatchCholesky chol(layout, params);
      AlignedBuffer<float> pristine(layout.size_elems());
      generate_spd_batch<float>(layout, pristine.span());
      AlignedBuffer<float> work(layout.size_elems());
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        std::copy(pristine.begin(), pristine.end(), work.begin());
        Timer t;
        (void)chol.factorize<float>(work.span());
        best = std::min(best, t.seconds());
      }
      table.add_row({std::to_string(b),
                     TextTable::num(b * nominal_flops_per_matrix(n) / best /
                                        1e9, 2)});
    }
    std::printf("%s", table.render().c_str());
  }
  return 0;
}
