// Shared scaffolding for the figure-reproduction benchmarks.
//
// Every figX binary follows the same scheme:
//  * run the exhaustive model sweep the figure needs (P100 SIMT model,
//    batch 16,384 — the paper's configuration),
//  * reduce to the "best over everything else" series the figure plots,
//  * print a machine-readable table, an ASCII rendering of the figure, and
//    the qualitative checks the paper's text states for it,
//  * optionally validate orderings on the measured CPU substrate
//    (--measure), and dump the raw series as CSV (--csv=<path>).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autotune/evaluator.hpp"
#include "autotune/records.hpp"
#include "autotune/sweep.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ibchol::bench {

/// Configuration common to every figure binary, from the command line.
struct BenchConfig {
  std::vector<int> sizes;          ///< matrix dimensions
  std::int64_t batch = 16384;      ///< the paper's batch size
  double noise_sigma = 0.0;        ///< model jitter (analysis benches)
  bool measure = false;            ///< run CPU-substrate validation
  std::int64_t measure_batch = 4096;
  std::string csv_path;            ///< optional CSV dump
  std::string json_path;           ///< optional JSON dump (BENCH_*.json)
  int trees = 500;                 ///< forest size (analysis benches)
  int step = 4;                    ///< size stride for sweep-heavy benches
};

/// Parses the standard flags:
///   --batch=N --step=K --measure[=bool] --measure-batch=N --csv=path
///   --json=path --trees=N --noise=sigma --sizes=a,b,c
BenchConfig parse_config(int argc, const char* const* argv,
                         int default_step = 2);

/// Prints the standard header for a figure reproduction.
void print_header(const std::string& figure, const std::string& description,
                  const BenchConfig& config);

/// One named best-by-n series, ready for table/chart rendering.
struct NamedSeries {
  std::string name;
  std::map<int, double> gflops_by_n;
};

/// Reduces a dataset to best-by-n under a filter.
NamedSeries reduce_best(const SweepDataset& dataset, std::string name,
                        const std::function<bool(const SweepRecord&)>& filter);

/// Prints series as an aligned table (rows = n, one column per series).
void print_series_table(const std::vector<NamedSeries>& series);

/// Renders series as an ASCII chart (x = n, y = GFLOP/s).
void print_series_chart(const std::vector<NamedSeries>& series,
                        const std::string& title);

/// Writes series to CSV if config.csv_path is set.
void maybe_write_csv(const BenchConfig& config,
                     const std::vector<NamedSeries>& series);

/// Writes series (per-series best GFLOP/s by n) as JSON if
/// config.json_path is set, so the repo's perf trajectory can be tracked
/// machine-readably across PRs (BENCH_*.json). Format:
///   {"bench": "<id>", "batch": N,
///    "series": [{"name": "...", "points": [{"n": N, "gflops": G}, ...]}]}
void maybe_write_json(const BenchConfig& config, const std::string& bench_id,
                      const std::vector<NamedSeries>& series);

/// Minimal JSON string escaping for the writers above.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Prints a PASS/NOTE line for a qualitative claim check.
void check(bool ok, const std::string& claim);

/// The default P100 model evaluator.
ModelEvaluator make_model_evaluator(double noise_sigma = 0.0);

}  // namespace ibchol::bench
