// Figure 19: best performance of the interleaved implementation with
// partial unrolling (tile operations only) vs full unrolling (the whole
// factorization as straight-line code).
//
// Expected shape (paper §III): full unrolling pays off up to n≈20 — the
// compiler keeps the matrix in registers — then the benefits diminish
// (register promotion degrades, the instruction stream overwhelms the
// instruction cache) and partial unrolling takes over.
#include <cstdio>

#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/2);
  print_header("Figure 19",
               "best interleaved performance: partial vs full unrolling",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  const SweepDataset ds = run_sweep(eval, opt);

  const NamedSeries partial = reduce_best(
      ds, "partial",
      [](const SweepRecord& r) { return r.params.unroll == Unroll::kPartial; });
  const NamedSeries full = reduce_best(
      ds, "full",
      [](const SweepRecord& r) { return r.params.unroll == Unroll::kFull; });

  print_series_table({partial, full});
  print_series_chart({partial, full},
                     "Fig 19: partial vs full unrolling");

  // Find the crossover.
  int crossover = -1;
  for (const auto& [n, g] : partial.gflops_by_n) {
    if (g > full.gflops_by_n.at(n) * 1.02) {
      crossover = n;
      break;
    }
  }
  std::printf("\ncrossover (partial overtakes full): n = %d\n", crossover);
  std::printf("\nclaims (paper §III):\n");
  check(full.gflops_by_n.at(12) > partial.gflops_by_n.at(12),
        "full unrolling pays off for small matrices (n=12)");
  // The paper's fig 19 puts the crossover just past 20, while its fig 20
  // still shows fully-unrolled winners at n=24 — the takeover happens
  // somewhere in the 20-32 window.
  check(crossover >= 18 && crossover <= 34,
        "partial takes over in the 20-32 window (got n=" +
            std::to_string(crossover) + ")");
  check(partial.gflops_by_n.at(48) > 1.1 * full.gflops_by_n.at(48),
        "at n=48 full unrolling has clearly fallen behind (>10%)");

  maybe_write_csv(cfg, {partial, full});
  maybe_write_json(cfg, "fig19_unrolling", {partial, full});
  return 0;
}
