// Large-N tiled task-parallel path (DESIGN §13): GFLOP/s versus matrix
// size across the tile-size ladder, head to head with the interpreter
// fallback the facade would otherwise degrade to past the n = 64 whole-
// matrix ceiling.
//
// For each n the binary times
//  * the op-by-op interpreter on the same interleaved batch (the naive
//    large-n baseline resolve_cpu_exec falls back to), and
//  * the tiled DAG executor at every nb from tiled_nb_candidates (the
//    I/O-lower-bound cache-fit ladder), keeping the best,
// then attributes the best configuration's time to PACK/POTRF/TRSM/SYRK/
// GEMM/UNPACK stages from the tiled.*_ns histograms. When the host has
// more than one core a single-thread run rides along so the work-stealing
// speedup is visible; on a single-core host that column is skipped (the
// scaling claim is gated environmentally, not failed).
//
// Run with --json=<path> to write the machine-readable summary the bench
// gate consumes (scripts/check.sh --bench merges it into BENCH_cpu.json as
// "large_summary"); --sizes=a,b,c overrides the size list.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cpu/batch_factor.hpp"
#include "cpu/simd/isa.hpp"
#include "kernels/counts.hpp"
#include "layout/generate.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "svc/batch_service.hpp"
#include "tiled/dag.hpp"
#include "util/aligned_buffer.hpp"
#include "util/timer.hpp"

namespace {

using namespace ibchol;

// Best-of-3 (one warmup + two timed): the runs here are long enough that
// scheduler noise averages out, and the large sizes make best-of-5 slow.
template <typename F>
double best_seconds(F&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double s = fn();
    if (rep > 0 && s < best) best = s;
  }
  return best;
}

double to_gflops(int n, std::int64_t batch, double seconds) {
  return seconds <= 0.0 ? 0.0
                        : static_cast<double>(batch) *
                              nominal_flops_per_matrix(n) / seconds / 1e9;
}

// Batch sized so the working set stays a few MiB per run: enough matrices
// to amortize per-request overhead, few enough that n = 1024 finishes in
// seconds on one core.
std::int64_t batch_for(int n) {
  const std::int64_t b = (std::int64_t{1} << 21) / (std::int64_t{n} * n);
  return b < 2 ? 2 : b;
}

double time_interp(const BatchLayout& layout,
                   const AlignedBuffer<float>& pristine,
                   AlignedBuffer<float>& work) {
  CpuFactorOptions opt;
  opt.exec = CpuExec::kInterpreter;
  const std::size_t bytes = layout.size_elems() * sizeof(float);
  return best_seconds([&] {
    std::memcpy(work.data(), pristine.data(), bytes);
    Timer t;
    (void)factor_batch_cpu<float>(layout, work.span(), opt);
    return t.seconds();
  });
}

double time_tiled(svc::BatchService& service, const BatchLayout& layout,
                  const AlignedBuffer<float>& pristine,
                  AlignedBuffer<float>& work, int nb) {
  svc::TiledOptions topts;
  topts.nb = nb;
  const std::size_t bytes = layout.size_elems() * sizeof(float);
  return best_seconds([&] {
    std::memcpy(work.data(), pristine.data(), bytes);
    Timer t;
    (void)service.factor_tiled<float>(layout, work.span(), topts);
    return t.seconds();
  });
}

// One instrumented run at the chosen nb, reduced to per-stage CPU seconds
// from the tiled.*_ns histograms (sums exceed wall time when workers
// overlap — this is attribution, not elapsed time).
std::map<std::string, double> tiled_stages(svc::BatchService& service,
                                           const BatchLayout& layout,
                                           const AlignedBuffer<float>& pristine,
                                           AlignedBuffer<float>& work, int nb) {
  std::map<std::string, double> stages;
  if constexpr (!obs::kEnabled) return stages;
  std::memcpy(work.data(), pristine.data(),
              layout.size_elems() * sizeof(float));
  obs::reset_histograms();
  svc::TiledOptions topts;
  topts.nb = nb;
  (void)service.factor_tiled<float>(layout, work.span(), topts);
  for (const char* stage :
       {"pack", "potrf", "trsm", "syrk", "gemm", "unpack"}) {
    const auto snap =
        obs::histogram(std::string("tiled.") + stage + "_ns").snapshot();
    if (snap.count > 0) {
      stages[stage] = static_cast<double>(snap.sum) / 1e9;
    }
  }
  return stages;
}

struct Row {
  int n = 0;
  std::int64_t batch = 0;
  double interp_gflops = 0.0;
  double tiled_gflops = 0.0;   // best over the nb ladder, all threads
  int tiled_nb = 0;            // the nb that won
  double tiled_1t_gflops = 0.0;  // 0 when the host has one core
  std::vector<std::pair<int, double>> by_nb;
  std::map<std::string, double> stages;
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"fig_large_tiled\",\n  \"simd_isa\": \""
     << to_string(resolve_simd_isa(SimdIsa::kAuto))
     << "\",\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ",\n  \"obs_enabled\": " << (obs::kEnabled ? "true" : "false")
     << ",\n  \"large_summary\": [";
  bool first = true;
  for (const Row& r : rows) {
    os << (first ? "\n" : ",\n") << "    {\"n\": " << r.n
       << ", \"batch\": " << r.batch
       << ", \"interp_gflops\": " << r.interp_gflops
       << ", \"tiled_gflops\": " << r.tiled_gflops
       << ", \"tiled_nb\": " << r.tiled_nb << ", \"tiled_speedup\": "
       << (r.interp_gflops > 0.0 ? r.tiled_gflops / r.interp_gflops : 0.0);
    if (r.tiled_1t_gflops > 0.0) {
      os << ", \"tiled_1t_gflops\": " << r.tiled_1t_gflops;
    }
    os << ", \"by_nb\": [";
    for (std::size_t i = 0; i < r.by_nb.size(); ++i) {
      os << (i ? ", " : "") << "{\"nb\": " << r.by_nb[i].first
         << ", \"gflops\": " << r.by_nb[i].second << "}";
    }
    os << "], \"stages\": {";
    bool sfirst = true;
    for (const auto& [stage, seconds] : r.stages) {
      os << (sfirst ? "" : ", ") << "\"" << stage << "\": " << seconds;
      sfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << "\n  ]\n}\n";
  std::ofstream out(path, std::ios::trunc);
  out << os.str();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {128, 256, 512, 1024};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a.rfind("--sizes=", 0) == 0) {
      sizes.clear();
      std::istringstream ss(a.substr(8));
      std::string tok;
      while (std::getline(ss, tok, ',')) sizes.push_back(std::stoi(tok));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("== fig_large_tiled: tiled DAG path vs interpreter fallback "
              "(%u cores, %s)\n",
              cores, to_string(resolve_simd_isa(SimdIsa::kAuto)).c_str());

  svc::BatchService& service = svc::BatchService::global();
  // The single-thread control rides along only when there is a speedup to
  // show; on a 1-core host the default pool is already single-threaded.
  std::unique_ptr<svc::BatchService> service_1t;
  if (cores > 1) {
    svc::ServiceOptions sopts;
    sopts.num_threads = 1;
    service_1t = std::make_unique<svc::BatchService>(sopts);
  }

  std::vector<Row> rows;
  for (const int n : sizes) {
    Row row;
    row.n = n;
    row.batch = batch_for(n);
    const BatchLayout layout = BatchLayout::interleaved(n, row.batch);
    AlignedBuffer<float> pristine(layout.size_elems());
    generate_spd_batch<float>(layout, pristine.span());
    AlignedBuffer<float> work(layout.size_elems());

    row.interp_gflops =
        to_gflops(n, row.batch, time_interp(layout, pristine, work));
    for (const int nb : tiled::tiled_nb_candidates(n, sizeof(float))) {
      const double gf = to_gflops(
          n, row.batch, time_tiled(service, layout, pristine, work, nb));
      row.by_nb.emplace_back(nb, gf);
      if (gf > row.tiled_gflops) {
        row.tiled_gflops = gf;
        row.tiled_nb = nb;
      }
    }
    if (service_1t) {
      row.tiled_1t_gflops = to_gflops(
          n, row.batch,
          time_tiled(*service_1t, layout, pristine, work, row.tiled_nb));
    }
    row.stages = tiled_stages(service, layout, pristine, work, row.tiled_nb);

    std::printf("n=%5d batch=%4lld  interp %7.2f GF/s   tiled %7.2f GF/s "
                "(nb=%d, %.2fx)",
                n, static_cast<long long>(row.batch), row.interp_gflops,
                row.tiled_gflops, row.tiled_nb,
                row.interp_gflops > 0.0
                    ? row.tiled_gflops / row.interp_gflops
                    : 0.0);
    if (row.tiled_1t_gflops > 0.0) {
      std::printf("   1t %7.2f GF/s (scale %.2fx)", row.tiled_1t_gflops,
                  row.tiled_gflops / row.tiled_1t_gflops);
    }
    std::printf("\n    nb ladder:");
    for (const auto& [nb, gf] : row.by_nb) {
      std::printf("  nb=%d %.2f", nb, gf);
    }
    std::printf("\n");
    if (!row.stages.empty()) {
      std::printf("    stages (CPU s):");
      for (const auto& [stage, seconds] : row.stages) {
        std::printf("  %s %.4f", stage.c_str(), seconds);
      }
      std::printf("\n");
    }
    rows.push_back(std::move(row));
  }

  // The qualitative claims of DESIGN §13, reported PASS/NOTE (the bench
  // never fails on them: absolute ratios depend on the host).
  for (const Row& r : rows) {
    if (r.n < 512) continue;
    const bool ok = r.tiled_gflops >= 1.5 * r.interp_gflops;
    std::printf("%s tiled >= 1.5x interpreter at n=%d (%.2fx)\n",
                ok ? "PASS" : "NOTE", r.n,
                r.interp_gflops > 0.0 ? r.tiled_gflops / r.interp_gflops
                                      : 0.0);
  }
  if (cores == 1) {
    std::printf("NOTE single-core host: work-stealing scaling not "
                "measurable here (environmental skip)\n");
  }

  if (!json_path.empty()) write_json(json_path, rows);
  return 0;
}
