#include "bench_common.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace ibchol::bench {

namespace {

std::vector<int> parse_sizes(const std::string& csv, int step) {
  std::vector<int> sizes;
  if (!csv.empty()) {
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) sizes.push_back(std::stoi(tok));
    return sizes;
  }
  for (int n = 4; n <= 64; n += step) sizes.push_back(n);
  return sizes;
}

}  // namespace

BenchConfig parse_config(int argc, const char* const* argv,
                         int default_step) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  cfg.batch = cli.get_int("batch", 16384);
  cfg.step = static_cast<int>(cli.get_int("step", default_step));
  cfg.sizes = parse_sizes(cli.get("sizes", ""), cfg.step);
  cfg.measure = cli.get_bool("measure", false);
  cfg.measure_batch = cli.get_int("measure-batch", 4096);
  cfg.csv_path = cli.get("csv", "");
  cfg.json_path = cli.get("json", "");
  cfg.trees = static_cast<int>(cli.get_int("trees", 500));
  cfg.noise_sigma = cli.get_double("noise", 0.0);
  return cfg;
}

void print_header(const std::string& figure, const std::string& description,
                  const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("substrate: P100 SIMT model, batch %lld, single precision\n",
              static_cast<long long>(config.batch));
  std::printf("==============================================================\n");
}

NamedSeries reduce_best(
    const SweepDataset& dataset, std::string name,
    const std::function<bool(const SweepRecord&)>& filter) {
  NamedSeries s;
  s.name = std::move(name);
  for (const auto& [n, record] : dataset.best_by_n(filter)) {
    s.gflops_by_n[n] = record.gflops;
  }
  return s;
}

void print_series_table(const std::vector<NamedSeries>& series) {
  std::vector<std::string> header{"n"};
  for (const auto& s : series) header.push_back(s.name);
  TextTable table(header);
  if (series.empty()) return;
  for (const auto& [n, g] : series.front().gflops_by_n) {
    std::vector<std::string> row{std::to_string(n)};
    for (const auto& s : series) {
      const auto it = s.gflops_by_n.find(n);
      row.push_back(it == s.gflops_by_n.end() ? "-"
                                              : TextTable::num(it->second, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
}

void print_series_chart(const std::vector<NamedSeries>& series,
                        const std::string& title) {
  std::vector<Series> chart;
  for (const auto& s : series) {
    Series cs;
    cs.name = s.name;
    for (const auto& [n, g] : s.gflops_by_n) {
      cs.x.push_back(n);
      cs.y.push_back(g);
    }
    chart.push_back(std::move(cs));
  }
  ChartOptions opt;
  opt.title = title;
  opt.x_label = "matrix size n";
  opt.y_label = "GFLOP/s ((1/3)n^3 per matrix)";
  std::printf("\n%s\n", render_chart(chart, opt).c_str());
}

void maybe_write_csv(const BenchConfig& config,
                     const std::vector<NamedSeries>& series) {
  if (config.csv_path.empty() || series.empty()) return;
  CsvTable t;
  t.header = {"n"};
  for (const auto& s : series) t.header.push_back(s.name);
  for (const auto& [n, g] : series.front().gflops_by_n) {
    std::vector<std::string> row{std::to_string(n)};
    for (const auto& s : series) {
      const auto it = s.gflops_by_n.find(n);
      row.push_back(it == s.gflops_by_n.end() ? ""
                                              : std::to_string(it->second));
    }
    t.rows.push_back(std::move(row));
  }
  write_csv_file(config.csv_path, t);
  std::printf("wrote %s\n", config.csv_path.c_str());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void maybe_write_json(const BenchConfig& config, const std::string& bench_id,
                      const std::vector<NamedSeries>& series) {
  if (config.json_path.empty() || series.empty()) return;
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(bench_id) << "\",\n"
     << "  \"batch\": " << config.batch << ",\n  \"series\": [";
  bool first_series = true;
  for (const auto& s : series) {
    os << (first_series ? "\n" : ",\n");
    first_series = false;
    os << "    {\"name\": \"" << json_escape(s.name) << "\", \"points\": [";
    bool first_point = true;
    for (const auto& [n, g] : s.gflops_by_n) {
      os << (first_point ? "" : ", ") << "{\"n\": " << n << ", \"gflops\": "
         << g << "}";
      first_point = false;
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  std::ofstream f(config.json_path);
  if (!f) {
    std::printf("could not open %s\n", config.json_path.c_str());
    return;
  }
  f << os.str();
  std::printf("wrote %s\n", config.json_path.c_str());
}

void check(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "NOTE", claim.c_str());
}

ModelEvaluator make_model_evaluator(double noise_sigma) {
  return ModelEvaluator(KernelModel(GpuSpec::p100()), noise_sigma);
}

}  // namespace ibchol::bench
