// Ablation: does the tuning transfer across GPU architectures?
//
// The paper tunes on a P100. Autotuning folklore says winners do not
// transfer blindly between architectures; this ablation evaluates the same
// space on the P100 model and a Kepler-class K40 model and reports (a) the
// per-size winners on each machine, (b) the performance lost by running
// the P100 winner on the K40 instead of its own winner.
#include <cstdio>

#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/8);
  print_header("Ablation", "tuning transfer: P100 winners on a K40", cfg);

  ModelEvaluator p100 = make_model_evaluator(cfg.noise_sigma);
  ModelEvaluator k40{KernelModel(GpuSpec::k40()), cfg.noise_sigma};

  TextTable table({"n", "P100 winner", "K40 winner", "K40 best GF/s",
                   "P100-winner-on-K40", "transfer loss %"});
  double worst_loss = 0.0;
  bool same_structure = true;
  for (const int n : cfg.sizes) {
    SweepOptions opt;
    opt.sizes = {n};
    opt.batch = cfg.batch;
    const SweepDataset ds_p = run_sweep(p100, opt);
    const SweepDataset ds_k = run_sweep(k40, opt);
    const SweepRecord best_p = *ds_p.best(n);
    const SweepRecord best_k = *ds_k.best(n);
    const double transplanted = k40.gflops(n, cfg.batch, best_p.params);
    const double loss = 100.0 * (1.0 - transplanted / best_k.gflops);
    worst_loss = std::max(worst_loss, loss);
    same_structure =
        same_structure && best_p.params.chunked && best_k.params.chunked;
    table.add_row({std::to_string(n), best_p.params.key(),
                   best_k.params.key(), TextTable::num(best_k.gflops, 1),
                   TextTable::num(transplanted, 1),
                   TextTable::num(loss, 2)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nobservations:\n");
  check(same_structure,
        "the structural conclusions (chunked interleaved layout) hold on "
        "both architectures");
  check(worst_loss > 10.0,
        "blind transfer of tuned winners loses real performance on another "
        "architecture (worst " + TextTable::num(worst_loss, 1) +
        "%) — per-machine retuning is necessary");
  std::printf("  [INFO] this is why the autotuner ships as a library "
              "component rather than a table\n         of constants: "
              "re-running the sweep recovers the transfer loss.\n");
  return 0;
}
