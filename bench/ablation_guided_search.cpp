// Ablation: exhaustive sweep vs guided (coordinate-descent) search.
//
// The paper chooses the exhaustive sweep deliberately — "using a guided
// search which skips some areas of the search space represents a form of
// selection bias" — while acknowledging heuristics reach near-optimal
// points much faster (§IV). This ablation quantifies that trade on the
// same space: kernels evaluated and distance from the exhaustive optimum,
// per matrix size.
#include <cstdio>

#include "autotune/search.hpp"
#include "bench_common.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv, /*default_step=*/4);
  print_header("Ablation",
               "exhaustive sweep vs guided coordinate-descent search", cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);

  TextTable table({"n", "space", "evals", "saved", "exhaustive GF/s",
                   "guided GF/s", "gap %"});
  double worst_gap = 0.0, total_saved = 0.0;
  int rows = 0;
  for (const int n : cfg.sizes) {
    SweepOptions sopt;
    sopt.sizes = {n};
    sopt.batch = cfg.batch;
    const SweepDataset ds = run_sweep(eval, sopt);
    const double exhaustive = ds.best(n)->gflops;

    const SearchResult res = guided_search(eval, n, cfg.batch, {});
    const double gap = 100.0 * (1.0 - res.best_gflops / exhaustive);
    const double saved =
        100.0 * (1.0 - static_cast<double>(res.evaluations) /
                           static_cast<double>(ds.size()));
    worst_gap = std::max(worst_gap, gap);
    total_saved += saved;
    ++rows;
    table.add_row({std::to_string(n), std::to_string(ds.size()),
                   std::to_string(res.evaluations),
                   TextTable::num(saved, 0) + "%",
                   TextTable::num(exhaustive, 1),
                   TextTable::num(res.best_gflops, 1),
                   TextTable::num(gap, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nclaims (paper §IV discussion):\n");
  check(total_saved / rows > 50.0,
        "guided search skips most of the space (mean " +
            TextTable::num(total_saved / rows, 0) + "% of kernels skipped)");
  check(worst_gap < 7.0,
        "guided search lands near the exhaustive optimum (worst gap " +
            TextTable::num(worst_gap, 2) + "%)");
  std::printf("  [INFO] the paper still sweeps exhaustively: the skipped "
              "kernels are exactly the\n         data the §IV analysis "
              "(Table I, Fig 21) needs — guided search would bias it.\n");
  return 0;
}
