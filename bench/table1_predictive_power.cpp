// Table I: predictive power of the tuning parameters on performance, in
// terms of mean squared error — permutation variable importance of a
// random-forest regression fitted to the exhaustive autotuning dataset
// (paper §IV).
//
// Expected shape: tile size n_b and chunking have the strongest effect;
// the L1-vs-shared cache carveout has the weakest (≈ 0 / negative — it is
// pure noise for kernels that use no shared memory).
#include <cstdio>

#include "autotune/analyze.hpp"
#include "bench_common.hpp"
#include "util/csv.hpp"

using namespace ibchol;
using namespace ibchol::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = parse_config(argc, argv, /*default_step=*/4);
  if (cfg.noise_sigma == 0.0) cfg.noise_sigma = 0.02;  // measured-data realism
  print_header("Table I",
               "predictive power of tuning parameters (random-forest "
               "permutation importance)",
               cfg);

  ModelEvaluator eval = make_model_evaluator(cfg.noise_sigma);
  SweepOptions opt;
  opt.sizes = cfg.sizes;
  opt.batch = cfg.batch;
  opt.space.include_cache_pref = true;  // Table I includes the cache axis
  const SweepDataset ds = run_sweep(eval, opt);
  std::printf("autotuning dataset: %zu measurements (%zu sizes x %zu "
              "variants)\n\n",
              ds.size(), cfg.sizes.size(),
              enumerate_space(64, opt.space).size());

  ForestOptions fopt;
  fopt.num_trees = cfg.trees;
  const AnalysisResult res = analyze_dataset(ds, fopt);

  TextTable table({"Parameter", "IncMSE", "Type", "Explanation"});
  for (const auto& row : res.table) {
    table.add_row({row.parameter, TextTable::num(row.inc_mse, 1), row.type,
                   row.explanation});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nforest: %d trees, average depth %.1f, OOB MSE %.1f\n",
              res.num_trees, res.average_depth, res.oob_mse);

  // Claims.
  auto imp = [&](const std::string& name) {
    for (const auto& row : res.table) {
      if (row.parameter == name) return row.inc_mse;
    }
    return 0.0;
  };
  double strongest = 0.0;
  for (const auto& row : res.table) {
    strongest = std::max(strongest, row.inc_mse);
  }
  std::printf("\nclaims (paper §IV, Table I):\n");
  // Note: permutation importance of a binary variable (chunking) is
  // bounded by its two-level spread, while n and n_b span many levels; we
  // require chunking to be decisively above the noise floor rather than to
  // out-rank the integer variables.
  check(imp("chunking") > 5.0 * std::abs(imp("cache")) &&
            imp("chunking") > 0.05 * strongest,
        "chunking has clearly positive predictive power");
  check(imp("nb") > 0.25 * strongest,
        "tile size n_b is among the strongest parameters");
  bool cache_weakest = true;
  for (const auto& row : res.table) {
    if (row.parameter != "cache" && row.inc_mse < imp("cache")) {
      cache_weakest = false;
    }
  }
  check(cache_weakest, "the cache carveout has the weakest effect");
  check(imp("cache") < 0.02 * strongest,
        "cache importance is noise-level (paper: negative)");

  if (!cfg.csv_path.empty()) {
    write_csv_file(cfg.csv_path, ds.to_csv());
    std::printf("wrote dataset to %s\n", cfg.csv_path.c_str());
  }
  return 0;
}
